"""LDMS-like power sampler with data drops.

Section II-B: LDMS samples node power at one-second intervals, but "the
high aggregate data rate across the system forces much of the data to be
dropped, leading to an effective sampling interval of 2 seconds", with
occasional larger gaps that "did not exceed five seconds".

The sampler reads a node's ground-truth trace through the PM interface
semantics (each report is the mean power since the previous report — the
counters integrate energy) and drops reports at a configurable rate.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.runner.trace import PowerTrace
from repro.telemetry.downsample import downsample_series


@dataclass(frozen=True)
class SamplerConfig:
    """Sampling cadence and drop behaviour.

    With ``nominal_interval_s = 1`` and ``drop_probability = 0.5`` the
    effective cadence is ~2 s, matching the paper.  ``max_gap_s`` bounds
    consecutive drops (the pipeline retries), keeping gaps <= 5 s.
    """

    nominal_interval_s: float = 1.0
    drop_probability: float = 0.5
    max_gap_s: float = 5.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.nominal_interval_s <= 0:
            raise ValueError("nominal_interval_s must be positive")
        if not 0.0 <= self.drop_probability < 1.0:
            raise ValueError("drop_probability must be in [0, 1)")
        if self.max_gap_s < self.nominal_interval_s:
            raise ValueError("max_gap_s must be >= nominal_interval_s")


@dataclass
class SampledSeries:
    """An irregularly sampled power series (post-drop)."""

    node_name: str
    component: str
    times: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        if self.times.shape != self.values.shape:
            raise ValueError("times and values must have equal length")

    @property
    def effective_interval_s(self) -> float:
        """Mean spacing between surviving samples."""
        if len(self.times) < 2:
            return 0.0
        return float(np.mean(np.diff(self.times)))

    @property
    def max_gap_s(self) -> float:
        """Largest spacing between surviving samples."""
        if len(self.times) < 2:
            return 0.0
        return float(np.max(np.diff(self.times)))

    def energy_j(self) -> float:
        """Trapezoidal energy estimate over the sampled series."""
        if len(self.times) < 2:
            return 0.0
        return float(np.trapezoid(self.values, self.times))


@dataclass
class LdmsSampler:
    """Samples node traces into irregular series with drops."""

    config: SamplerConfig = field(default_factory=SamplerConfig)

    def sample(self, trace: PowerTrace, component: str = "node") -> SampledSeries:
        """Sample one component of a node trace.

        Each nominal-interval report carries the mean power over its
        window; drops remove reports subject to the max-gap bound.
        """
        if component not in trace.components:
            raise KeyError(f"unknown component {component!r}")
        cfg = self.config
        times, values = downsample_series(
            trace.times, trace.components[component], cfg.nominal_interval_s
        )
        if len(times) == 0:
            return SampledSeries(trace.node_name, component, times, values)
        # Stable per-(node, component) stream: built-in hash() is
        # randomized per process (PYTHONHASHSEED), which would make the
        # drop pattern irreproducible across runs and across pool workers.
        stream = zlib.crc32(f"{trace.node_name}:{component}".encode("utf-8"))
        rng = np.random.default_rng(cfg.seed ^ stream & 0x7FFFFFFF)
        keep = rng.random(len(times)) >= cfg.drop_probability
        keep[0] = True
        # Enforce the gap bound: force-keep a sample whenever the gap
        # since the last kept one would exceed max_gap_s.  Between two
        # naturally kept samples j < k the sequential rule forces exactly
        # the indices j + max_skip, j + 2*max_skip, ... < k (and after the
        # last kept sample, ... <= n-1), which vectorizes per gap.
        max_skip = int(cfg.max_gap_s / cfg.nominal_interval_s)
        kept_idx = np.flatnonzero(keep)
        next_kept = np.append(kept_idx[1:], len(times))
        n_forced = (next_kept - kept_idx - 1) // max_skip
        total_forced = int(n_forced.sum())
        if total_forced:
            gap_start = np.repeat(kept_idx, n_forced)
            step = (
                np.arange(total_forced)
                - np.repeat(np.cumsum(n_forced) - n_forced, n_forced)
                + 1
            )
            keep[gap_start + max_skip * step] = True
        return SampledSeries(
            node_name=trace.node_name,
            component=component,
            times=times[keep],
            values=values[keep],
        )

    def sample_all(self, trace: PowerTrace) -> dict[str, SampledSeries]:
        """Sample every component of a trace."""
        return {key: self.sample(trace, key) for key in trace.components}
