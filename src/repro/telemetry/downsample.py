"""Down-sampling of power timelines.

The Fig 2 study measured at 0.1 s and "then down-sampled it to the rest of
the sampling rates".  Down-sampling a power sensor is *block averaging*
(each coarse sample reports the mean power over its window — power sensors
integrate), which is why coarser rates widen the high-power-mode FWHM,
clip the maximum, and eventually blur short-lived modes away.
"""

from __future__ import annotations

import numpy as np

from repro.runner.trace import PowerTrace, TraceBlock


def downsample_series(
    times: np.ndarray, values: np.ndarray, interval_s: float
) -> tuple[np.ndarray, np.ndarray]:
    """Block-average a regularly sampled series to a coarser interval.

    Returns (window midpoints, window means).  The trailing partial window
    is kept if it holds at least one sample.
    """
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if times.shape != values.shape:
        raise ValueError(f"shape mismatch: {times.shape} vs {values.shape}")
    if interval_s <= 0:
        raise ValueError(f"interval_s must be positive, got {interval_s}")
    if len(times) == 0:
        return times.copy(), values.copy()
    base = float(times[1] - times[0]) if len(times) > 1 else interval_s
    if interval_s < base - 1e-12:
        raise ValueError(
            f"cannot down-sample to {interval_s} s: base interval is {base} s"
        )
    per_window = max(int(round(interval_s / base)), 1)
    n_windows = int(np.ceil(len(values) / per_window))
    out_times = np.empty(n_windows)
    out_values = np.empty(n_windows)
    # Full windows reduce as one reshaped 2-D mean (each row is the same
    # contiguous slice the per-window loop would average); only a trailing
    # partial window needs separate handling.
    n_full = len(values) // per_window
    if n_full:
        out_times[:n_full] = np.ascontiguousarray(
            times[: n_full * per_window]
        ).reshape(n_full, per_window).mean(axis=1)
        out_values[:n_full] = np.ascontiguousarray(
            values[: n_full * per_window]
        ).reshape(n_full, per_window).mean(axis=1)
    if n_full < n_windows:
        out_times[n_full] = times[n_full * per_window :].mean()
        out_values[n_full] = values[n_full * per_window :].mean()
    return out_times, out_values


def downsample_trace(trace: PowerTrace, interval_s: float) -> PowerTrace:
    """Down-sample every component of a node trace.

    Reads the columnar block row by row (zero-copy views) and fills one
    output block directly — no intermediate per-component dict — carrying
    ``interval_s`` as the result's declared grid spacing so even
    single-window results report a correct sample interval.
    """
    block = trace.block
    new_times: np.ndarray | None = None
    data: np.ndarray | None = None
    for row, key in enumerate(block.components):
        t, v = downsample_series(block.times, block.component(key), interval_s)
        if data is None:
            new_times = t
            data = np.empty((len(block.components), len(v)), dtype=v.dtype)
        data[row] = v
    assert data is not None and new_times is not None
    return PowerTrace.from_block(
        TraceBlock(
            node_name=trace.node_name,
            times=new_times,
            data=data,
            components=block.components,
            base_interval_s=interval_s,
        )
    )
