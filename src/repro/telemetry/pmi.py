"""Cray Power Monitoring interface facade.

On real Cray EX nodes, ``/sys/cray/pm_counters`` exposes instantaneous
power for the CPU, each GPU (accelN), memory, and the node total.  This
facade provides the same component readout against a simulated node's
ground-truth trace — the source the LDMS sampler reads from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.runner.trace import COMPONENT_KEYS, PowerTrace


@dataclass(frozen=True)
class PowerMonitoringInterface:
    """Point-in-time component power readout over a node trace."""

    trace: PowerTrace

    @property
    def counters(self) -> tuple[str, ...]:
        """Available counters (pm_counters naming: component keys)."""
        return COMPONENT_KEYS

    def read(self, counter: str, at_s: float) -> float:
        """Instantaneous power of a counter at a given time, in watts.

        Uses the nearest ground-truth sample; reading outside the trace
        raises (a real counter would return the idle value, but out-of-
        window reads in this library indicate a query bug).
        """
        if counter not in self.trace.components:
            raise KeyError(
                f"unknown counter {counter!r}; available: {self.counters}"
            )
        times = self.trace.times
        if len(times) == 0:
            raise ValueError("trace is empty")
        if not (times[0] - 1.0 <= at_s <= times[-1] + 1.0):
            raise ValueError(
                f"time {at_s:.1f} s outside trace window "
                f"[{times[0]:.1f}, {times[-1]:.1f}] s"
            )
        index = int(np.argmin(np.abs(times - at_s)))
        return float(self.trace.components[counter][index])

    def read_all(self, at_s: float) -> dict[str, float]:
        """All counters at a given time."""
        return {key: self.read(key, at_s) for key in self.counters}

    def energy_j(self, counter: str, start_s: float, end_s: float) -> float:
        """Accumulated energy of a counter over a window, in joules.

        Real pm_counters expose monotonically increasing energy counters;
        LDMS derives power from their deltas.  Here the accumulation is
        integrated from the ground-truth trace.
        """
        if counter not in self.trace.components:
            raise KeyError(
                f"unknown counter {counter!r}; available: {self.counters}"
            )
        if end_s < start_s:
            raise ValueError(f"end {end_s} before start {start_s}")
        window = self.trace.window(start_s, end_s)
        if len(window.times) == 0:
            return 0.0
        return float(
            window.components[counter].sum() * self.trace.sample_interval_s
        )
