"""OMNI-like time-series store with job-window queries.

NERSC's OMNI gathers the LDMS streams into a queryable store; the paper's
power data came from "previously-developed querying scripts" against it.
:class:`OmniStore` ingests :class:`~repro.telemetry.sampler.SampledSeries`
records and answers the same kind of queries: per-node, per-component,
time-windowed power series for a job.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.telemetry.sampler import SampledSeries


@dataclass(frozen=True)
class OmniQuery:
    """A query: node/component selectors plus an optional time window."""

    node_name: str | None = None
    component: str | None = None
    start_s: float | None = None
    end_s: float | None = None

    def __post_init__(self) -> None:
        if (
            self.start_s is not None
            and self.end_s is not None
            and self.end_s < self.start_s
        ):
            raise ValueError(f"end {self.end_s} before start {self.start_s}")


@dataclass
class OmniStore:
    """In-memory time-series store keyed by (node, component)."""

    _data: dict[tuple[str, str], list[SampledSeries]] = field(default_factory=dict)

    def ingest(self, series: SampledSeries) -> None:
        """Add a sampled series to the store."""
        key = (series.node_name, series.component)
        self._data.setdefault(key, []).append(series)

    def ingest_all(self, series_by_component: dict[str, SampledSeries]) -> None:
        """Add every component series of one node."""
        for series in series_by_component.values():
            self.ingest(series)

    @property
    def nodes(self) -> list[str]:
        """Node names present in the store."""
        return sorted({node for node, _ in self._data})

    @property
    def components(self) -> list[str]:
        """Component names present in the store."""
        return sorted({component for _, component in self._data})

    def query(self, query: OmniQuery) -> list[SampledSeries]:
        """All series matching a query, with time windows applied."""
        out: list[SampledSeries] = []
        for (node, component), series_list in sorted(self._data.items()):
            if query.node_name is not None and node != query.node_name:
                continue
            if query.component is not None and component != query.component:
                continue
            for series in series_list:
                times, values = series.times, series.values
                if query.start_s is not None or query.end_s is not None:
                    lo = query.start_s if query.start_s is not None else -np.inf
                    hi = query.end_s if query.end_s is not None else np.inf
                    mask = (times >= lo) & (times < hi)
                    times, values = times[mask], values[mask]
                out.append(
                    SampledSeries(
                        node_name=node, component=component, times=times, values=values
                    )
                )
        return out

    def concatenated(self, query: OmniQuery) -> SampledSeries:
        """Matching series merged into one, sorted by time.

        Raises
        ------
        LookupError
            If nothing matches (distinguishes "no data" from empty window).
        """
        matches = self.query(query)
        if not matches:
            raise LookupError(f"no series match {query}")
        node = query.node_name if query.node_name is not None else "*"
        component = query.component if query.component is not None else "*"
        times = np.concatenate([m.times for m in matches])
        values = np.concatenate([m.values for m in matches])
        order = np.argsort(times, kind="stable")
        return SampledSeries(
            node_name=node, component=component, times=times[order], values=values[order]
        )
