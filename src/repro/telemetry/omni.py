"""OMNI-like time-series store with job-window queries.

NERSC's OMNI gathers the LDMS streams into a queryable store; the paper's
power data came from "previously-developed querying scripts" against it.
:class:`OmniStore` ingests :class:`~repro.telemetry.sampler.SampledSeries`
records and answers the same kind of queries: per-node, per-component,
time-windowed power series for a job.

The backend is columnar: segments are stored by (node, component) key as
ingested (no copy), the key index is kept sorted incrementally (no
per-query re-sort), and window queries on time-ordered segments are
``searchsorted`` slices — zero-copy views into the ingested arrays.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.telemetry.sampler import SampledSeries


@dataclass(frozen=True)
class OmniQuery:
    """A query: node/component selectors plus an optional time window."""

    node_name: str | None = None
    component: str | None = None
    start_s: float | None = None
    end_s: float | None = None

    def __post_init__(self) -> None:
        if (
            self.start_s is not None
            and self.end_s is not None
            and self.end_s < self.start_s
        ):
            raise ValueError(f"end {self.end_s} before start {self.start_s}")


@dataclass
class _Column:
    """Segments of one (node, component) stream plus its time ordering.

    ``ordered`` means every segment is internally time-sorted and the
    segments are mutually non-overlapping in ingest order — the common
    case (samplers emit ordered series once per stream), under which
    windows are ``searchsorted`` slices and concatenation needs no sort.
    """

    segments: list[SampledSeries] = field(default_factory=list)
    segment_sorted: list[bool] = field(default_factory=list)
    ordered: bool = True
    _last_time: float = -np.inf

    def append(self, series: SampledSeries) -> None:
        times = series.times
        is_sorted = len(times) < 2 or bool(np.all(np.diff(times) >= 0))
        self.segments.append(series)
        self.segment_sorted.append(is_sorted)
        if len(times):
            if not is_sorted or float(times[0]) < self._last_time:
                self.ordered = False
            if is_sorted:
                self._last_time = max(self._last_time, float(times[-1]))
            else:
                self._last_time = max(self._last_time, float(np.max(times)))


@dataclass
class OmniStore:
    """In-memory columnar time-series store keyed by (node, component)."""

    _data: dict[tuple[str, str], _Column] = field(default_factory=dict)
    #: Sorted key index, maintained incrementally on ingest.
    _keys: list[tuple[str, str]] = field(default_factory=list)
    #: Ingest observers (live monitors); see :meth:`subscribe`.
    _subscribers: list[Callable[[SampledSeries], None]] = field(
        default_factory=list
    )

    def subscribe(self, callback: Callable[[SampledSeries], None]) -> None:
        """Register an observer called with every ingested series.

        This is how a live monitor (e.g.
        :meth:`repro.monitor.FleetMonitor.ingest_series`) rides the
        store's ingest path.  Observers see the series after it is
        stored and must not mutate it.
        """
        self._subscribers.append(callback)

    def ingest(self, series: SampledSeries) -> None:
        """Add a sampled series to the store — no copy, no re-sort."""
        key = (series.node_name, series.component)
        column = self._data.get(key)
        if column is None:
            column = self._data[key] = _Column()
            insort(self._keys, key)
        column.append(series)
        obs.inc("repro_omni_ingest_total")
        for callback in self._subscribers:
            callback(series)

    def ingest_all(self, series_by_component: dict[str, SampledSeries]) -> None:
        """Add every component series of one node."""
        for series in series_by_component.values():
            self.ingest(series)

    @property
    def nodes(self) -> list[str]:
        """Node names present in the store."""
        return sorted({node for node, _ in self._keys})

    @property
    def components(self) -> list[str]:
        """Component names present in the store."""
        return sorted({component for _, component in self._keys})

    # ------------------------------------------------------------------
    def _matching_keys(self, query: OmniQuery) -> list[tuple[str, str]]:
        """Keys matching the selectors, in sorted key order.

        Exact and per-node selections resolve through the sorted key
        index (dict probe / bisect range) rather than a store scan.
        """
        if query.node_name is not None and query.component is not None:
            key = (query.node_name, query.component)
            obs.inc("repro_omni_index_hits_total", path="exact")
            return [key] if key in self._data else []
        if query.node_name is not None:
            # Keys sort by (node, component): the node's keys are one
            # contiguous run of the sorted index.
            lo = bisect_left(self._keys, (query.node_name, ""))
            keys = []
            for key in self._keys[lo:]:
                if key[0] != query.node_name:
                    break
                keys.append(key)
            obs.inc("repro_omni_index_hits_total", path="node-range")
            return keys
        keys = list(self._keys)
        if query.component is not None:
            keys = [key for key in keys if key[1] == query.component]
        return keys

    @staticmethod
    def _window(
        series: SampledSeries, is_sorted: bool, query: OmniQuery
    ) -> tuple[np.ndarray, np.ndarray]:
        """(times, values) restricted to the query window.

        Sorted segments are sliced via ``searchsorted`` — views into the
        ingested arrays, no copy; unsorted segments fall back to masks.
        """
        times, values = series.times, series.values
        if query.start_s is None and query.end_s is None:
            return times, values
        lo = query.start_s if query.start_s is not None else -np.inf
        hi = query.end_s if query.end_s is not None else np.inf
        if is_sorted:
            i0, i1 = np.searchsorted(times, (lo, hi), side="left")
            return times[i0:i1], values[i0:i1]
        mask = (times >= lo) & (times < hi)
        return times[mask], values[mask]

    def query(self, query: OmniQuery) -> list[SampledSeries]:
        """All series matching a query, with time windows applied."""
        obs.inc("repro_omni_queries_total")
        out: list[SampledSeries] = []
        for node, component in self._matching_keys(query):
            column = self._data[(node, component)]
            for series, is_sorted in zip(column.segments, column.segment_sorted):
                times, values = self._window(series, is_sorted, query)
                out.append(
                    SampledSeries(
                        node_name=node, component=component, times=times, values=values
                    )
                )
        return out

    def concatenated(self, query: OmniQuery) -> SampledSeries:
        """Matching series merged into one, sorted by time.

        When the matches are already time-ordered (the common one-series
        case, or ordered segments of a single stream), the merge is a
        single allocation — no stable-sort pass, no reorder copy.

        Raises
        ------
        LookupError
            If nothing matches (distinguishes "no data" from empty window).
        """
        matches = self.query(query)
        if not matches:
            raise LookupError(f"no series match {query}")
        node = query.node_name if query.node_name is not None else "*"
        component = query.component if query.component is not None else "*"
        if len(matches) == 1:
            # Zero-copy: the windowed views are already the merged series.
            return SampledSeries(
                node_name=node,
                component=component,
                times=matches[0].times,
                values=matches[0].values,
            )
        times = np.concatenate([m.times for m in matches])
        values = np.concatenate([m.values for m in matches])
        if self._is_time_ordered(matches):
            return SampledSeries(
                node_name=node, component=component, times=times, values=values
            )
        order = np.argsort(times, kind="stable")
        return SampledSeries(
            node_name=node, component=component, times=times[order], values=values[order]
        )

    # ------------------------------------------------------------------
    def latest_time_s(
        self, node_name: str | None = None, component: str | None = None
    ) -> float:
        """Time of the newest sample in the selected streams.

        Resolves from the columns' incrementally-maintained last-time
        watermarks — no segment scan.

        Raises
        ------
        LookupError
            If no matching stream holds any samples (a stream of empty
            segments counts as holding none).
        """
        keys = self._matching_keys(
            OmniQuery(node_name=node_name, component=component)
        )
        latest = -np.inf
        for key in keys:
            latest = max(latest, self._data[key]._last_time)
        if latest == -np.inf:
            raise LookupError(
                f"no samples for node={node_name or '*'} "
                f"component={component or '*'}"
            )
        return float(latest)

    def staleness_s(
        self,
        now_s: float | None = None,
        node_name: str | None = None,
        component: str | None = None,
    ) -> float:
        """Age of the selected streams' newest sample — the fig02 gap
        logic as a store query.

        With ``now_s`` the age is against that clock; without it, the
        reference is the *store-wide* newest sample, so the result is how
        far the selected streams lag the freshest one (0.0 for the
        freshest stream itself, and 0.0 for a single-sample store).
        Never negative.

        Raises
        ------
        LookupError
            If no matching stream holds any samples.
        """
        latest = self.latest_time_s(node_name=node_name, component=component)
        reference = now_s if now_s is not None else self.latest_time_s()
        return max(float(reference) - latest, 0.0)

    @staticmethod
    def _is_time_ordered(matches: list[SampledSeries]) -> bool:
        """Whether concatenating the matches in order is already sorted.

        One linear monotonicity pass — cheaper than the stable sort plus
        reorder copy it lets the caller skip.
        """
        last = -np.inf
        for m in matches:
            if len(m.times) == 0:
                continue
            if float(m.times[0]) < last or np.any(np.diff(m.times) < 0):
                return False
            last = float(m.times[-1])
        return True
