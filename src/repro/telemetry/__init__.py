"""Telemetry substrate: Cray PM counters, LDMS sampling, OMNI storage.

Mirrors the measurement stack of Section II-B: node-level power counters
(:mod:`pmi`), sampled at a nominal 1-second interval by an LDMS-like
collector whose data drops yield an effective 2-second cadence
(:mod:`sampler`), stored in and queried from an OMNI-like time-series
store (:mod:`omni`).  :mod:`downsample` implements the rate-conversion
used by the Fig 2 sampling study.
"""

from repro.telemetry.downsample import downsample_series, downsample_trace
from repro.telemetry.pmi import PowerMonitoringInterface
from repro.telemetry.sampler import LdmsSampler, SampledSeries, SamplerConfig
from repro.telemetry.omni import OmniQuery, OmniStore

__all__ = [
    "LdmsSampler",
    "OmniQuery",
    "OmniStore",
    "PowerMonitoringInterface",
    "SampledSeries",
    "SamplerConfig",
    "downsample_series",
    "downsample_trace",
]
