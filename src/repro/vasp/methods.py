"""Electronic-structure methods and SCF algorithms modelled by the library.

The paper's Section IV-D compares seven "methods" — combinations of an
exchange-correlation treatment and an SCF iteration algorithm — applied to
silicon supercells.  We model the same axes:

* :class:`Functional` — the exchange-correlation treatment, which decides
  the dominant kernel mix (basic DFT vs hybrid exact exchange vs RPA);
* :class:`Algorithm` — the eigensolver / charge-density iteration scheme
  (the INCAR ``ALGO`` tag), which decides the per-iteration phase recipe.
"""

from __future__ import annotations

import enum


class Functional(enum.Enum):
    """Exchange-correlation treatment (cost class)."""

    LDA = "LDA"
    GGA = "GGA"
    VDW = "VDW"
    HSE = "HSE"
    ACFDT_RPA = "ACFDT/RPA"

    @property
    def is_higher_order(self) -> bool:
        """True for the computationally demanding methods (HSE, RPA)."""
        return self in (Functional.HSE, Functional.ACFDT_RPA)


class Algorithm(enum.Enum):
    """SCF iteration scheme — the INCAR ``ALGO`` tag values used in Table I."""

    NORMAL = "Normal"  # Blocked Davidson
    VERYFAST = "VeryFast"  # RMM-DIIS
    FAST = "Fast"  # Blocked Davidson + RMM-DIIS
    DAMPED = "Damped"  # Damped velocity friction (CG family, used for HSE)
    ALL = "All"  # Conjugate gradient over all bands
    EXACT = "Exact"  # Exact (full) diagonalization
    ACFDTR = "ACFDTR"  # RPA natural-orbital path

    @classmethod
    def from_incar(cls, value: str) -> "Algorithm":
        """Parse an INCAR ``ALGO`` value (case-insensitive)."""
        needle = value.strip().lower()
        for algo in cls:
            if algo.value.lower() == needle:
                return algo
        raise ValueError(f"unknown ALGO value {value!r}")


#: Combinations exercised in Fig 9, keyed by the paper's labels.
FIG9_METHODS: dict[str, tuple[Functional, Algorithm]] = {
    "dft_normal": (Functional.GGA, Algorithm.NORMAL),
    "dft_veryfast": (Functional.GGA, Algorithm.VERYFAST),
    "dft_fast": (Functional.GGA, Algorithm.FAST),
    "dft_all": (Functional.GGA, Algorithm.ALL),
    "vdw": (Functional.VDW, Algorithm.VERYFAST),
    "hse": (Functional.HSE, Algorithm.DAMPED),
    "acfdtr": (Functional.ACFDT_RPA, Algorithm.ACFDTR),
}


def method_label(functional: Functional, algorithm: Algorithm) -> str:
    """Short label for a (functional, algorithm) pair, Fig 9 style."""
    for label, pair in FIG9_METHODS.items():
        if pair == (functional, algorithm):
            return label
    if functional.is_higher_order:
        return functional.value.lower().replace("/", "_")
    return f"dft_{algorithm.value.lower()}"
