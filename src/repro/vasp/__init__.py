"""A behavioural model of VASP's computation, input handling and parallelism.

This package does **not** solve the Kohn-Sham equations — it models the
*execution structure* of VASP 6.4.1's OpenACC GPU port at the level that
determines power behaviour:

* input handling mirrors VASP's rules: INCAR tags, POSCAR structures,
  KPOINTS meshes, plane-wave counts and FFT grids derived from the cutoff
  and the cell, default NBANDS from electron and ion counts;
* each electronic-structure method (LDA/GGA DFT, van der Waals, HSE hybrid,
  ACFDT/RPA) and iteration algorithm (Blocked Davidson, RMM-DIIS, damped
  CG, exact diagonalization) maps to a per-SCF-iteration recipe of GPU/CPU
  macro-phases with flop/byte counts;
* parallelism follows VASP's decomposition: bands across MPI ranks (one
  rank per GPU), k-point groups via KPAR, plane waves within a GPU, with an
  NCCL-like communication model.

The seven paper benchmarks (Table I) and the silicon-supercell family used
in Section IV are provided in :mod:`repro.vasp.benchmarks`.
"""

from repro.vasp.methods import Algorithm, Functional, method_label
from repro.vasp.incar import Incar
from repro.vasp.kpoints import KpointMesh
from repro.vasp.poscar import Structure, silicon_supercell
from repro.vasp.planewaves import (
    default_nbands,
    fft_grid,
    gcut_inv_angstrom,
    next_fft_size,
    nplwv,
)
from repro.vasp.parallel import CommunicationModel, ParallelConfig
from repro.vasp.workload import MacroPhase, VaspWorkload
from repro.vasp.benchmarks import (
    BENCHMARKS,
    benchmark,
    benchmark_names,
    silicon_workload,
)

__all__ = [
    "Algorithm",
    "BENCHMARKS",
    "CommunicationModel",
    "Functional",
    "Incar",
    "KpointMesh",
    "MacroPhase",
    "ParallelConfig",
    "Structure",
    "VaspWorkload",
    "benchmark",
    "benchmark_names",
    "default_nbands",
    "fft_grid",
    "gcut_inv_angstrom",
    "method_label",
    "next_fft_size",
    "nplwv",
    "silicon_supercell",
    "silicon_workload",
]
