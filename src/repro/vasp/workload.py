"""`VaspWorkload`: a complete, runnable VASP job description.

Ties together the input files (INCAR, POSCAR/Structure, KPOINTS) into the
computational :class:`~repro.vasp.scf.WorkloadSpec` and produces the
macro-phase sequence for any parallel layout.  This is the object the
execution engine, the benchmarks and the experiments all consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.vasp.incar import Incar
from repro.vasp.kpoints import KpointMesh
from repro.vasp.parallel import CommunicationModel, ParallelConfig
from repro.vasp.phases import MacroPhase, total_duration_s
from repro.vasp.planewaves import default_nbands, fft_grid
from repro.vasp.poscar import Structure
from repro.vasp.scf import CostModel, DEFAULT_COSTS, WorkloadSpec, build_phases

# Re-export for the package namespace.
__all__ = ["MacroPhase", "VaspWorkload"]


@dataclass
class VaspWorkload:
    """One VASP calculation: inputs plus derived computational parameters.

    Parameters
    ----------
    name:
        Benchmark-style name (e.g. ``"Si256_hse"``).
    incar / structure / kpoints:
        The three input files.
    nplwv_override / nbands_override:
        Pin NPLWV / NBANDS to published values (Table I) instead of the
        estimator; sweeps leave these unset.
    costs:
        Execution-cost constants (ablation hooks).
    """

    name: str
    incar: Incar
    structure: Structure
    kpoints: KpointMesh = field(default_factory=KpointMesh)
    nplwv_override: int | None = None
    nbands_override: int | None = None
    costs: CostModel = field(default_factory=lambda: DEFAULT_COSTS)

    # ------------------------------------------------------------------
    # Derived computational parameters
    # ------------------------------------------------------------------
    @property
    def fft_grid(self) -> tuple[int, int, int]:
        """FFT grid from the cutoff and cell (estimator)."""
        return fft_grid(self.incar.encut_ev, self.structure.lattice_lengths)

    @property
    def nplwv(self) -> int:
        """NPLWV: pinned (Table I) or estimated from ENCUT and the cell."""
        if self.nplwv_override is not None:
            return self.nplwv_override
        n1, n2, n3 = self.fft_grid
        return n1 * n2 * n3

    @property
    def nelect(self) -> float:
        """Valence electrons: INCAR NELECT if set, else from the structure."""
        if self.incar.nelect is not None:
            return self.incar.nelect
        return float(self.structure.n_electrons())

    @property
    def nbands(self) -> int:
        """NBANDS: pinned, INCAR-set, or VASP's default formula."""
        if self.nbands_override is not None:
            return self.nbands_override
        if self.incar.nbands is not None:
            return self.incar.nbands
        return default_nbands(self.nelect, self.structure.n_atoms)

    @property
    def kpar(self) -> int:
        """K-point parallelism degree (the zoo-wide layout contract).

        :func:`repro.vasp.parallel.layout_for` reads this attribute on
        any workload; VASP forwards its INCAR tag.
        """
        return self.incar.kpar

    def spec(self) -> WorkloadSpec:
        """The computational spec consumed by the phase builder."""
        return WorkloadSpec(
            name=self.name,
            functional=self.incar.functional,
            algo=self.incar.algo,
            nplwv=self.nplwv,
            nbands=self.nbands,
            nelect=self.nelect,
            n_ions=self.structure.n_atoms,
            irreducible_kpoints=self.kpoints.irreducible,
            kpar=self.incar.kpar,
            nelm=self.incar.nelm,
            nelmdl=self.incar.nelmdl,
            nsim=self.incar.nsim,
            nbandsexact=self.incar.nbandsexact,
        )

    # ------------------------------------------------------------------
    # Execution structure
    # ------------------------------------------------------------------
    def phases(
        self,
        parallel: ParallelConfig | None = None,
        comm: CommunicationModel | None = None,
    ) -> list[MacroPhase]:
        """Macro-phase sequence for a parallel layout (default: 1 node)."""
        layout = parallel if parallel is not None else ParallelConfig()
        return build_phases(self.spec(), layout, comm, self.costs)

    def uncapped_runtime_s(
        self,
        parallel: ParallelConfig | None = None,
        comm: CommunicationModel | None = None,
    ) -> float:
        """Total runtime at default power limits (no cap slowdowns)."""
        return total_duration_s(self.phases(parallel, comm))

    # ------------------------------------------------------------------
    # Variants (parameter sweeps)
    # ------------------------------------------------------------------
    def with_nplwv(self, nplwv: int) -> "VaspWorkload":
        """Variant with a pinned plane-wave count (Fig 7 left panel)."""
        if nplwv < 1:
            raise ValueError(f"nplwv must be positive, got {nplwv}")
        return replace(self, nplwv_override=nplwv, name=f"{self.name}_nplwv{nplwv}")

    def with_nbands(self, nbands: int) -> "VaspWorkload":
        """Variant with a pinned band count (Fig 7 right panel)."""
        if nbands < 1:
            raise ValueError(f"nbands must be positive, got {nbands}")
        return replace(self, nbands_override=nbands, name=f"{self.name}_nbands{nbands}")

    def with_costs(self, costs: CostModel) -> "VaspWorkload":
        """Variant with different execution-cost constants (ablations)."""
        return replace(self, costs=costs)
