"""The macro-phase: the unit of execution the power engine consumes.

A VASP run is modelled as a flat sequence of :class:`MacroPhase` objects —
segments of seconds-scale duration during which the node's power profile
is statistically stationary (one phase of one SCF iteration, a host-side
section, a collective...).  Telemetry at 2-second granularity cannot
resolve individual kernels, so the macro-phase is exactly the resolution
the paper's analysis sees.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.perfmodel.kernels import GpuKernelProfile


@dataclass(frozen=True)
class MacroPhase:
    """One stationary segment of a run.

    Attributes
    ----------
    name:
        Phase label, e.g. ``"exact_exchange"`` or ``"scf_comm"``.
    duration_s:
        Wall time at full (uncapped) clocks.
    gpu_profile:
        Kernel profile running on *each* GPU of the job (the paper's
        benchmarks are load-balanced by construction; see Section III-A).
        Utilizations must already include occupancy scaling.
    cpu_utilization / mem_bw_utilization / nic_utilization:
        Host-side activity during the phase.
    """

    name: str
    duration_s: float
    gpu_profile: GpuKernelProfile
    cpu_utilization: float = 0.06
    mem_bw_utilization: float = 0.06
    nic_utilization: float = 0.0

    def __post_init__(self) -> None:
        if self.duration_s < 0:
            raise ValueError(f"duration_s must be non-negative, got {self.duration_s}")
        for field_name in ("cpu_utilization", "mem_bw_utilization", "nic_utilization"):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field_name} must be in [0, 1], got {value}")

    def stretched(self, factor: float) -> "MacroPhase":
        """The same phase with its duration multiplied by ``factor``."""
        if factor < 0:
            raise ValueError(f"factor must be non-negative, got {factor}")
        return replace(self, duration_s=self.duration_s * factor)


def total_duration_s(phases: list[MacroPhase]) -> float:
    """Sum of phase durations (uncapped runtime)."""
    return sum(p.duration_s for p in phases)
