"""SCF phase generation: method + algorithm -> macro-phase sequence.

This module is the heart of the workload model.  Given the computational
parameters of a run (plane waves, bands, k-points, method, algorithm) and
a parallel layout, it emits the sequence of :class:`MacroPhase` objects
whose power profile and duration reproduce VASP's behaviour:

* **Davidson (ALGO=Normal)** iterations mix bandwidth-bound batched FFTs,
  projector work and compute-bound subspace GEMMs; the GEMM share grows
  with NBANDS, which is why large silicon supercells approach GPU TDP
  (Fig 6) while small RMM workloads stay far below it.
* **RMM-DIIS (ALGO=VeryFast)** avoids most subspace GEMMs — FFT-heavy,
  memory-bound, hence low power *and* insensitivity to power caps.
* **HSE (LHFCALC)** adds the exact-exchange phase: long, well-batched,
  compute-bound streams over occupied x all band pairs.  It dominates
  runtime and draws near-TDP power — the paper's hottest workloads.
* **ACFDT/RPA (ALGO=ACFDTR)** runs a DFT ground state, then a *host-side*
  exact diagonalization (not GPU-ported in VASP 6.4.1 — the flat CPU
  section in Fig 3), then compute-bound polarizability GEMM sweeps.

Occupancy and duty-cycle scaling follow DESIGN.md section 4: utilization
saturates with simultaneously-batched work (``NPLWV x batch``), and the
GPU's duty cycle saturates with resident local work (``bands_per_rank x
NPLWV``), degraded by k-point churn.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.perfmodel.kernels import GpuKernelProfile, KernelCatalogue
from repro.perfmodel.dvfs import occupancy
from repro.perfmodel.roofline import RooflineModel
from repro.vasp.methods import Algorithm, Functional
from repro.vasp.parallel import CommunicationModel, ParallelConfig
from repro.vasp.phases import MacroPhase


@dataclass(frozen=True)
class CostModel:
    """Tunable constants of the execution-cost model.

    The defaults are calibrated (see ``tests/test_calibration.py``) so the
    seven Table I benchmarks land inside the paper's published power
    ranges.  They are exposed so ablation benches can perturb them.
    """

    # --- occupancy (utilization saturation with batched work) ---
    occupancy_w_half: float = 1.6e6
    occupancy_hill: float = 1.5
    # Subspace GEMMs are B x P_loc panels: tensor-core efficiency is set
    # by the band count (the skinny dimension), not the plane-wave count.
    subspace_bands_half: float = 1400.0
    subspace_bands_hill: float = 1.5
    # Projector application is a (16 x n_ions)-wide GEMM; its skinny
    # dimension is the projector count.
    projector_count_half: float = 3000.0
    # Effective simultaneously-batched band count per kernel class.
    batch_fft: float = 8.0
    batch_subspace: float = 16.0
    batch_exchange: float = 24.0
    batch_projector: float = 8.0

    # --- duty cycle (fraction of wall time with kernels resident) ---
    # Work per launch saturates at duty_band_sat local bands: beyond that,
    # extra bands lengthen the run but cannot fill inter-launch gaps
    # further -- which is why power barely moves with concurrency until
    # bands per GPU get very small (Section IV-C).
    duty_w_half: float = 3.5e5
    duty_band_sat: float = 32.0
    duty_kpoint_churn: float = 0.05  # per extra sequential k-point
    duty_exchange: float = 0.97  # exchange streams without host round-trips

    # --- per-iteration kernel volumes ---
    fft_passes: dict[str, float] | None = None  # algo name -> FFT passes/band
    # Bytes per FFT pass per grid point: 3 1-D passes x read+write x
    # transposes; the orbital update streams the grid ~12x per pass.
    fft_bytes_redundancy: float = 12.0
    subspace_gemm_scale: dict[str, float] | None = None  # algo -> GEMM weight
    projector_flops_per_ion: float = 16.0
    # FFT round trips per exchange pair per iteration.
    exchange_pair_scale: float = 6.0
    # Exchange throughput collapses for small batched FFTs (launch latency
    # and transposes dominate): achieved rate ~ occupancy ** this power.
    exchange_eff_size_power: float = 8.0
    # --- achieved fraction of the roofline-ideal rate, per kernel class ---
    # (launch overheads, unfused ops; exchange is FFT work counted in
    # flops, so its fraction of the tensor-core peak is low even though
    # the GPU is fully busy -- that is precisely why it is hot AND slow).
    time_eff_exchange: float = 0.04
    # Batched-FFT throughput rises steeply with batch occupancy (small
    # grids are launch-latency bound, large batched grids stream HBM):
    # eff = clip(fft_eff_max * s**fft_eff_size_power, fft_eff_floor, 1).
    fft_eff_max: float = 0.1667
    fft_eff_size_power: float = 1.0
    fft_eff_floor: float = 0.0067
    time_eff_subspace: float = 0.20
    time_eff_projector: float = 0.1667
    time_eff_rpa: float = 0.50
    rpa_freq_points: int = 16
    # FFT round trips per (occupied x virtual) pair per frequency point in
    # the chi0 construction.
    rpa_pair_scale: float = 2.0
    batch_rpa: float = 48.0
    time_eff_rpa_fft: float = 0.04
    host_diag_flops_scale: float = 10.0  # ~10 n^3 flops for a ZHEEVD
    cpu_effective_flops: float = 1.47e11  # Milan socket, effective

    # --- communication ---
    density_collectives_per_iter: float = 2.0
    interleaved_comm_fraction: float = 0.5
    # Share of the per-iteration host/sync overhead that interleaves with
    # the compute phases (band-block logic, MPI waits): it dilutes GPU
    # duty as per-rank compute shrinks, producing the power droop at poor
    # parallel efficiency (Figs 5, 8).
    interleaved_overhead_fraction: float = 0.5

    # --- fixed overheads ---
    # Host-side density mixing / onsite terms per HSE iteration (the low
    # power mode of Fig 2); parallelized across nodes.
    hse_mixing_s: float = 8.0
    startup_s: float = 20.0
    finalize_s: float = 10.0
    iter_host_overhead_s: float = 1.5

    def fft_passes_for(self, algo: Algorithm) -> float:
        """FFT passes per band per iteration for an algorithm."""
        table = self.fft_passes or {
            Algorithm.NORMAL.value: 24.0,
            Algorithm.VERYFAST.value: 24.0,
            Algorithm.FAST.value: 24.0,
            Algorithm.DAMPED.value: 64.0,
            Algorithm.ALL.value: 10.0,
            Algorithm.EXACT.value: 2.0,
            Algorithm.ACFDTR.value: 8.0,
        }
        return table[algo.value]

    def subspace_scale_for(self, algo: Algorithm) -> float:
        """Relative weight of subspace GEMMs for an algorithm."""
        table = self.subspace_gemm_scale or {
            # Davidson's Rayleigh-Ritz works in a 2B subspace and
            # re-orthonormalizes: ~16x the single-rotation volume.
            Algorithm.NORMAL.value: 16.0,
            Algorithm.VERYFAST.value: 0.08,
            Algorithm.FAST.value: 0.4,
            Algorithm.DAMPED.value: 0.6,
            Algorithm.ALL.value: 8.0,
            Algorithm.EXACT.value: 32.0,
            Algorithm.ACFDTR.value: 16.0,
        }
        return table[algo.value]


DEFAULT_COSTS = CostModel()


@dataclass(frozen=True)
class WorkloadSpec:
    """Computational parameters of one VASP run (method + problem size)."""

    name: str
    functional: Functional
    algo: Algorithm
    nplwv: int
    nbands: int
    nelect: float
    n_ions: int
    irreducible_kpoints: int = 1
    kpar: int = 1
    nelm: int = 60
    nelmdl: int = 0
    nsim: int = 4
    nbandsexact: int | None = None

    def __post_init__(self) -> None:
        if self.nplwv < 1 or self.nbands < 1 or self.n_ions < 1:
            raise ValueError("nplwv, nbands and n_ions must be positive")
        if self.nelect <= 0:
            raise ValueError(f"nelect must be positive, got {self.nelect}")
        if self.irreducible_kpoints < 1:
            raise ValueError("irreducible_kpoints must be >= 1")
        if self.kpar > self.irreducible_kpoints:
            raise ValueError(
                f"KPAR={self.kpar} exceeds {self.irreducible_kpoints} irreducible k-points"
            )
        if self.nelm < 1:
            raise ValueError(f"nelm must be >= 1, got {self.nelm}")

    @property
    def n_occupied(self) -> float:
        """Occupied bands (NELECT / 2 for non-spin-polarized runs)."""
        return self.nelect / 2.0

    def kpoints_per_group(self) -> int:
        """Sequential k-points per KPAR group."""
        return math.ceil(self.irreducible_kpoints / self.kpar)


# ----------------------------------------------------------------------
# Phase construction helpers
# ----------------------------------------------------------------------


class ScfPhaseBuilder:
    """Builds the macro-phase sequence for one (spec, parallel) pair."""

    def __init__(
        self,
        spec: WorkloadSpec,
        parallel: ParallelConfig,
        comm: CommunicationModel | None = None,
        costs: CostModel = DEFAULT_COSTS,
    ) -> None:
        if parallel.kpar != spec.kpar:
            parallel = ParallelConfig(
                n_nodes=parallel.n_nodes,
                gpus_per_node=parallel.gpus_per_node,
                kpar=spec.kpar,
            )
        self.spec = spec
        self.parallel = parallel
        self.comm = comm if comm is not None else CommunicationModel()
        self.costs = costs
        self.roofline = RooflineModel()
        self.ranks_per_kgroup = parallel.ranks_per_kgroup
        self.bands_per_rank = parallel.bands_per_rank(spec.nbands)
        self.k_seq = spec.kpoints_per_group()

    # -- occupancy / duty -------------------------------------------------
    def _occupancy(self, batch: float) -> float:
        return float(
            occupancy(
                self.spec.nplwv * batch,
                w_half=self.costs.occupancy_w_half,
                hill=self.costs.occupancy_hill,
            )
        )

    def _duty(self) -> float:
        """Duty cycle from per-launch work and k-point churn."""
        costs = self.costs
        band_factor = min(self.bands_per_rank, costs.duty_band_sat) / costs.duty_band_sat
        work = self.spec.nplwv * costs.batch_fft * band_factor
        duty_work = work / (work + costs.duty_w_half)
        churn = 1.0 / (1.0 + costs.duty_kpoint_churn * (self.k_seq - 1))
        return duty_work * churn

    def _scaled_profile(
        self,
        base: GpuKernelProfile,
        batch: float,
        duty: float | None = None,
        occupancy_override: float | None = None,
    ) -> GpuKernelProfile:
        s = self._occupancy(batch) if occupancy_override is None else occupancy_override
        prof = base.scaled(s)
        return replace(prof, duty_cycle=self._duty() if duty is None else duty)

    def _fft_time_efficiency(self) -> float:
        """Achieved fraction of ideal bandwidth for the batched FFTs."""
        c = self.costs
        s = self._occupancy(c.batch_fft)
        return float(min(max(c.fft_eff_max * s**c.fft_eff_size_power, c.fft_eff_floor), 1.0))

    def _projector_occupancy(self) -> float:
        """Occupancy of the projector GEMM (skinny dim: 16 x n_ions)."""
        return float(
            occupancy(
                16.0 * self.spec.n_ions,
                w_half=self.costs.projector_count_half,
                hill=self.costs.subspace_bands_hill,
            )
        )

    def _subspace_occupancy(self) -> float:
        """Occupancy of the B x P_loc subspace GEMM panels.

        Tensor-core efficiency of a tall-skinny GEMM is governed by the
        skinny (band) dimension; this is what keeps a 640-band workload
        far below TDP while a 5,000+-band supercell approaches it (Fig 6).
        """
        return float(
            occupancy(
                float(self.spec.nbands),
                w_half=self.costs.subspace_bands_half,
                hill=self.costs.subspace_bands_hill,
            )
        )

    # -- kernel volumes (per rank, per SCF iteration, over k_seq points) --
    def _fft_volume(self, passes: float) -> tuple[float, float]:
        """(flops, bytes) per rank for the FFT-dominated orbital work."""
        spec, costs = self.spec, self.costs
        bands = self.bands_per_rank
        per_band_flops = 5.0 * spec.nplwv * math.log2(max(spec.nplwv, 2))
        flops = passes * bands * per_band_flops * self.k_seq
        bytes_moved = (
            passes * bands * spec.nplwv * 16.0 * costs.fft_bytes_redundancy * self.k_seq
        )
        return flops, bytes_moved

    def _projector_volume(self) -> tuple[float, float]:
        """(flops, bytes) per rank for the nonlocal projector work.

        Each local band takes inner products with ~``projector_flops_per_ion``
        projectors per ion over the plane-wave sphere.
        """
        spec, costs = self.spec, self.costs
        pw_sphere = spec.nplwv / 8.0
        flops = (
            2.0
            * self.bands_per_rank
            * costs.projector_flops_per_ion
            * spec.n_ions
            * pw_sphere
            * self.k_seq
        )
        # Projector application streams the local wavefunctions twice.
        bytes_moved = 2.0 * self.bands_per_rank * pw_sphere * 16.0 * self.k_seq
        return flops, bytes_moved

    def _subspace_volume(self, scale: float) -> tuple[float, float]:
        """(flops, bytes) per rank for subspace GEMMs + rotation."""
        spec = self.spec
        pw_sphere = spec.nplwv / 8.0
        # Two B x P_loc x B GEMMs (overlap + rotation); P is split across
        # ranks, B is global.
        flops = scale * 4.0 * spec.nbands**2 * (pw_sphere / self.ranks_per_kgroup) * self.k_seq
        bytes_moved = (
            scale
            * 16.0
            * (2.0 * spec.nbands * pw_sphere / self.ranks_per_kgroup + spec.nbands**2)
            * self.k_seq
        )
        return flops, bytes_moved

    def _exchange_volume(self) -> tuple[float, float]:
        """(flops, bytes) per rank for the exact-exchange phase.

        Exchange pairs every occupied orbital with every *local* band; each
        pair costs an FFT-sized convolution.
        """
        spec, costs = self.spec, self.costs
        per_pair = 5.0 * spec.nplwv * math.log2(max(spec.nplwv, 2)) + 6.0 * spec.nplwv
        flops = (
            costs.exchange_pair_scale
            * spec.n_occupied
            * self.bands_per_rank
            * per_pair
            * self.k_seq
        )
        bytes_moved = flops / 40.0  # exchange is strongly compute-bound
        return flops, bytes_moved

    # -- phase assembly ----------------------------------------------------
    def _gpu_phase(
        self,
        name: str,
        base_profile: GpuKernelProfile,
        batch: float,
        flops: float,
        bytes_moved: float,
        *,
        duty: float | None = None,
        time_efficiency: float = 1.0,
        occupancy_override: float | None = None,
        cpu_utilization: float = 0.06,
        mem_bw_utilization: float = 0.07,
    ) -> MacroPhase:
        if not 0.0 < time_efficiency <= 1.0:
            raise ValueError(f"time_efficiency must be in (0, 1], got {time_efficiency}")
        profile = self._scaled_profile(base_profile, batch, duty, occupancy_override)
        kernel_time = self.roofline.kernel_time_s(flops, bytes_moved, profile)
        wall = kernel_time / time_efficiency / max(profile.duty_cycle, 1e-3)
        return MacroPhase(
            name=name,
            duration_s=float(wall),
            gpu_profile=profile,
            cpu_utilization=cpu_utilization,
            mem_bw_utilization=mem_bw_utilization,
        )

    def _comm_time_per_iter(self) -> float:
        """NCCL time per SCF iteration (density + subspace collectives)."""
        spec, costs = self.spec, self.costs
        ranks = self.ranks_per_kgroup
        n_nodes = self.parallel.n_nodes
        density_bytes = spec.nplwv * 16.0
        subspace_bytes = min(spec.nbands**2 * 16.0, 2.0e9)
        t = costs.density_collectives_per_iter * self.comm.allreduce_time_s(
            density_bytes, ranks, n_nodes
        )
        t += self.comm.allreduce_time_s(subspace_bytes, ranks, n_nodes)
        if spec.functional is Functional.HSE:
            # Exchange redistributes occupied orbitals among ranks.
            exx_bytes = spec.n_occupied * spec.nplwv * 16.0 / max(ranks, 1)
            t += self.comm.alltoall_time_s(exx_bytes, ranks, n_nodes)
        if spec.kpar > 1:
            # KPAR groups reduce the density across groups once per iter.
            t += self.comm.allreduce_time_s(
                density_bytes, self.parallel.total_ranks, n_nodes
            )
        return t * self.k_seq if spec.functional is Functional.HSE else t

    def _comm_phase(self, duration_s: float, name: str = "scf_comm") -> MacroPhase:
        return MacroPhase(
            name=name,
            duration_s=duration_s,
            gpu_profile=KernelCatalogue.NCCL_COLLECTIVE,
            cpu_utilization=0.12,
            mem_bw_utilization=0.10,
            nic_utilization=0.6 if self.parallel.n_nodes > 1 else 0.05,
        )

    def _blend_comm(self, phases: list[MacroPhase], comm_s: float) -> list[MacroPhase]:
        """Fold interleaved communication time into compute phases.

        A share of per-iteration communication overlaps the compute phases
        (fine-grained collectives between band blocks).  It extends the
        wall time and dilutes the duty cycle — the mechanism behind the
        power droop at poor parallel efficiency (Figs 5 and 8).
        """
        if comm_s <= 0 or not phases:
            return phases
        total = sum(p.duration_s for p in phases)
        if total <= 0:
            return phases
        blended = []
        for phase in phases:
            share = phase.duration_s / total
            extra = comm_s * share
            new_duration = phase.duration_s + extra
            dilution = phase.duration_s / new_duration
            profile = replace(
                phase.gpu_profile,
                duty_cycle=phase.gpu_profile.duty_cycle * dilution,
            )
            blended.append(
                replace(phase, duration_s=new_duration, gpu_profile=profile)
            )
        return blended

    # -- per-iteration recipes ---------------------------------------------
    def _dft_iteration(self, algo: Algorithm) -> list[MacroPhase]:
        costs = self.costs
        fft_flops, fft_bytes = self._fft_volume(costs.fft_passes_for(algo))
        proj_flops, proj_bytes = self._projector_volume()
        sub_flops, sub_bytes = self._subspace_volume(costs.subspace_scale_for(algo))
        phases = [
            self._gpu_phase(
                "orbital_update_fft",
                KernelCatalogue.FFT_BATCHED,
                costs.batch_fft,
                fft_flops,
                fft_bytes,
                time_efficiency=self._fft_time_efficiency(),
            ),
            self._gpu_phase(
                "projector",
                KernelCatalogue.PROJECTOR,
                costs.batch_projector,
                proj_flops,
                proj_bytes,
                time_efficiency=costs.time_eff_projector,
                occupancy_override=self._projector_occupancy(),
                mem_bw_utilization=0.10,
            ),
            self._gpu_phase(
                "subspace_diag",
                KernelCatalogue.SUBSPACE
                if algo in (Algorithm.VERYFAST, Algorithm.FAST)
                else KernelCatalogue.GEMM_FP64_TC,
                costs.batch_subspace,
                sub_flops,
                sub_bytes,
                time_efficiency=costs.time_eff_subspace,
                occupancy_override=self._subspace_occupancy(),
            ),
        ]
        comm_s = self._comm_time_per_iter()
        overhead_s = costs.iter_host_overhead_s
        blended = (
            comm_s * costs.interleaved_comm_fraction
            + overhead_s * costs.interleaved_overhead_fraction
        )
        separate = (
            comm_s * (1.0 - costs.interleaved_comm_fraction)
            + overhead_s * (1.0 - costs.interleaved_overhead_fraction)
        )
        phases = self._blend_comm(phases, blended)
        phases.append(self._comm_phase(separate))
        return phases

    def _hse_iteration(self) -> list[MacroPhase]:
        costs = self.costs
        exx_flops, exx_bytes = self._exchange_volume()
        fft_flops, fft_bytes = self._fft_volume(costs.fft_passes_for(self.spec.algo))
        sub_flops, sub_bytes = self._subspace_volume(
            costs.subspace_scale_for(self.spec.algo)
        )
        phases = [
            self._gpu_phase(
                "exact_exchange",
                GpuKernelProfile(
                    name="exact_exchange",
                    compute_utilization=0.95,
                    memory_utilization=0.55,
                    compute_fraction=0.52,
                ),
                costs.batch_exchange,
                exx_flops,
                exx_bytes,
                duty=costs.duty_exchange,
                time_efficiency=costs.time_eff_exchange
                * self._occupancy(costs.batch_exchange)
                ** costs.exchange_eff_size_power,
            ),
            self._gpu_phase(
                "orbital_update_fft",
                KernelCatalogue.FFT_BATCHED,
                costs.batch_fft,
                fft_flops,
                fft_bytes,
                time_efficiency=self._fft_time_efficiency(),
            ),
            self._gpu_phase(
                "subspace_diag",
                KernelCatalogue.SUBSPACE,
                costs.batch_subspace,
                sub_flops,
                sub_bytes,
                time_efficiency=costs.time_eff_subspace,
                occupancy_override=self._subspace_occupancy(),
            ),
        ]
        comm_s = self._comm_time_per_iter()
        overhead_s = costs.iter_host_overhead_s
        blended = (
            comm_s * costs.interleaved_comm_fraction
            + overhead_s * costs.interleaved_overhead_fraction
        )
        separate = (
            comm_s * (1.0 - costs.interleaved_comm_fraction)
            + overhead_s * (1.0 - costs.interleaved_overhead_fraction)
        )
        phases = self._blend_comm(phases, blended)
        phases.append(
            MacroPhase(
                name="density_mixing",
                duration_s=costs.hse_mixing_s / self.parallel.n_nodes + separate,
                gpu_profile=replace(
                    KernelCatalogue.NCCL_COLLECTIVE, duty_cycle=0.3
                ),
                cpu_utilization=0.20,
                mem_bw_utilization=0.18,
            )
        )
        return phases

    def _acfdtr_phases(self) -> list[MacroPhase]:
        """The RPA pipeline: DFT ground state, host diag, chi0 sweeps."""
        spec, costs = self.spec, self.costs
        phases: list[MacroPhase] = []
        # 1. DFT ground state (Davidson), a reduced NELM.
        gs_iters = max(8, spec.nelm // 2)
        for _ in range(gs_iters):
            phases.extend(self._dft_iteration(Algorithm.NORMAL))
        # 2. Exact diagonalization on the host (not GPU-ported in 6.4.1).
        n_exact = spec.nbandsexact if spec.nbandsexact is not None else spec.nbands * 8
        diag_flops = costs.host_diag_flops_scale * float(n_exact) ** 3
        host_time = diag_flops / costs.cpu_effective_flops / self.parallel.n_nodes
        phases.append(
            MacroPhase(
                name="exact_diag_host",
                duration_s=host_time,
                gpu_profile=KernelCatalogue.HOST_SECTION,
                cpu_utilization=0.85,
                mem_bw_utilization=0.55,
            )
        )
        # 3. RPA polarizability: frequency-point sweeps of huge GEMMs
        #    alternating with FFT reconstructions.
        pw_sphere = spec.nplwv / 8.0
        chi_profile = GpuKernelProfile(
            name="rpa_chi0_gemm",
            compute_utilization=0.95,
            memory_utilization=0.55,
            compute_fraction=0.60,
        )
        per_pair = 5.0 * spec.nplwv * math.log2(max(spec.nplwv, 2))
        for _ in range(costs.rpa_freq_points):
            chi_flops = (
                costs.rpa_pair_scale
                * spec.n_occupied
                * float(n_exact)
                * per_pair
                / self.ranks_per_kgroup
            )
            phases.append(
                self._gpu_phase(
                    "rpa_chi0_gemm",
                    chi_profile,
                    costs.batch_rpa,
                    chi_flops,
                    chi_flops / 40.0,
                    duty=costs.duty_exchange,
                    time_efficiency=costs.time_eff_rpa_fft,
                    cpu_utilization=0.12,
                )
            )
            fft_flops, fft_bytes = self._fft_volume(2.0)
            phases.append(
                self._gpu_phase(
                    "rpa_fft",
                    KernelCatalogue.FFT_BATCHED,
                    costs.batch_fft,
                    fft_flops,
                    fft_bytes,
                    time_efficiency=self._fft_time_efficiency(),
                )
            )
            phases.append(self._comm_phase(self._comm_time_per_iter() + 3.0, "rpa_comm"))
        return phases

    def _vdw_phase(self) -> MacroPhase:
        """The van der Waals correction: cheap, host-assisted."""
        return MacroPhase(
            name="vdw_correction",
            duration_s=0.04 * self.spec.n_ions / self.parallel.n_nodes + 0.5,
            gpu_profile=replace(
                KernelCatalogue.PROJECTOR.scaled(0.4), duty_cycle=0.5
            ),
            cpu_utilization=0.30,
            mem_bw_utilization=0.15,
        )

    # -- public API ---------------------------------------------------------
    def build(self) -> list[MacroPhase]:
        """The full phase sequence of the run."""
        spec = self.spec
        phases: list[MacroPhase] = [
            MacroPhase(
                name="startup",
                duration_s=self.costs.startup_s,
                gpu_profile=KernelCatalogue.HOST_SECTION,
                cpu_utilization=0.35,
                mem_bw_utilization=0.25,
            )
        ]
        if spec.algo is Algorithm.ACFDTR:
            phases.extend(self._acfdtr_phases())
        elif spec.functional is Functional.HSE:
            for _ in range(spec.nelm):
                phases.extend(self._hse_iteration())
        elif spec.algo is Algorithm.FAST:
            # Blocked Davidson for the initial (delay) iterations, then RMM.
            n_davidson = max(spec.nelmdl, 5)
            for _ in range(min(n_davidson, spec.nelm)):
                phases.extend(self._dft_iteration(Algorithm.NORMAL))
            for _ in range(max(spec.nelm - n_davidson, 0)):
                phases.extend(self._dft_iteration(Algorithm.VERYFAST))
        else:
            for _ in range(spec.nelm):
                iteration = self._dft_iteration(spec.algo)
                if spec.functional is Functional.VDW:
                    iteration.append(self._vdw_phase())
                phases.extend(iteration)
        phases.append(
            MacroPhase(
                name="finalize",
                duration_s=self.costs.finalize_s,
                gpu_profile=KernelCatalogue.HOST_SECTION,
                cpu_utilization=0.30,
                mem_bw_utilization=0.30,
            )
        )
        return phases


def build_phases(
    spec: WorkloadSpec,
    parallel: ParallelConfig,
    comm: CommunicationModel | None = None,
    costs: CostModel = DEFAULT_COSTS,
) -> list[MacroPhase]:
    """Convenience wrapper around :class:`ScfPhaseBuilder`."""
    return ScfPhaseBuilder(spec, parallel, comm, costs).build()
