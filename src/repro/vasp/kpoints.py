"""KPOINTS handling: Monkhorst-Pack meshes and k-point parallelism.

The benchmarks use regular meshes (Table I's ``KPOINTS`` row); the mesh
size interacts with KPAR (k-point parallel groups) to set how many k-points
each group processes sequentially.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class KpointMesh:
    """A Gamma-centred Monkhorst-Pack mesh ``n1 x n2 x n3``."""

    n1: int = 1
    n2: int = 1
    n3: int = 1

    def __post_init__(self) -> None:
        for n in (self.n1, self.n2, self.n3):
            if n < 1:
                raise ValueError(f"mesh divisions must be >= 1, got {(self.n1, self.n2, self.n3)}")

    @property
    def total(self) -> int:
        """Total mesh points before symmetry reduction."""
        return self.n1 * self.n2 * self.n3

    @property
    def irreducible(self) -> int:
        """Estimated irreducible k-point count.

        A Gamma-centred mesh on a cell with inversion symmetry reduces by
        roughly a factor of two (time-reversal) with Gamma itself unpaired;
        we use ``ceil((total + 1) / 2)`` capped at ``total``.  Exact
        symmetry reduction depends on the space group, which the power
        model does not need.
        """
        return min(self.total, math.ceil((self.total + 1) / 2))

    def kpoints_per_group(self, kpar: int) -> int:
        """Sequential k-points each KPAR group processes.

        Raises
        ------
        ValueError
            If ``kpar`` exceeds the irreducible k-point count (VASP would
            leave groups idle).
        """
        if kpar < 1:
            raise ValueError(f"kpar must be >= 1, got {kpar}")
        if kpar > self.irreducible:
            raise ValueError(
                f"KPAR={kpar} exceeds the {self.irreducible} irreducible k-points"
            )
        return math.ceil(self.irreducible / kpar)

    @classmethod
    def from_string(cls, text: str) -> "KpointMesh":
        """Parse a minimal automatic-mesh KPOINTS file.

        Expected layout (VASP automatic mode)::

            comment
            0
            Gamma | Monkhorst
            n1 n2 n3
            [shift]
        """
        lines = [ln.strip() for ln in text.splitlines() if ln.strip()]
        if len(lines) < 4:
            raise ValueError("KPOINTS file too short for automatic mesh format")
        if lines[1] != "0":
            raise ValueError("only automatic meshes (second line '0') are supported")
        parts = lines[3].split()
        if len(parts) < 3:
            raise ValueError(f"expected three mesh divisions, got {lines[3]!r}")
        n1, n2, n3 = (int(p) for p in parts[:3])
        return cls(n1, n2, n3)

    def to_string(self, comment: str = "automatic mesh") -> str:
        """Serialize to the automatic-mesh KPOINTS format."""
        return f"{comment}\n0\nGamma\n{self.n1} {self.n2} {self.n3}\n0 0 0\n"
