"""INCAR handling: the control-parameter file of a VASP calculation.

Implements the tags the paper's benchmarks exercise (Table I) with VASP's
parsing conventions: ``TAG = value`` lines, ``#`` / ``!`` comments,
case-insensitive tag names, Fortran-style logicals (``.TRUE.`` / ``.T.``).

The :class:`Incar` dataclass is the validated, typed view used by the
workload model; :func:`Incar.from_string` / :func:`Incar.to_string` round-
trip the file format.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.vasp.methods import Algorithm, Functional

_TRUE_VALUES = {".true.", ".t.", "t", "true"}
_FALSE_VALUES = {".false.", ".f.", "f", "false"}


def _parse_logical(value: str) -> bool:
    needle = value.strip().lower()
    if needle in _TRUE_VALUES:
        return True
    if needle in _FALSE_VALUES:
        return False
    raise ValueError(f"not a Fortran logical: {value!r}")


def _format_logical(value: bool) -> str:
    return ".TRUE." if value else ".FALSE."


@dataclass
class Incar:
    """Validated INCAR parameters.

    Only tags that influence the power/performance model are represented;
    unknown tags survive round-trips in :attr:`extra`.
    """

    system: str = "unknown system"
    algo: Algorithm = Algorithm.NORMAL
    encut_ev: float = 245.0
    nelm: int = 60
    nelmdl: int = 0
    nbands: int | None = None
    nelect: float | None = None
    kpar: int = 1
    nsim: int = 4
    lhfcalc: bool = False
    hfscreen: float | None = None
    ivdw: int = 0
    nbandsexact: int | None = None
    extra: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.encut_ev <= 0:
            raise ValueError(f"ENCUT must be positive, got {self.encut_ev}")
        if self.nelm <= 0:
            raise ValueError(f"NELM must be positive, got {self.nelm}")
        if self.nelmdl < 0:
            raise ValueError(f"NELMDL must be non-negative, got {self.nelmdl}")
        if self.kpar < 1:
            raise ValueError(f"KPAR must be >= 1, got {self.kpar}")
        if self.nsim < 1:
            raise ValueError(f"NSIM must be >= 1, got {self.nsim}")
        if self.nbands is not None and self.nbands < 1:
            raise ValueError(f"NBANDS must be >= 1, got {self.nbands}")
        if self.lhfcalc and self.algo in (Algorithm.VERYFAST, Algorithm.FAST):
            raise ValueError(
                "HSE (LHFCALC=.TRUE.) requires a CG-family ALGO (Normal/All/Damped), "
                f"got {self.algo.value}"
            )

    @property
    def functional(self) -> Functional:
        """Functional class implied by the tag combination."""
        if self.algo is Algorithm.ACFDTR:
            return Functional.ACFDT_RPA
        if self.lhfcalc:
            return Functional.HSE
        if self.ivdw != 0:
            return Functional.VDW
        gga = self.extra.get("GGA", "").strip().upper()
        if gga in ("CA", "LDA"):
            return Functional.LDA
        return Functional.GGA

    # ------------------------------------------------------------------
    # File format
    # ------------------------------------------------------------------
    @classmethod
    def from_string(cls, text: str) -> "Incar":
        """Parse INCAR text.

        Raises
        ------
        ValueError
            On malformed lines or invalid tag values.
        """
        raw: dict[str, str] = {}
        for lineno, line in enumerate(text.splitlines(), start=1):
            stripped = line.split("#", 1)[0].split("!", 1)[0].strip()
            if not stripped:
                continue
            if "=" not in stripped:
                raise ValueError(f"INCAR line {lineno}: expected 'TAG = value', got {line!r}")
            tag, value = stripped.split("=", 1)
            raw[tag.strip().upper()] = value.strip()

        kwargs: dict[str, object] = {}
        extra: dict[str, str] = {}
        for tag, value in raw.items():
            if tag == "SYSTEM":
                kwargs["system"] = value
            elif tag == "ALGO":
                kwargs["algo"] = Algorithm.from_incar(value)
            elif tag == "ENCUT":
                kwargs["encut_ev"] = float(value)
            elif tag == "NELM":
                kwargs["nelm"] = int(value)
            elif tag == "NELMDL":
                # VASP uses negative NELMDL for "delay only on the first
                # ionic step"; the magnitude is what matters here.
                kwargs["nelmdl"] = abs(int(value))
            elif tag == "NBANDS":
                kwargs["nbands"] = int(value)
            elif tag == "NELECT":
                kwargs["nelect"] = float(value)
            elif tag == "KPAR":
                kwargs["kpar"] = int(value)
            elif tag == "NSIM":
                kwargs["nsim"] = int(value)
            elif tag == "LHFCALC":
                kwargs["lhfcalc"] = _parse_logical(value)
            elif tag == "HFSCREEN":
                kwargs["hfscreen"] = float(value)
            elif tag == "IVDW":
                kwargs["ivdw"] = int(value)
            elif tag == "NBANDSEXACT":
                kwargs["nbandsexact"] = int(value)
            else:
                extra[tag] = value
        kwargs["extra"] = extra
        return cls(**kwargs)  # type: ignore[arg-type]

    def to_string(self) -> str:
        """Serialize to INCAR text (round-trips through ``from_string``)."""
        lines = [
            f"SYSTEM = {self.system}",
            f"ALGO = {self.algo.value}",
            f"ENCUT = {self.encut_ev!r}",
            f"NELM = {self.nelm}",
            f"NELMDL = {self.nelmdl}",
            f"KPAR = {self.kpar}",
            f"NSIM = {self.nsim}",
            f"LHFCALC = {_format_logical(self.lhfcalc)}",
            f"IVDW = {self.ivdw}",
        ]
        if self.nbands is not None:
            lines.append(f"NBANDS = {self.nbands}")
        if self.nelect is not None:
            lines.append(f"NELECT = {self.nelect!r}")
        if self.hfscreen is not None:
            lines.append(f"HFSCREEN = {self.hfscreen!r}")
        if self.nbandsexact is not None:
            lines.append(f"NBANDSEXACT = {self.nbandsexact}")
        for tag, value in sorted(self.extra.items()):
            lines.append(f"{tag} = {value}")
        return "\n".join(lines) + "\n"

    def replace(self, **changes: object) -> "Incar":
        """A copy with the given fields changed (re-validated)."""
        current = {f.name: getattr(self, f.name) for f in fields(self)}
        current.update(changes)
        current["extra"] = dict(current["extra"])  # type: ignore[arg-type]
        return Incar(**current)  # type: ignore[arg-type]
