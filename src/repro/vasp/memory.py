"""HBM memory estimation: will the job fit on the allocated GPUs?

The paper notes the higher-order methods "require more memory compared to
their counterparts" (Section IV-D), and every VASP-GPU user sizes node
counts by whether the orbitals fit in the 40 GB of HBM.  This module
estimates per-GPU memory the way VASP's own guidelines do — orbitals
dominate, plus FFT work arrays, projectors, and method-specific extras —
and validates a (workload, layout) pair against the A100's capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.platform import default_gpu_spec
from repro.vasp.methods import Functional
from repro.vasp.parallel import ParallelConfig
from repro.vasp.scf import WorkloadSpec

BYTES_PER_COMPLEX = 16.0
GIB = 2.0**30


@dataclass(frozen=True)
class MemoryEstimate:
    """Per-GPU memory breakdown, in GiB."""

    orbitals_gib: float
    fft_work_gib: float
    projectors_gib: float
    method_extra_gib: float
    runtime_overhead_gib: float

    @property
    def total_gib(self) -> float:
        """Total estimated per-GPU memory."""
        return (
            self.orbitals_gib
            + self.fft_work_gib
            + self.projectors_gib
            + self.method_extra_gib
            + self.runtime_overhead_gib
        )

    def fits(self, hbm_gib: float | None = None, headroom: float = 0.9) -> bool:
        """Whether the job fits in HBM with an allocator-headroom margin.

        ``hbm_gib`` defaults to the registry default platform's capacity
        (the paper's A100 40 GB).
        """
        if hbm_gib is None:
            hbm_gib = default_gpu_spec().hbm_gib
        if not 0.0 < headroom <= 1.0:
            raise ValueError(f"headroom must be in (0, 1], got {headroom}")
        return self.total_gib <= hbm_gib * headroom


def estimate_memory(spec: WorkloadSpec, parallel: ParallelConfig) -> MemoryEstimate:
    """Estimate per-GPU HBM use for a workload under a layout.

    Follows VASP's sizing rules: local orbitals are ``bands_per_rank x
    plane-wave sphere`` complex doubles per k-point held by the group;
    HSE additionally keeps the occupied orbitals resident for exchange;
    RPA holds response blocks scaling with NBANDSEXACT.
    """
    if parallel.kpar != spec.kpar:
        parallel = ParallelConfig(
            n_nodes=parallel.n_nodes,
            gpus_per_node=parallel.gpus_per_node,
            kpar=spec.kpar,
        )
    pw_sphere = spec.nplwv / 8.0
    bands_local = parallel.bands_per_rank(spec.nbands)
    k_resident = min(spec.kpoints_per_group(), 4)  # VASP keeps a few resident

    orbitals = bands_local * pw_sphere * BYTES_PER_COMPLEX * k_resident
    fft_work = 8.0 * spec.nplwv * BYTES_PER_COMPLEX  # batched grids + scratch
    projectors = 16.0 * spec.n_ions * pw_sphere / max(parallel.ranks_per_kgroup, 1) * 8.0

    extra = 0.0
    if spec.functional is Functional.HSE:
        # Occupied orbitals replicated for the exchange pairs.
        extra = spec.n_occupied * pw_sphere * BYTES_PER_COMPLEX
    elif spec.functional is Functional.ACFDT_RPA:
        n_exact = spec.nbandsexact if spec.nbandsexact is not None else spec.nbands * 8
        # Virtual-orbital blocks for the response construction.
        extra = (
            min(float(n_exact), 4096.0) * pw_sphere * BYTES_PER_COMPLEX
        )

    return MemoryEstimate(
        orbitals_gib=orbitals / GIB,
        fft_work_gib=fft_work / GIB,
        projectors_gib=projectors / GIB,
        method_extra_gib=extra / GIB,
        runtime_overhead_gib=2.0,  # CUDA context, NCCL buffers, libraries
    )


def minimum_nodes(spec: WorkloadSpec, max_nodes: int = 64) -> int:
    """Smallest node count at which the job fits in HBM.

    Raises
    ------
    ValueError
        If the job does not fit even at ``max_nodes``.
    """
    n = 1
    while n <= max_nodes:
        if estimate_memory(spec, ParallelConfig(n_nodes=n, kpar=spec.kpar)).fits():
            return n
        n *= 2
    raise ValueError(
        f"{spec.name} does not fit in HBM at {max_nodes} nodes "
        "(check NBANDS/NPLWV)"
    )
