"""VASP's parallel decomposition and an NCCL-like communication model.

VASP's primary parallel level distributes bands across MPI ranks (one rank
per GPU on Perlmutter), optionally grouped by k-point (KPAR); the secondary
level distributes plane waves across the cores of each GPU.  Increasing
node count therefore reduces *bands per GPU* while each band's plane-wave
work is unchanged — the structural fact behind the paper's finding that
power barely moves with concurrency (Section IV-C).

The communication model prices NCCL collectives with a latency + bandwidth
ring model, distinguishing NVLink (intra-node) from Slingshot (inter-node)
transfers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class ParallelConfig:
    """Job-level parallel layout: nodes, GPUs per node, KPAR."""

    n_nodes: int = 1
    gpus_per_node: int = 4
    kpar: int = 1

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if self.gpus_per_node < 1:
            raise ValueError(f"gpus_per_node must be >= 1, got {self.gpus_per_node}")
        if self.kpar < 1:
            raise ValueError(f"kpar must be >= 1, got {self.kpar}")
        if self.total_ranks % self.kpar != 0:
            raise ValueError(
                f"KPAR={self.kpar} must divide the total rank count {self.total_ranks}"
            )

    @property
    def total_ranks(self) -> int:
        """MPI ranks = GPUs (one rank per GPU, as in the paper's protocol)."""
        return self.n_nodes * self.gpus_per_node

    @property
    def ranks_per_kgroup(self) -> int:
        """Ranks sharing the band distribution within one KPAR group."""
        return self.total_ranks // self.kpar

    def bands_per_rank(self, nbands: int) -> int:
        """Bands each rank owns (ceil division, as VASP pads NBANDS)."""
        if nbands < 1:
            raise ValueError(f"nbands must be >= 1, got {nbands}")
        return math.ceil(nbands / self.ranks_per_kgroup)

    def with_nodes(self, n_nodes: int) -> "ParallelConfig":
        """Same layout at a different node count."""
        return ParallelConfig(n_nodes=n_nodes, gpus_per_node=self.gpus_per_node, kpar=self.kpar)


@dataclass(frozen=True)
class CommunicationModel:
    """Latency/bandwidth model for NCCL collectives on Perlmutter.

    Parameters are effective (achieved, not peak) values:

    * NVLink3 all-to-all within a node: ~200 GB/s effective per GPU pair
      direction;
    * Slingshot-11: four 25 GB/s NICs per node, ~22 GB/s effective each;
    * per-collective launch latency ~20 microseconds.
    """

    latency_s: float = 2.0e-5
    intra_node_bw_bps: float = 200.0e9
    inter_node_bw_bps: float = 80.0e9  # 4 NICs x ~20 GB/s effective

    def allreduce_time_s(self, n_bytes: float, ranks: int, n_nodes: int) -> float:
        """Ring allreduce: latency * log2(ranks) + 2(r-1)/r * bytes / bw."""
        if n_bytes < 0:
            raise ValueError(f"n_bytes must be non-negative, got {n_bytes}")
        if ranks < 1 or n_nodes < 1:
            raise ValueError("ranks and n_nodes must be >= 1")
        if ranks == 1:
            return 0.0
        bw = self.intra_node_bw_bps if n_nodes == 1 else self.inter_node_bw_bps
        volume_factor = 2.0 * (ranks - 1) / ranks
        return self.latency_s * math.log2(ranks) + volume_factor * n_bytes / bw

    def alltoall_time_s(self, n_bytes: float, ranks: int, n_nodes: int) -> float:
        """All-to-all (band redistribution): pairwise exchange model."""
        if n_bytes < 0:
            raise ValueError(f"n_bytes must be non-negative, got {n_bytes}")
        if ranks < 1 or n_nodes < 1:
            raise ValueError("ranks and n_nodes must be >= 1")
        if ranks == 1:
            return 0.0
        bw = self.intra_node_bw_bps if n_nodes == 1 else self.inter_node_bw_bps
        return self.latency_s * (ranks - 1) + n_bytes * (ranks - 1) / ranks / bw


def layout_for(workload, n_nodes: int) -> ParallelConfig:
    """Parallel layout for any workload in the zoo.

    Workloads that carry a k-point parallelism degree expose a ``kpar``
    attribute (``VaspWorkload`` forwards its INCAR tag); everything else
    lays out with ``kpar=1``.  This is the single construction point the
    scheduler, fleet, prediction and experiment layers share — the old
    per-call-site ``workload.incar.kpar`` coupling assumed every
    workload was VASP.
    """
    return ParallelConfig(n_nodes=n_nodes, kpar=int(getattr(workload, "kpar", 1)))
