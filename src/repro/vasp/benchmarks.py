"""The paper's benchmark suite (Table I) and the silicon-supercell family.

Seven benchmarks cover NERSC's representative VASP workloads: two HSE
hybrid-functional cases, two PdO-slab DFT cases, a metallic ternary alloy,
a van-der-Waals system and an RPA (ACFDT) case.  Published computational
parameters (electrons, ions, NBANDS, FFT grids/NPLWV, k-meshes, NELM) are
pinned exactly; structures are built with the correct ion counts and cell
shapes, and NELECT is pinned through the INCAR as VASP allows.

The silicon-supercell family (:func:`silicon_workload`) drives Section IV:
same chemistry, one knob at a time (size, NPLWV, NBANDS, method,
concurrency).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.vasp.incar import Incar
from repro.vasp.kpoints import KpointMesh
from repro.vasp.methods import Algorithm, Functional, FIG9_METHODS
from repro.vasp.poscar import Structure, silicon_supercell
from repro.vasp.workload import VaspWorkload


def generic_structure(
    species_counts: dict[str, int],
    lattice_lengths: tuple[float, float, float],
    comment: str = "generic structure",
) -> Structure:
    """A structure with given composition and an orthorhombic cell.

    Atom positions are placed on a deterministic jittered grid — the power
    model depends only on counts and cell shape, but a valid structure
    keeps the POSCAR round-trip honest.
    """
    n_atoms = sum(species_counts.values())
    if n_atoms < 1:
        raise ValueError("structure needs at least one atom")
    side = math.ceil(n_atoms ** (1.0 / 3.0))
    grid = np.array(
        [[i, j, k] for i in range(side) for j in range(side) for k in range(side)],
        dtype=float,
    )[:n_atoms]
    rng = np.random.default_rng(sum(ord(c) for c in comment))
    positions = (grid + 0.5 + rng.uniform(-0.1, 0.1, size=grid.shape)) / side
    species: list[str] = []
    for symbol, count in species_counts.items():
        species.extend([symbol] * count)
    return Structure(
        lattice=np.diag(lattice_lengths),
        species=species,
        frac_positions=positions,
        comment=comment,
    )


@dataclass(frozen=True)
class BenchmarkCase:
    """One Table I benchmark: workload factory plus run protocol."""

    name: str
    description: str
    factory: Callable[[], VaspWorkload]
    #: Node counts used for the concurrency sweeps (Figs 4 and 5).
    node_counts: tuple[int, ...]
    #: "Node count optimizing runtime while remaining above 70 % parallel
    #: efficiency" — the count used in the power-capping figures (10, 12).
    optimal_nodes: int

    def build(self) -> VaspWorkload:
        """Construct the workload (cheap; structures are small)."""
        return self.factory()


# ----------------------------------------------------------------------
# The seven benchmarks
# ----------------------------------------------------------------------


def _si256_hse() -> VaspWorkload:
    return VaspWorkload(
        name="Si256_hse",
        incar=Incar(
            system="Si256 supercell with vacancy, HSE",
            algo=Algorithm.DAMPED,
            encut_ev=245.0,
            nelm=41,
            nbands=640,
            lhfcalc=True,
            hfscreen=0.2,
        ),
        structure=silicon_supercell(4, 4, 2, vacancies=1),  # 255 ions, 1020 e-
        kpoints=KpointMesh(1, 1, 1),
        nplwv_override=512000,  # 80 x 80 x 80
    )


def _bhr105_hse() -> VaspWorkload:
    return VaspWorkload(
        name="B.hR105_hse",
        incar=Incar(
            system="hexa-boron hR105, HSE",
            algo=Algorithm.DAMPED,
            encut_ev=319.0,
            nelm=17,
            nbands=256,
            nelect=315.0,
            lhfcalc=True,
            hfscreen=0.2,
        ),
        structure=generic_structure({"B": 105}, (9.8, 9.8, 9.8), "B.hR105"),
        kpoints=KpointMesh(1, 1, 1),
        nplwv_override=110592,  # 48 x 48 x 48
    )


def _pdo4() -> VaspWorkload:
    return VaspWorkload(
        name="PdO4",
        incar=Incar(
            system="PdO slab, 348 ions",
            algo=Algorithm.VERYFAST,
            encut_ev=250.0,
            nelm=60,
            nbands=2048,
            nelect=3288.0,
            extra={"GGA": "CA"},  # LDA
        ),
        structure=generic_structure(
            {"Pd": 300, "O": 48}, (11.0, 16.5, 30.0), "PdO4 slab"
        ),
        kpoints=KpointMesh(1, 1, 1),
        nplwv_override=518400,  # 80 x 120 x 54
    )


def _pdo2() -> VaspWorkload:
    return VaspWorkload(
        name="PdO2",
        incar=Incar(
            system="PdO slab, 174 ions",
            algo=Algorithm.VERYFAST,
            encut_ev=250.0,
            nelm=60,
            nbands=1024,
            nelect=1644.0,
            extra={"GGA": "CA"},  # LDA
        ),
        structure=generic_structure(
            {"Pd": 150, "O": 24}, (11.0, 8.25, 30.0), "PdO2 slab"
        ),
        kpoints=KpointMesh(1, 1, 1),
        nplwv_override=259200,  # 80 x 60 x 54
    )


def _gaasbi64() -> VaspWorkload:
    return VaspWorkload(
        name="GaAsBi-64",
        incar=Incar(
            system="GaAsBi ternary alloy, 64 ions",
            algo=Algorithm.FAST,
            encut_ev=313.0,
            nelm=60,
            nbands=192,
            nelect=266.0,
            kpar=2,
        ),
        structure=generic_structure(
            {"Ga": 32, "As": 30, "Bi": 2}, (11.4, 11.4, 11.4), "GaAsBi-64"
        ),
        kpoints=KpointMesh(4, 4, 4),
        nplwv_override=343000,  # 70 x 70 x 70
    )


def _cuc_vdw() -> VaspWorkload:
    return VaspWorkload(
        name="CuC_vdw",
        incar=Incar(
            system="Cu slab with adsorbed carbon, vdW",
            algo=Algorithm.VERYFAST,
            encut_ev=400.0,
            nelm=60,
            nbands=640,
            nelect=1064.0,
            ivdw=11,
        ),
        structure=generic_structure(
            {"Cu": 96, "C": 2}, (10.2, 10.2, 30.6), "CuC_vdw slab"
        ),
        kpoints=KpointMesh(3, 3, 1),
        nplwv_override=1029000,  # 70 x 70 x 210
    )


def _si128_acfdtr() -> VaspWorkload:
    return VaspWorkload(
        name="Si128_acfdtr",
        incar=Incar(
            system="Si128 supercell, ACFDT/RPA",
            algo=Algorithm.ACFDTR,
            encut_ev=245.0,
            nelm=30,
            nbandsexact=23506,
        ),
        structure=silicon_supercell(2, 2, 4),  # 128 ions, 512 e-
        kpoints=KpointMesh(1, 1, 1),
        nplwv_override=216000,  # 60 x 60 x 60
    )


#: The Table I suite, in the paper's column order.
BENCHMARKS: dict[str, BenchmarkCase] = {
    "Si256_hse": BenchmarkCase(
        name="Si256_hse",
        description="256-site silicon supercell with a vacancy, HSE hybrid functional",
        factory=_si256_hse,
        node_counts=(1, 2, 4, 8, 16),
        optimal_nodes=4,
    ),
    "B.hR105_hse": BenchmarkCase(
        name="B.hR105_hse",
        description="hexa-boron hR105 structure, HSE hybrid functional",
        factory=_bhr105_hse,
        node_counts=(1, 2, 4, 8),
        optimal_nodes=2,
    ),
    "PdO4": BenchmarkCase(
        name="PdO4",
        description="PdO slab with 348 ions, LDA with RMM-DIIS",
        factory=_pdo4,
        node_counts=(1, 2, 4, 8, 16),
        optimal_nodes=2,
    ),
    "PdO2": BenchmarkCase(
        name="PdO2",
        description="PdO slab with 174 ions, LDA with RMM-DIIS",
        factory=_pdo2,
        node_counts=(1, 2, 4, 8),
        optimal_nodes=2,
    ),
    "GaAsBi-64": BenchmarkCase(
        name="GaAsBi-64",
        description="GaAsBi ternary alloy, 64 ions, metallic, BD+RMM",
        factory=_gaasbi64,
        node_counts=(1, 2, 4, 8),
        optimal_nodes=2,
    ),
    "CuC_vdw": BenchmarkCase(
        name="CuC_vdw",
        description="Cu slab with adsorbed carbon, van der Waals functional",
        factory=_cuc_vdw,
        node_counts=(1, 2, 4, 8),
        optimal_nodes=4,
    ),
    "Si128_acfdtr": BenchmarkCase(
        name="Si128_acfdtr",
        description="128-atom silicon supercell, ACFDT/RPA",
        factory=_si128_acfdtr,
        node_counts=(1, 2, 4, 8, 16),
        optimal_nodes=4,
    ),
}


def benchmark_names() -> list[str]:
    """Benchmark names in Table I order."""
    return list(BENCHMARKS)


def benchmark(name: str) -> BenchmarkCase:
    """Look up a benchmark case by name."""
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {', '.join(BENCHMARKS)}"
        ) from None


# ----------------------------------------------------------------------
# Silicon supercell family (Section IV)
# ----------------------------------------------------------------------

#: Supercell multipliers per atom count used by the Fig 6 size sweep.
SILICON_SIZES: dict[int, tuple[int, int, int]] = {
    32: (2, 2, 1),
    64: (2, 2, 2),
    128: (4, 2, 2),
    256: (4, 4, 2),
    512: (4, 4, 4),
    1024: (8, 4, 4),
    2048: (8, 8, 4),
    3072: (8, 8, 6),
    4096: (8, 8, 8),
}


def silicon_workload(
    n_atoms: int,
    method: str = "dft_normal",
    nelm: int = 20,
) -> VaspWorkload:
    """A silicon-supercell workload of a given size and method.

    ``method`` is a Fig 9 label (``dft_normal``, ``dft_veryfast``,
    ``dft_fast``, ``dft_all``, ``vdw``, ``hse``, ``acfdtr``).  NPLWV and
    NBANDS follow the estimator/default rules — these are the sweep
    workloads, not the pinned Table I cases.
    """
    try:
        multipliers = SILICON_SIZES[n_atoms]
    except KeyError:
        raise ValueError(
            f"unsupported silicon size {n_atoms}; known sizes: {sorted(SILICON_SIZES)}"
        ) from None
    try:
        functional, algo = FIG9_METHODS[method]
    except KeyError:
        raise ValueError(
            f"unknown method {method!r}; known: {', '.join(FIG9_METHODS)}"
        ) from None
    incar = Incar(
        system=f"Si{n_atoms} supercell, {method}",
        algo=algo,
        encut_ev=245.0,
        nelm=nelm,
        lhfcalc=functional is Functional.HSE,
        hfscreen=0.2 if functional is Functional.HSE else None,
        ivdw=11 if functional is Functional.VDW else 0,
        extra={} if functional is not Functional.LDA else {"GGA": "CA"},
    )
    structure = silicon_supercell(*multipliers)
    return VaspWorkload(
        name=f"Si{n_atoms}_{method}",
        incar=incar,
        structure=structure,
        kpoints=KpointMesh(1, 1, 1),
    )
