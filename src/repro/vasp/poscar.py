"""POSCAR handling: crystal structures and the silicon-supercell family.

:class:`Structure` stores the lattice, species and fractional positions,
computes cell volume and valence-electron counts (what sets VASP's default
NBANDS), and round-trips the POSCAR file format.  Section IV's experiments
are driven by :func:`silicon_supercell`, which builds diamond-cubic silicon
supercells of arbitrary ``(n1, n2, n3)`` multiplicity with an optional
vacancy (Si256_hse is a 256-site supercell minus one atom).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Valence electrons per element for the standard VASP PAW potentials used
#: by the paper's benchmarks.
VALENCE_ELECTRONS: dict[str, int] = {
    "Si": 4,
    "B": 3,
    "Pd": 10,
    "O": 6,
    "Ga": 3,
    "As": 5,
    "Bi": 5,
    "Cu": 11,
    "C": 4,
    "H": 1,
    "N": 5,
    "Al": 3,
    "Ge": 4,
}

#: Conventional diamond-cubic silicon lattice constant, in Angstrom.
SILICON_A0: float = 5.43

#: Fractional coordinates of the 8-atom diamond-cubic conventional cell.
_DIAMOND_BASIS = np.array(
    [
        [0.00, 0.00, 0.00],
        [0.50, 0.50, 0.00],
        [0.50, 0.00, 0.50],
        [0.00, 0.50, 0.50],
        [0.25, 0.25, 0.25],
        [0.75, 0.75, 0.25],
        [0.75, 0.25, 0.75],
        [0.25, 0.75, 0.75],
    ]
)


@dataclass
class Structure:
    """A periodic crystal structure.

    Attributes
    ----------
    lattice:
        3x3 matrix of lattice vectors in Angstrom (rows are vectors).
    species:
        Element symbol per atom, grouped by element as in POSCAR.
    frac_positions:
        Fractional coordinates, shape ``(n_atoms, 3)``.
    comment:
        POSCAR first line.
    """

    lattice: np.ndarray
    species: list[str]
    frac_positions: np.ndarray
    comment: str = "structure"

    def __post_init__(self) -> None:
        self.lattice = np.asarray(self.lattice, dtype=float)
        self.frac_positions = np.asarray(self.frac_positions, dtype=float)
        if self.lattice.shape != (3, 3):
            raise ValueError(f"lattice must be 3x3, got {self.lattice.shape}")
        if self.frac_positions.shape != (len(self.species), 3):
            raise ValueError(
                f"positions shape {self.frac_positions.shape} does not match "
                f"{len(self.species)} species"
            )
        if abs(self.volume) < 1e-9:
            raise ValueError("lattice is singular (zero volume)")

    @property
    def n_atoms(self) -> int:
        """Number of atoms (the paper's 'ions')."""
        return len(self.species)

    @property
    def volume(self) -> float:
        """Cell volume in cubic Angstrom."""
        return float(abs(np.linalg.det(self.lattice)))

    @property
    def lattice_lengths(self) -> np.ndarray:
        """Lengths of the three lattice vectors, in Angstrom."""
        return np.linalg.norm(self.lattice, axis=1)

    def n_electrons(self) -> int:
        """Total valence electrons with the standard PAW potentials.

        Raises
        ------
        KeyError
            If an element has no entry in :data:`VALENCE_ELECTRONS`.
        """
        total = 0
        for symbol in self.species:
            try:
                total += VALENCE_ELECTRONS[symbol]
            except KeyError:
                raise KeyError(
                    f"no valence-electron count for element {symbol!r}; "
                    "extend repro.vasp.poscar.VALENCE_ELECTRONS"
                ) from None
        return total

    def species_counts(self) -> dict[str, int]:
        """Element -> atom count, in first-appearance order."""
        counts: dict[str, int] = {}
        for symbol in self.species:
            counts[symbol] = counts.get(symbol, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # POSCAR format
    # ------------------------------------------------------------------
    @classmethod
    def from_poscar(cls, text: str) -> "Structure":
        """Parse POSCAR text (VASP 5+ format with a species line)."""
        lines = text.splitlines()
        if len(lines) < 8:
            raise ValueError("POSCAR too short")
        comment = lines[0].strip()
        scale = float(lines[1].split()[0])
        lattice = np.array([[float(x) for x in lines[2 + i].split()[:3]] for i in range(3)])
        if scale < 0:
            # Negative scale means "scale to this volume" in VASP.
            current = abs(np.linalg.det(lattice))
            lattice = lattice * (abs(scale) / current) ** (1.0 / 3.0)
        else:
            lattice = lattice * scale
        symbols = lines[5].split()
        counts = [int(x) for x in lines[6].split()]
        if len(symbols) != len(counts):
            raise ValueError("species line and count line disagree")
        mode_line = lines[7].strip().lower()
        if mode_line.startswith("s"):  # selective dynamics
            mode_line = lines[8].strip().lower()
            coord_start = 9
        else:
            coord_start = 8
        cartesian = mode_line.startswith(("c", "k"))
        n_atoms = sum(counts)
        coords = np.array(
            [[float(x) for x in lines[coord_start + i].split()[:3]] for i in range(n_atoms)]
        )
        if cartesian:
            coords = coords @ np.linalg.inv(lattice)
        species: list[str] = []
        for symbol, count in zip(symbols, counts):
            species.extend([symbol] * count)
        return cls(lattice=lattice, species=species, frac_positions=coords, comment=comment)

    def to_poscar(self) -> str:
        """Serialize to POSCAR text (direct coordinates)."""
        counts = self.species_counts()
        lines = [self.comment, "1.0"]
        for row in self.lattice:
            lines.append("  " + "  ".join(f"{x:18.12f}" for x in row))
        lines.append("  " + "  ".join(counts.keys()))
        lines.append("  " + "  ".join(str(c) for c in counts.values()))
        lines.append("Direct")
        # POSCAR groups coordinates by element, in species-line order.
        for symbol in counts:
            for spec, pos in zip(self.species, self.frac_positions):
                if spec == symbol:
                    lines.append("  " + "  ".join(f"{x:18.12f}" for x in pos))
        return "\n".join(lines) + "\n"


def silicon_supercell(
    n1: int,
    n2: int | None = None,
    n3: int | None = None,
    vacancies: int = 0,
) -> Structure:
    """Diamond-cubic silicon supercell ``n1 x n2 x n3`` (8 atoms per cell).

    ``n2``/``n3`` default to ``n1`` (cubic supercell).  ``vacancies``
    removes that many atoms from the end of the list — Si256_hse in the
    paper is a 256-site supercell with one vacancy, i.e. 255 ions.
    """
    n2 = n1 if n2 is None else n2
    n3 = n1 if n3 is None else n3
    for n in (n1, n2, n3):
        if n < 1:
            raise ValueError(f"supercell multipliers must be >= 1, got {(n1, n2, n3)}")
    lattice = np.diag([n1 * SILICON_A0, n2 * SILICON_A0, n3 * SILICON_A0])
    cells = np.array(
        [[i, j, k] for i in range(n1) for j in range(n2) for k in range(n3)], dtype=float
    )
    divisor = np.array([n1, n2, n3], dtype=float)
    positions = ((cells[:, None, :] + _DIAMOND_BASIS[None, :, :]) / divisor).reshape(-1, 3)
    n_sites = positions.shape[0]
    if not 0 <= vacancies < n_sites:
        raise ValueError(f"vacancies must be in [0, {n_sites}), got {vacancies}")
    n_atoms = n_sites - vacancies
    positions = positions[:n_atoms]
    return Structure(
        lattice=lattice,
        species=["Si"] * n_atoms,
        frac_positions=positions,
        comment=f"Si{n_atoms} ({n1}x{n2}x{n3} diamond supercell"
        + (f", {vacancies} vacancies)" if vacancies else ")"),
    )
