"""Directory-level VASP input handling: INCAR + POSCAR + KPOINTS.

Real VASP jobs are directories containing the three input files; this is
the interface a batch system (and this library's users) actually sees.
:func:`write_workload` materializes a workload as such a directory and
:func:`load_workload` builds a workload back from one — round-tripping
through the same parsers a scheduler-side classifier would use.
"""

from __future__ import annotations

from pathlib import Path

from repro.vasp.incar import Incar
from repro.vasp.kpoints import KpointMesh
from repro.vasp.poscar import Structure
from repro.vasp.workload import VaspWorkload

INCAR_NAME = "INCAR"
POSCAR_NAME = "POSCAR"
KPOINTS_NAME = "KPOINTS"


def write_workload(workload: VaspWorkload, directory: str | Path) -> Path:
    """Write a workload's input files into a job directory.

    The directory is created if needed; existing input files are
    overwritten (as VASP users do when staging a run).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    (directory / INCAR_NAME).write_text(workload.incar.to_string())
    (directory / POSCAR_NAME).write_text(workload.structure.to_poscar())
    (directory / KPOINTS_NAME).write_text(
        workload.kpoints.to_string(comment=workload.name)
    )
    return directory


def load_workload(
    directory: str | Path,
    name: str | None = None,
    nplwv_override: int | None = None,
) -> VaspWorkload:
    """Build a workload from a VASP job directory.

    ``name`` defaults to the directory name.  ``nplwv_override`` pins the
    plane-wave count (for published benchmarks whose exact grid is known);
    otherwise NPLWV follows the ENCUT/cell estimator, as VASP itself
    derives it.

    Raises
    ------
    FileNotFoundError
        If INCAR or POSCAR is missing.  A missing KPOINTS defaults to the
        Gamma point, matching VASP 6's behaviour.
    """
    directory = Path(directory)
    incar_path = directory / INCAR_NAME
    poscar_path = directory / POSCAR_NAME
    if not incar_path.is_file():
        raise FileNotFoundError(f"no INCAR in {directory}")
    if not poscar_path.is_file():
        raise FileNotFoundError(f"no POSCAR in {directory}")
    incar = Incar.from_string(incar_path.read_text())
    structure = Structure.from_poscar(poscar_path.read_text())
    kpoints_path = directory / KPOINTS_NAME
    kpoints = (
        KpointMesh.from_string(kpoints_path.read_text())
        if kpoints_path.is_file()
        else KpointMesh(1, 1, 1)
    )
    return VaspWorkload(
        name=name if name is not None else directory.name,
        incar=incar,
        structure=structure,
        kpoints=kpoints,
        nplwv_override=nplwv_override,
    )
