"""Plane-wave basis and FFT-grid sizing rules.

VASP discretizes the orbitals on a plane-wave basis truncated at a kinetic
energy cutoff (ENCUT).  Two derived quantities drive cost and power:

* the FFT grid dimensions ``(n1, n2, n3)`` — VASP picks "nice" FFT sizes
  (products of 2, 3, 5, 7) proportional to ``G_cut * |a_i|``;
* ``NPLWV`` — the number of FFT grid points, ``n1 * n2 * n3`` (this is the
  quantity Table I reports, e.g. 80x80x80 -> 512,000 for Si256_hse).

The proportionality constant is calibrated so a 4x4x4 silicon supercell
(a = 21.72 Angstrom) at the benchmark's cutoff lands on the published
80^3 grid.
"""

from __future__ import annotations

import math

import numpy as np

#: hbar^2 / 2m_e in eV * Angstrom^2: E = HBAR2_2M * G^2.
HBAR2_2M_EV_A2: float = 3.81

#: Grid points per (G_cut * lattice-length) unit; calibrated to Si256_hse.
GRID_FACTOR: float = 0.4592

#: Radix set of VASP's FFT library.
_FFT_RADICES = (2, 3, 5, 7)


def gcut_inv_angstrom(encut_ev: float) -> float:
    """Cutoff wavevector in 1/Angstrom for a cutoff energy in eV."""
    if encut_ev <= 0:
        raise ValueError(f"encut_ev must be positive, got {encut_ev}")
    return math.sqrt(encut_ev / HBAR2_2M_EV_A2)


def _is_fft_size(n: int) -> bool:
    for radix in _FFT_RADICES:
        while n % radix == 0:
            n //= radix
    return n == 1


def next_fft_size(minimum: int) -> int:
    """Smallest even 2/3/5/7-smooth integer >= ``minimum``."""
    if minimum < 1:
        raise ValueError(f"minimum must be >= 1, got {minimum}")
    n = max(2, minimum + (minimum % 2))
    while not _is_fft_size(n):
        n += 2
    return n


def fft_grid(encut_ev: float, lattice_lengths) -> tuple[int, int, int]:
    """FFT grid dimensions for a cutoff and the three lattice lengths."""
    gcut = gcut_inv_angstrom(encut_ev)
    lengths = np.asarray(lattice_lengths, dtype=float)
    if lengths.shape != (3,):
        raise ValueError(f"expected three lattice lengths, got shape {lengths.shape}")
    if np.any(lengths <= 0):
        raise ValueError("lattice lengths must be positive")
    dims = tuple(next_fft_size(math.ceil(GRID_FACTOR * gcut * length)) for length in lengths)
    return dims  # type: ignore[return-value]


def nplwv(encut_ev: float, lattice_lengths) -> int:
    """NPLWV: total FFT grid points (the quantity in Table I)."""
    n1, n2, n3 = fft_grid(encut_ev, lattice_lengths)
    return n1 * n2 * n3


def n_plane_waves_sphere(encut_ev: float, volume_a3: float) -> int:
    """Plane waves inside the cutoff sphere (the true basis size).

    ``N = (4 pi / 3) G_cut^3 * V / (2 pi)^3`` — roughly NPLWV / (pi^2 / ...)
    smaller than the grid count; provided for completeness and used in
    communication-volume estimates.
    """
    if volume_a3 <= 0:
        raise ValueError(f"volume must be positive, got {volume_a3}")
    gcut = gcut_inv_angstrom(encut_ev)
    return int((4.0 * math.pi / 3.0) * gcut**3 * volume_a3 / (2.0 * math.pi) ** 3)


def default_nbands(n_electrons: float, n_ions: int, multiple: int = 8) -> int:
    """VASP's default NBANDS: NELECT/2 + NIONS/2, rounded up.

    Rounded up to a multiple of ``multiple`` (VASP pads to the rank count;
    8 reproduces Table I's 640 for Si256_hse: 1020/2 + 255/2 = 637.5 -> 640).
    """
    if n_electrons <= 0 or n_ions <= 0:
        raise ValueError("electron and ion counts must be positive")
    if multiple < 1:
        raise ValueError(f"multiple must be >= 1, got {multiple}")
    raw = n_electrons / 2.0 + n_ions / 2.0
    return int(math.ceil(raw / multiple) * multiple)
