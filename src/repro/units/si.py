"""Scalar unit conversions used throughout the library.

The library's internal units are watts, joules and seconds.  The paper
reports energy-to-solution in megajoules (Figs 7 and 8) and facility budgets
in megawatts (Perlmutter TDP: 6.9 MW), hence the converters below.
"""

from __future__ import annotations

J_PER_MJ: float = 1.0e6
W_PER_KW: float = 1.0e3
W_PER_MW: float = 1.0e6
SECONDS_PER_HOUR: float = 3600.0


def joules_to_megajoules(joules: float) -> float:
    """Convert joules to megajoules."""
    return joules / J_PER_MJ


def megajoules_to_joules(megajoules: float) -> float:
    """Convert megajoules to joules."""
    return megajoules * J_PER_MJ


def watts_to_kilowatts(watts: float) -> float:
    """Convert watts to kilowatts."""
    return watts / W_PER_KW


def kilowatts_to_watts(kilowatts: float) -> float:
    """Convert kilowatts to watts."""
    return kilowatts * W_PER_KW


def watts_to_megawatts(watts: float) -> float:
    """Convert watts to megawatts."""
    return watts / W_PER_MW


def megawatts_to_watts(megawatts: float) -> float:
    """Convert megawatts to watts."""
    return megawatts * W_PER_MW


def watt_hours_to_joules(watt_hours: float) -> float:
    """Convert watt-hours to joules (1 Wh = 3600 J)."""
    return watt_hours * SECONDS_PER_HOUR
