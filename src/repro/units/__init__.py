"""Physical units, unit helpers and Perlmutter/A100 calibration constants.

Everything power-related in the library is expressed in SI base-ish units:
watts (W), joules (J), seconds (s).  Helper converters are provided for the
units the paper reports (megajoules for energy-to-solution, megawatts for
system budgets).
"""

from repro.units.si import (
    J_PER_MJ,
    W_PER_KW,
    W_PER_MW,
    joules_to_megajoules,
    kilowatts_to_watts,
    megajoules_to_joules,
    megawatts_to_watts,
    watt_hours_to_joules,
    watts_to_kilowatts,
    watts_to_megawatts,
)
from repro.units.constants import (
    A100_40GB,
    CPU_MILAN,
    DDR4_256GB,
    GPUEnvelope,
    CPUEnvelope,
    MemoryEnvelope,
    NodeEnvelope,
    PERLMUTTER_GPU_NODE,
    PERLMUTTER_SYSTEM_TDP_W,
    SLINGSHOT_NIC,
    NICEnvelope,
)

__all__ = [
    "A100_40GB",
    "CPU_MILAN",
    "CPUEnvelope",
    "DDR4_256GB",
    "GPUEnvelope",
    "J_PER_MJ",
    "MemoryEnvelope",
    "NICEnvelope",
    "NodeEnvelope",
    "PERLMUTTER_GPU_NODE",
    "PERLMUTTER_SYSTEM_TDP_W",
    "SLINGSHOT_NIC",
    "W_PER_KW",
    "W_PER_MW",
    "joules_to_megajoules",
    "kilowatts_to_watts",
    "megajoules_to_joules",
    "megawatts_to_watts",
    "watt_hours_to_joules",
    "watts_to_kilowatts",
    "watts_to_megawatts",
]
