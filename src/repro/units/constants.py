"""Hardware power envelopes for Perlmutter's GPU partition.

Values follow Section II-A of the paper:

* a 40 GB GPU node has a TDP of 2,350 W: 280 W CPU, 4 x 400 W GPUs and
  470 W of peripherals (dominated by DDR memory and NICs);
* the A100 40 GB power-cap range spans 100 W to 400 W (Section V-A);
* node idle power was observed between 410 W and 510 W (Section III-B);
* the whole system (including CPU-only nodes, service nodes, routers and
  cooling) has a TDP of 6.9 MW.

Component-level splits that the paper does not spell out (GPU idle power,
DDR vs NIC share of the 470 W peripheral budget, static vs dynamic GPU
power) are calibrated so that node-level aggregates land inside the
published ranges; they are documented field by field below.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GPUEnvelope:
    """Static power envelope of a GPU model.

    Attributes
    ----------
    name:
        Marketing name, e.g. ``"NVIDIA A100-SXM4-40GB"``.
    tdp_w:
        Thermal design power; also the default power limit.
    cap_min_w / cap_max_w:
        The range accepted by the power-limit interface
        (``nvidia-smi -pl``); 100-400 W on the A100 40 GB.
    idle_w:
        Power drawn with no kernels resident.  ~55 W is typical for
        A100-SXM4 boards at idle with persistence mode on.
    static_w:
        The non-clock-scalable part of active power (leakage, HBM refresh,
        fixed-function units).  Used by the DVFS model: sustained power is
        ``static_w + dynamic * f**3`` for clock fraction ``f``.
    hbm_gib:
        High-bandwidth-memory capacity in GiB.
    peak_fp64_tflops / peak_fp64_tc_tflops:
        Peak FP64 throughput without / with tensor cores (9.7 / 19.5 for
        the A100), used by the roofline time model.
    hbm_bw_gbs:
        Peak HBM bandwidth (1,555 GB/s on the 40 GB part).
    """

    name: str
    tdp_w: float
    cap_min_w: float
    cap_max_w: float
    idle_w: float
    static_w: float
    hbm_gib: float
    peak_fp64_tflops: float
    peak_fp64_tc_tflops: float
    hbm_bw_gbs: float


@dataclass(frozen=True)
class CPUEnvelope:
    """Static power envelope of a host CPU."""

    name: str
    tdp_w: float
    idle_w: float
    cores: int
    peak_fp64_gflops_per_core: float


@dataclass(frozen=True)
class MemoryEnvelope:
    """Static power envelope of host DRAM."""

    name: str
    capacity_gib: float
    idle_w: float
    max_w: float


@dataclass(frozen=True)
class NICEnvelope:
    """Static power envelope of one network interface card."""

    name: str
    idle_w: float
    max_w: float


@dataclass(frozen=True)
class NodeEnvelope:
    """Aggregate envelope of a Perlmutter GPU node."""

    name: str
    tdp_w: float
    gpus_per_node: int
    idle_min_w: float
    idle_max_w: float
    # Fixed "everything else" draw not covered by CPU/GPU/DDR/NIC sensors
    # (fans, VRM losses, BMC).  Chosen so idle node totals land in the
    # observed 410-510 W window.
    baseboard_w: float


#: NVIDIA A100-SXM4-40GB as deployed in Perlmutter GPU nodes.
A100_40GB = GPUEnvelope(
    name="NVIDIA A100-SXM4-40GB",
    tdp_w=400.0,
    cap_min_w=100.0,
    cap_max_w=400.0,
    idle_w=55.0,
    static_w=90.0,
    hbm_gib=40.0,
    peak_fp64_tflops=9.7,
    peak_fp64_tc_tflops=19.5,
    hbm_bw_gbs=1555.0,
)

#: AMD EPYC 7763 "Milan" (one socket per GPU node).
CPU_MILAN = CPUEnvelope(
    name="AMD EPYC 7763",
    tdp_w=280.0,
    idle_w=95.0,
    cores=64,
    peak_fp64_gflops_per_core=39.2,
)

#: 256 GB DDR4 on the GPU nodes.
DDR4_256GB = MemoryEnvelope(
    name="DDR4-3200 256GB",
    capacity_gib=256.0,
    idle_w=25.0,
    max_w=90.0,
)

#: HPE Slingshot "Cassini" NIC (four per GPU node).
SLINGSHOT_NIC = NICEnvelope(
    name="HPE Slingshot Cassini",
    idle_w=15.0,
    max_w=25.0,
)

#: Perlmutter 40 GB GPU node (one Milan + four A100 + four NICs).
PERLMUTTER_GPU_NODE = NodeEnvelope(
    name="Perlmutter GPU node (40GB)",
    tdp_w=2350.0,
    gpus_per_node=4,
    idle_min_w=410.0,
    idle_max_w=510.0,
    baseboard_w=50.0,
)

#: Full-system TDP including CPU partition, service nodes, network and CDUs.
PERLMUTTER_SYSTEM_TDP_W: float = 6.9e6
