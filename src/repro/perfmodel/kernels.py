"""Kernel phase descriptors.

A :class:`GpuKernelProfile` captures everything the power model needs to
know about a kernel mix running on one GPU:

``compute_utilization``
    Achieved fraction of peak FP64(+TC) throughput while kernels execute.
``memory_utilization``
    Achieved fraction of peak HBM bandwidth while kernels execute.
``compute_fraction``
    Fraction of the *kernel time* that scales with the SM clock.  Power
    capping throttles SM clocks, not HBM clocks, so memory-bound time is
    cap-insensitive — this is why FFT-heavy DFT workloads shrug off a
    100 W cap (Fig 12) while GEMM-heavy HSE/RPA slow down.
``duty_cycle``
    Fraction of wall time the GPU is actually executing kernels; the rest
    is launch overhead, host work and MPI waits at idle power.  Small
    workloads (GaAsBi-64) have low duty cycles — the paper's "insufficient
    workload to fully utilize the four GPUs".
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class GpuKernelProfile:
    """Power-relevant profile of a kernel mix on one GPU."""

    name: str
    compute_utilization: float
    memory_utilization: float
    compute_fraction: float
    duty_cycle: float = 1.0

    def __post_init__(self) -> None:
        for field_name in (
            "compute_utilization",
            "memory_utilization",
            "compute_fraction",
            "duty_cycle",
        ):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field_name} must be in [0, 1], got {value}")

    def scaled(self, occupancy_factor: float) -> "GpuKernelProfile":
        """Profile with utilizations scaled by an occupancy factor.

        Used to express that the same kernel mix achieves lower utilization
        when there is not enough simultaneous work to fill the GPU.
        """
        if not 0.0 <= occupancy_factor <= 1.0:
            raise ValueError(f"occupancy_factor must be in [0, 1], got {occupancy_factor}")
        return replace(
            self,
            compute_utilization=self.compute_utilization * occupancy_factor,
            memory_utilization=self.memory_utilization * occupancy_factor,
        )


class KernelCatalogue:
    """Reference kernel profiles at full occupancy.

    The utilization numbers are calibrated so that node-level power for the
    paper's seven benchmarks lands inside the reported ranges (see
    DESIGN.md section 4); the *relative* structure follows the kernels'
    arithmetic character:

    * dense FP64 tensor-core GEMM (exact exchange, RPA response) is
      compute-bound and power-hungry;
    * batched 3-D FFTs are HBM-bandwidth-bound;
    * orthonormalization/subspace updates sit in between;
    * NCCL collectives keep the GPU nearly idle.
    """

    #: Dense FP64 TC GEMM: the exact-exchange / RPA workhorse.
    GEMM_FP64_TC = GpuKernelProfile(
        name="gemm_fp64_tc",
        compute_utilization=0.92,
        memory_utilization=0.45,
        compute_fraction=0.78,
    )

    #: Batched 3-D FFT: bandwidth-bound, low clock sensitivity.
    FFT_BATCHED = GpuKernelProfile(
        name="fft_batched",
        compute_utilization=0.30,
        memory_utilization=0.85,
        compute_fraction=0.15,
    )

    #: Subspace rotation / orthonormalization (cuSOLVER + level-3 BLAS).
    SUBSPACE = GpuKernelProfile(
        name="subspace",
        compute_utilization=0.55,
        memory_utilization=0.60,
        compute_fraction=0.45,
    )

    #: Nonlocal projector application (small GEMMs + gathers).
    PROJECTOR = GpuKernelProfile(
        name="projector",
        compute_utilization=0.40,
        memory_utilization=0.70,
        compute_fraction=0.25,
    )

    #: NCCL collective: GPU nearly idle, NIC busy.
    NCCL_COLLECTIVE = GpuKernelProfile(
        name="nccl_collective",
        compute_utilization=0.02,
        memory_utilization=0.12,
        compute_fraction=0.05,
    )

    #: Host-resident section (e.g. the un-ported exact diagonalization in
    #: Si128_acfdtr): GPU fully idle.
    HOST_SECTION = GpuKernelProfile(
        name="host_section",
        compute_utilization=0.0,
        memory_utilization=0.0,
        compute_fraction=0.0,
        duty_cycle=0.0,
    )

    #: DGEMM acceptance test (prologue segment in the paper's job scripts).
    DGEMM_TEST = GpuKernelProfile(
        name="dgemm_test",
        compute_utilization=0.97,
        memory_utilization=0.40,
        compute_fraction=0.85,
    )

    #: STREAM acceptance test: pure bandwidth.
    STREAM_TEST = GpuKernelProfile(
        name="stream_test",
        compute_utilization=0.05,
        memory_utilization=0.95,
        compute_fraction=0.05,
    )

    @classmethod
    def by_name(cls, name: str) -> GpuKernelProfile:
        """Look up a reference profile by its kernel name."""
        for value in vars(cls).values():
            if isinstance(value, GpuKernelProfile) and value.name == name:
                return value
        raise KeyError(f"unknown kernel profile {name!r}")

    @classmethod
    def names(cls) -> list[str]:
        """Names of all reference profiles."""
        return [v.name for v in vars(cls).values() if isinstance(v, GpuKernelProfile)]
