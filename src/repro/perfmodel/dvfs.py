"""Cap -> clock -> slowdown relationships, and the occupancy model.

These are standalone (array-friendly) versions of the math embedded in
:class:`repro.hardware.gpu.A100Gpu`, used by analysis code and by the
ablation benches that compare DVFS laws.  The canonical law is cubic:

    P(f) = P_static + (P_demand - P_static) * f**3

Performance of the compute-bound part of a phase scales ~1/f; the
memory-bound part is insensitive to the SM clock.

The *occupancy* model expresses how utilization saturates with the amount
of simultaneously-schedulable work per GPU (plane waves times the batched
band count) — a Hill curve

    s(w) = w**h / (w**h + w_half**h)

that drives Fig 6's rise-then-plateau and Fig 7's NPLWV dependence.
"""

from __future__ import annotations

import numpy as np

from repro.hardware.platform import default_gpu_spec

#: Default Hill half-saturation work, in plane-wave-coefficient units
#: (NPLWV x batched bands).  Calibrated so a 2048-atom silicon supercell
#: (NPLWV ~ 1.6e6, RMM batch 4) sits near the Fig 6 plateau.
OCCUPANCY_W_HALF: float = 2.0e6
#: Default Hill exponent.
OCCUPANCY_HILL: float = 1.2
#: Lowest clock fraction reachable by throttling on the default platform
#: (A100: ~210/1410 MHz).  Platform-aware callers pass their GPU spec's
#: ``min_clock_fraction`` to :func:`capped_clock_fraction` instead.
MIN_CLOCK_FRACTION: float = default_gpu_spec().min_clock_fraction


def occupancy(
    work: float | np.ndarray,
    w_half: float = OCCUPANCY_W_HALF,
    hill: float = OCCUPANCY_HILL,
) -> float | np.ndarray:
    """Saturating occupancy factor in (0, 1] for a per-GPU work size."""
    w = np.asarray(work, dtype=float)
    if np.any(w < 0):
        raise ValueError("work must be non-negative")
    wh = np.power(np.maximum(w, 0.0), hill)
    out = wh / (wh + w_half**hill)
    return float(out) if np.isscalar(work) or out.ndim == 0 else out


def capped_clock_fraction(
    demand_w: float | np.ndarray,
    cap_w: float | np.ndarray,
    static_w: float,
    exponent: float = 3.0,
    min_clock_fraction: float = MIN_CLOCK_FRACTION,
) -> float | np.ndarray:
    """Largest clock fraction whose sustained power fits under the cap.

    Vectorized over ``demand_w`` and ``cap_w``.  ``exponent`` selects the
    DVFS law (3 = cubic, the calibrated default; 1 = linear, used by the
    ablation bench to show why a linear law cannot reproduce Fig 12).
    ``min_clock_fraction`` is the platform's throttle floor.
    """
    demand = np.asarray(demand_w, dtype=float)
    cap = np.asarray(cap_w, dtype=float)
    headroom = np.maximum(cap - static_w, 0.0)
    span = np.maximum(demand - static_w, 1e-12)
    frac = np.power(np.clip(headroom / span, 0.0, 1.0), 1.0 / exponent)
    frac = np.where(demand <= cap, 1.0, frac)
    frac = np.where(demand <= static_w, 1.0, frac)
    out = np.clip(frac, min_clock_fraction, 1.0)
    return float(out) if out.ndim == 0 else out


def sustained_power_w(
    demand_w: float | np.ndarray,
    clock_fraction: float | np.ndarray,
    static_w: float,
    exponent: float = 3.0,
) -> float | np.ndarray:
    """Board power at a given clock fraction under the chosen DVFS law."""
    demand = np.asarray(demand_w, dtype=float)
    frac = np.asarray(clock_fraction, dtype=float)
    out = static_w + np.maximum(demand - static_w, 0.0) * np.power(frac, exponent)
    out = np.minimum(out, demand)
    return float(out) if out.ndim == 0 else out


def capped_phase_slowdown(
    clock_fraction: float | np.ndarray,
    compute_fraction: float | np.ndarray,
    duty_cycle: float | np.ndarray = 1.0,
) -> float | np.ndarray:
    """Wall-time multiplier of a phase at a reduced SM clock.

    Only the compute-bound share of kernel time stretches by ``1/f``; the
    memory-bound share and the idle gaps (``1 - duty_cycle``) do not.
    """
    f = np.asarray(clock_fraction, dtype=float)
    cf = np.asarray(compute_fraction, dtype=float)
    duty = np.asarray(duty_cycle, dtype=float)
    if np.any((f <= 0) | (f > 1)):
        raise ValueError("clock_fraction must be in (0, 1]")
    if np.any((cf < 0) | (cf > 1)) or np.any((duty < 0) | (duty > 1)):
        raise ValueError("compute_fraction and duty_cycle must be in [0, 1]")
    active_slowdown = cf / f + (1.0 - cf)
    out = duty * active_slowdown + (1.0 - duty)
    return float(out) if out.ndim == 0 else out
