"""Utilization -> demand-power mapping for the A100.

``demand power`` is the board power a kernel mix would draw at full clocks
(no cap).  We use a two-component linear model

    P_d = P_idle + P_dyn * min(1, w_c * u_c + w_m * u_m)

with dynamic range ``P_dyn = TDP - P_idle`` and weights ``w_c = 0.78``
(compute) and ``w_m = 0.45`` (memory); the sum is allowed to exceed one
and is clipped, since compute and memory activity overlap.  The weights
put a tensor-core DGEMM (u_c ~ 0.97, u_m ~ 0.4) at ~380 W and a pure
STREAM kernel at ~215 W, matching published A100 microbenchmark power.
"""

from __future__ import annotations

import numpy as np

from repro.units.constants import GPUEnvelope
from repro.perfmodel.kernels import GpuKernelProfile

#: Relative weight of compute activity in dynamic power.
COMPUTE_WEIGHT: float = 0.78
#: Relative weight of HBM activity in dynamic power.
MEMORY_WEIGHT: float = 0.45


def demand_power_w(profile: GpuKernelProfile, envelope: GPUEnvelope) -> float:
    """Full-clock board power demanded by a kernel profile, in watts.

    The result is the *active* power (while kernels execute); duty-cycle
    averaging is applied separately by :func:`duty_cycle_power_w`.
    """
    dyn = envelope.tdp_w - envelope.idle_w
    activity = min(
        1.0,
        COMPUTE_WEIGHT * profile.compute_utilization
        + MEMORY_WEIGHT * profile.memory_utilization,
    )
    return envelope.idle_w + dyn * activity


def demand_power_batch(
    compute_utilization: np.ndarray,
    memory_utilization: np.ndarray,
    tdp_w: float | np.ndarray,
    idle_w: float | np.ndarray,
) -> np.ndarray:
    """Array version of :func:`demand_power_w`.

    Broadcasts utilization arrays (e.g. one entry per phase) against
    envelope terms (scalars, or per-GPU arrays for heterogeneous pools)
    and returns full-clock board power per element.  The arithmetic is the
    exact expression of the scalar path, element-wise.
    """
    uc = np.asarray(compute_utilization, dtype=float)
    um = np.asarray(memory_utilization, dtype=float)
    dyn = np.asarray(tdp_w, dtype=float) - np.asarray(idle_w, dtype=float)
    activity = np.minimum(1.0, COMPUTE_WEIGHT * uc + MEMORY_WEIGHT * um)
    return np.asarray(idle_w, dtype=float) + dyn * activity


def duty_cycle_power_w(active_power_w: float, duty_cycle: float, idle_w: float) -> float:
    """Wall-clock-average power of a phase with launch/host gaps.

    A phase that keeps the GPU busy only a fraction ``duty_cycle`` of the
    time averages between active power and idle power.  This is what the
    2-second telemetry sees for small workloads whose kernels are shorter
    than the gaps between them.
    """
    if not 0.0 <= duty_cycle <= 1.0:
        raise ValueError(f"duty_cycle must be in [0, 1], got {duty_cycle}")
    return duty_cycle * active_power_w + (1.0 - duty_cycle) * idle_w


def duty_cycle_power_batch(
    active_power_w: np.ndarray,
    duty_cycle: np.ndarray,
    idle_w: float | np.ndarray,
) -> np.ndarray:
    """Array version of :func:`duty_cycle_power_w` (no range re-checks)."""
    duty = np.asarray(duty_cycle, dtype=float)
    return duty * np.asarray(active_power_w, dtype=float) + (1.0 - duty) * np.asarray(
        idle_w, dtype=float
    )
