"""Kernel-level performance and power models for the A100.

The VASP workload model (``repro.vasp``) describes execution as a sequence
of *macro-phases* (exact exchange, FFT/diagonalization, communication,
host-side sections...).  This package supplies the physics of one phase:

* :mod:`repro.perfmodel.kernels` — the phase descriptor
  (:class:`GpuKernelProfile`) and a small catalogue of reference kernels;
* :mod:`repro.perfmodel.roofline` — flop/byte -> time estimates;
* :mod:`repro.perfmodel.power` — utilization -> demand power;
* :mod:`repro.perfmodel.dvfs` — cap -> clock -> slowdown relationships and
  an occupancy (work-saturation) model.
"""

from repro.perfmodel.kernels import GpuKernelProfile, KernelCatalogue
from repro.perfmodel.power import demand_power_w, duty_cycle_power_w
from repro.perfmodel.roofline import RooflineModel
from repro.perfmodel.dvfs import (
    capped_clock_fraction,
    capped_phase_slowdown,
    occupancy,
    sustained_power_w,
)

__all__ = [
    "GpuKernelProfile",
    "KernelCatalogue",
    "RooflineModel",
    "capped_clock_fraction",
    "capped_phase_slowdown",
    "demand_power_w",
    "duty_cycle_power_w",
    "occupancy",
    "sustained_power_w",
]
