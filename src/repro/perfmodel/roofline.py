"""Roofline time model: flop and byte counts -> kernel time on an A100.

The VASP workload model derives phase durations from algorithmic flop and
byte counts (functions of NPLWV, NBANDS, etc.).  The roofline converts a
(flops, bytes) pair into time at a given achieved utilization:

    t = max(flops / (peak_flops * u_c), bytes / (bw * u_m))

so lowering occupancy lengthens the phase as well as lowering its power —
both effects the paper observes for small workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hardware.platform import Platform, get_platform
from repro.units.constants import GPUEnvelope
from repro.perfmodel.kernels import GpuKernelProfile


def _default_envelope() -> GPUEnvelope:
    return get_platform().gpu


@dataclass(frozen=True)
class RooflineModel:
    """Time estimator for one GPU model.

    The default ceilings come from the registry's default platform (the
    paper's A100 40 GB); pass any other platform's GPU spec — or use
    :meth:`for_platform` — to move the roofs.
    """

    envelope: GPUEnvelope = field(default_factory=_default_envelope)
    use_tensor_cores: bool = True

    @classmethod
    def for_platform(
        cls,
        platform: "str | Platform | None" = None,
        use_tensor_cores: bool = True,
    ) -> "RooflineModel":
        """Roofline with ceilings from a registered platform's GPU."""
        return cls(
            envelope=get_platform(platform).gpu, use_tensor_cores=use_tensor_cores
        )

    @property
    def peak_flops(self) -> float:
        """Peak FP64 throughput in flop/s (tensor cores if enabled)."""
        tflops = (
            self.envelope.peak_fp64_tc_tflops
            if self.use_tensor_cores
            else self.envelope.peak_fp64_tflops
        )
        return tflops * 1e12

    @property
    def peak_bandwidth(self) -> float:
        """Peak HBM bandwidth in byte/s."""
        return self.envelope.hbm_bw_gbs * 1e9

    def kernel_time_s(
        self,
        flops: float | np.ndarray,
        bytes_moved: float | np.ndarray,
        profile: GpuKernelProfile,
    ) -> float | np.ndarray:
        """Execution time of a kernel at the profile's achieved utilization.

        Utilizations of zero (host sections) make the corresponding roof
        unreachable; a kernel with zero utilization on both roofs has no
        defined GPU time and raises.
        """
        fl = np.asarray(flops, dtype=float)
        by = np.asarray(bytes_moved, dtype=float)
        if np.any(fl < 0) or np.any(by < 0):
            raise ValueError("flops and bytes_moved must be non-negative")
        uc = profile.compute_utilization
        um = profile.memory_utilization
        if uc <= 0.0 and um <= 0.0:
            raise ValueError(f"profile {profile.name!r} has no GPU activity; no roofline time")
        t_compute = fl / (self.peak_flops * uc) if uc > 0 else np.zeros_like(fl)
        t_memory = by / (self.peak_bandwidth * um) if um > 0 else np.zeros_like(by)
        out = np.maximum(t_compute, t_memory)
        return float(out) if out.ndim == 0 else out

    def balance_point_intensity(self, profile: GpuKernelProfile) -> float:
        """Arithmetic intensity (flop/byte) where the two roofs intersect."""
        uc = profile.compute_utilization
        um = profile.memory_utilization
        if uc <= 0.0 or um <= 0.0:
            raise ValueError("balance point needs non-zero utilization on both roofs")
        return (self.peak_flops * uc) / (self.peak_bandwidth * um)
