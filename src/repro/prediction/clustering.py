"""Top-down workload classification from power profiles alone.

Section VI-B: "While it is doable to deep-dive into a small number of top
applications, this level of detailed study is not practical for all
applications... These other workloads will necessitate a more statistical
approach... we also plan to explore top-down methods."

This module is that approach's first rung: extract application-agnostic
features from a measured power series (no INCAR, no knowledge of what
ran), and cluster jobs into power classes with a small from-scratch
k-means.  On the benchmark suite it rediscovers the paper's taxonomy —
the higher-order (HSE/RPA) jobs separate cleanly from the basic-DFT
group — using nothing but telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.modes import fwhm, high_power_mode

#: Names of the profile-feature entries, in order.
PROFILE_FEATURE_NAMES: tuple[str, ...] = (
    "high_power_mode_w",
    "median_w",
    "fwhm_w",
    "peak_to_mode",
    "mode_dwell_fraction",
)


def profile_features(values: np.ndarray) -> np.ndarray:
    """Application-agnostic features of one job's power series."""
    values = np.asarray(values, dtype=float).ravel()
    if values.size < 8:
        raise ValueError(f"need at least 8 samples, got {values.size}")
    mode = high_power_mode(values)
    width = fwhm(values, mode=mode)
    dwell = float(np.mean(np.abs(values - mode.power_w) <= max(width, 1e-9)))
    return np.array(
        [
            mode.power_w,
            float(np.median(values)),
            width,
            float(values.max()) / mode.power_w,
            dwell,
        ]
    )


@dataclass
class ClusterModel:
    """A fitted k-means model over standardized profile features."""

    centroids: np.ndarray
    feature_mean: np.ndarray
    feature_scale: np.ndarray
    labels: np.ndarray
    inertia: float

    @property
    def k(self) -> int:
        """Number of clusters."""
        return self.centroids.shape[0]

    def assign(self, features: np.ndarray) -> int:
        """Cluster index for one feature vector."""
        z = (np.asarray(features, dtype=float) - self.feature_mean) / self.feature_scale
        distances = np.linalg.norm(self.centroids - z, axis=1)
        return int(np.argmin(distances))

    def centroid_power_order(self) -> list[int]:
        """Cluster indices ordered by ascending high-power-mode centroid."""
        hpm_axis = 0  # first feature is the high power mode
        raw = self.centroids[:, hpm_axis] * self.feature_scale[hpm_axis] + self.feature_mean[hpm_axis]
        return list(np.argsort(raw))


def kmeans_profiles(
    feature_matrix: np.ndarray,
    k: int = 2,
    n_restarts: int = 8,
    max_iterations: int = 100,
    seed: int = 0,
) -> ClusterModel:
    """K-means over standardized profile features (Lloyd's algorithm).

    Deterministic for a given seed; the best of ``n_restarts`` random
    initializations (k-means++ seeding) is returned.
    """
    x = np.asarray(feature_matrix, dtype=float)
    if x.ndim != 2:
        raise ValueError(f"feature matrix must be 2-D, got shape {x.shape}")
    n, _ = x.shape
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    mean = x.mean(axis=0)
    scale = x.std(axis=0)
    scale[scale == 0] = 1.0
    z = (x - mean) / scale

    rng = np.random.default_rng(seed)
    best: ClusterModel | None = None
    for _restart in range(max(n_restarts, 1)):
        centroids = _kmeanspp_init(z, k, rng)
        labels = np.full(n, -1, dtype=int)
        for _iteration in range(max_iterations):
            distances = np.linalg.norm(z[:, None, :] - centroids[None, :, :], axis=2)
            new_labels = np.argmin(distances, axis=1)
            if np.array_equal(new_labels, labels):
                break
            labels = new_labels
            for c in range(k):
                members = z[labels == c]
                if len(members):
                    centroids[c] = members.mean(axis=0)
        inertia = float(np.sum((z - centroids[labels]) ** 2))
        if best is None or inertia < best.inertia:
            best = ClusterModel(
                centroids=centroids.copy(),
                feature_mean=mean,
                feature_scale=scale,
                labels=labels.copy(),
                inertia=inertia,
            )
    assert best is not None
    return best


def _kmeanspp_init(z: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread the initial centroids."""
    n = len(z)
    centroids = [z[rng.integers(n)]]
    while len(centroids) < k:
        d2 = np.min(
            [np.sum((z - c) ** 2, axis=1) for c in centroids], axis=0
        )
        total = d2.sum()
        if total <= 0:
            centroids.append(z[rng.integers(n)])
            continue
        probs = d2 / total
        centroids.append(z[rng.choice(n, p=probs)])
    return np.stack(centroids)


@dataclass
class ProfileClassifier:
    """Stage 1 of the two-stage surrogate: workload power classes.

    Fitted on **engine-derived profile features** (the same
    telemetry-only :func:`profile_features` the top-down study uses), so
    the classes are power classes, not input-file classes.  At prediction
    time no power series exists yet, so assignment goes through the
    scheduler-visible *input* features instead: each class carries the
    centroid of its members' standardized input features, and a novel job
    is assigned to the nearest one.

    The distance to that centroid is the stage-1 **envelope** signal: a
    job far from every class it trained on is extrapolation, and the
    surrogate's caller should fall back to the engine.

    Classes are renumbered by ascending high-power-mode centroid (class 0
    is the lowest-power class), stable across seeds.
    """

    profile_model: ClusterModel
    input_mean: np.ndarray
    input_scale: np.ndarray
    #: Per-class centroid of standardized input features, class-ordered.
    input_centroids: np.ndarray
    #: Largest member-to-own-centroid input distance seen in training,
    #: per class — the in-envelope radius.
    class_radius: np.ndarray
    #: Training labels (class-ordered), aligned with the fitted matrix.
    labels: np.ndarray

    @property
    def k(self) -> int:
        """Number of classes."""
        return self.input_centroids.shape[0]

    def standardize(self, input_features: np.ndarray) -> np.ndarray:
        """Standardize one input-feature vector with the training scale."""
        z = (np.asarray(input_features, dtype=float) - self.input_mean)
        return z / self.input_scale

    def classify(self, input_features: np.ndarray) -> tuple[int, float]:
        """(class index, distance to its centroid) for one input vector."""
        z = self.standardize(input_features)
        distances = np.linalg.norm(self.input_centroids - z, axis=1)
        cls = int(np.argmin(distances))
        return cls, float(distances[cls])

    def in_envelope(self, cls: int, distance: float, margin: float = 1.5) -> bool:
        """Whether a distance sits inside the class's training envelope.

        ``margin`` widens the observed in-class radius: mild
        interpolation beyond the exact training hull is what the
        surrogate is *for*; multiples of it are extrapolation.
        """
        return distance <= self.class_radius[cls] * margin + 1e-9


def fit_profile_classifier(
    profile_matrix: np.ndarray,
    input_matrix: np.ndarray,
    k: int = 2,
    seed: int = 0,
) -> ProfileClassifier:
    """Fit stage 1: k-means on profiles, input-feature assignment on top.

    ``profile_matrix`` rows are :func:`profile_features` of each training
    run's power series; ``input_matrix`` rows are the matching
    scheduler-visible feature vectors.  Rows must align.
    """
    profiles = np.asarray(profile_matrix, dtype=float)
    inputs = np.asarray(input_matrix, dtype=float)
    if profiles.shape[0] != inputs.shape[0]:
        raise ValueError(
            f"profile rows ({profiles.shape[0]}) and input rows "
            f"({inputs.shape[0]}) must align"
        )
    model = kmeans_profiles(profiles, k=k, seed=seed)
    order = model.centroid_power_order()
    rank = {cluster: position for position, cluster in enumerate(order)}
    labels = np.array([rank[int(label)] for label in model.labels], dtype=int)

    mean = inputs.mean(axis=0)
    scale = inputs.std(axis=0)
    scale[scale == 0] = 1.0
    z = (inputs - mean) / scale
    centroids = np.stack(
        [
            z[labels == cls].mean(axis=0) if np.any(labels == cls) else mean * 0.0
            for cls in range(model.k)
        ]
    )
    radius = np.array(
        [
            float(np.linalg.norm(z[labels == cls] - centroids[cls], axis=1).max())
            if np.any(labels == cls)
            else 0.0
            for cls in range(model.k)
        ]
    )
    return ProfileClassifier(
        profile_model=model,
        input_mean=mean,
        input_scale=scale,
        input_centroids=centroids,
        class_radius=radius,
        labels=labels,
    )


def classify_jobs(
    series_by_job: dict[str, np.ndarray], k: int = 2, seed: int = 0
) -> dict[str, int]:
    """Cluster a set of jobs' power series into ``k`` power classes.

    Returns job name -> class index, with classes renumbered so 0 is the
    lowest-power class (stable across seeds).
    """
    names = sorted(series_by_job)
    matrix = np.stack([profile_features(series_by_job[name]) for name in names])
    model = kmeans_profiles(matrix, k=k, seed=seed)
    order = model.centroid_power_order()
    rank = {cluster: position for position, cluster in enumerate(order)}
    return {name: rank[int(label)] for name, label in zip(names, model.labels)}
