"""Feature extraction for power prediction.

Features use only scheduler-visible information: INCAR tags, structure
size, k-mesh and the requested node count — the paper's point is that the
batch system can classify jobs "without costly computation".  The feature
set encodes the power drivers Section IV identifies: plane waves
(occupancy), bands per GPU (duty), method class (kernel mix) and
concurrency.
"""

from __future__ import annotations

import math

import numpy as np

from repro.vasp.methods import Functional
from repro.vasp.parallel import ParallelConfig
from repro.vasp.workload import VaspWorkload

#: Names of the feature-vector entries, in order.
FEATURE_NAMES: tuple[str, ...] = (
    "bias",
    "log_nplwv",
    "log_bands_per_rank",
    "log_electrons",
    "is_hse",
    "is_rpa",
    "kpoint_churn",
    "log_nodes",
)


def feature_vector(workload: VaspWorkload, n_nodes: int) -> np.ndarray:
    """Scheduler-visible features for one (workload, node count) pair."""
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
    parallel = ParallelConfig(n_nodes=n_nodes, kpar=workload.incar.kpar)
    functional = workload.incar.functional
    bands_per_rank = parallel.bands_per_rank(workload.nbands)
    k_per_group = workload.kpoints.kpoints_per_group(workload.incar.kpar)
    # The basic-DFT family (LDA/GGA/vdW) is the reference class; vdW adds
    # only a minor correction (Section IV-D treats it like DFT), so it
    # shares the class rather than burning a one-hot no held-out split
    # could learn.
    return np.array(
        [
            1.0,
            math.log10(workload.nplwv),
            math.log10(max(bands_per_rank, 1)),
            math.log10(max(workload.nelect, 1.0)),
            1.0 if functional is Functional.HSE else 0.0,
            1.0 if functional is Functional.ACFDT_RPA else 0.0,
            # Bounded duty-churn transform of the sequential k-point count.
            1.0 / (1.0 + 0.05 * (k_per_group - 1)),
            math.log2(n_nodes),
        ]
    )
