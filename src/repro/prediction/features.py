"""Feature extraction for power prediction.

Features use only scheduler-visible information: INCAR tags, structure
size, k-mesh and the requested node count — the paper's point is that the
batch system can classify jobs "without costly computation".  The feature
set encodes the power drivers Section IV identifies: plane waves
(occupancy), bands per GPU (duty), method class (kernel mix) and
concurrency.

The surrogate extension (:func:`surrogate_feature_vector`) appends the
two dimensions the base vector is blind to: the applied GPU power cap
and the hardware platform's spec envelope — so one model can regress
across (workload, node count, cap, platform) grid points instead of
memorizing a single machine at its TDP.

Method-class features (``is_hse``/``is_rpa``) are derived from INCAR
tags, never from the workload *name*; accuracy claims about them must
come from a held-out workload × cap split
(:func:`repro.prediction.evaluate.evaluate_surrogate`), not from
training points.
"""

from __future__ import annotations

import math

import numpy as np

from repro.hardware.platform import Platform, get_platform
from repro.vasp.methods import Functional
from repro.vasp.parallel import layout_for
from repro.vasp.workload import VaspWorkload

#: Names of the feature-vector entries, in order.
FEATURE_NAMES: tuple[str, ...] = (
    "bias",
    "log_nplwv",
    "log_bands_per_rank",
    "log_electrons",
    "is_hse",
    "is_rpa",
    "kpoint_churn",
    "log_nodes",
)

#: Names of the surrogate feature-vector entries: the base workload
#: features plus the cap and platform-spec terms, in order.
SURROGATE_FEATURE_NAMES: tuple[str, ...] = FEATURE_NAMES + (
    "log_nelm",
    "log_kpoints",
    "cap_fraction",
    "cap_depth",
    "cap_depth_sq",
    "cap_depth_hse",
    "log_gpu_tdp",
    "log_hbm_bw",
    "log_fp64_tflops",
    "host_fraction",
)


def _phase_statistics(workload, n_nodes: int) -> dict[str, float]:
    """Duration-weighted utilization statistics of a phase schedule.

    The generic analogue of reading the INCAR: any zoo workload exposes
    ``phases(parallel)``, and the schedule alone (no engine run) carries
    the power drivers — how busy the GPU is, how compute- vs
    bandwidth-bound the kernel time is, and how much wall time exists.
    """
    phases = workload.phases(layout_for(workload, n_nodes))
    total = sum(p.duration_s for p in phases)
    busy = sum(p.duration_s * p.gpu_profile.duty_cycle for p in phases)
    weight = busy if busy > 0 else 1.0
    compute = (
        sum(
            p.duration_s * p.gpu_profile.duty_cycle * p.gpu_profile.compute_utilization
            for p in phases
        )
        / weight
    )
    memory = (
        sum(
            p.duration_s * p.gpu_profile.duty_cycle * p.gpu_profile.memory_utilization
            for p in phases
        )
        / weight
    )
    compute_fraction = (
        sum(
            p.duration_s * p.gpu_profile.duty_cycle * p.gpu_profile.compute_fraction
            for p in phases
        )
        / weight
    )
    return {
        "total_s": total,
        "busy_s": busy,
        "n_phases": float(len(phases)),
        "duty": busy / total if total > 0 else 0.0,
        "compute": compute,
        "memory": memory,
        "compute_fraction": compute_fraction,
    }


def _generic_feature_vector(workload, n_nodes: int) -> np.ndarray:
    """Phase-schedule features for non-VASP zoo workloads.

    Fills the same eight slots as the VASP vector with the closest
    schedule-derived analogue (work volume -> wall/busy time, method
    one-hots -> achieved utilizations, k-point churn -> duty cycle); the
    two-stage surrogate clusters profiles before regressing, so VASP and
    zoo points land in different ridge heads and the per-slot semantics
    never mix inside one linear model.
    """
    stats = _phase_statistics(workload, n_nodes)
    return np.array(
        [
            1.0,
            math.log10(max(stats["total_s"], 1.0)),
            math.log10(max(stats["busy_s"], 1.0)),
            math.log10(max(stats["n_phases"], 1.0)),
            stats["compute"],
            stats["memory"],
            stats["duty"],
            math.log2(n_nodes),
        ]
    )


def feature_vector(workload, n_nodes: int) -> np.ndarray:
    """Scheduler-visible features for one (workload, node count) pair.

    VASP workloads use the paper's INCAR-derived vector below,
    byte-for-byte as before; any other registered workload model gets
    the schedule-derived :func:`_generic_feature_vector` of the same
    dimensionality.
    """
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
    if not isinstance(workload, VaspWorkload):
        return _generic_feature_vector(workload, n_nodes)
    parallel = layout_for(workload, n_nodes)
    functional = workload.incar.functional
    bands_per_rank = parallel.bands_per_rank(workload.nbands)
    k_per_group = workload.kpoints.kpoints_per_group(workload.incar.kpar)
    # The basic-DFT family (LDA/GGA/vdW) is the reference class; vdW adds
    # only a minor correction (Section IV-D treats it like DFT), so it
    # shares the class rather than burning a one-hot that only a held-out
    # workload split (evaluate_surrogate) can honestly score.
    return np.array(
        [
            1.0,
            math.log10(workload.nplwv),
            math.log10(max(bands_per_rank, 1)),
            math.log10(max(workload.nelect, 1.0)),
            1.0 if functional is Functional.HSE else 0.0,
            1.0 if functional is Functional.ACFDT_RPA else 0.0,
            # Bounded duty-churn transform of the sequential k-point count.
            1.0 / (1.0 + 0.05 * (k_per_group - 1)),
            math.log2(n_nodes),
        ]
    )


def surrogate_feature_vector(
    workload,
    n_nodes: int,
    cap_w: float | None = None,
    platform: "str | Platform | None" = None,
) -> np.ndarray:
    """Features for one (workload, node count, cap, platform) grid point.

    Extends :func:`feature_vector` with what the base vector cannot see:

    * ``log_nelm``/``log_kpoints`` — the work-volume terms (SCF step
      budget, irreducible k-points) that drive *runtime*, which the
      power-only base vector never needed;
    * ``cap_fraction`` — applied cap over the GPU TDP (1.0 uncapped);
    * ``cap_depth`` — how far into the platform's cap range the limit
      sits (0 uncapped/at ``cap_max``, 1 at the floor) — the regulation
      and DVFS-slowdown regimes are functions of depth, not watts;
    * ``cap_depth_sq``/``cap_depth_hse`` — curvature and method
      interaction on the cap axis: capped power is pinned at
      ``min(demand, cap)``, a hinge a purely linear cap term cannot
      bend around, and the hinge point sits deeper for the
      power-hungry higher-order methods;
    * platform spec terms (log GPU TDP, log HBM bandwidth, log FP64
      ceiling, host power over node TDP) so one model spans platforms.

    ``cap_w`` is validated against the platform's cap range the same way
    the hardware layer validates ``set_power_limit``.
    """
    spec = get_platform(platform).node
    gpu = spec.gpu
    if cap_w is None:
        cap = gpu.tdp_w
    else:
        if not (gpu.cap_min_w <= cap_w <= gpu.cap_max_w):
            raise ValueError(
                f"cap {cap_w:.0f} W outside {gpu.name} range "
                f"[{gpu.cap_min_w:.0f}, {gpu.cap_max_w:.0f}] W"
            )
        cap = cap_w
    depth = (gpu.cap_max_w - cap) / (gpu.cap_max_w - gpu.cap_min_w)
    base = feature_vector(workload, n_nodes)
    if isinstance(workload, VaspWorkload):
        volume_terms = [
            math.log10(max(workload.incar.nelm, 1)),
            math.log10(max(workload.kpoints.irreducible, 1)),
        ]
        is_hse = base[FEATURE_NAMES.index("is_hse")]
        is_rpa = base[FEATURE_NAMES.index("is_rpa")]
        cap_sensitivity = max(is_hse, is_rpa)
    else:
        # Generic zoo tail: work volume from the schedule, and the
        # cap-depth interaction keyed on how compute-bound (hence
        # clock-sensitive) the kernel time is instead of the method.
        stats = _phase_statistics(workload, n_nodes)
        volume_terms = [
            math.log10(max(stats["n_phases"], 1.0)),
            math.log10(max(stats["total_s"], 1.0)),
        ]
        cap_sensitivity = stats["compute_fraction"]
    return np.concatenate(
        [
            base,
            volume_terms,
            [
                cap / gpu.tdp_w,
                depth,
                depth * depth,
                depth * cap_sensitivity,
                math.log10(gpu.tdp_w),
                math.log10(gpu.hbm_bw_gbs),
                math.log10(gpu.peak_fp64_tflops),
                spec.host_power_w / spec.tdp_w,
            ],
        ]
    )
