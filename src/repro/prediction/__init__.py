"""Power prediction from workload features (the paper's Section VI-C).

"Our in-depth study on VASP power characteristics provides the basis for
developing power prediction models.  We have identified several key
contributors to power variations, including system sizes (number of plane
waves and bands), methods, and concurrency..."

This package implements that next step — plus Section VI-B's top-down
counterpart: a feature extractor that reads only what a scheduler can see
(the input files plus the requested node count), a ridge-regression power
model trained on simulated runs, an evaluation harness, and a
telemetry-only clustering that discovers workload power classes without
any application knowledge.
"""

from repro.prediction.clustering import (
    ClusterModel,
    PROFILE_FEATURE_NAMES,
    classify_jobs,
    kmeans_profiles,
    profile_features,
)
from repro.prediction.features import FEATURE_NAMES, feature_vector
from repro.prediction.model import PowerPredictor, TrainingSample
from repro.prediction.evaluate import EvaluationReport, evaluate, training_corpus

__all__ = [
    "ClusterModel",
    "EvaluationReport",
    "FEATURE_NAMES",
    "PROFILE_FEATURE_NAMES",
    "PowerPredictor",
    "TrainingSample",
    "classify_jobs",
    "evaluate",
    "feature_vector",
    "kmeans_profiles",
    "profile_features",
    "training_corpus",
]
