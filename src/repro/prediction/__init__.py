"""Power prediction from workload features (the paper's Section VI-C).

"Our in-depth study on VASP power characteristics provides the basis for
developing power prediction models.  We have identified several key
contributors to power variations, including system sizes (number of plane
waves and bands), methods, and concurrency..."

This package implements that next step — plus Section VI-B's top-down
counterpart: a feature extractor that reads only what a scheduler can see
(the input files plus the requested node count), a ridge-regression power
model trained on simulated runs, an evaluation harness, and a
telemetry-only clustering that discovers workload power classes without
any application knowledge.

On top of the seed model sits the two-stage surrogate (the NERSC
follow-on framework): stage 1 classifies the workload's power profile,
stage 2 regresses per class over (workload, nodes, cap, platform)
features — trained from a sweep-generated corpus (:mod:`.corpus`),
persisted with version/fingerprint guards (:mod:`.store`), and served as
a fast path with engine fallback by the capping layer.
"""

from repro.prediction.clustering import (
    ClusterModel,
    PROFILE_FEATURE_NAMES,
    ProfileClassifier,
    classify_jobs,
    fit_profile_classifier,
    kmeans_profiles,
    profile_features,
)
from repro.prediction.corpus import (
    CorpusConfig,
    CorpusSample,
    CorpusSpec,
    build_corpus,
)
from repro.prediction.features import (
    FEATURE_NAMES,
    SURROGATE_FEATURE_NAMES,
    feature_vector,
    surrogate_feature_vector,
)
from repro.prediction.model import (
    ClassRegressor,
    PowerPredictor,
    SurrogatePrediction,
    SurrogateStats,
    TARGET_NAMES,
    TrainingSample,
    TwoStageSurrogate,
    fit_surrogate,
    reset_surrogate_stats,
    surrogate_stats,
)
from repro.prediction.evaluate import (
    EvaluationReport,
    SurrogateEvaluation,
    evaluate,
    evaluate_surrogate,
    training_corpus,
)
from repro.prediction.store import (
    load_or_train,
    load_surrogate,
    save_surrogate,
    surrogate_disabled,
    surrogate_dir,
    training_fingerprint,
)

__all__ = [
    "ClassRegressor",
    "ClusterModel",
    "CorpusConfig",
    "CorpusSample",
    "CorpusSpec",
    "EvaluationReport",
    "FEATURE_NAMES",
    "PROFILE_FEATURE_NAMES",
    "PowerPredictor",
    "ProfileClassifier",
    "SURROGATE_FEATURE_NAMES",
    "SurrogateEvaluation",
    "SurrogatePrediction",
    "SurrogateStats",
    "TARGET_NAMES",
    "TrainingSample",
    "TwoStageSurrogate",
    "build_corpus",
    "classify_jobs",
    "evaluate",
    "evaluate_surrogate",
    "feature_vector",
    "fit_profile_classifier",
    "fit_surrogate",
    "kmeans_profiles",
    "load_or_train",
    "load_surrogate",
    "profile_features",
    "reset_surrogate_stats",
    "save_surrogate",
    "surrogate_disabled",
    "surrogate_dir",
    "surrogate_feature_vector",
    "surrogate_stats",
    "training_corpus",
    "training_fingerprint",
]
