"""Versioned, fingerprint-guarded persistence for trained surrogates.

Same discipline as the run cache's disk layer (temp sibling +
``os.replace``), plus two guards the run cache does not need:

* a **store version**, bumped whenever the serialized shape changes, so
  an old process never misreads a new file (or vice versa);
* a **training fingerprint** — digest of the corpus config, feature and
  target layouts, and fit hyperparameters — checked on load, so a model
  trained on a different grid (or by different code) is refused instead
  of silently serving stale predictions.

Any unreadable, torn, mismatched or missing store is a *miss*, never an
error: :func:`load_surrogate` returns None and :func:`load_or_train`
retrains and rewrites.  Env knobs: ``REPRO_SURROGATE`` turns the fast
path off (``0``/``off``); ``REPRO_SURROGATE_DIR`` moves the store away
from the default ``.repro_cache/surrogate/``.
"""

from __future__ import annotations

import logging
import os
import pickle
from pathlib import Path

from repro.prediction.corpus import CorpusConfig, build_corpus
from repro.prediction.features import SURROGATE_FEATURE_NAMES
from repro.prediction.model import (
    DEFAULT_K,
    TARGET_NAMES,
    TwoStageSurrogate,
    fit_surrogate,
)
from repro.runner.cache import atomic_write_pickle, fingerprint

logger = logging.getLogger(__name__)

#: Environment variable: ``0``/``off`` disables the surrogate fast path
#: everywhere (callers fall back to their exact paths).
SURROGATE_ENV = "REPRO_SURROGATE"
#: Environment variable: directory for the serialized store.
SURROGATE_DIR_ENV = "REPRO_SURROGATE_DIR"
#: Default store location, beside the run cache's disk layer.
DEFAULT_SURROGATE_DIR = ".repro_cache/surrogate"
#: Serialized payload shape; bump on any incompatible change.
STORE_VERSION = 1
#: File name inside the store directory.
STORE_FILENAME = "surrogate.pkl"


def surrogate_disabled() -> bool:
    """True when ``REPRO_SURROGATE`` turns the fast path off."""
    raw = os.environ.get(SURROGATE_ENV, "").strip().lower()
    return raw in ("0", "off", "false", "no")


def surrogate_dir() -> Path:
    """Store directory: ``REPRO_SURROGATE_DIR`` or the default."""
    raw = os.environ.get(SURROGATE_DIR_ENV, "").strip()
    return Path(raw) if raw else Path(DEFAULT_SURROGATE_DIR)


def store_path(directory: str | Path | None = None) -> Path:
    """Full path of the store file."""
    base = Path(directory) if directory is not None else surrogate_dir()
    return base / STORE_FILENAME


def training_fingerprint(
    config: CorpusConfig,
    k: int = DEFAULT_K,
    ridge_lambda: float = 1.0e-3,
    seed: int = 0,
) -> str:
    """Digest identifying what a stored surrogate was trained on."""
    return fingerprint(
        "surrogate-store",
        STORE_VERSION,
        config,
        SURROGATE_FEATURE_NAMES,
        TARGET_NAMES,
        k,
        ridge_lambda,
        seed,
    )


def save_surrogate(
    surrogate: TwoStageSurrogate,
    train_fingerprint: str,
    directory: str | Path | None = None,
) -> Path:
    """Atomically persist a trained surrogate; returns the store path."""
    path = store_path(directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "version": STORE_VERSION,
        "fingerprint": train_fingerprint,
        "surrogate": surrogate,
    }
    atomic_write_pickle(path, payload)
    logger.debug("surrogate store written: %s (%s)", path, train_fingerprint[:12])
    return path


def load_surrogate(
    train_fingerprint: str, directory: str | Path | None = None
) -> TwoStageSurrogate | None:
    """Load a stored surrogate if it matches; None on any mismatch.

    Missing file, torn/unpicklable payload, wrong store version and wrong
    training fingerprint all degrade to a miss (with a warning for the
    corrupt cases) — the caller retrains.
    """
    path = store_path(directory)
    if not path.is_file():
        return None
    try:
        with path.open("rb") as fh:
            payload = pickle.load(fh)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError) as exc:
        logger.warning(
            "surrogate store unreadable at %s (%s: %s); ignoring",
            path,
            type(exc).__name__,
            exc,
        )
        return None
    if not isinstance(payload, dict) or payload.get("version") != STORE_VERSION:
        logger.warning(
            "surrogate store at %s has version %r, expected %d; ignoring",
            path,
            payload.get("version") if isinstance(payload, dict) else None,
            STORE_VERSION,
        )
        return None
    if payload.get("fingerprint") != train_fingerprint:
        logger.warning(
            "surrogate store at %s was trained on different content; ignoring",
            path,
        )
        return None
    surrogate = payload.get("surrogate")
    if not isinstance(surrogate, TwoStageSurrogate):
        logger.warning("surrogate store at %s holds no surrogate; ignoring", path)
        return None
    return surrogate


def load_or_train(
    config: CorpusConfig | None = None,
    directory: str | Path | None = None,
    workers: int | None = None,
    k: int = DEFAULT_K,
    ridge_lambda: float = 1.0e-3,
    seed: int = 0,
) -> TwoStageSurrogate:
    """The one-call entry point callers use to get a ready surrogate.

    Loads the store when its version and training fingerprint match the
    requested configuration; otherwise builds the corpus (through the
    sweep executor), fits, and atomically rewrites the store.
    """
    config = config or CorpusConfig()
    train_fp = training_fingerprint(config, k=k, ridge_lambda=ridge_lambda, seed=seed)
    cached = load_surrogate(train_fp, directory)
    if cached is not None:
        return cached
    samples = build_corpus(config, workers=workers)
    surrogate = fit_surrogate(samples, k=k, ridge_lambda=ridge_lambda, seed=seed)
    save_surrogate(surrogate, train_fp, directory)
    return surrogate
