"""Training-corpus generation and predictor evaluation.

The corpus is generated the way a centre would build one: run a diverse
sweep (the silicon family across sizes/methods plus the production-like
benchmark suite at several node counts), measure each run's high power
mode through the standard telemetry/analysis pipeline, and train on the
result.  Generation goes through :class:`~repro.runner.sweep.SweepExecutor`,
so repeated grid points dedupe and ``REPRO_SWEEP_WORKERS`` parallelizes
the engine runs.

Evaluation reports mean absolute percentage error (MAPE) under held-out
splits — the realistic deployment questions are "can we predict a job we
have not profiled?" (:func:`evaluate`, leave-one-workload-out) and, for
the two-stage surrogate, "can we predict a cap we have not measured on a
job we have not profiled?" (:func:`evaluate_surrogate`, held-out
workload × cap grid).  Training-point accuracy is never reported: the
method-class features correlate perfectly with workload identity, so
in-sample error would just launder memorization into a headline number.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.modes import high_power_mode_w
from repro.prediction.corpus import CorpusConfig, CorpusSample, build_corpus
from repro.prediction.model import (
    DEFAULT_K,
    PowerPredictor,
    TrainingSample,
    fit_surrogate,
)
from repro.runner.sweep import RunSpec, SweepExecutor
from repro.vasp.benchmarks import BENCHMARKS, silicon_workload
from repro.vasp.workload import VaspWorkload


def _spec_hpm(spec: RunSpec) -> float:
    """Worker-side reduction: run one spec, keep only the node HPM.

    Module-level so process pools can pickle it; returning the scalar
    (not the full ``MeasuredRun``) keeps pool IPC tiny.
    """
    measured = spec.execute()
    return high_power_mode_w(measured.telemetry[0].node_power)


def training_corpus(
    seed: int = 13, workers: int | None = None
) -> list[TrainingSample]:
    """A diverse corpus: silicon sweeps plus the benchmark suite.

    The grid (and its order) is the seed repository's; execution now goes
    through the sweep executor for dedupe and process-pool parallelism.
    """
    grid: list[tuple[VaspWorkload, int]] = []
    # Silicon sizes x two methods, single node.
    for n_atoms in (64, 128, 256, 512, 1024):
        for method in ("dft_normal", "dft_veryfast"):
            grid.append((silicon_workload(n_atoms, method, nelm=6), 1))
    # Higher-order silicon workloads.
    for n_atoms in (128, 256):
        for method in ("hse", "acfdtr"):
            grid.append((silicon_workload(n_atoms, method, nelm=6), 1))
    # The production-like suite at one and two nodes.
    for case in BENCHMARKS.values():
        workload = case.build()
        for n_nodes in (1, 2):
            grid.append((workload, n_nodes))

    specs = [
        RunSpec(workload=workload, n_nodes=n_nodes, seed=seed)
        for workload, n_nodes in grid
    ]
    hpms = SweepExecutor(workers=workers).map(_spec_hpm, specs)
    return [
        TrainingSample.from_run(workload, n_nodes, hpm)
        for (workload, n_nodes), hpm in zip(grid, hpms)
    ]


@dataclass
class EvaluationReport:
    """Prediction errors from leave-one-workload-out evaluation."""

    per_workload_ape: dict[str, float]

    @property
    def mape(self) -> float:
        """Mean absolute percentage error across held-out workloads."""
        return float(np.mean(list(self.per_workload_ape.values())))

    @property
    def worst_ape(self) -> float:
        """Worst single held-out error."""
        return float(max(self.per_workload_ape.values()))


def evaluate(
    samples: list[TrainingSample] | None = None, ridge_lambda: float = 1.0e-3
) -> EvaluationReport:
    """Leave-one-workload-out evaluation of the predictor."""
    if samples is None:
        samples = training_corpus()
    names = sorted({s.workload_name for s in samples})
    errors: dict[str, float] = {}
    for held_out in names:
        train = [s for s in samples if s.workload_name != held_out]
        test = [s for s in samples if s.workload_name == held_out]
        predictor = PowerPredictor(ridge_lambda=ridge_lambda).fit(train)
        apes = [
            abs(predictor.predict_features(s.features) - s.hpm_w) / s.hpm_w
            for s in test
        ]
        errors[held_out] = float(np.mean(apes))
    return EvaluationReport(per_workload_ape=errors)


# ---------------------------------------------------------------------------
# Two-stage surrogate evaluation (held-out workload x cap grid)
# ---------------------------------------------------------------------------


@dataclass
class SurrogateEvaluation:
    """Held-out errors of the two-stage surrogate.

    ``per_workload_ape`` comes from leave-one-workload-out splits (every
    cap/platform point of the held-out workload is scored); ``per_cap_ape``
    from leave-one-cap-out splits (that cap's points across all workloads
    are scored, training on the other caps).  Both are HPM errors;
    ``per_target_mape`` aggregates the workload split per target.
    """

    per_workload_ape: dict[str, float]
    per_cap_ape: dict[str, float]
    per_target_mape: dict[str, float] = field(default_factory=dict)

    @property
    def mape(self) -> float:
        """HPM MAPE across held-out workloads."""
        return float(np.mean(list(self.per_workload_ape.values())))

    @property
    def worst_ape(self) -> float:
        """Worst held-out-workload HPM error."""
        return float(max(self.per_workload_ape.values()))

    @property
    def cap_mape(self) -> float:
        """HPM MAPE across held-out caps (1 training cap -> 0.0 splits)."""
        if not self.per_cap_ape:
            return 0.0
        return float(np.mean(list(self.per_cap_ape.values())))


#: Targets scored as percentage errors (positive-scale targets only —
#: APE of a ratio near 1.0 is not meaningful the same way).
_APE_TARGETS: tuple[str, ...] = (
    "hpm_w",
    "mean_node_power_w",
    "runtime_s",
    "energy_per_node_j",
)


def _score(
    train: list[CorpusSample],
    test: list[CorpusSample],
    k: int,
    ridge_lambda: float,
    seed: int,
) -> dict[str, list[float]]:
    """Fit on ``train``, return per-target APE lists on ``test``."""
    surrogate = fit_surrogate(train, k=k, ridge_lambda=ridge_lambda, seed=seed)
    apes: dict[str, list[float]] = {name: [] for name in _APE_TARGETS}
    for sample in test:
        prediction = surrogate.predict_features(sample.input_features)
        for name in _APE_TARGETS:
            truth = float(getattr(sample, name))
            apes[name].append(abs(prediction.target(name) - truth) / truth)
    return apes


def evaluate_surrogate(
    samples: list[CorpusSample] | None = None,
    config: CorpusConfig | None = None,
    k: int = DEFAULT_K,
    ridge_lambda: float = 1.0e-3,
    seed: int = 0,
    workers: int | None = None,
) -> SurrogateEvaluation:
    """Held-out workload × cap evaluation of the two-stage surrogate.

    No training point is ever scored: workload splits hold out every
    (cap, platform) grid point of one workload; cap splits hold out one
    cap fraction across every workload (``None``/uncapped always stays in
    training — it anchors the slowdown target).
    """
    if samples is None:
        samples = build_corpus(config, workers=workers)
    names = sorted({s.workload_name for s in samples})
    per_workload: dict[str, float] = {}
    target_apes: dict[str, list[float]] = {name: [] for name in _APE_TARGETS}
    for held_out in names:
        train = [s for s in samples if s.workload_name != held_out]
        test = [s for s in samples if s.workload_name == held_out]
        apes = _score(train, test, k, ridge_lambda, seed)
        per_workload[held_out] = float(np.mean(apes["hpm_w"]))
        for name in _APE_TARGETS:
            target_apes[name].extend(apes[name])

    # Cap splits: group capped samples by cap depth relative to their
    # platform (fraction of TDP), so "hold out half-TDP" holds it out on
    # every platform at once.
    def cap_key(sample: CorpusSample) -> str:
        from repro.hardware.platform import get_platform

        assert sample.cap_w is not None
        tdp = get_platform(sample.platform_id).gpu.tdp_w
        return f"{sample.cap_w / tdp:.3f}"

    fractions = sorted({cap_key(s) for s in samples if s.cap_w is not None})
    per_cap: dict[str, float] = {}
    if len(fractions) > 1:
        for held_out_cap in fractions:
            train = [
                s
                for s in samples
                if s.cap_w is None or cap_key(s) != held_out_cap
            ]
            test = [
                s
                for s in samples
                if s.cap_w is not None and cap_key(s) == held_out_cap
            ]
            apes = _score(train, test, k, ridge_lambda, seed)
            per_cap[held_out_cap] = float(np.mean(apes["hpm_w"]))

    return SurrogateEvaluation(
        per_workload_ape=per_workload,
        per_cap_ape=per_cap,
        per_target_mape={
            name: float(np.mean(values)) for name, values in target_apes.items()
        },
    )
