"""Training-corpus generation and predictor evaluation.

The corpus is generated the way a centre would build one: run a diverse
sweep (the silicon family across sizes/methods plus the production-like
benchmark suite at several node counts), measure each run's high power
mode through the standard telemetry/analysis pipeline, and train on the
result.  Evaluation reports mean absolute percentage error (MAPE) under
leave-one-workload-out splits — the realistic deployment question is
"can we predict a job we have not profiled?".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.modes import high_power_mode_w
from repro.experiments.common import run_workload
from repro.prediction.model import PowerPredictor, TrainingSample
from repro.vasp.benchmarks import BENCHMARKS, silicon_workload
from repro.vasp.workload import VaspWorkload


def _measure_hpm(workload: VaspWorkload, n_nodes: int, seed: int) -> float:
    measured = run_workload(workload, n_nodes=n_nodes, seed=seed)
    return high_power_mode_w(measured.telemetry[0].node_power)


def training_corpus(seed: int = 13) -> list[TrainingSample]:
    """A diverse corpus: silicon sweeps plus the benchmark suite."""
    samples: list[TrainingSample] = []
    # Silicon sizes x two methods, single node.
    for n_atoms in (64, 128, 256, 512, 1024):
        for method in ("dft_normal", "dft_veryfast"):
            workload = silicon_workload(n_atoms, method, nelm=6)
            hpm = _measure_hpm(workload, 1, seed)
            samples.append(TrainingSample.from_run(workload, 1, hpm))
    # Higher-order silicon workloads.
    for n_atoms in (128, 256):
        for method in ("hse", "acfdtr"):
            workload = silicon_workload(n_atoms, method, nelm=6)
            hpm = _measure_hpm(workload, 1, seed)
            samples.append(TrainingSample.from_run(workload, 1, hpm))
    # The production-like suite at one and two nodes.
    for case in BENCHMARKS.values():
        workload = case.build()
        for n_nodes in (1, 2):
            hpm = _measure_hpm(workload, n_nodes, seed)
            samples.append(TrainingSample.from_run(workload, n_nodes, hpm))
    return samples


@dataclass
class EvaluationReport:
    """Prediction errors from leave-one-workload-out evaluation."""

    per_workload_ape: dict[str, float]

    @property
    def mape(self) -> float:
        """Mean absolute percentage error across held-out workloads."""
        return float(np.mean(list(self.per_workload_ape.values())))

    @property
    def worst_ape(self) -> float:
        """Worst single held-out error."""
        return float(max(self.per_workload_ape.values()))


def evaluate(
    samples: list[TrainingSample] | None = None, ridge_lambda: float = 1.0e-3
) -> EvaluationReport:
    """Leave-one-workload-out evaluation of the predictor."""
    if samples is None:
        samples = training_corpus()
    names = sorted({s.workload_name for s in samples})
    errors: dict[str, float] = {}
    for held_out in names:
        train = [s for s in samples if s.workload_name != held_out]
        test = [s for s in samples if s.workload_name == held_out]
        predictor = PowerPredictor(ridge_lambda=ridge_lambda).fit(train)
        apes = [
            abs(predictor.predict_features(s.features) - s.hpm_w) / s.hpm_w
            for s in test
        ]
        errors[held_out] = float(np.mean(apes))
    return EvaluationReport(per_workload_ape=errors)
