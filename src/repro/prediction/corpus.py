"""Surrogate training-corpus generation over the sweep executor.

The two-stage surrogate trains on a grid of engine runs spanning
workloads × node counts × power caps × platforms.  Each grid point is a
:class:`CorpusSpec` — a content-addressed spec in the
:mod:`repro.runner.sweep` sense, so corpus generation gets dedupe,
``REPRO_SWEEP_WORKERS`` process-pool parallelism and run-cache reuse for
free, and a worker ships back only the compact :class:`CorpusSample`
(features plus scalar targets), never a full ``MeasuredRun``.

Cap grids are expressed as *fractions of the platform GPU's TDP* (clamped
to the platform's cap floor), not absolute watts: 200 W is half-TDP on an
A100 but below the cap floor on an H100, and the surrogate's cap features
are fractional for the same reason.

The cap-induced slowdown target needs an uncapped baseline, which is why
every (workload, nodes, platform) group always includes the ``cap=None``
point: the coordinator fills ``slowdown`` in after the sweep by dividing
each runtime by its group's baseline runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro import obs
from repro.runner.sweep import SweepExecutor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.vasp.workload import VaspWorkload

#: TDP fractions the default corpus caps at, besides uncapped.  0.3125 is
#: the paper's 125 W-on-A100 deep-cap point; 0.5 is the recommended
#: operating cap; 0.75 probes the shallow-regulation regime.
DEFAULT_CAP_FRACTIONS: tuple[float, ...] = (0.3125, 0.5, 0.75)


@dataclass(frozen=True)
class CorpusSample:
    """One corpus grid point: surrogate features plus measured targets.

    ``slowdown`` is relative to the same (workload, nodes, platform)
    group's uncapped run and is filled in by :func:`build_corpus` after
    the sweep (a worker cannot see its sibling grid points).
    """

    workload_name: str
    n_nodes: int
    cap_w: float | None
    platform_id: str
    #: :func:`repro.prediction.features.surrogate_feature_vector`.
    input_features: np.ndarray
    #: :func:`repro.prediction.clustering.profile_features` of the run's
    #: node-power telemetry (engine-derived; stage-1 training only).
    profile: np.ndarray
    hpm_w: float
    mean_node_power_w: float
    runtime_s: float
    energy_per_node_j: float
    #: GPU high power mode over the platform GPU's TDP.
    tdp_fraction: float
    #: Runtime over the group's uncapped runtime (1.0 before fill-in).
    slowdown: float = 1.0


@dataclass(frozen=True)
class CorpusSpec:
    """One corpus grid point by content (picklable, fingerprintable)."""

    #: Any zoo workload instance (VASP or registered non-VASP model).
    workload: object
    n_nodes: int
    cap_w: float | None
    platform_id: str
    seed: int = 13

    def execute(self) -> CorpusSample:
        """Run the point through the full pipeline, reduce in-worker."""
        # Imported lazily: experiments.common sits above the runner layer,
        # and workers re-import on their side of the pool.
        from repro.analysis.modes import high_power_mode_w
        from repro.experiments.common import run_workload
        from repro.hardware.platform import get_platform
        from repro.prediction.clustering import profile_features
        from repro.prediction.features import surrogate_feature_vector

        measured = run_workload(
            self.workload,
            n_nodes=self.n_nodes,
            gpu_cap_w=self.cap_w,
            seed=self.seed,
            platform=self.platform_id,
        )
        node_power = measured.telemetry[0].node_power
        gpu = get_platform(self.platform_id).gpu
        runtime = measured.runtime_s
        mean_node_w = measured.result.total_energy_j() / (self.n_nodes * runtime)
        return CorpusSample(
            workload_name=self.workload.name,
            n_nodes=self.n_nodes,
            cap_w=self.cap_w,
            platform_id=self.platform_id,
            input_features=surrogate_feature_vector(
                self.workload, self.n_nodes, self.cap_w, self.platform_id
            ),
            profile=profile_features(node_power),
            hpm_w=high_power_mode_w(node_power),
            mean_node_power_w=mean_node_w,
            runtime_s=runtime,
            energy_per_node_j=runtime * mean_node_w,
            tdp_fraction=high_power_mode_w(measured.telemetry[0].gpu_power(0))
            / gpu.tdp_w,
        )


@dataclass(frozen=True)
class CorpusConfig:
    """Shape of the training grid (content-only; part of the store key).

    The default mirrors (and extends across caps/platforms) the corpus
    :func:`repro.prediction.evaluate.training_corpus` trains the seed
    ridge model on: silicon sizes × methods at one node, the higher-order
    silicon pair, and the benchmark suite at one and two nodes.
    """

    silicon_sizes: tuple[int, ...] = (64, 128, 256, 512, 1024)
    silicon_methods: tuple[str, ...] = ("dft_normal", "dft_veryfast")
    higher_order_sizes: tuple[int, ...] = (128, 256)
    higher_order_methods: tuple[str, ...] = ("hse", "acfdtr")
    benchmark_nodes: tuple[int, ...] = (1, 2)
    include_benchmarks: bool = True
    platforms: tuple[str, ...] = ("a100-40g", "h100-sxm")
    cap_fractions: tuple[float, ...] = DEFAULT_CAP_FRACTIONS
    nelm: int = 6
    seed: int = 13
    #: Registry references of the non-VASP zoo workloads to include
    #: (resolved via :func:`repro.workloads.resolve_workload`); sampled
    #: on the first corpus platform only, at one node — enough for the
    #: profile-clustering stage to give each zoo regime its own head
    #: without doubling the grid.
    zoo: tuple[str, ...] = (
        "milc:small",
        "cloudsc:small",
        "multiphysics:small",
        "entropy:high",
        "entropy:low",
        "gemm-stream:burst",
    )
    zoo_nodes: tuple[int, ...] = (1,)

    def workload_grid(self) -> "list[tuple[VaspWorkload, int]]":
        """The (workload, node count) pairs the corpus measures."""
        from repro.vasp.benchmarks import BENCHMARKS, silicon_workload

        pairs: list[tuple["VaspWorkload", int]] = []
        for n_atoms in self.silicon_sizes:
            for method in self.silicon_methods:
                pairs.append((silicon_workload(n_atoms, method, nelm=self.nelm), 1))
        for n_atoms in self.higher_order_sizes:
            for method in self.higher_order_methods:
                pairs.append((silicon_workload(n_atoms, method, nelm=self.nelm), 1))
        if self.include_benchmarks:
            for case in BENCHMARKS.values():
                workload = case.build()
                for n_nodes in self.benchmark_nodes:
                    pairs.append((workload, n_nodes))
        return pairs

    def zoo_grid(self) -> "list[tuple[object, int]]":
        """The non-VASP (workload, node count) pairs (first platform only)."""
        from repro.workloads import resolve_workload

        pairs: list[tuple[object, int]] = []
        for ref in self.zoo:
            workload = resolve_workload(ref)
            for n_nodes in self.zoo_nodes:
                pairs.append((workload, n_nodes))
        return pairs

    def caps_for(self, platform_id: str) -> list[float | None]:
        """The cap grid for one platform: uncapped plus clamped fractions.

        Fractions resolve against the platform GPU's TDP and clamp to its
        cap floor; duplicates after clamping collapse (the sweep would
        dedupe them anyway, but the grid should say what it means).
        """
        from repro.hardware.platform import get_platform

        gpu = get_platform(platform_id).gpu
        caps: list[float | None] = [None]
        for fraction in self.cap_fractions:
            cap = min(max(fraction * gpu.tdp_w, gpu.cap_min_w), gpu.cap_max_w)
            if cap not in caps:
                caps.append(cap)
        return caps

    def specs(self) -> Iterator[CorpusSpec]:
        """Every grid point, workloads-major then platforms then caps.

        The VASP grid spans every platform; the zoo grid rides on the
        first platform, appended after so the legacy point order is
        untouched.
        """
        pairs = self.workload_grid()
        for platform_id in self.platforms:
            caps = self.caps_for(platform_id)
            for workload, n_nodes in pairs:
                for cap_w in caps:
                    yield CorpusSpec(
                        workload=workload,
                        n_nodes=n_nodes,
                        cap_w=cap_w,
                        platform_id=platform_id,
                        seed=self.seed,
                    )
        if self.zoo and self.platforms:
            platform_id = self.platforms[0]
            caps = self.caps_for(platform_id)
            for workload, n_nodes in self.zoo_grid():
                for cap_w in caps:
                    yield CorpusSpec(
                        workload=workload,
                        n_nodes=n_nodes,
                        cap_w=cap_w,
                        platform_id=platform_id,
                        seed=self.seed,
                    )


def build_corpus(
    config: CorpusConfig | None = None, workers: int | None = None
) -> list[CorpusSample]:
    """Measure the training grid and fill in the slowdown target.

    Runs through :class:`SweepExecutor` (dedupe + ``REPRO_SWEEP_WORKERS``
    parallelism + run-cache reuse), then divides each sample's runtime by
    its (workload, nodes, platform) group's uncapped runtime.
    """
    config = config or CorpusConfig()
    specs = list(config.specs())
    with obs.span("surrogate.build_corpus", specs=len(specs)):
        samples: list[CorpusSample] = SweepExecutor(workers=workers).run(specs)
    baseline: dict[tuple[str, int, str], float] = {
        (s.workload_name, s.n_nodes, s.platform_id): s.runtime_s
        for s in samples
        if s.cap_w is None
    }
    filled = [
        replace(
            sample,
            slowdown=sample.runtime_s
            / baseline[(sample.workload_name, sample.n_nodes, sample.platform_id)],
        )
        for sample in samples
    ]
    obs.gauge_set(
        "repro_surrogate_corpus_size",
        len(filled),
        help_text="Samples in the last surrogate training corpus",
    )
    return filled
