"""Learned predictors over workload features.

Two generations live here.  :class:`PowerPredictor` is the seed model: a
single ridge regression from scheduler-visible features to the high power
mode, fitted in log-power space (power drivers combine multiplicatively:
occupancy x duty x method class) and exponentiated back to watts.

:class:`TwoStageSurrogate` is the deployment-shaped successor, following
the NERSC two-stage framework: **stage 1** assigns the job to a workload
power class (k-means over engine-derived profile features, assigned at
predict time from input features — :mod:`repro.prediction.clustering`),
**stage 2** applies that class's ridge regressor mapping (workload,
nodes, cap, platform) features to the full target set — HPM, mean node
power, runtime, energy, cap-induced slowdown and GPU TDP fraction.
Positive-scale targets regress in log space; ratio targets stay linear.

Every prediction carries its own envelope verdict (stage-1 distance and
stage-2 residual spread): callers on the fast path treat out-of-envelope
predictions as "fall back to the engine", never as answers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro import obs
from repro.prediction.clustering import ProfileClassifier, fit_profile_classifier
from repro.prediction.features import (
    FEATURE_NAMES,
    SURROGATE_FEATURE_NAMES,
    feature_vector,
    surrogate_feature_vector,
)
from repro.vasp.workload import VaspWorkload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.prediction.corpus import CorpusSample

#: Default number of stage-1 workload classes.  Held-out evaluation on
#: the default corpus picks this: the paper's two-class taxonomy
#: (higher-order vs basic DFT) is right for *power*, but runtime and
#: energy generalize far better when the classes also separate scale and
#: phase structure — k=5 cut held-out runtime MAPE ~50x vs k=2 while
#: also improving power MAPE.
DEFAULT_K = 5

#: Targets the surrogate predicts, in column order.
TARGET_NAMES: tuple[str, ...] = (
    "hpm_w",
    "mean_node_power_w",
    "runtime_s",
    "energy_per_node_j",
    "slowdown",
    "tdp_fraction",
)

#: Targets regressed in log space (positive, multiplicative drivers).
_LOG_TARGETS: frozenset[str] = frozenset(
    {"hpm_w", "mean_node_power_w", "runtime_s", "energy_per_node_j"}
)


@dataclass(frozen=True)
class TrainingSample:
    """One observed run: features plus the measured power."""

    workload_name: str
    features: np.ndarray
    hpm_w: float

    @classmethod
    def from_run(
        cls, workload: VaspWorkload, n_nodes: int, hpm_w: float
    ) -> "TrainingSample":
        """Build a sample from a workload, node count and measured HPM."""
        if hpm_w <= 0:
            raise ValueError(f"hpm_w must be positive, got {hpm_w}")
        return cls(
            workload_name=workload.name,
            features=feature_vector(workload, n_nodes),
            hpm_w=hpm_w,
        )


class PowerPredictor:
    """Ridge regression: features -> high power mode per node."""

    def __init__(self, ridge_lambda: float = 1.0e-3) -> None:
        if ridge_lambda < 0:
            raise ValueError(f"ridge_lambda must be >= 0, got {ridge_lambda}")
        self.ridge_lambda = ridge_lambda
        self._weights: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._weights is not None

    def fit(self, samples: list[TrainingSample]) -> "PowerPredictor":
        """Fit the weights by regularized least squares."""
        if len(samples) < len(FEATURE_NAMES):
            raise ValueError(
                f"need at least {len(FEATURE_NAMES)} samples, got {len(samples)}"
            )
        x = np.stack([s.features for s in samples])
        y = np.log(np.array([s.hpm_w for s in samples]))
        n_features = x.shape[1]
        gram = x.T @ x + self.ridge_lambda * np.eye(n_features)
        self._weights = np.linalg.solve(gram, x.T @ y)
        return self

    def predict(self, workload: VaspWorkload, n_nodes: int = 1) -> float:
        """Predicted high power mode per node, in watts."""
        return self.predict_features(feature_vector(workload, n_nodes))

    def predict_features(self, features: np.ndarray) -> float:
        """Prediction from a raw feature vector."""
        if self._weights is None:
            raise RuntimeError("predictor is not fitted; call fit() first")
        return float(np.exp(features @ self._weights))

    def coefficients(self) -> dict[str, float]:
        """Feature name -> fitted log-space weight (interpretability)."""
        if self._weights is None:
            raise RuntimeError("predictor is not fitted; call fit() first")
        return dict(zip(FEATURE_NAMES, (float(w) for w in self._weights)))


# ---------------------------------------------------------------------------
# Two-stage surrogate
# ---------------------------------------------------------------------------


@dataclass
class SurrogateStats:
    """Process-wide surrogate usage totals (cheap plain counters).

    Mirrors :class:`repro.runner.sweep.SweepStats`: always on, a few
    integer adds per prediction, feeding CLI footers and the run ledger
    even when :mod:`repro.obs` metrics are disabled.
    """

    predictions: int = 0
    hits: int = 0
    fallbacks: int = 0
    trainings: int = 0
    verifications: int = 0
    last_verification_error: float | None = None
    _verification_error_sum: float = 0.0

    @property
    def hit_ratio(self) -> float:
        """In-envelope fraction of predictions (0.0 when none served)."""
        if self.predictions == 0:
            return 0.0
        return self.hits / self.predictions

    def record_verification(self, error: float) -> None:
        """Track one verify-the-winner outcome.

        Every surrogate-scored search re-simulates its winner exactly;
        the relative error of that check is the ground-truth drift signal
        the regression sentinel (:mod:`repro.obs.sentinel`) watches, so
        it is accumulated here and annotated into the run ledger by the
        callers that compute it.
        """
        self.verifications += 1
        self.last_verification_error = error
        self._verification_error_sum += error

    @property
    def mean_verification_error(self) -> float | None:
        """Mean winner-verification error (None before any check)."""
        if self.verifications == 0:
            return None
        return self._verification_error_sum / self.verifications

    def summary_line(self) -> str:
        """One-line human summary (for CLI footers)."""
        line = (
            f"surrogate: {self.predictions} predictions, "
            f"{self.hits} in-envelope ({self.hit_ratio:.0%}), "
            f"{self.fallbacks} engine fallbacks"
        )
        if self.verifications and self.last_verification_error is not None:
            line += (
                f", winner verified {self.last_verification_error:.1%} off"
            )
        return line


_STATS = SurrogateStats()


def surrogate_stats() -> SurrogateStats:
    """The process-wide :class:`SurrogateStats` accumulator."""
    return _STATS


def reset_surrogate_stats() -> None:
    """Zero the process-wide surrogate totals (tests, CLI scoping)."""
    _STATS.predictions = 0
    _STATS.hits = 0
    _STATS.fallbacks = 0
    _STATS.trainings = 0
    _STATS.verifications = 0
    _STATS.last_verification_error = None
    _STATS._verification_error_sum = 0.0


@dataclass(frozen=True)
class SurrogatePrediction:
    """One surrogate answer plus the evidence for trusting it.

    ``in_envelope`` is the fast-path contract: when False, the caller
    must treat this object as advisory only and fall back to the engine.
    """

    workload_name: str
    n_nodes: int
    cap_w: float | None
    platform_id: str
    class_index: int
    #: Stage-1 distance to the assigned class's input centroid.
    class_distance: float
    #: Stage-2 residual spread of the log-HPM column (relative error
    #: proxy: exp(sigma)-1 is roughly the one-sigma percentage error).
    uncertainty: float
    in_envelope: bool
    hpm_w: float
    mean_node_power_w: float
    runtime_s: float
    energy_per_node_j: float
    slowdown: float
    tdp_fraction: float

    def target(self, name: str) -> float:
        """One predicted target by :data:`TARGET_NAMES` name."""
        if name not in TARGET_NAMES:
            raise KeyError(f"unknown target {name!r}")
        return float(getattr(self, name))


@dataclass(frozen=True)
class ClassRegressor:
    """Stage 2 for one workload class: multi-target ridge weights.

    ``weights`` is (n_features, n_targets) in fit space (log for the
    positive-scale targets); ``residual_std`` is the per-target residual
    spread on the training members, the stage-2 uncertainty signal.
    """

    weights: np.ndarray
    residual_std: np.ndarray
    n_samples: int

    def predict_row(self, features: np.ndarray) -> np.ndarray:
        """Predicted targets (natural units) for one feature vector."""
        raw = np.asarray(features, dtype=float) @ self.weights
        out = np.empty_like(raw)
        for column, name in enumerate(TARGET_NAMES):
            out[column] = np.exp(raw[column]) if name in _LOG_TARGETS else raw[column]
        return out


def _fit_class_regressor(
    x: np.ndarray, y_fit: np.ndarray, ridge_lambda: float
) -> ClassRegressor:
    """Ridge-solve one class's multi-target weights in fit space."""
    n_features = x.shape[1]
    gram = x.T @ x + ridge_lambda * np.eye(n_features)
    weights = np.linalg.solve(gram, x.T @ y_fit)
    residuals = x @ weights - y_fit
    return ClassRegressor(
        weights=weights,
        residual_std=residuals.std(axis=0),
        n_samples=x.shape[0],
    )


@dataclass
class TwoStageSurrogate:
    """Classify the job's power profile, then regress within the class.

    ``regressors[c]`` serves class ``c``; classes too thin to fit their
    own regression share ``global_regressor`` (which also anchors the
    uncertainty comparison).  All state is plain numpy — a prediction is
    one k-means assignment plus one matrix-vector product, which is what
    buys the >=100x fast path over full simulation.
    """

    classifier: ProfileClassifier
    regressors: list[ClassRegressor]
    global_regressor: ClassRegressor
    n_samples: int
    ridge_lambda: float
    #: Stage-1 envelope: accepted distance as a multiple of the class's
    #: training radius.
    envelope_margin: float = 1.5
    #: Stage-2 envelope: max accepted residual spread of log-HPM.
    uncertainty_max: float = 0.35
    feature_names: tuple[str, ...] = SURROGATE_FEATURE_NAMES
    target_names: tuple[str, ...] = TARGET_NAMES

    @property
    def k(self) -> int:
        """Number of workload classes."""
        return len(self.regressors)

    def predict(
        self,
        workload: VaspWorkload,
        n_nodes: int = 1,
        cap_w: float | None = None,
        platform: str | None = None,
    ) -> SurrogatePrediction:
        """Predict one (workload, nodes, cap, platform) grid point."""
        from repro.hardware.platform import get_platform

        start = time.perf_counter()
        features = surrogate_feature_vector(workload, n_nodes, cap_w, platform)
        prediction = self.predict_features(
            features,
            workload_name=workload.name,
            n_nodes=n_nodes,
            cap_w=cap_w,
            platform_id=get_platform(platform).id,
        )
        _STATS.predictions += 1
        if prediction.in_envelope:
            _STATS.hits += 1
            obs.inc("repro_surrogate_hits_total")
        else:
            _STATS.fallbacks += 1
            obs.inc("repro_surrogate_fallbacks_total")
        obs.observe(
            "repro_surrogate_predict_seconds",
            time.perf_counter() - start,
            help_text="Per-prediction surrogate latency",
        )
        return prediction

    def predict_features(
        self,
        features: np.ndarray,
        workload_name: str = "?",
        n_nodes: int = 1,
        cap_w: float | None = None,
        platform_id: str = "?",
    ) -> SurrogatePrediction:
        """Prediction from a raw surrogate feature vector.

        Does not touch the usage counters or metrics — evaluation
        harnesses sweep this without polluting the fast-path stats;
        :meth:`predict` is the counted entry point.
        """
        cls, distance = self.classifier.classify(features)
        regressor = self.regressors[cls]
        uncertainty = float(regressor.residual_std[TARGET_NAMES.index("hpm_w")])
        in_envelope = (
            self.classifier.in_envelope(cls, distance, self.envelope_margin)
            and uncertainty <= self.uncertainty_max
        )
        targets = regressor.predict_row(features)
        values = dict(zip(TARGET_NAMES, (float(v) for v in targets)))
        # Ratio targets are regressed linearly and can graze their floors
        # at the grid edges; physics bounds them below.
        values["slowdown"] = max(values["slowdown"], 1.0)
        values["tdp_fraction"] = max(values["tdp_fraction"], 0.0)
        return SurrogatePrediction(
            workload_name=workload_name,
            n_nodes=n_nodes,
            cap_w=cap_w,
            platform_id=platform_id,
            class_index=cls,
            class_distance=distance,
            uncertainty=uncertainty,
            in_envelope=in_envelope,
            **values,
        )


def fit_surrogate(
    samples: "list[CorpusSample]",
    k: int = DEFAULT_K,
    ridge_lambda: float = 1.0e-3,
    seed: int = 0,
    envelope_margin: float = 1.5,
    uncertainty_max: float = 0.35,
) -> TwoStageSurrogate:
    """Fit both stages from a measured corpus.

    Stage 1 clusters the engine-derived power profiles; stage 2 fits one
    ridge regressor per class (plus a global one shared by classes with
    fewer members than features — a thin class cannot support its own
    solve).
    """
    if not samples:
        raise ValueError("cannot fit a surrogate from an empty corpus")
    x = np.stack([s.input_features for s in samples])
    profiles = np.stack([s.profile for s in samples])
    n_features = x.shape[1]
    if len(samples) < n_features:
        raise ValueError(
            f"need at least {n_features} samples, got {len(samples)}"
        )
    y_fit = np.empty((len(samples), len(TARGET_NAMES)))
    for column, name in enumerate(TARGET_NAMES):
        raw = np.array([getattr(s, name) for s in samples], dtype=float)
        if name in _LOG_TARGETS:
            if np.any(raw <= 0):
                raise ValueError(f"target {name!r} must be positive to fit")
            raw = np.log(raw)
        y_fit[:, column] = raw

    k = min(k, len(samples))
    classifier = fit_profile_classifier(profiles, x, k=k, seed=seed)
    global_regressor = _fit_class_regressor(x, y_fit, ridge_lambda)
    regressors: list[ClassRegressor] = []
    for cls in range(classifier.k):
        members = classifier.labels == cls
        # A class needs more members than features for its residuals to
        # mean anything; thin classes share the global fit.
        if members.sum() > n_features:
            regressors.append(
                _fit_class_regressor(x[members], y_fit[members], ridge_lambda)
            )
        else:
            regressors.append(global_regressor)

    _STATS.trainings += 1
    obs.inc("repro_surrogate_trainings_total")
    obs.gauge_set(
        "repro_surrogate_corpus_size",
        len(samples),
        help_text="Samples in the last surrogate training corpus",
    )
    return TwoStageSurrogate(
        classifier=classifier,
        regressors=regressors,
        global_regressor=global_regressor,
        n_samples=len(samples),
        ridge_lambda=ridge_lambda,
        envelope_margin=envelope_margin,
        uncertainty_max=uncertainty_max,
    )
