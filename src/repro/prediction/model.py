"""A ridge-regression power predictor over workload features.

Small, interpretable, and trainable from a handful of measured (or, here,
simulated) runs — the kind of model a computing centre could deploy inside
a scheduling cycle.  The regression is fitted in log-power space (power
drivers combine multiplicatively: occupancy x duty x method class), and
predictions are exponentiated back to watts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.prediction.features import FEATURE_NAMES, feature_vector
from repro.vasp.workload import VaspWorkload


@dataclass(frozen=True)
class TrainingSample:
    """One observed run: features plus the measured power."""

    workload_name: str
    features: np.ndarray
    hpm_w: float

    @classmethod
    def from_run(
        cls, workload: VaspWorkload, n_nodes: int, hpm_w: float
    ) -> "TrainingSample":
        """Build a sample from a workload, node count and measured HPM."""
        if hpm_w <= 0:
            raise ValueError(f"hpm_w must be positive, got {hpm_w}")
        return cls(
            workload_name=workload.name,
            features=feature_vector(workload, n_nodes),
            hpm_w=hpm_w,
        )


class PowerPredictor:
    """Ridge regression: features -> high power mode per node."""

    def __init__(self, ridge_lambda: float = 1.0e-3) -> None:
        if ridge_lambda < 0:
            raise ValueError(f"ridge_lambda must be >= 0, got {ridge_lambda}")
        self.ridge_lambda = ridge_lambda
        self._weights: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._weights is not None

    def fit(self, samples: list[TrainingSample]) -> "PowerPredictor":
        """Fit the weights by regularized least squares."""
        if len(samples) < len(FEATURE_NAMES):
            raise ValueError(
                f"need at least {len(FEATURE_NAMES)} samples, got {len(samples)}"
            )
        x = np.stack([s.features for s in samples])
        y = np.log(np.array([s.hpm_w for s in samples]))
        n_features = x.shape[1]
        gram = x.T @ x + self.ridge_lambda * np.eye(n_features)
        self._weights = np.linalg.solve(gram, x.T @ y)
        return self

    def predict(self, workload: VaspWorkload, n_nodes: int = 1) -> float:
        """Predicted high power mode per node, in watts."""
        return self.predict_features(feature_vector(workload, n_nodes))

    def predict_features(self, features: np.ndarray) -> float:
        """Prediction from a raw feature vector."""
        if self._weights is None:
            raise RuntimeError("predictor is not fitted; call fit() first")
        return float(np.exp(features @ self._weights))

    def coefficients(self) -> dict[str, float]:
        """Feature name -> fitted log-space weight (interpretability)."""
        if self._weights is None:
            raise RuntimeError("predictor is not fitted; call fit() first")
        return dict(zip(FEATURE_NAMES, (float(w) for w in self._weights)))
