"""Named registry of workload models, mirroring the platform registry.

The paper's power profiles are workload-shaped: VASP methods, MILC,
DGEMM/STREAM each impose a distinct utilization structure on the same
hardware.  This registry makes "a workload" a first-class, pluggable
concept the way :mod:`repro.hardware.platform` did for hardware — every
layer that used to assume :class:`~repro.vasp.workload.VaspWorkload`
(classification, fleet mixes, prediction features, cache fingerprints,
the CLI) resolves workloads through here instead.

A *workload model* is the named family (``vasp``, ``milc``, ``cloudsc``
...); a *workload instance* is one runnable member of that family (a
Table I benchmark, a MILC lattice size).  Instances stay plain
dataclasses that expose the engine contract the rest of the library
already consumes:

``name``
    Stable instance label (enters cache keys and reports).
``phases(parallel, comm=None) -> list[MacroPhase]``
    The macro-phase schedule for a parallel layout.
``uncapped_runtime_s(parallel) -> float``
    Total runtime at default clocks.

Classification hints are carried as :class:`WorkloadClass` *values*
(strings), not the enum, so this module never imports the capping layer
(which imports this one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

#: Valid classification hints: the WorkloadClass values understood by
#: repro.capping.policy (kept as strings to avoid the import cycle).
CLASS_HINTS: tuple[str, ...] = ("higher_order", "basic_dft", "other")

#: Valid roofline regimes a model may declare.
ROOFLINE_REGIMES: tuple[str, ...] = (
    "compute-bound",
    "memory-bound",
    "mixed",
    "alternating",
    "idle",
)


@dataclass(frozen=True)
class WorkloadModel:
    """One registered workload family.

    Attributes
    ----------
    id:
        Stable registry id (``"vasp"``, ``"milc"``); enters cache
        fingerprints, so renaming an id invalidates caches (safe — only
        outputs carry the bit-identity contract).
    family:
        Human grouping label (``"dft"``, ``"lattice-qcd"``...).
    roofline:
        Dominant regime, one of :data:`ROOFLINE_REGIMES`.
    workload_type:
        The instance dataclass; used to resolve an instance back to its
        model (:func:`model_for`).
    builder:
        ``variant -> instance`` factory; variants are the named presets
        (benchmark names for VASP, lattice sizes for MILC).
    default_widths:
        Healthy node counts for fleet mixes and scenario sampling.
    class_hint:
        Power class every instance falls into when ``classifier`` is
        unset, one of :data:`CLASS_HINTS`.
    classifier:
        Optional per-instance refinement, returning a class-hint value.
    """

    id: str
    family: str
    description: str
    roofline: str
    workload_type: type
    builder: Callable[[str], Any]
    variants: tuple[str, ...]
    default_variant: str
    default_widths: tuple[int, ...] = (1, 2)
    class_hint: str = "other"
    classifier: Callable[[Any], str] | None = None

    def build(self, variant: str | None = None) -> Any:
        """Construct one instance (the default variant when unset)."""
        chosen = self.default_variant if variant is None else variant
        if chosen not in self.variants:
            raise KeyError(
                f"unknown {self.id} variant {chosen!r}; "
                f"known: {', '.join(self.variants)}"
            )
        return self.builder(chosen)

    def classify(self, workload: Any) -> str:
        """Class-hint value for one instance (cheap, input-only)."""
        if self.classifier is not None:
            return self.classifier(workload)
        return self.class_hint


_REGISTRY: dict[str, WorkloadModel] = {}

#: The model unqualified benchmark names resolve against.
DEFAULT_MODEL_ID = "vasp"


def register_workload_model(model: WorkloadModel, replace: bool = False) -> None:
    """Register a workload model under its id.

    Validation mirrors :func:`repro.hardware.platform.register_platform`:
    structural errors surface at registration, not first use.
    """
    if not model.id:
        raise ValueError("workload model id must be non-empty")
    if ":" in model.id or any(ch.isspace() for ch in model.id):
        raise ValueError(
            f"workload model id {model.id!r} must not contain ':' or whitespace"
            " (':' separates model and variant in workload refs)"
        )
    if model.id in _REGISTRY and not replace:
        raise ValueError(
            f"workload model {model.id!r} already registered "
            "(pass replace=True to override)"
        )
    if model.roofline not in ROOFLINE_REGIMES:
        raise ValueError(
            f"{model.id}: roofline {model.roofline!r} not one of "
            f"{', '.join(ROOFLINE_REGIMES)}"
        )
    if not model.variants:
        raise ValueError(f"{model.id}: needs at least one variant")
    if model.default_variant not in model.variants:
        raise ValueError(
            f"{model.id}: default variant {model.default_variant!r} "
            f"not in variants {model.variants}"
        )
    if not model.default_widths or any(w < 1 for w in model.default_widths):
        raise ValueError(f"{model.id}: default_widths must be positive node counts")
    if model.class_hint not in CLASS_HINTS:
        raise ValueError(
            f"{model.id}: class hint {model.class_hint!r} not one of "
            f"{', '.join(CLASS_HINTS)}"
        )
    _REGISTRY[model.id] = model


def get_workload_model(model: "str | WorkloadModel") -> WorkloadModel:
    """Resolve a model id (or pass a model through)."""
    if isinstance(model, WorkloadModel):
        return model
    try:
        return _REGISTRY[model]
    except KeyError:
        raise KeyError(
            f"unknown workload model {model!r}; "
            f"known: {', '.join(workload_model_ids())}"
        ) from None


def workload_model_ids() -> list[str]:
    """Registered model ids, default model first."""
    ids = sorted(_REGISTRY)
    if DEFAULT_MODEL_ID in ids:
        ids.remove(DEFAULT_MODEL_ID)
        ids.insert(0, DEFAULT_MODEL_ID)
    return ids


def model_for(workload: Any) -> WorkloadModel | None:
    """The registered model a workload instance belongs to, if any."""
    for model in _REGISTRY.values():
        if type(workload) is model.workload_type:
            return model
    for model in _REGISTRY.values():
        if isinstance(workload, model.workload_type):
            return model
    return None


def workload_model_id(workload: Any) -> str:
    """Stable model id for cache fingerprints.

    Unregistered workload types still fingerprint (under a qualified
    type name) so ad-hoc workloads never crash the cache layer.
    """
    model = model_for(workload)
    if model is not None:
        return model.id
    return f"unregistered:{type(workload).__module__}.{type(workload).__qualname__}"


# ---------------------------------------------------------------------------
# Workload references: "<benchmark>" or "<model>" or "<model>:<variant>"
# ---------------------------------------------------------------------------


def workload_refs() -> list[str]:
    """Every resolvable reference: benchmark names plus model:variant."""
    from repro.vasp.benchmarks import benchmark_names

    refs = list(benchmark_names())
    for model_id in workload_model_ids():
        if model_id == DEFAULT_MODEL_ID:
            continue  # its variants are the benchmark names above
        model = _REGISTRY[model_id]
        refs.append(model_id)
        refs.extend(f"{model_id}:{variant}" for variant in model.variants)
    return refs


def resolve_workload(ref: str) -> Any:
    """Build the workload a reference names.

    Accepts the historical Table I benchmark names (``"Si256_hse"``),
    bare model ids (``"milc"`` -> default variant) and qualified
    ``model:variant`` references (``"milc:large"``).
    """
    from repro.vasp.benchmarks import BENCHMARKS

    if ref in BENCHMARKS:
        return BENCHMARKS[ref].build()
    model_id, sep, variant = ref.partition(":")
    model = _REGISTRY.get(model_id)
    if model is None:
        raise KeyError(
            f"unknown workload {ref!r}; known: benchmarks "
            f"{', '.join(sorted(BENCHMARKS))}; models "
            f"{', '.join(workload_model_ids())} (use model or model:variant)"
        )
    return model.build(variant if sep else None)


def resolve_widths(ref: str) -> tuple[int, ...]:
    """Healthy node counts for a workload reference (fleet sampling)."""
    from repro.vasp.benchmarks import BENCHMARKS

    if ref in BENCHMARKS:
        case = BENCHMARKS[ref]
        return tuple(n for n in case.node_counts if n <= case.optimal_nodes)
    model_id = ref.partition(":")[0]
    return get_workload_model(model_id).default_widths
