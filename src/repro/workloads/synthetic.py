"""Synthetic workloads: the DGEMM/STREAM acceptance pair and a drain stub.

The paper's job scripts bracket every VASP run with STREAM and DGEMM
acceptance segments (Section III-B); :class:`GemmStreamWorkload` lifts
that pair into a standalone registrable workload — alternating
compute-saturating and bandwidth-saturating segments, useful as the
power-extremes probe of the zoo.

:class:`OutageWorkload` is the scenario layer's node-failure stub: a
near-idle "job" that occupies drained nodes for the outage duration so
the scheduler sees the capacity loss without a special code path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfmodel.kernels import GpuKernelProfile
from repro.runner.dgemm import dgemm_phase
from repro.runner.stream import stream_phase
from repro.vasp.parallel import CommunicationModel, ParallelConfig
from repro.vasp.phases import MacroPhase


@dataclass
class GemmStreamWorkload:
    """Alternating DGEMM/STREAM acceptance segments as one workload."""

    name: str = "gemm_stream"
    repeats: int = 5
    dgemm_s: float = 60.0
    stream_s: float = 60.0

    def __post_init__(self) -> None:
        if self.repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {self.repeats}")

    def phases(
        self,
        parallel: ParallelConfig | None = None,
        comm: CommunicationModel | None = None,
    ) -> list[MacroPhase]:
        """repeats x (STREAM then DGEMM), the acceptance-script order."""
        del parallel, comm  # single-GPU-shaped segments, no layout term
        phases: list[MacroPhase] = []
        for _ in range(self.repeats):
            phases.append(stream_phase(self.stream_s))
            phases.append(dgemm_phase(self.dgemm_s))
        return phases

    def uncapped_runtime_s(self, parallel: ParallelConfig | None = None) -> float:
        """Total runtime at default power limits."""
        return sum(p.duration_s for p in self.phases(parallel))


def gemm_stream_benchmark(variant: str = "standard") -> GemmStreamWorkload:
    """Preset acceptance campaigns: 'burst', 'standard', 'soak'."""
    presets = {
        "burst": GemmStreamWorkload(name="gemm_stream_burst", repeats=2),
        "standard": GemmStreamWorkload(name="gemm_stream_standard", repeats=5),
        "soak": GemmStreamWorkload(
            name="gemm_stream_soak", repeats=15, dgemm_s=120.0, stream_s=120.0
        ),
    }
    try:
        return presets[variant]
    except KeyError:
        raise ValueError(
            f"unknown gemm-stream variant {variant!r}; known: {', '.join(presets)}"
        ) from None


#: Drained-node profile: GPU idle, minimal host activity.
_DRAINED = GpuKernelProfile(
    name="outage_idle",
    compute_utilization=0.0,
    memory_utilization=0.0,
    compute_fraction=0.0,
    duty_cycle=0.0,
)


@dataclass
class OutageWorkload:
    """A node-failure drain: occupies nodes at idle for the outage."""

    name: str = "outage"
    duration_s: float = 600.0

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {self.duration_s}")

    def phases(
        self,
        parallel: ParallelConfig | None = None,
        comm: CommunicationModel | None = None,
    ) -> list[MacroPhase]:
        """One idle phase spanning the outage."""
        del parallel, comm
        return [
            MacroPhase(
                name="drained",
                duration_s=self.duration_s,
                gpu_profile=_DRAINED,
                cpu_utilization=0.02,
                mem_bw_utilization=0.02,
            )
        ]

    def uncapped_runtime_s(self, parallel: ParallelConfig | None = None) -> float:
        """The outage duration."""
        return self.duration_s


def outage_benchmark(variant: str = "10min") -> OutageWorkload:
    """Preset outages: '10min', '1h'."""
    presets = {
        "10min": OutageWorkload(name="outage_10min", duration_s=600.0),
        "1h": OutageWorkload(name="outage_1h", duration_s=3600.0),
    }
    try:
        return presets[variant]
    except KeyError:
        raise ValueError(
            f"unknown outage variant {variant!r}; known: {', '.join(presets)}"
        ) from None
