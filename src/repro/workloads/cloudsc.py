"""A CLOUDSC-style memory-bound vertical-loop stencil workload.

CLOUDSC is ECMWF's cloud-microphysics dwarf: for every atmospheric
column it sweeps a vertical loop over model levels updating a handful of
prognostic fields (cloud liquid/ice, rain, snow, vapour).  Columns are
independent, so the GPU port maps columns to threads and streams the
field arrays level by level — arithmetic intensity stays low (a few
flops per loaded byte) and the kernel pins HBM bandwidth, not the SMs.

Power-wise that makes CLOUDSC a STREAM-like pole of the zoo: moderate,
very flat draw, near-immune to SM-clock throttling under power caps —
the opposite of the tensor-core-bound HSE/RPA VASP methods.  The model
below reuses the library's roofline/occupancy machinery the same way the
MILC model does: per-timestep duration from streamed bytes over achieved
bandwidth, plus a host-side input/output phase per dump interval.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.perfmodel.dvfs import occupancy
from repro.perfmodel.kernels import GpuKernelProfile
from repro.perfmodel.roofline import RooflineModel
from repro.vasp.parallel import CommunicationModel, ParallelConfig
from repro.vasp.phases import MacroPhase

#: The vertical-loop microphysics sweep: streams every field over every
#: level; near-zero tensor-core use, saturated HBM.
MICROPHYSICS_SWEEP = GpuKernelProfile(
    name="cloudsc_sweep",
    compute_utilization=0.18,
    memory_utilization=0.88,
    compute_fraction=0.12,
)

#: Inter-timestep bookkeeping (halo-free: columns are independent, only
#: reductions for diagnostics cross ranks).
DIAGNOSTICS = GpuKernelProfile(
    name="cloudsc_diagnostics",
    compute_utilization=0.20,
    memory_utilization=0.35,
    compute_fraction=0.20,
)


@dataclass(frozen=True)
class CloudscParams:
    """Grid and stepping parameters of a CLOUDSC campaign.

    ``columns`` is the global horizontal point count (NGPTOT);
    ``levels`` the vertical extent (137 in the operational IFS grid);
    ``fields`` the prognostic/tendency arrays streamed per sweep.
    """

    columns: int = 262_144
    levels: int = 137
    timesteps: int = 240
    fields: int = 12
    dump_every: int = 60

    def __post_init__(self) -> None:
        if min(self.columns, self.levels, self.timesteps, self.fields) < 1:
            raise ValueError("columns, levels, timesteps and fields must be >= 1")
        if self.dump_every < 1:
            raise ValueError(f"dump_every must be >= 1, got {self.dump_every}")

    @property
    def points(self) -> int:
        """Global grid points (columns x levels)."""
        return self.columns * self.levels


@dataclass
class CloudscWorkload:
    """A CLOUDSC campaign expressed as engine-consumable macro-phases."""

    name: str = "cloudsc_medium"
    params: CloudscParams = CloudscParams()
    #: Bytes streamed per grid point per sweep (read + write over the
    #: prognostic fields, double precision).
    bytes_per_point: float = 2.0 * 8.0
    #: Achieved fraction of roofline bandwidth (strided level access).
    sweep_efficiency: float = 0.60

    def _occupancy(self, local_columns: float) -> float:
        """Occupancy saturates with resident columns per GPU."""
        return float(occupancy(local_columns, w_half=3.0e4, hill=1.2))

    def phases(
        self,
        parallel: ParallelConfig | None = None,
        comm: CommunicationModel | None = None,
    ) -> list[MacroPhase]:
        """The macro-phase sequence of the campaign."""
        layout = parallel if parallel is not None else ParallelConfig()
        network = comm if comm is not None else CommunicationModel()
        p = self.params
        roofline = RooflineModel()
        local_columns = p.columns / layout.total_ranks
        occ = self._occupancy(local_columns)

        sweep_profile = replace(
            MICROPHYSICS_SWEEP.scaled(occ), duty_cycle=min(0.96, 0.55 + occ / 2.5)
        )
        sweep_bytes = local_columns * p.levels * p.fields * self.bytes_per_point
        sweep_time = sweep_bytes / (
            roofline.peak_bandwidth * max(sweep_profile.memory_utilization, 1e-3)
        ) / self.sweep_efficiency

        diag_profile = replace(DIAGNOSTICS.scaled(occ), duty_cycle=0.5)
        # Diagnostics reduce a few scalars per field across all ranks.
        diag_time = 0.5 + p.fields * network.allreduce_time_s(
            8.0 * p.fields, layout.total_ranks, layout.n_nodes
        )

        phases: list[MacroPhase] = [
            MacroPhase(
                name="startup",
                duration_s=12.0,
                gpu_profile=replace(DIAGNOSTICS.scaled(0.1), duty_cycle=0.0),
                cpu_utilization=0.35,
                mem_bw_utilization=0.30,
            )
        ]
        for step in range(p.timesteps):
            phases.append(
                MacroPhase(
                    name="microphysics_sweep",
                    duration_s=sweep_time,
                    gpu_profile=sweep_profile,
                    cpu_utilization=0.05,
                    mem_bw_utilization=0.08,
                    nic_utilization=0.1 if layout.n_nodes > 1 else 0.02,
                )
            )
            phases.append(
                MacroPhase(
                    name="diagnostics",
                    duration_s=diag_time,
                    gpu_profile=diag_profile,
                    cpu_utilization=0.15,
                    mem_bw_utilization=0.10,
                )
            )
            if (step + 1) % p.dump_every == 0:
                # Field dump: host-side pack + write, GPU idle.
                phases.append(
                    MacroPhase(
                        name="field_dump",
                        duration_s=6.0,
                        gpu_profile=replace(DIAGNOSTICS.scaled(0.05), duty_cycle=0.0),
                        cpu_utilization=0.45,
                        mem_bw_utilization=0.50,
                    )
                )
        phases.append(
            MacroPhase(
                name="finalize",
                duration_s=5.0,
                gpu_profile=replace(DIAGNOSTICS.scaled(0.1), duty_cycle=0.0),
                cpu_utilization=0.25,
                mem_bw_utilization=0.25,
            )
        )
        return phases

    def uncapped_runtime_s(self, parallel: ParallelConfig | None = None) -> float:
        """Total runtime at default power limits."""
        return sum(p.duration_s for p in self.phases(parallel))


def cloudsc_benchmark(size: str = "medium") -> CloudscWorkload:
    """Preset CLOUDSC campaigns: 'small', 'medium', 'large'."""
    presets = {
        "small": CloudscParams(columns=65_536, timesteps=120),
        "medium": CloudscParams(columns=262_144, timesteps=240),
        "large": CloudscParams(columns=1_048_576, timesteps=240, dump_every=40),
    }
    try:
        params = presets[size]
    except KeyError:
        raise ValueError(
            f"unknown CLOUDSC size {size!r}; known: {', '.join(presets)}"
        ) from None
    return CloudscWorkload(name=f"cloudsc_{size}", params=params)
