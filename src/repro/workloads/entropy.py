"""An input-entropy-parameterized workload (Bhalachandra et al.).

The LBNL study in PAPERS.md shows that for several HPC kernels the
*content* of the input — its bit-level entropy — shifts GPU power draw
at nearly constant runtime: low-entropy (structured, compressible)
operands keep functional-unit toggling low, high-entropy (random-like)
operands flip more gates per cycle and draw tens of watts more for the
same instruction stream.  No structural workload feature (size, method,
node count) can see this; it only surfaces as a power delta between
otherwise identical runs.

The model captures that axis directly: ``entropy`` in [0, 1] scales the
achieved utilizations (the power model's proxy for switching activity)
between a low- and a high-toggle operating point while the phase
*durations* stay fixed — same schedule, different watts.  High-entropy
instances push compute utilization into cap-sensitive territory, which
is why the classifier keys on the entropy parameter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfmodel.kernels import GpuKernelProfile
from repro.vasp.parallel import CommunicationModel, ParallelConfig
from repro.vasp.phases import MacroPhase


@dataclass(frozen=True)
class EntropyParams:
    """Shape of an entropy-sweep campaign.

    ``entropy`` is the normalized input entropy in [0, 1];
    ``kernel_s`` the duration of each of the ``batches`` kernel
    batches (runtime is entropy-*independent* by construction).
    """

    entropy: float = 0.5
    batches: int = 24
    kernel_s: float = 45.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.entropy <= 1.0:
            raise ValueError(f"entropy must be in [0, 1], got {self.entropy}")
        if self.batches < 1:
            raise ValueError(f"batches must be >= 1, got {self.batches}")
        if self.kernel_s <= 0:
            raise ValueError(f"kernel_s must be positive, got {self.kernel_s}")


#: Entropy above which the workload draws like the higher-order class.
HIGH_ENTROPY_THRESHOLD = 0.6


@dataclass
class EntropyWorkload:
    """An entropy-parameterized kernel campaign as macro-phases."""

    name: str = "entropy_mid"
    params: EntropyParams = EntropyParams()
    #: Utilization operating points at entropy 0 and 1; the entropy
    #: parameter interpolates between them (toggling-rate proxy).
    compute_utilization_low: float = 0.45
    compute_utilization_high: float = 0.90
    memory_utilization_low: float = 0.35
    memory_utilization_high: float = 0.55

    def _profile(self) -> GpuKernelProfile:
        e = self.params.entropy
        compute = (
            self.compute_utilization_low
            + e * (self.compute_utilization_high - self.compute_utilization_low)
        )
        memory = (
            self.memory_utilization_low
            + e * (self.memory_utilization_high - self.memory_utilization_low)
        )
        # Clock sensitivity tracks how compute-bound the operating point
        # is; bounded away from the extremes like the catalogue profiles.
        compute_fraction = min(0.85, max(0.15, 0.25 + 0.55 * e))
        return GpuKernelProfile(
            name="entropy_kernel",
            compute_utilization=compute,
            memory_utilization=memory,
            compute_fraction=compute_fraction,
            duty_cycle=0.92,
        )

    def phases(
        self,
        parallel: ParallelConfig | None = None,
        comm: CommunicationModel | None = None,
    ) -> list[MacroPhase]:
        """The macro-phase sequence: fixed schedule, entropy-set watts."""
        del parallel, comm  # embarrassingly parallel batches, no halo
        p = self.params
        profile = self._profile()
        idle = GpuKernelProfile(
            name="entropy_stage",
            compute_utilization=0.05,
            memory_utilization=0.10,
            compute_fraction=0.10,
            duty_cycle=0.0,
        )
        phases: list[MacroPhase] = [
            MacroPhase(
                name="stage_inputs",
                duration_s=10.0,
                gpu_profile=idle,
                cpu_utilization=0.40,
                mem_bw_utilization=0.45,
            )
        ]
        for _ in range(p.batches):
            phases.append(
                MacroPhase(
                    name="entropy_kernel",
                    duration_s=p.kernel_s,
                    gpu_profile=profile,
                    cpu_utilization=0.06,
                    mem_bw_utilization=0.08,
                )
            )
        phases.append(
            MacroPhase(
                name="collect_outputs",
                duration_s=6.0,
                gpu_profile=idle,
                cpu_utilization=0.30,
                mem_bw_utilization=0.35,
            )
        )
        return phases

    def uncapped_runtime_s(self, parallel: ParallelConfig | None = None) -> float:
        """Total runtime at default power limits (entropy-independent)."""
        return sum(p.duration_s for p in self.phases(parallel))


def classify(workload: EntropyWorkload) -> str:
    """Class hint from the entropy parameter (scheduler-visible)."""
    if workload.params.entropy >= HIGH_ENTROPY_THRESHOLD:
        return "higher_order"
    return "basic_dft"


def entropy_benchmark(level: str = "mid") -> EntropyWorkload:
    """Preset entropy points: 'low' (0.1), 'mid' (0.5), 'high' (0.9)."""
    presets = {
        "low": EntropyParams(entropy=0.1),
        "mid": EntropyParams(entropy=0.5),
        "high": EntropyParams(entropy=0.9),
    }
    try:
        params = presets[level]
    except KeyError:
        raise ValueError(
            f"unknown entropy level {level!r}; known: {', '.join(presets)}"
        ) from None
    return EntropyWorkload(name=f"entropy_{level}", params=params)
