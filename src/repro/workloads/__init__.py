"""The workload zoo: a pluggable registry of modelled workloads.

Mirrors :mod:`repro.hardware.platform` for the workload axis — see
:mod:`repro.workloads.registry` for the model contract and
:mod:`repro.workloads.builtin` for the default entries.
"""

from repro.workloads.registry import (
    CLASS_HINTS,
    DEFAULT_MODEL_ID,
    ROOFLINE_REGIMES,
    WorkloadModel,
    get_workload_model,
    model_for,
    register_workload_model,
    resolve_widths,
    resolve_workload,
    workload_model_id,
    workload_model_ids,
    workload_refs,
)

# Importing the package registers the built-in zoo (must come after the
# registry import above; consumers inside this chain import
# repro.workloads.registry directly, which is already initialized).
from repro.workloads import builtin as _builtin  # noqa: E402,F401

__all__ = [
    "CLASS_HINTS",
    "DEFAULT_MODEL_ID",
    "ROOFLINE_REGIMES",
    "WorkloadModel",
    "get_workload_model",
    "model_for",
    "register_workload_model",
    "resolve_widths",
    "resolve_workload",
    "workload_model_id",
    "workload_model_ids",
    "workload_refs",
]
