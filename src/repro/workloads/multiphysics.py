"""An LLNL-style multi-physics package alternating compute/memory phases.

Production multi-physics codes (the LLNL study in PAPERS.md profiles one
on Sierra-class GPU nodes) advance a coupled simulation by cycling
through physics *packages* each timestep: a compute-bound hydrodynamics
or transport solve, then a memory-bound diffusion/EOS update, with
periodic host-side checkpoints in between.  The node power profile is a
square wave — near-TDP during the hydro package, a deep trough during
diffusion, idle spikes at checkpoints — exactly the phase-alternating
structure a single-regime workload model cannot express.

Under a power cap the two packages respond oppositely (hydro slows with
the SM clock, diffusion barely notices), so the workload's aggregate cap
sensitivity is set by the package duration ratio — which is why
:func:`classify` below weighs compute-bound *time*, not a static tag.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.perfmodel.dvfs import occupancy
from repro.perfmodel.kernels import GpuKernelProfile
from repro.perfmodel.roofline import RooflineModel
from repro.vasp.parallel import CommunicationModel, ParallelConfig
from repro.vasp.phases import MacroPhase

#: Hydrodynamics / transport package: dense small-matrix algebra per
#: zone, compute-bound and power-hungry.
HYDRO_PACKAGE = GpuKernelProfile(
    name="mp_hydro",
    compute_utilization=0.82,
    memory_utilization=0.50,
    compute_fraction=0.70,
)

#: Diffusion / EOS package: sparse stencil sweeps, bandwidth-bound.
DIFFUSION_PACKAGE = GpuKernelProfile(
    name="mp_diffusion",
    compute_utilization=0.25,
    memory_utilization=0.85,
    compute_fraction=0.15,
)


@dataclass(frozen=True)
class MultiPhysicsParams:
    """Cycle structure of a multi-physics campaign.

    ``zones`` is the global mesh size; per cycle the code runs
    ``hydro_subcycles`` hydro sweeps and ``diffusion_subcycles``
    diffusion solves, checkpointing every ``checkpoint_every`` cycles.
    """

    zones: int = 4_000_000
    cycles: int = 40
    hydro_subcycles: int = 3
    diffusion_subcycles: int = 2
    checkpoint_every: int = 10

    def __post_init__(self) -> None:
        if min(self.zones, self.cycles) < 1:
            raise ValueError("zones and cycles must be >= 1")
        if min(self.hydro_subcycles, self.diffusion_subcycles) < 1:
            raise ValueError("hydro and diffusion subcycles must be >= 1")
        if self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )


@dataclass
class MultiPhysicsWorkload:
    """A multi-physics campaign expressed as engine-consumable phases."""

    name: str = "multiphysics_medium"
    params: MultiPhysicsParams = MultiPhysicsParams()
    #: Flops of zonal algebra per zone per hydro subcycle.
    hydro_flops_per_zone: float = 3.0e4
    #: Bytes streamed per zone per diffusion subcycle.
    diffusion_bytes_per_zone: float = 9.0e2
    hydro_efficiency: float = 0.35
    diffusion_efficiency: float = 0.55
    #: Host-side checkpoint duration (GPU idle).
    checkpoint_s: float = 20.0

    def _occupancy(self, local_zones: float) -> float:
        """Occupancy saturates with resident zones per GPU."""
        return float(occupancy(local_zones, w_half=2.5e5, hill=1.2))

    def phases(
        self,
        parallel: ParallelConfig | None = None,
        comm: CommunicationModel | None = None,
    ) -> list[MacroPhase]:
        """The macro-phase sequence of the campaign."""
        layout = parallel if parallel is not None else ParallelConfig()
        network = comm if comm is not None else CommunicationModel()
        p = self.params
        roofline = RooflineModel()
        local_zones = p.zones / layout.total_ranks
        occ = self._occupancy(local_zones)

        hydro_profile = replace(
            HYDRO_PACKAGE.scaled(occ), duty_cycle=min(0.95, 0.5 + occ / 2)
        )
        hydro_flops = local_zones * self.hydro_flops_per_zone
        hydro_time = hydro_flops / (
            roofline.peak_flops * max(hydro_profile.compute_utilization, 1e-3)
        ) / self.hydro_efficiency

        diffusion_profile = replace(
            DIFFUSION_PACKAGE.scaled(occ), duty_cycle=min(0.93, 0.5 + occ / 2)
        )
        diffusion_bytes = local_zones * self.diffusion_bytes_per_zone
        # Each diffusion solve ends in a convergence all-reduce.
        surface = 6.0 * local_zones ** (2.0 / 3.0)
        halo_s = network.allreduce_time_s(
            surface * 8.0, layout.total_ranks, layout.n_nodes
        )
        diffusion_time = diffusion_bytes / (
            roofline.peak_bandwidth * max(diffusion_profile.memory_utilization, 1e-3)
        ) / self.diffusion_efficiency + halo_s

        phases: list[MacroPhase] = [
            MacroPhase(
                name="setup",
                duration_s=18.0,
                gpu_profile=replace(DIFFUSION_PACKAGE.scaled(0.1), duty_cycle=0.0),
                cpu_utilization=0.40,
                mem_bw_utilization=0.30,
            )
        ]
        for cycle in range(p.cycles):
            for _ in range(p.hydro_subcycles):
                phases.append(
                    MacroPhase(
                        name="hydro_package",
                        duration_s=hydro_time,
                        gpu_profile=hydro_profile,
                        cpu_utilization=0.08,
                        mem_bw_utilization=0.08,
                        nic_utilization=0.2 if layout.n_nodes > 1 else 0.03,
                    )
                )
            for _ in range(p.diffusion_subcycles):
                phases.append(
                    MacroPhase(
                        name="diffusion_package",
                        duration_s=diffusion_time,
                        gpu_profile=diffusion_profile,
                        cpu_utilization=0.06,
                        mem_bw_utilization=0.10,
                        nic_utilization=0.3 if layout.n_nodes > 1 else 0.03,
                    )
                )
            if (cycle + 1) % p.checkpoint_every == 0:
                phases.append(
                    MacroPhase(
                        name="checkpoint",
                        duration_s=self.checkpoint_s,
                        gpu_profile=replace(
                            DIFFUSION_PACKAGE.scaled(0.05), duty_cycle=0.0
                        ),
                        cpu_utilization=0.50,
                        mem_bw_utilization=0.60,
                    )
                )
        return phases

    def uncapped_runtime_s(self, parallel: ParallelConfig | None = None) -> float:
        """Total runtime at default power limits."""
        return sum(p.duration_s for p in self.phases(parallel))

    def compute_bound_fraction(
        self, parallel: ParallelConfig | None = None
    ) -> float:
        """Duration-weighted share of kernel time in compute-bound phases.

        The cheap classification signal: the hydro/diffusion duration
        ratio decides whether the campaign responds to caps like the
        higher-order (compute-bound) or basic-DFT (bandwidth-bound)
        class.  Uses only the phase schedule — no engine run.
        """
        compute = 0.0
        busy = 0.0
        for phase in self.phases(parallel):
            weight = phase.duration_s * phase.gpu_profile.duty_cycle
            busy += weight
            compute += weight * phase.gpu_profile.compute_fraction
        return compute / busy if busy > 0 else 0.0


def classify(workload: MultiPhysicsWorkload) -> str:
    """Class hint from the package duration ratio (scheduler-visible)."""
    if workload.compute_bound_fraction() >= 0.5:
        return "higher_order"
    return "basic_dft"


def multiphysics_benchmark(size: str = "medium") -> MultiPhysicsWorkload:
    """Preset multi-physics campaigns: 'small', 'medium', 'large'."""
    presets = {
        "small": MultiPhysicsParams(zones=1_000_000, cycles=20),
        "medium": MultiPhysicsParams(zones=4_000_000, cycles=40),
        "large": MultiPhysicsParams(
            zones=16_000_000, cycles=60, checkpoint_every=15
        ),
    }
    try:
        params = presets[size]
    except KeyError:
        raise ValueError(
            f"unknown multi-physics size {size!r}; known: {', '.join(presets)}"
        ) from None
    return MultiPhysicsWorkload(name=f"multiphysics_{size}", params=params)
