"""Built-in workload model registrations.

Importing :mod:`repro.workloads` registers the default zoo, the same way
importing :mod:`repro.hardware.platform` registers the default hardware:

* ``vasp`` — the paper's Table I benchmarks (the default model);
* ``milc`` — NERSC's second application (Section VI-B);
* ``gemm-stream`` — the acceptance-test pair (Section III-B);
* ``cloudsc`` — ECMWF's memory-bound vertical-loop stencil dwarf;
* ``multiphysics`` — an LLNL-style package-alternating production code;
* ``entropy`` — input-entropy-parameterized power draw (LBNL study);
* ``outage`` — the scenario layer's node-failure drain stub.
"""

from __future__ import annotations

from repro.apps.milc import MilcWorkload, milc_benchmark
from repro.vasp.workload import VaspWorkload
from repro.workloads import cloudsc, entropy, multiphysics
from repro.workloads.registry import WorkloadModel, register_workload_model
from repro.workloads.synthetic import (
    GemmStreamWorkload,
    OutageWorkload,
    gemm_stream_benchmark,
    outage_benchmark,
)


def _build_vasp(variant: str) -> VaspWorkload:
    from repro.vasp.benchmarks import BENCHMARKS

    return BENCHMARKS[variant].build()


def _classify_vasp(workload: VaspWorkload) -> str:
    if workload.incar.functional.is_higher_order:
        return "higher_order"
    return "basic_dft"


def _vasp_variants() -> tuple[str, ...]:
    from repro.vasp.benchmarks import benchmark_names

    return tuple(benchmark_names())


def register_builtin_models() -> None:
    """Register the default zoo (idempotent via replace)."""
    register_workload_model(
        WorkloadModel(
            id="vasp",
            family="dft",
            description="VASP plane-wave DFT (the paper's Table I benchmarks)",
            roofline="mixed",
            workload_type=VaspWorkload,
            builder=_build_vasp,
            variants=_vasp_variants(),
            default_variant="PdO4",
            default_widths=(1, 2, 4),
            class_hint="basic_dft",
            classifier=_classify_vasp,
        ),
        replace=True,
    )
    register_workload_model(
        WorkloadModel(
            id="milc",
            family="lattice-qcd",
            description="MILC staggered-fermion HMC (bandwidth-bound CG stencil)",
            roofline="memory-bound",
            workload_type=MilcWorkload,
            builder=milc_benchmark,
            variants=("small", "medium", "large"),
            default_variant="medium",
            default_widths=(1, 2, 4),
            class_hint="basic_dft",
        ),
        replace=True,
    )
    register_workload_model(
        WorkloadModel(
            id="gemm-stream",
            family="synthetic",
            description="DGEMM/STREAM acceptance pair (power-extremes probe)",
            roofline="alternating",
            workload_type=GemmStreamWorkload,
            builder=gemm_stream_benchmark,
            variants=("burst", "standard", "soak"),
            default_variant="standard",
            default_widths=(1,),
            class_hint="higher_order",  # the DGEMM half pins near-TDP draw
        ),
        replace=True,
    )
    register_workload_model(
        WorkloadModel(
            id="cloudsc",
            family="weather",
            description="CLOUDSC cloud-microphysics vertical-loop stencil (ECMWF)",
            roofline="memory-bound",
            workload_type=cloudsc.CloudscWorkload,
            builder=cloudsc.cloudsc_benchmark,
            variants=("small", "medium", "large"),
            default_variant="medium",
            default_widths=(1, 2),
            class_hint="basic_dft",
        ),
        replace=True,
    )
    register_workload_model(
        WorkloadModel(
            id="multiphysics",
            family="multi-physics",
            description="Package-alternating multi-physics code (LLNL study)",
            roofline="alternating",
            workload_type=multiphysics.MultiPhysicsWorkload,
            builder=multiphysics.multiphysics_benchmark,
            variants=("small", "medium", "large"),
            default_variant="medium",
            class_hint="basic_dft",
            classifier=multiphysics.classify,
        ),
        replace=True,
    )
    register_workload_model(
        WorkloadModel(
            id="entropy",
            family="synthetic",
            description="Input-entropy-parameterized power draw (LBNL study)",
            roofline="mixed",
            workload_type=entropy.EntropyWorkload,
            builder=entropy.entropy_benchmark,
            variants=("low", "mid", "high"),
            default_variant="mid",
            default_widths=(1,),
            class_hint="basic_dft",
            classifier=entropy.classify,
        ),
        replace=True,
    )
    register_workload_model(
        WorkloadModel(
            id="outage",
            family="synthetic",
            description="Node-failure drain stub (scenario failure events)",
            roofline="idle",
            workload_type=OutageWorkload,
            builder=outage_benchmark,
            variants=("10min", "1h"),
            default_variant="10min",
            default_widths=(1,),
            class_hint="other",
        ),
        replace=True,
    )


register_builtin_models()
