"""Fig 1: per-node power variation in a 4-node VASP job.

The paper runs Si256_hse on four nodes with STREAM, DGEMM and an idle gap
before the VASP segment, and observes (a) nodes draw slightly different
power, (b) the per-node offsets are consistent across segments (so they
are manufacturing, not workload, effects), and (c) idle power varies by up
to 100 W across nodes (410-510 W).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.runner.job import JobScript
from repro.vasp.benchmarks import BENCHMARKS
from repro.experiments.common import TELEMETRY_INTERVAL_S, make_nodes
from repro.experiments.report import format_table
from repro.telemetry.downsample import downsample_trace


@dataclass(frozen=True)
class SegmentPower:
    """Mean node power per job segment, for one node."""

    node_name: str
    stream_w: float
    dgemm_w: float
    idle_w: float
    vasp_w: float


@dataclass
class Fig01Result:
    """Per-node, per-segment mean power for the 4-node job."""

    segments: list[SegmentPower]
    idle_spread_w: float
    #: Rank order of nodes by power, per segment (for the consistency
    #: check: manufacturing offsets persist across segments).
    rank_orders: dict[str, tuple[int, ...]]


def run(n_nodes: int = 4, seed: int = 11) -> Fig01Result:
    """Run the Fig 1 job and extract per-node segment power."""
    workload = BENCHMARKS["Si256_hse"].build()
    nodes = make_nodes(n_nodes)
    job = JobScript(workload=workload, nodes=nodes, n_repeats=1)
    result = job.run(seed=seed).representative

    def window(name: str) -> tuple[float, float]:
        spans = result.phase_windows(name)
        if not spans:
            raise LookupError(f"phase {name!r} missing from the job")
        return spans[0]

    stream_w = window("stream_test")
    dgemm_w = window("dgemm_test")
    idle_w = window("idle")
    vasp_start = float(result.metadata["vasp_start_s"])

    segments = []
    per_segment: dict[str, list[float]] = {"stream": [], "dgemm": [], "idle": [], "vasp": []}
    for trace in result.traces:
        telem = downsample_trace(trace, TELEMETRY_INTERVAL_S)
        means = {
            "stream": float(np.mean(telem.window(*stream_w).node_power)),
            "dgemm": float(np.mean(telem.window(*dgemm_w).node_power)),
            "idle": float(np.mean(telem.window(*idle_w).node_power)),
            "vasp": float(
                np.mean(telem.window(vasp_start, result.runtime_s).node_power)
            ),
        }
        for key, value in means.items():
            per_segment[key].append(value)
        segments.append(
            SegmentPower(
                node_name=trace.node_name,
                stream_w=means["stream"],
                dgemm_w=means["dgemm"],
                idle_w=means["idle"],
                vasp_w=means["vasp"],
            )
        )
    rank_orders = {
        key: tuple(int(i) for i in np.argsort(values))
        for key, values in per_segment.items()
    }
    idle_values = per_segment["idle"]
    return Fig01Result(
        segments=segments,
        idle_spread_w=float(max(idle_values) - min(idle_values)),
        rank_orders=rank_orders,
    )


def render(result: Fig01Result) -> str:
    """ASCII rendering of the per-node segment power."""
    table = format_table(
        headers=["Node", "STREAM (W)", "DGEMM (W)", "Idle (W)", "VASP (W)"],
        rows=[
            [s.node_name, s.stream_w, s.dgemm_w, s.idle_w, s.vasp_w]
            for s in result.segments
        ],
        title="Fig 1: per-node power by job segment (Si256_hse, 4 nodes)",
    )
    return table + f"\nidle spread across nodes: {result.idle_spread_w:.0f} W"
