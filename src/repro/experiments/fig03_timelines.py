"""Fig 3: component power timelines for three representative benchmarks.

Si256_hse, GaAsBi-64 and Si128_acfdtr on a single node, with component
breakdown (CPU, 4 GPUs, memory, total), the text-box statistics (max /
median / min / high power mode per node), and the node-power histogram.
The paper's observations, reproduced here:

* GPUs account for >70 % of node power for the two hot workloads, with
  CPU + memory below 10 %;
* Si128_acfdtr has a flat CPU-resident section (un-ported exact
  diagonalization) and large power swings;
* GaAsBi-64 draws far less, its GPUs underutilized;
* high power mode per node ranges ~766-1814 W and stays well below the
  node's 2,350 W TDP even as maxima exceed 2,100 W on the hot cases.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.stats import DistributionSummary, summarize
from repro.experiments.common import MeasuredRun, run_workload
from repro.experiments.report import format_table, sparkline
from repro.vasp.benchmarks import BENCHMARKS

#: The three benchmarks shown in Fig 3.
FIG3_BENCHMARKS: tuple[str, ...] = ("Si256_hse", "GaAsBi-64", "Si128_acfdtr")


@dataclass
class TimelinePanel:
    """One Fig 3 panel: a benchmark's single-node component timeline."""

    name: str
    run: MeasuredRun
    node_stats: DistributionSummary
    gpu_fraction: float
    cpu_mem_fraction: float
    histogram_counts: np.ndarray
    histogram_edges_w: np.ndarray
    host_section_s: float

    @property
    def runtime_s(self) -> float:
        """Wall time of the run."""
        return self.run.runtime_s


@dataclass
class Fig03Result:
    """All three panels."""

    panels: list[TimelinePanel]

    def panel(self, name: str) -> TimelinePanel:
        """Look up a panel by benchmark name."""
        for p in self.panels:
            if p.name == name:
                return p
        raise KeyError(f"no panel for {name!r}")


def run(seed: int = 7, histogram_bins: int = 40) -> Fig03Result:
    """Run the three benchmarks on one node each and summarize."""
    panels = []
    for name in FIG3_BENCHMARKS:
        workload = BENCHMARKS[name].build()
        measured = run_workload(workload, n_nodes=1, seed=seed)
        telem = measured.telemetry[0]
        node_power = telem.node_power
        stats = summarize(node_power)
        gpu_fraction = float(np.mean(telem.gpu_total / node_power))
        cpu_mem = float(
            np.mean((telem.components["cpu"] + telem.components["memory"]) / node_power)
        )
        counts, edges = np.histogram(node_power, bins=histogram_bins)
        host_s = measured.result.phase_time_s("exact_diag_host")
        panels.append(
            TimelinePanel(
                name=name,
                run=measured,
                node_stats=stats,
                gpu_fraction=gpu_fraction,
                cpu_mem_fraction=cpu_mem,
                histogram_counts=counts,
                histogram_edges_w=edges,
                host_section_s=host_s,
            )
        )
    return Fig03Result(panels=panels)


def render(result: Fig03Result) -> str:
    """ASCII rendering: stats table plus a node-power sparkline per panel."""
    table = format_table(
        headers=[
            "Benchmark",
            "Runtime (s)",
            "Max (W)",
            "Median (W)",
            "Min (W)",
            "HPM (W)",
            "GPU share",
            "CPU+mem share",
        ],
        rows=[
            [
                p.name,
                p.runtime_s,
                p.node_stats.max_w,
                p.node_stats.median_w,
                p.node_stats.min_w,
                p.node_stats.high_power_mode_w,
                f"{p.gpu_fraction:.0%}",
                f"{p.cpu_mem_fraction:.0%}",
            ]
            for p in result.panels
        ],
        title="Fig 3: single-node power timelines (2-second averages)",
    )
    lines = [table, ""]
    for p in result.panels:
        lines.append(f"{p.name:14s} |{sparkline(p.run.telemetry[0].node_power, 60)}|")
    return "\n".join(lines)
