"""Fig 2: sampling-rate sensitivity of the power distribution.

The paper measures Si256_hse GPU power at 0.1-second resolution, then
down-samples to 0.5/1/2/5/10 s and shows: the high power mode is invariant
to the rate; its FWHM widens with coarser rates; the maximum shrinks
slightly; and the secondary mode disappears at the 10-second rate while
all three modes remain visible at 5 s or finer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.modes import find_modes, fwhm, high_power_mode
from repro.experiments.common import make_nodes, run_workload
from repro.experiments.report import format_table
from repro.telemetry.downsample import downsample_series
from repro.vasp.benchmarks import BENCHMARKS

#: The sampling rates of Fig 2, in seconds.
SAMPLING_RATES_S: tuple[float, ...] = (0.1, 0.5, 1.0, 2.0, 5.0, 10.0)


@dataclass(frozen=True)
class RatePoint:
    """Distribution statistics at one sampling rate."""

    rate_s: float
    max_w: float
    median_w: float
    min_w: float
    high_power_mode_w: float
    fwhm_w: float
    n_modes: int
    #: Whether the mid-power mode (the orbital-update phase, between the
    #: comm mode and the exchange mode) is still detected at this rate.
    mid_mode_detected: bool


#: GPU-power window that brackets the mid (orbital-update) mode.
MID_MODE_WINDOW_W: tuple[float, float] = (170.0, 280.0)


@dataclass
class Fig02Result:
    """The Fig 2 sweep: GPU power distribution vs sampling rate."""

    points: list[RatePoint]
    #: Modes found at the base (0.1 s) rate, for reference.
    base_mode_count: int


def run(seed: int = 7, min_prominence: float = 0.04) -> Fig02Result:
    """Run Si256_hse on one node and analyze GPU 0 at each rate."""
    workload = BENCHMARKS["Si256_hse"].build()
    measured = run_workload(workload, n_nodes=1, seed=seed, nodes=make_nodes(1))
    base = measured.result.traces[0]
    times = base.times
    series = base.gpu_power(0)
    points = []
    lo, hi = MID_MODE_WINDOW_W
    for rate in SAMPLING_RATES_S:
        _, values = downsample_series(times, series, rate)
        mode = high_power_mode(values, min_prominence=min_prominence)
        modes = find_modes(values, min_prominence=min_prominence)
        points.append(
            RatePoint(
                rate_s=rate,
                max_w=float(np.max(values)),
                median_w=float(np.median(values)),
                min_w=float(np.min(values)),
                high_power_mode_w=mode.power_w,
                fwhm_w=fwhm(values, mode=mode),
                n_modes=len(modes),
                mid_mode_detected=any(lo <= m.power_w <= hi for m in modes),
            )
        )
    return Fig02Result(points=points, base_mode_count=points[0].n_modes)


def render(result: Fig02Result) -> str:
    """ASCII rendering of the sampling-rate sweep."""
    return format_table(
        headers=[
            "Rate (s)",
            "Max (W)",
            "Median (W)",
            "Min (W)",
            "High power mode (W)",
            "FWHM (W)",
            "Modes",
            "Mid mode",
        ],
        rows=[
            [
                p.rate_s,
                p.max_w,
                p.median_w,
                p.min_w,
                p.high_power_mode_w,
                p.fwhm_w,
                p.n_modes,
                p.mid_mode_detected,
            ]
            for p in result.points
        ],
        title="Fig 2: GPU power distribution vs sampling rate (Si256_hse, per GPU)",
    )
