"""System-power study: what application capping does to facility power.

The paper's opening problem is facility-level: job-driven temporal
variation dominates system power swings, and operating under a budget
requires taming it.  This experiment runs a production-like VASP job
stream on a node pool twice — uncapped and under the 50 %-of-TDP policy —
and compares the *system* power timeline: mean, peak, and temporal
variability (the quantity ref [14] found dominated by job variation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.capping.fleet import FleetReport, compare_fleet_policies
from repro.experiments.report import format_table


@dataclass
class SystemPowerResult:
    """Capped vs uncapped fleet reports on the same stream."""

    capped: FleetReport
    uncapped: FleetReport

    def peak_reduction(self) -> float:
        """Relative reduction of the system power peak."""
        return 1.0 - self.capped.peak_power_w / self.uncapped.peak_power_w

    def variability_reduction(self) -> float:
        """Relative reduction of system-power temporal std."""
        return 1.0 - self.capped.power_std_w / self.uncapped.power_std_w

    def makespan_penalty(self) -> float:
        """Relative makespan increase the policy costs (can be ~0)."""
        return self.capped.makespan_s / self.uncapped.makespan_s - 1.0


def run(n_jobs: int = 24, n_nodes: int = 16, seed: int = 3) -> SystemPowerResult:
    """Run the fleet comparison."""
    capped, uncapped = compare_fleet_policies(
        n_jobs=n_jobs, n_nodes=n_nodes, seed=seed
    )
    return SystemPowerResult(capped=capped, uncapped=uncapped)


def render(result: SystemPowerResult) -> str:
    """ASCII rendering of the system-power comparison."""
    table = format_table(
        headers=[
            "Policy",
            "Mean system W",
            "Peak system W",
            "Std (W)",
            "CV",
            "Makespan (s)",
            "Jobs",
        ],
        rows=[
            [
                r.policy_name,
                r.mean_power_w,
                r.peak_power_w,
                r.power_std_w,
                f"{r.coefficient_of_variation:.3f}",
                r.makespan_s,
                r.jobs_completed,
            ]
            for r in (result.capped, result.uncapped)
        ],
        title="System power under a production-like VASP stream",
    )
    return table + (
        f"\ncapping reduces the system power peak by "
        f"{result.peak_reduction():.0%} and temporal variability by "
        f"{result.variability_reduction():.0%}, for a "
        f"{max(result.makespan_penalty(), 0.0):.1%} makespan penalty."
    )
