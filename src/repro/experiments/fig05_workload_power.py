"""Fig 5: high power mode per node vs node count, for all seven workloads.

The paper's central observation: power varies far more across *workloads*
(766-1810 W per node) than across *concurrency* — as long as the job runs
at reasonable parallel efficiency (>= 70 %), the high power mode barely
moves with node count, and only starts dropping visibly below that line.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.modes import high_power_mode_w
from repro.experiments.report import format_table
from repro.runner.sweep import RunSpec, SweepExecutor
from repro.vasp.benchmarks import BENCHMARKS


def _node_hpm(spec: RunSpec) -> float:
    """Worker-side reduction: run a spec, return only the node HPM.

    Module-level so process-pool sweeps pickle the function and ship a
    float back instead of a full :class:`MeasuredRun`.
    """
    measured = spec.execute()
    return high_power_mode_w(measured.telemetry[0].node_power)


@dataclass(frozen=True)
class PowerPoint:
    """High power mode per node at one node count."""

    n_nodes: int
    high_power_mode_w: float


@dataclass
class WorkloadPowerCurve:
    """One benchmark's power-vs-concurrency curve."""

    name: str
    points: list[PowerPoint]
    optimal_nodes: int

    def hpm_at(self, n_nodes: int) -> float:
        """High power mode at a node count in the sweep."""
        for p in self.points:
            if p.n_nodes == n_nodes:
                return p.high_power_mode_w
        raise KeyError(f"{self.name} was not run at {n_nodes} nodes")


@dataclass
class Fig05Result:
    """All seven curves."""

    curves: list[WorkloadPowerCurve]

    def curve(self, name: str) -> WorkloadPowerCurve:
        """Look up one benchmark's curve."""
        for c in self.curves:
            if c.name == name:
                return c
        raise KeyError(f"no curve for {name!r}")

    def workload_spread_w(self) -> float:
        """Spread of single-node (reference) HPM across workloads."""
        firsts = [c.points[0].high_power_mode_w for c in self.curves]
        return max(firsts) - min(firsts)

    def max_concurrency_spread_w(self, within_efficiency: bool = True) -> float:
        """Largest within-workload HPM spread (optionally PE >= 70 % only)."""
        spreads = []
        for c in self.curves:
            points = (
                [p for p in c.points if p.n_nodes <= c.optimal_nodes]
                if within_efficiency
                else c.points
            )
            values = [p.high_power_mode_w for p in points]
            spreads.append(max(values) - min(values))
        return max(spreads)


def run(seed: int = 7, node_counts: dict[str, tuple[int, ...]] | None = None) -> Fig05Result:
    """Measure the HPM of every benchmark at each of its node counts.

    The benchmark x node-count grid runs through one
    :class:`~repro.runner.sweep.SweepExecutor` sweep, reducing to the HPM
    inside each worker.
    """
    grid: list[tuple[str, tuple[int, ...]]] = []
    specs: list[RunSpec] = []
    for name, case in BENCHMARKS.items():
        counts = tuple((node_counts or {}).get(name, case.node_counts))
        grid.append((name, counts))
        workload = case.build()
        specs.extend(RunSpec(workload, n_nodes=n, seed=seed) for n in counts)
    hpms = iter(SweepExecutor().map(_node_hpm, specs))
    curves = []
    for name, counts in grid:
        points = [
            PowerPoint(n_nodes=n, high_power_mode_w=next(hpms)) for n in counts
        ]
        curves.append(
            WorkloadPowerCurve(
                name=name, points=points, optimal_nodes=BENCHMARKS[name].optimal_nodes
            )
        )
    return Fig05Result(curves=curves)


def render(result: Fig05Result) -> str:
    """ASCII rendering of the power-vs-concurrency curves."""
    node_counts = sorted({p.n_nodes for c in result.curves for p in c.points})
    rows = []
    for curve in result.curves:
        by_n = {p.n_nodes: p.high_power_mode_w for p in curve.points}
        rows.append(
            [curve.name]
            + [f"{by_n[n]:.0f}" if n in by_n else "" for n in node_counts]
        )
    table = format_table(
        headers=["Benchmark"] + [f"{n}n (W)" for n in node_counts],
        rows=rows,
        title="Fig 5: high power mode per node vs node count",
    )
    return (
        table
        + f"\nworkload spread: {result.workload_spread_w():.0f} W; "
        f"max concurrency spread (PE>=70%): {result.max_concurrency_spread_w():.0f} W"
    )
