"""Fig 10: efficacy of GPU power capping.

Each benchmark runs at its optimal node count under caps of 400 (default),
300, 200 and 100 W; the figure reports the high power mode *per GPU* as a
fraction of the applied cap.  Capping is effective — the fraction stays at
or below one — except at the 100 W floor, where the controller's
regulation error lets sustained power exceed the cap slightly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.modes import high_power_mode_w
from repro.experiments.report import format_table
from repro.runner.sweep import RunSpec, SweepExecutor
from repro.vasp.benchmarks import BENCHMARKS

#: The four power caps of Section V, in watts.
POWER_CAPS_W: tuple[float, ...] = (400.0, 300.0, 200.0, 100.0)


def _gpu_hpm(spec: RunSpec) -> float:
    """Worker-side reduction: run a spec, return GPU 0's HPM."""
    measured = spec.execute()
    return high_power_mode_w(measured.telemetry[0].gpu_power(0))


@dataclass(frozen=True)
class CapPoint:
    """One (benchmark, cap): per-GPU HPM and its fraction of the cap."""

    benchmark: str
    cap_w: float
    gpu_hpm_w: float

    @property
    def fraction_of_cap(self) -> float:
        """High power mode per GPU divided by the applied cap."""
        return self.gpu_hpm_w / self.cap_w


@dataclass
class Fig10Result:
    """The cap-efficacy sweep."""

    points: list[CapPoint]

    def fractions(self, cap_w: float) -> dict[str, float]:
        """Benchmark -> fraction at one cap."""
        return {
            p.benchmark: p.fraction_of_cap for p in self.points if p.cap_w == cap_w
        }


def run(
    caps_w: tuple[float, ...] = POWER_CAPS_W, seed: int = 7
) -> Fig10Result:
    """Run every benchmark at its optimal node count under each cap.

    The benchmark x cap grid executes as one sweep, reducing to the
    per-GPU HPM inside each worker.
    """
    grid = [
        (name, case, cap) for name, case in BENCHMARKS.items() for cap in caps_w
    ]
    specs = [
        RunSpec(case.build(), n_nodes=case.optimal_nodes, gpu_cap_w=cap, seed=seed)
        for _, case, cap in grid
    ]
    hpms = SweepExecutor().map(_gpu_hpm, specs)
    points = [
        CapPoint(benchmark=name, cap_w=cap, gpu_hpm_w=hpm)
        for (name, _, cap), hpm in zip(grid, hpms)
    ]
    return Fig10Result(points=points)


def render(result: Fig10Result) -> str:
    """ASCII rendering: fraction-of-cap per benchmark per cap."""
    caps = sorted({p.cap_w for p in result.points}, reverse=True)
    benchmarks = list(dict.fromkeys(p.benchmark for p in result.points))
    rows = []
    for name in benchmarks:
        row: list[object] = [name]
        for cap in caps:
            match = next(
                p for p in result.points if p.benchmark == name and p.cap_w == cap
            )
            row.append(f"{match.fraction_of_cap:.2f}")
        rows.append(row)
    return format_table(
        headers=["Benchmark"] + [f"{c:.0f} W cap" for c in caps],
        rows=rows,
        title="Fig 10: per-GPU high power mode as a fraction of the applied cap",
    )
