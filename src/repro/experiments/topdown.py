"""Section VI-B: the top-down (telemetry-only) workload classification.

Clusters the power profiles of the full job population — the seven VASP
benchmarks plus the MILC campaigns — into power classes using nothing but
the measured node-power series, and checks the result against the
bottom-up taxonomy (higher-order HSE/RPA vs basic DFT) the paper derived
from deep application knowledge.  Agreement between the two routes is the
prerequisite for scaling power-aware scheduling beyond hand-profiled
applications.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.milc import milc_benchmark
from repro.experiments.common import TELEMETRY_INTERVAL_S, make_nodes, run_workload
from repro.experiments.report import format_table
from repro.prediction.clustering import classify_jobs, profile_features
from repro.runner.engine import PowerEngine
from repro.telemetry.downsample import downsample_trace
from repro.vasp.benchmarks import BENCHMARKS
from repro.vasp.parallel import ParallelConfig

#: Ground-truth classes from the bottom-up (application-knowledge) route.
BOTTOM_UP_CLASSES: dict[str, int] = {
    "Si256_hse": 1,
    "B.hR105_hse": 1,
    "Si128_acfdtr": 1,
    "PdO4": 0,
    "PdO2": 0,
    "GaAsBi-64": 0,
    "CuC_vdw": 0,
    "milc_small": 0,
    "milc_medium": 0,
}


@dataclass
class TopDownResult:
    """Telemetry-only classes vs the bottom-up taxonomy."""

    assigned: dict[str, int]
    bottom_up: dict[str, int]
    hpm_by_job: dict[str, float]

    def agreement(self) -> float:
        """Fraction of jobs whose class matches the bottom-up label."""
        matches = sum(
            1 for name, label in self.assigned.items() if label == self.bottom_up[name]
        )
        return matches / len(self.assigned)


def run(k: int = 2, seed: int = 7) -> TopDownResult:
    """Profile the job population and cluster it by power alone."""
    series = {}
    hpm = {}
    for name, case in BENCHMARKS.items():
        measured = run_workload(case.build(), n_nodes=1, seed=seed)
        series[name] = measured.telemetry[0].node_power
    for size in ("small", "medium"):
        workload = milc_benchmark(size)
        result = PowerEngine(make_nodes(1)).run(
            workload.phases(ParallelConfig(1)), seed=seed
        )
        series[workload.name] = downsample_trace(
            result.traces[0], TELEMETRY_INTERVAL_S
        ).node_power
    for name, values in series.items():
        hpm[name] = float(profile_features(values)[0])
    assigned = classify_jobs(series, k=k, seed=seed)
    return TopDownResult(
        assigned=assigned,
        bottom_up={name: BOTTOM_UP_CLASSES[name] for name in assigned},
        hpm_by_job=hpm,
    )


def render(result: TopDownResult) -> str:
    """ASCII rendering of the class comparison."""
    table = format_table(
        headers=["Job", "HPM (W)", "Top-down class", "Bottom-up class", "Match"],
        rows=[
            [
                name,
                result.hpm_by_job[name],
                result.assigned[name],
                result.bottom_up[name],
                result.assigned[name] == result.bottom_up[name],
            ]
            for name in sorted(result.assigned, key=lambda n: -result.hpm_by_job[n])
        ],
        title="Section VI-B: top-down power classes vs bottom-up taxonomy",
    )
    return table + f"\nagreement: {result.agreement():.0%}"
