"""Fig 12: VASP performance under GPU power caps.

Performance normalized to the default 400 W limit, per benchmark, at each
benchmark's optimal node count.  The paper's findings:

* 300 W: no visible performance loss for any benchmark;
* 200 W: ~9 % slowdown for the two power-hungriest (Si256_hse,
  Si128_acfdtr), insignificant for the rest;
* 100 W: ~60 % slowdown for those two, while GaAsBi-64 and PdO2 still
  lose <5 %.

Hence the headline: a 50 %-of-TDP cap costs most VASP workloads less
than 10 %.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.report import format_table
from repro.runner.sweep import EstimateSpec, SweepExecutor
from repro.vasp.benchmarks import BENCHMARKS

#: The caps of Section V.
POWER_CAPS_W: tuple[float, ...] = (400.0, 300.0, 200.0, 100.0)


@dataclass(frozen=True)
class PerformanceRow:
    """One benchmark's normalized performance at each cap."""

    benchmark: str
    n_nodes: int
    #: cap watts -> performance relative to the 400 W default.
    normalized: dict[float, float]

    def at(self, cap_w: float) -> float:
        """Normalized performance at one cap."""
        return self.normalized[cap_w]


@dataclass
class Fig12Result:
    """All benchmarks' cap response."""

    rows: list[PerformanceRow]

    def row(self, benchmark: str) -> PerformanceRow:
        """Look up one benchmark."""
        for r in self.rows:
            if r.benchmark == benchmark:
                return r
        raise KeyError(f"no row for {benchmark!r}")


def run(caps_w: tuple[float, ...] = POWER_CAPS_W) -> Fig12Result:
    """Compute the cap response with the deterministic estimator.

    Performance ratios are runtime ratios; the estimator applies the same
    DVFS model the engine uses, without sampling noise.  The benchmark x
    cap grid runs as one sweep — the 400 W baseline deduplicates against
    the grid point that shares it.
    """
    cases = [(name, case.optimal_nodes, case.build()) for name, case in BENCHMARKS.items()]
    specs = [
        EstimateSpec(workload, n_nodes=n, cap_w=cap)
        for _, n, workload in cases
        for cap in (400.0, *caps_w)
    ]
    estimates = iter(SweepExecutor().run(specs))
    rows = []
    for name, n, _ in cases:
        base = next(estimates).runtime_s
        normalized = {cap: base / next(estimates).runtime_s for cap in caps_w}
        rows.append(PerformanceRow(benchmark=name, n_nodes=n, normalized=normalized))
    return Fig12Result(rows=rows)


def render(result: Fig12Result) -> str:
    """ASCII rendering of the cap-response table."""
    caps = sorted(next(iter(result.rows)).normalized, reverse=True)
    return format_table(
        headers=["Benchmark (nodes)"] + [f"{c:.0f} W" for c in caps],
        rows=[
            [f"{r.benchmark} ({r.n_nodes})"] + [f"{r.normalized[c]:.3f}" for c in caps]
            for r in result.rows
        ],
        title="Fig 12: performance normalized to the default 400 W power limit",
    )
