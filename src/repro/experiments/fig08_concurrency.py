"""Fig 8: power and energy-to-solution vs concurrency (Si256_hse).

Power stays steady across the node counts where parallel efficiency is
healthy (>= 70 %) and drops at higher concurrency as communication time
dilutes GPU activity; energy-to-solution increases monotonically with
node count throughout.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.modes import high_power_mode_w
from repro.experiments.report import format_table
from repro.runner.sweep import EstimateSpec, RunSpec, SweepExecutor
from repro.vasp.benchmarks import BENCHMARKS

#: Node counts swept (Si256_hse's Fig 4/5 sweep).
NODE_COUNTS: tuple[int, ...] = (1, 2, 4, 8, 16)


def _measure(spec: RunSpec) -> tuple[float, float, float]:
    """Worker-side reduction: (node HPM, runtime, energy) for one spec."""
    measured = spec.execute()
    return (
        high_power_mode_w(measured.telemetry[0].node_power),
        measured.runtime_s,
        measured.energy_mj(),
    )


@dataclass(frozen=True)
class ConcurrencyPoint:
    """One node count: power, runtime, energy, efficiency."""

    n_nodes: int
    high_power_mode_w: float
    runtime_s: float
    energy_mj: float
    parallel_efficiency: float


@dataclass
class Fig08Result:
    """The concurrency sweep."""

    points: list[ConcurrencyPoint]

    def energies(self) -> list[float]:
        """Energy-to-solution per node count, in sweep order."""
        return [p.energy_mj for p in self.points]

    def hpms(self) -> list[float]:
        """High power mode per node count, in sweep order."""
        return [p.high_power_mode_w for p in self.points]


def run(
    node_counts: tuple[int, ...] = NODE_COUNTS, seed: int = 7
) -> Fig08Result:
    """Run Si256_hse at each node count (one sweep for the whole grid)."""
    workload = BENCHMARKS["Si256_hse"].build()
    executor = SweepExecutor()
    estimates = executor.run([EstimateSpec(workload, n_nodes=n) for n in node_counts])
    ref = estimates[0].runtime_s
    measured = executor.map(
        _measure, [RunSpec(workload, n_nodes=n, seed=seed) for n in node_counts]
    )
    points = []
    for n, est, (hpm, runtime, energy) in zip(node_counts, estimates, measured):
        points.append(
            ConcurrencyPoint(
                n_nodes=n,
                high_power_mode_w=hpm,
                runtime_s=runtime,
                energy_mj=energy,
                parallel_efficiency=ref / est.runtime_s / (n / node_counts[0]),
            )
        )
    return Fig08Result(points=points)


def render(result: Fig08Result) -> str:
    """ASCII rendering of the concurrency sweep."""
    return format_table(
        headers=["Nodes", "HPM/node (W)", "Runtime (s)", "Energy (MJ)", "PE"],
        rows=[
            [p.n_nodes, p.high_power_mode_w, p.runtime_s, p.energy_mj, p.parallel_efficiency]
            for p in result.points
        ],
        title="Fig 8: Si256_hse power and energy vs concurrency",
    )
