"""Fig 11: effect of a 200 W GPU cap on the Si128_acfdtr timeline.

The capped run's power peaks drop by about half while the troughs (the
CPU-resident exact-diagonalization section) are untouched — capping both
reduces power and flattens within-job power variation — and the capped
execution is visibly slower.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import MeasuredRun, run_workload
from repro.experiments.report import format_table, sparkline
from repro.vasp.benchmarks import BENCHMARKS

#: The cap used in the paper's Fig 11.
CAP_W: float = 200.0


@dataclass
class Fig11Result:
    """Uncapped and capped runs of Si128_acfdtr on one node."""

    uncapped: MeasuredRun
    capped: MeasuredRun
    cap_w: float

    def peak_reduction(self) -> float:
        """Relative reduction of the node-power peak (95th percentile)."""
        high_un = float(np.percentile(self.uncapped.telemetry[0].node_power, 95))
        high_cap = float(np.percentile(self.capped.telemetry[0].node_power, 95))
        return 1.0 - high_cap / high_un

    def trough_change(self) -> float:
        """Relative change of the node-power trough (5th percentile)."""
        low_un = float(np.percentile(self.uncapped.telemetry[0].node_power, 5))
        low_cap = float(np.percentile(self.capped.telemetry[0].node_power, 5))
        return abs(low_cap / low_un - 1.0)

    def slowdown(self) -> float:
        """Capped runtime over uncapped runtime."""
        return self.capped.runtime_s / self.uncapped.runtime_s

    def power_variation_reduction(self) -> float:
        """How much the cap narrows within-job power swings."""
        spread_un = float(np.ptp(self.uncapped.telemetry[0].node_power))
        spread_cap = float(np.ptp(self.capped.telemetry[0].node_power))
        return 1.0 - spread_cap / spread_un


def run(cap_w: float = CAP_W, seed: int = 7) -> Fig11Result:
    """Run Si128_acfdtr with and without the cap."""
    workload = BENCHMARKS["Si128_acfdtr"].build()
    uncapped = run_workload(workload, n_nodes=1, seed=seed)
    capped = run_workload(workload, n_nodes=1, gpu_cap_w=cap_w, seed=seed)
    return Fig11Result(uncapped=uncapped, capped=capped, cap_w=cap_w)


def render(result: Fig11Result) -> str:
    """ASCII rendering: summary stats plus both node-power sparklines."""
    table = format_table(
        headers=["Run", "Runtime (s)", "Peak node W (p95)", "Trough node W (p5)"],
        rows=[
            [
                "default (400 W)",
                result.uncapped.runtime_s,
                float(np.percentile(result.uncapped.telemetry[0].node_power, 95)),
                float(np.percentile(result.uncapped.telemetry[0].node_power, 5)),
            ],
            [
                f"{result.cap_w:.0f} W cap",
                result.capped.runtime_s,
                float(np.percentile(result.capped.telemetry[0].node_power, 95)),
                float(np.percentile(result.capped.telemetry[0].node_power, 5)),
            ],
        ],
        title="Fig 11: Si128_acfdtr with and without a 200 W GPU cap",
    )
    return (
        table
        + f"\npeak reduction: {result.peak_reduction():.0%}, "
        f"trough change: {result.trough_change():.1%}, slowdown: {result.slowdown():.2f}x\n"
        + f"uncapped |{sparkline(result.uncapped.telemetry[0].node_power, 60)}|\n"
        + f"capped   |{sparkline(result.capped.telemetry[0].node_power, 60)}|"
    )
