"""Table I: the seven VASP benchmarks and their computational parameters.

Regenerates the paper's benchmark-description table from the workload
definitions, which pin the published values (electrons, ions, functional,
algorithm, NELM, NBANDS, FFT grid, NPLWV, k-mesh, KPAR).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vasp.benchmarks import BENCHMARKS
from repro.vasp.methods import Algorithm
from repro.experiments.report import format_table

#: FFT grids as published in Table I (NPLWV = product).
PUBLISHED_GRIDS: dict[str, tuple[int, int, int]] = {
    "Si256_hse": (80, 80, 80),
    "B.hR105_hse": (48, 48, 48),
    "PdO4": (80, 120, 54),
    "PdO2": (80, 60, 54),
    "GaAsBi-64": (70, 70, 70),
    "CuC_vdw": (70, 70, 210),
    "Si128_acfdtr": (60, 60, 60),
}


@dataclass(frozen=True)
class Table1Row:
    """One benchmark column of Table I (transposed to a row here)."""

    name: str
    electrons: float
    ions: int
    functional: str
    algo: str
    nelm: int
    nelmdl: int
    nbands: int | None
    nbandsexact: int | None
    fft_grid: tuple[int, int, int]
    nplwv: int
    kpoints: tuple[int, int, int]
    kpar: int


def run() -> list[Table1Row]:
    """Build the Table I rows from the benchmark definitions."""
    rows = []
    for name, case in BENCHMARKS.items():
        workload = case.build()
        incar = workload.incar
        rows.append(
            Table1Row(
                name=name,
                electrons=workload.nelect,
                ions=workload.structure.n_atoms,
                functional=incar.functional.value,
                algo=incar.algo.value,
                nelm=incar.nelm,
                nelmdl=incar.nelmdl,
                nbands=None if incar.algo is Algorithm.ACFDTR else workload.nbands,
                nbandsexact=incar.nbandsexact,
                fft_grid=PUBLISHED_GRIDS[name],
                nplwv=workload.nplwv,
                kpoints=(workload.kpoints.n1, workload.kpoints.n2, workload.kpoints.n3),
                kpar=incar.kpar,
            )
        )
    return rows


def render(rows: list[Table1Row]) -> str:
    """ASCII rendering of Table I."""
    return format_table(
        headers=[
            "Benchmark",
            "Electrons (Ions)",
            "Functional",
            "Algo",
            "NELM (NELMDL)",
            "NBANDS",
            "NBANDSEXACT",
            "FFT grid",
            "NPLWV",
            "KPOINTS (KPAR)",
        ],
        rows=[
            [
                r.name,
                f"{r.electrons:.0f} ({r.ions})",
                r.functional,
                r.algo,
                f"{r.nelm} ({r.nelmdl})",
                r.nbands if r.nbands is not None else "",
                r.nbandsexact if r.nbandsexact is not None else "",
                "x".join(str(g) for g in r.fft_grid),
                r.nplwv,
                f"{r.kpoints[0]} {r.kpoints[1]} {r.kpoints[2]} ({r.kpar})",
            ]
            for r in rows
        ],
        title="Table I: VASP benchmark suite",
    )
