"""Fig 6: power vs system size for silicon supercells.

DFT with the default (Blocked Davidson) scheme on one node, sizes from 32
to 4,096 atoms.  Power rises with size and plateaus as the four GPUs
approach their combined TDP; the paper finds ~2,048 atoms are needed to
saturate the GPUs.  Error bars are the FWHM of the high power mode.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.modes import fwhm, high_power_mode
from repro.experiments.common import run_workload
from repro.experiments.report import format_table
from repro.vasp.benchmarks import SILICON_SIZES, silicon_workload

#: Default sweep sizes (atoms), covering the paper's NPLWV/NBANDS ranges.
DEFAULT_SIZES: tuple[int, ...] = tuple(sorted(SILICON_SIZES))


@dataclass(frozen=True)
class SizePoint:
    """One supercell size: HPM per node and per four GPUs, with FWHM."""

    n_atoms: int
    nplwv: int
    nbands: int
    node_hpm_w: float
    node_fwhm_w: float
    gpu4_hpm_w: float
    gpu4_fwhm_w: float
    runtime_s: float


@dataclass
class Fig06Result:
    """The size sweep."""

    points: list[SizePoint]

    def plateau_ratio(self) -> float:
        """HPM(largest) / HPM(2048 atoms) — ~1 when saturated at 2048."""
        by_n = {p.n_atoms: p.gpu4_hpm_w for p in self.points}
        if 2048 not in by_n:
            raise KeyError("sweep must include the 2048-atom point")
        largest = max(by_n)
        return by_n[largest] / by_n[2048]


def run(
    sizes: tuple[int, ...] = DEFAULT_SIZES, nelm: int = 6, seed: int = 7
) -> Fig06Result:
    """Run the size sweep on a single node."""
    points = []
    for n_atoms in sizes:
        workload = silicon_workload(n_atoms, "dft_normal", nelm=nelm)
        measured = run_workload(workload, n_nodes=1, seed=seed)
        telem = measured.telemetry[0]
        node_mode = high_power_mode(telem.node_power)
        gpu_mode = high_power_mode(telem.gpu_total)
        points.append(
            SizePoint(
                n_atoms=n_atoms,
                nplwv=workload.nplwv,
                nbands=workload.nbands,
                node_hpm_w=node_mode.power_w,
                node_fwhm_w=fwhm(telem.node_power, mode=node_mode),
                gpu4_hpm_w=gpu_mode.power_w,
                gpu4_fwhm_w=fwhm(telem.gpu_total, mode=gpu_mode),
                runtime_s=measured.runtime_s,
            )
        )
    return Fig06Result(points=points)


def render(result: Fig06Result) -> str:
    """ASCII rendering of the size sweep."""
    return format_table(
        headers=[
            "Atoms",
            "NPLWV",
            "NBANDS",
            "Node HPM (W)",
            "Node FWHM (W)",
            "4-GPU HPM (W)",
            "4-GPU FWHM (W)",
        ],
        rows=[
            [
                p.n_atoms,
                p.nplwv,
                p.nbands,
                p.node_hpm_w,
                p.node_fwhm_w,
                p.gpu4_hpm_w,
                p.gpu4_fwhm_w,
            ]
            for p in result.points
        ],
        title="Fig 6: VASP power vs silicon supercell size (1 node, DFT/Davidson)",
    )
