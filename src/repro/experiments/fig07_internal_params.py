"""Fig 7: power vs internal parameters (NPLWV left, NBANDS right).

Si256_hse on one node.  The paper's finding mirrors VASP's parallelization
strategy: plane waves are distributed *within* a GPU, so more plane waves
means more simultaneous work and higher power; bands are processed
*sequentially* per GPU, so more bands means longer runtime (more energy)
at unchanged power.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.modes import high_power_mode_w
from repro.experiments.common import run_workload
from repro.experiments.report import format_table
from repro.vasp.benchmarks import BENCHMARKS

#: Plane-wave counts swept in the left panel (the paper's reference
#: Si256 variant sits at NPLWV = 216,000).
NPLWV_SWEEP: tuple[int, ...] = (216000, 343000, 512000, 746496, 1024000)
#: Band counts swept in the right panel.
NBANDS_SWEEP: tuple[int, ...] = (384, 512, 640, 768, 1024)


@dataclass(frozen=True)
class ParamPoint:
    """One sweep point: power and energy at a parameter value."""

    value: int
    high_power_mode_w: float
    mean_power_w: float
    runtime_s: float
    energy_mj: float


@dataclass
class Fig07Result:
    """Both panels of Fig 7."""

    nplwv_points: list[ParamPoint]
    nbands_points: list[ParamPoint]

    def nbands_power_spread_w(self) -> float:
        """HPM spread over the NBANDS sweep (should be small)."""
        values = [p.high_power_mode_w for p in self.nbands_points]
        return max(values) - min(values)

    def nplwv_power_spread_w(self) -> float:
        """HPM spread over the NPLWV sweep (should be visible)."""
        values = [p.high_power_mode_w for p in self.nplwv_points]
        return max(values) - min(values)

    def nbands_energy_linearity(self) -> float:
        """R^2 of a linear fit of energy vs NBANDS (paper: ~linear)."""
        x = np.array([p.value for p in self.nbands_points], dtype=float)
        y = np.array([p.energy_mj for p in self.nbands_points])
        coeffs = np.polyfit(x, y, 1)
        fit = np.polyval(coeffs, x)
        ss_res = float(np.sum((y - fit) ** 2))
        ss_tot = float(np.sum((y - y.mean()) ** 2))
        return 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0


def _measure(workload, seed: int) -> ParamPoint:
    measured = run_workload(workload, n_nodes=1, seed=seed)
    node_power = measured.telemetry[0].node_power
    return ParamPoint(
        value=0,  # filled by caller
        high_power_mode_w=high_power_mode_w(node_power),
        mean_power_w=float(np.mean(node_power)),
        runtime_s=measured.runtime_s,
        energy_mj=measured.energy_mj(),
    )


def run(
    nplwv_sweep: tuple[int, ...] = NPLWV_SWEEP,
    nbands_sweep: tuple[int, ...] = NBANDS_SWEEP,
    seed: int = 7,
) -> Fig07Result:
    """Run both parameter sweeps."""
    base = BENCHMARKS["Si256_hse"].build()
    from dataclasses import replace as dc_replace

    nplwv_points = []
    for nplwv in nplwv_sweep:
        point = _measure(base.with_nplwv(nplwv), seed)
        nplwv_points.append(dc_replace(point, value=nplwv))
    nbands_points = []
    for nbands in nbands_sweep:
        point = _measure(base.with_nbands(nbands), seed)
        nbands_points.append(dc_replace(point, value=nbands))
    return Fig07Result(nplwv_points=nplwv_points, nbands_points=nbands_points)


def render(result: Fig07Result) -> str:
    """ASCII rendering of both panels."""
    left = format_table(
        headers=["NPLWV", "HPM (W)", "Mean (W)", "Runtime (s)", "Energy (MJ)"],
        rows=[
            [p.value, p.high_power_mode_w, p.mean_power_w, p.runtime_s, p.energy_mj]
            for p in result.nplwv_points
        ],
        title="Fig 7 (left): power vs NPLWV (Si256_hse, 1 node)",
    )
    right = format_table(
        headers=["NBANDS", "HPM (W)", "Mean (W)", "Runtime (s)", "Energy (MJ)"],
        rows=[
            [p.value, p.high_power_mode_w, p.mean_power_w, p.runtime_s, p.energy_mj]
            for p in result.nbands_points
        ],
        title="Fig 7 (right): power vs NBANDS (Si256_hse, 1 node)",
    )
    return left + "\n\n" + right
