"""Fig 13: cap response of Si256_hse at varied node counts.

Performance is normalized *at each node count* relative to the default
power limit.  The paper observes the same response everywhere: unaffected
at 300 W, ~9 % down at 200 W, >60 % slowdown at 100 W — i.e. the capping
guidance derived at the optimal node count transfers across concurrencies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.report import format_table
from repro.runner.sweep import EstimateSpec, SweepExecutor
from repro.vasp.benchmarks import BENCHMARKS

#: Node counts swept.
NODE_COUNTS: tuple[int, ...] = (1, 2, 4, 8)
#: Caps applied.
POWER_CAPS_W: tuple[float, ...] = (400.0, 300.0, 200.0, 100.0)


@dataclass(frozen=True)
class ConcurrencyCapRow:
    """Normalized performance per cap, at one node count."""

    n_nodes: int
    normalized: dict[float, float]


@dataclass
class Fig13Result:
    """The node-count x cap grid."""

    rows: list[ConcurrencyCapRow]

    def at(self, n_nodes: int, cap_w: float) -> float:
        """Normalized performance at one grid point."""
        for r in self.rows:
            if r.n_nodes == n_nodes:
                return r.normalized[cap_w]
        raise KeyError(f"no row for {n_nodes} nodes")

    def response_spread(self, cap_w: float) -> float:
        """Spread of the normalized performance across node counts."""
        values = [r.normalized[cap_w] for r in self.rows]
        return max(values) - min(values)


def run(
    node_counts: tuple[int, ...] = NODE_COUNTS,
    caps_w: tuple[float, ...] = POWER_CAPS_W,
) -> Fig13Result:
    """Compute the grid for Si256_hse as one deduplicated sweep."""
    workload = BENCHMARKS["Si256_hse"].build()
    specs = [
        EstimateSpec(workload, n_nodes=n, cap_w=cap)
        for n in node_counts
        for cap in (400.0, *caps_w)
    ]
    estimates = iter(SweepExecutor().run(specs))
    rows = []
    for n in node_counts:
        base = next(estimates).runtime_s
        normalized = {cap: base / next(estimates).runtime_s for cap in caps_w}
        rows.append(ConcurrencyCapRow(n_nodes=n, normalized=normalized))
    return Fig13Result(rows=rows)


def render(result: Fig13Result) -> str:
    """ASCII rendering of the grid."""
    caps = sorted(result.rows[0].normalized, reverse=True)
    return format_table(
        headers=["Nodes"] + [f"{c:.0f} W" for c in caps],
        rows=[
            [r.n_nodes] + [f"{r.normalized[c]:.3f}" for c in caps]
            for r in result.rows
        ],
        title="Fig 13: Si256_hse performance under caps at varied node counts "
        "(normalized per node count)",
    )
