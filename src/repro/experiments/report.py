"""ASCII rendering of experiment results.

The benchmark harness prints each experiment the way the paper presents
it: a table of rows (for Table I and the per-figure series).  Keeping the
renderer dumb — strings in, fixed-width table out — keeps every experiment
result printable and diffable.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width ASCII table.

    ``rows`` entries are stringified; numeric alignment is right, text
    alignment left.
    """
    if not headers:
        raise ValueError("table needs at least one column")
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for c, cell in enumerate(row):
            widths[c] = max(widths[c], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for original, row in zip(rows, str_rows):
        cells = []
        for value, cell, width in zip(original, row, widths):
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                cells.append(cell.rjust(width))
            else:
                cells.append(cell.ljust(width))
        lines.append(" | ".join(cells))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    if value is None:
        return ""
    return str(value)


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """A coarse ASCII sparkline (for power timelines in bench output)."""
    blocks = " .:-=+*#%@"
    import numpy as np

    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return ""
    if len(arr) > width:
        # Block-average down to the requested width.
        edges = np.linspace(0, len(arr), width + 1).astype(int)
        arr = np.array([arr[a:b].mean() for a, b in zip(edges[:-1], edges[1:]) if b > a])
    lo, hi = float(arr.min()), float(arr.max())
    span = hi - lo if hi > lo else 1.0
    idx = ((arr - lo) / span * (len(blocks) - 1)).astype(int)
    return "".join(blocks[i] for i in idx)
