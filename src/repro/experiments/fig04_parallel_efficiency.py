"""Fig 4: parallel efficiency of the seven benchmarks vs node count.

Parallel efficiency is S/N (footnote 2 of the paper); 70 % and up is the
recommended operating range, and each benchmark's "optimal" node count in
the capping experiments is the largest count still above that line.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.efficiency import ScalingPoint, scaling_table
from repro.experiments.report import format_table
from repro.runner.sweep import EstimateSpec, SweepExecutor
from repro.vasp.benchmarks import BENCHMARKS

#: The paper's recommended minimum parallel efficiency.
RECOMMENDED_EFFICIENCY: float = 0.70


@dataclass
class EfficiencyCurve:
    """One benchmark's strong-scaling curve."""

    name: str
    points: list[ScalingPoint]
    optimal_nodes: int

    def efficiency_at(self, n_nodes: int) -> float:
        """Parallel efficiency at a node count in the sweep."""
        for p in self.points:
            if p.n_nodes == n_nodes:
                return p.parallel_efficiency
        raise KeyError(f"{self.name} was not run at {n_nodes} nodes")


@dataclass
class Fig04Result:
    """Scaling curves for all seven benchmarks."""

    curves: list[EfficiencyCurve]

    def curve(self, name: str) -> EfficiencyCurve:
        """Look up one benchmark's curve."""
        for c in self.curves:
            if c.name == name:
                return c
        raise KeyError(f"no curve for {name!r}")


def run() -> Fig04Result:
    """Compute the scaling curves with the analytic estimator.

    Runtimes come from the deterministic run estimator (no noise), which
    is what parallel-efficiency ratios should be based on.  The whole
    benchmark x node-count grid executes through one
    :class:`~repro.runner.sweep.SweepExecutor` sweep.
    """
    cases = [(name, case, case.build()) for name, case in BENCHMARKS.items()]
    specs = [
        EstimateSpec(workload, n_nodes=n)
        for _, case, workload in cases
        for n in case.node_counts
    ]
    estimates = iter(SweepExecutor().run(specs))
    curves = []
    for name, case, _ in cases:
        runtimes = [next(estimates).runtime_s for _ in case.node_counts]
        points = scaling_table(list(case.node_counts), runtimes)
        curves.append(
            EfficiencyCurve(name=name, points=points, optimal_nodes=case.optimal_nodes)
        )
    return Fig04Result(curves=curves)


def render(result: Fig04Result) -> str:
    """ASCII rendering of the efficiency curves."""
    node_counts = sorted({p.n_nodes for c in result.curves for p in c.points})
    rows = []
    for curve in result.curves:
        by_n = {p.n_nodes: p.parallel_efficiency for p in curve.points}
        rows.append(
            [curve.name]
            + [f"{by_n[n]:.2f}" if n in by_n else "" for n in node_counts]
        )
    return format_table(
        headers=["Benchmark"] + [f"{n} node(s)" for n in node_counts],
        rows=rows,
        title="Fig 4: parallel efficiency of VASP",
    )
