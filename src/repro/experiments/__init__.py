"""Experiment modules: one per table/figure of the paper's evaluation.

Each module exposes a ``run(...)`` function returning a typed result
object with the rows/series the corresponding paper artifact reports, and
a ``render(result)`` producing the ASCII table the benchmark harness
prints.  Every experiment is deterministic for a given seed.

| Module | Paper artifact |
|--------|----------------|
| ``table1`` | Table I — benchmark suite parameters |
| ``fig01_node_variation`` | Fig 1 — per-node power in a 4-node job |
| ``fig02_sampling`` | Fig 2 — power distribution vs sampling rate |
| ``fig03_timelines`` | Fig 3 — component timelines + histograms |
| ``fig04_parallel_efficiency`` | Fig 4 — parallel efficiency |
| ``fig05_workload_power`` | Fig 5 — high power mode vs node count |
| ``fig06_system_size`` | Fig 6 — power vs silicon supercell size |
| ``fig07_internal_params`` | Fig 7 — power vs NPLWV / NBANDS |
| ``fig08_concurrency`` | Fig 8 — power + energy vs concurrency |
| ``fig09_methods`` | Fig 9 — power by method (violins) |
| ``fig10_cap_efficacy`` | Fig 10 — power under caps / cap fraction |
| ``fig11_cap_timeline`` | Fig 11 — timeline with/without 200 W cap |
| ``fig12_cap_performance`` | Fig 12 — performance vs power cap |
| ``fig13_cap_concurrency`` | Fig 13 — cap response at varied node counts |
| ``scheduling`` | Section VI-A — power-aware scheduling |
| ``milc_study`` | Section VI-B — the MILC extension |
| ``topdown`` | Section VI-B — telemetry-only workload classes |
| ``system_power`` | §I motivation — system power under a job stream |
"""

from repro.experiments import report

__all__ = ["report"]
