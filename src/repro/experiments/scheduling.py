"""Section VI-A: power-aware scheduling from application power profiles.

The paper's implication experiment: a batch system that classifies VASP
jobs from their inputs and caps GPUs at 50 % of TDP can keep a node pool
inside a tight facility power budget while losing little throughput —
the spared power can be reallocated where demand is critical.

This module schedules the same job mix twice — with the capping policy
and with the do-nothing baseline — under the same power budget, and
compares makespan, peak power, and budget compliance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.capping.policy import CapPolicy
from repro.capping.scheduler import (
    Job,
    PowerAwareScheduler,
    ScheduleResult,
    SchedulerConfig,
)
from repro.experiments.report import format_table
from repro.vasp.benchmarks import BENCHMARKS


def default_job_mix(copies: int = 2) -> list[Job]:
    """A job mix drawn from the benchmark suite (VASP is >15 % of NERSC
    cycles, so a homogeneous-application mix is realistic)."""
    if copies < 1:
        raise ValueError(f"copies must be >= 1, got {copies}")
    jobs = []
    index = 0
    for copy in range(copies):
        for name, case in BENCHMARKS.items():
            jobs.append(
                Job(
                    job_id=f"{name}#{copy}",
                    workload=case.build(),
                    n_nodes=case.optimal_nodes,
                    submit_s=0.0,
                )
            )
            index += 1
    return jobs


@dataclass
class SchedulingResult:
    """Capped-policy vs uncapped-baseline schedules of the same mix."""

    capped: ScheduleResult
    uncapped: ScheduleResult
    budget_w: float

    def makespan_ratio(self) -> float:
        """Capped makespan over uncapped makespan (< 1 means capping wins
        under a binding power budget)."""
        return self.capped.makespan_s / self.uncapped.makespan_s


def run(
    n_nodes: int = 16,
    budget_w_per_node: float = 900.0,
    copies: int = 2,
) -> SchedulingResult:
    """Schedule the mix under a tight budget, with and without capping.

    ``budget_w_per_node`` of 900 W is well under half the node TDP — a
    tight facility constraint under which uncapped hot jobs must wait for
    power headroom, while capped jobs fit.
    """
    budget = n_nodes * budget_w_per_node
    jobs = default_job_mix(copies)
    capped = PowerAwareScheduler(
        SchedulerConfig(
            n_nodes=n_nodes, power_budget_w=budget, policy=CapPolicy.half_tdp()
        )
    ).schedule(list(jobs))
    uncapped = PowerAwareScheduler(
        SchedulerConfig(
            n_nodes=n_nodes, power_budget_w=budget, policy=CapPolicy.uncapped()
        )
    ).schedule(list(jobs))
    return SchedulingResult(capped=capped, uncapped=uncapped, budget_w=budget)


def render(result: SchedulingResult) -> str:
    """ASCII rendering of the policy comparison."""
    rows = []
    for label, schedule in (("50% TDP policy", result.capped), ("uncapped", result.uncapped)):
        rows.append(
            [
                label,
                schedule.makespan_s,
                schedule.peak_power_w,
                schedule.budget_respected,
                len(schedule.records),
            ]
        )
    table = format_table(
        headers=["Policy", "Makespan (s)", "Peak power (W)", "In budget", "Jobs run"],
        rows=rows,
        title=f"Section VI-A: power-aware scheduling under a {result.budget_w:,.0f} W budget",
    )
    return table + f"\nmakespan ratio (capped/uncapped): {result.makespan_ratio():.2f}"
