"""Shared plumbing for the experiment modules.

All experiments run the same pipeline the paper's measurements went
through: workload -> engine (ground truth at 0.1 s) -> 2-second telemetry
view -> KDE/mode analysis.  This module owns that pipeline so the
per-figure modules stay declarative.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

from repro import obs
from repro.analysis.stats import DistributionSummary, summarize
from repro.hardware.node import GpuNode
from repro.hardware.platform import Platform, get_platform
from repro.runner.cache import RunCache, caching_disabled, disk_dir_from_env, fingerprint
from repro.runner.engine import EngineConfig, PowerEngine
from repro.runner.trace import PowerTrace, RunResult, trace_dtype
from repro.telemetry.downsample import downsample_trace
from repro.vasp.parallel import layout_for
from repro.workloads.registry import workload_model_id
from repro.vasp.workload import VaspWorkload

logger = logging.getLogger(__name__)

#: The effective telemetry cadence of the paper's data (Section II-B).
TELEMETRY_INTERVAL_S: float = 2.0

#: Process-wide memoization of run_workload results.  Content-keyed on
#: (workload fingerprint, node count, cap, seed, engine config); see
#: :mod:`repro.runner.cache`.  ``REPRO_CACHE=0`` bypasses it entirely;
#: ``REPRO_CACHE_DIR`` adds an on-disk layer shared across processes.
_RUN_CACHE = RunCache(maxsize=256, disk_dir=disk_dir_from_env(), name="run")


def run_cache() -> RunCache:
    """The process-wide :class:`RunCache` behind :func:`run_workload`."""
    return _RUN_CACHE


def make_nodes(
    n: int, first: int = 1000, platform: "str | Platform | None" = None
) -> list[GpuNode]:
    """``n`` deterministic nodes with Perlmutter-style names.

    ``platform`` picks the registered hardware platform the nodes are
    built from (None = registry default).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    spec = get_platform(platform).node
    return [GpuNode(name=f"nid{first + i:06d}", spec=spec) for i in range(n)]


@dataclass
class MeasuredRun:
    """One executed run plus its telemetry-rate view and node summary."""

    result: RunResult
    telemetry: list[PowerTrace]

    @property
    def runtime_s(self) -> float:
        """Wall time of the run."""
        return self.result.runtime_s

    def node_summary(self, node_index: int = 0) -> DistributionSummary:
        """Fig 3-style summary of one node's total power."""
        return summarize(self.telemetry[node_index].node_power)

    def gpu_summary(self, node_index: int = 0, gpu_index: int = 0) -> DistributionSummary:
        """Summary of one GPU's power."""
        return summarize(self.telemetry[node_index].gpu_power(gpu_index))

    def energy_mj(self) -> float:
        """Energy-to-solution over all nodes, in megajoules."""
        return self.result.total_energy_j() / 1.0e6


def run_workload(
    workload: VaspWorkload,
    n_nodes: int = 1,
    gpu_cap_w: float | None = None,
    seed: int = 7,
    engine_config: EngineConfig | None = None,
    nodes: list[GpuNode] | None = None,
    use_cache: bool = True,
    platform: "str | Platform | None" = None,
) -> MeasuredRun:
    """Run a workload through the full pipeline.

    ``gpu_cap_w`` applies an ``nvidia-smi -pl``-style cap to every GPU
    before launch (None = default TDP limit).  ``platform`` selects the
    hardware the run executes on (None = registry default); it is part
    of the cache key, so runs on different platforms never share a
    cache entry.

    Results are memoized in :func:`run_cache` keyed by content — the
    pipeline is deterministic, so a repeated grid point is a lookup, not a
    re-run.  Caching only applies when ``nodes`` is None (caller-supplied
    node pools carry external state); treat cached results as immutable.
    Set ``use_cache=False`` (or ``REPRO_CACHE=0``) to force execution.
    """
    if nodes is None:
        plat = get_platform(platform)
        if use_cache and not caching_disabled():
            key = fingerprint(
                "run_workload",
                workload_model_id(workload),
                workload,
                n_nodes,
                gpu_cap_w,
                seed,
                engine_config,
                TELEMETRY_INTERVAL_S,
                trace_dtype().name,
                plat.id,
            )
            return _RUN_CACHE.get_or_compute(
                key,
                lambda: _execute_run(
                    workload, n_nodes, gpu_cap_w, seed, engine_config, platform=plat
                ),
            )
        return _execute_run(
            workload, n_nodes, gpu_cap_w, seed, engine_config, platform=plat
        )
    if len(nodes) != n_nodes:
        raise ValueError(f"got {len(nodes)} nodes for n_nodes={n_nodes}")
    return _execute_run(workload, n_nodes, gpu_cap_w, seed, engine_config, nodes)


def _execute_run(
    workload: VaspWorkload,
    n_nodes: int,
    gpu_cap_w: float | None,
    seed: int,
    engine_config: EngineConfig | None,
    nodes: list[GpuNode] | None = None,
    platform: "str | Platform | None" = None,
) -> MeasuredRun:
    """The uncached pipeline body behind :func:`run_workload`."""
    obs.inc("repro_pipeline_runs_total")
    logger.debug(
        "executing pipeline: %s on %d node(s), cap=%s, seed=%d",
        workload.name,
        n_nodes,
        gpu_cap_w,
        seed,
    )
    with obs.span(
        "experiments.run_workload",
        workload=workload.name,
        nodes=n_nodes,
        cap_w=gpu_cap_w,
        seed=seed,
    ):
        if nodes is None:
            nodes = make_nodes(n_nodes, platform=platform)
        for node in nodes:
            if gpu_cap_w is None:
                node.reset_gpu_power_limit()
            else:
                node.set_gpu_power_limit(gpu_cap_w)
        engine = PowerEngine(nodes, engine_config)
        parallel = layout_for(workload, n_nodes)
        result = engine.run(workload.phases(parallel), label=workload.name, seed=seed)
        with obs.span("experiments.downsample", traces=len(result.traces)):
            telemetry = [
                downsample_trace(t, TELEMETRY_INTERVAL_S) for t in result.traces
            ]
        return MeasuredRun(result=result, telemetry=telemetry)
