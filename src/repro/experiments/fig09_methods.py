"""Fig 9: power distribution by method (violin plots), Si128 vs Si256.

Seven methods applied to two silicon supercells on one node.  Higher-order
methods (HSE, ACFDT/RPA) draw far more power than the basic DFT iteration
schemes — more than 600 W per node on average — and every method draws
more on the larger supercell.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.stats import ViolinStats, violin_stats
from repro.experiments.common import run_workload
from repro.experiments.report import format_table
from repro.vasp.benchmarks import silicon_workload
from repro.vasp.methods import FIG9_METHODS

#: The two supercell sizes of Fig 9.
FIG9_SIZES: tuple[int, int] = (128, 256)
#: Methods in the figure's display order.
FIG9_ORDER: tuple[str, ...] = tuple(FIG9_METHODS)

#: Methods the paper groups as "higher-order".
HIGHER_ORDER: frozenset[str] = frozenset({"hse", "acfdtr"})


@dataclass
class MethodViolin:
    """One violin: a (method, size) power distribution."""

    method: str
    n_atoms: int
    stats: ViolinStats


@dataclass
class Fig09Result:
    """All violins."""

    violins: list[MethodViolin]

    def violin(self, method: str, n_atoms: int) -> MethodViolin:
        """Look up one violin."""
        for v in self.violins:
            if v.method == method and v.n_atoms == n_atoms:
                return v
        raise KeyError(f"no violin for ({method}, {n_atoms})")

    def mean_gap_w(self, n_atoms: int) -> float:
        """Average HPM gap between higher-order and basic DFT methods."""
        higher = [
            v.stats.high_power_mode_w
            for v in self.violins
            if v.n_atoms == n_atoms and v.method in HIGHER_ORDER
        ]
        basic = [
            v.stats.high_power_mode_w
            for v in self.violins
            if v.n_atoms == n_atoms and v.method not in HIGHER_ORDER
        ]
        return sum(higher) / len(higher) - sum(basic) / len(basic)


def run(
    sizes: tuple[int, int] = FIG9_SIZES,
    methods: tuple[str, ...] = FIG9_ORDER,
    nelm: int = 12,
    seed: int = 7,
) -> Fig09Result:
    """Run every (method, size) pair on one node."""
    violins = []
    for method in methods:
        for n_atoms in sizes:
            workload = silicon_workload(n_atoms, method, nelm=nelm)
            measured = run_workload(workload, n_nodes=1, seed=seed)
            violins.append(
                MethodViolin(
                    method=method,
                    n_atoms=n_atoms,
                    stats=violin_stats(
                        measured.telemetry[0].node_power,
                        label=f"Si{n_atoms}/{method}",
                    ),
                )
            )
    return Fig09Result(violins=violins)


def render(result: Fig09Result) -> str:
    """ASCII rendering of the violin quartiles."""
    table = format_table(
        headers=["Method", "Atoms", "Q1 (W)", "Median (W)", "Q3 (W)", "HPM (W)"],
        rows=[
            [
                v.method,
                v.n_atoms,
                v.stats.q1_w,
                v.stats.median_w,
                v.stats.q3_w,
                v.stats.high_power_mode_w,
            ]
            for v in result.violins
        ],
        title="Fig 9: power by method (violin quartiles), Si128 vs Si256",
    )
    gaps = ", ".join(
        f"Si{n}: {result.mean_gap_w(n):.0f} W" for n in sorted({v.n_atoms for v in result.violins})
    )
    return table + f"\nmean higher-order vs DFT gap: {gaps}"
