"""Section VI-B: extending the approach to MILC, NERSC's second app.

The deployment strategy scales application-by-application: the same
pipeline (workload model -> engine -> telemetry -> high power mode ->
cap response) is applied to MILC, and its power class is compared against
the VASP taxonomy.  Expected outcome (per the companion MILC study):
bandwidth-bound, steady power well below TDP, and tolerant of deep power
caps — i.e. the scheduler can treat MILC like the basic-DFT class.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.stats import DistributionSummary, summarize
from repro.apps.milc import MilcWorkload, milc_benchmark, milc_cap_slowdown
from repro.experiments.common import TELEMETRY_INTERVAL_S, make_nodes
from repro.experiments.report import format_table
from repro.runner.engine import PowerEngine
from repro.runner.sweep import SweepExecutor
from repro.telemetry.downsample import downsample_trace
from repro.vasp.parallel import ParallelConfig

#: Caps applied, matching the VASP study.
POWER_CAPS_W: tuple[float, ...] = (400.0, 300.0, 200.0, 100.0)


def _profile_preset(task: tuple[str, tuple[float, ...], int]) -> "MilcProfile":
    """Worker-side task: profile one MILC preset on one node."""
    size, caps_w, seed = task
    workload: MilcWorkload = milc_benchmark(size)
    nodes = make_nodes(1)
    engine = PowerEngine(nodes)
    result = engine.run(workload.phases(ParallelConfig(1)), seed=seed)
    telem = downsample_trace(result.traces[0], TELEMETRY_INTERVAL_S)
    return MilcProfile(
        name=workload.name,
        stats=summarize(telem.node_power),
        runtime_s=result.runtime_s,
        gpu_fraction=float(np.mean(telem.gpu_total / telem.node_power)),
        cap_slowdown={cap: milc_cap_slowdown(workload, cap) for cap in caps_w},
    )


@dataclass
class MilcProfile:
    """One MILC campaign's power profile and cap response."""

    name: str
    stats: DistributionSummary
    runtime_s: float
    gpu_fraction: float
    #: cap watts -> runtime multiplier.
    cap_slowdown: dict[float, float]

    def normalized_performance(self, cap_w: float) -> float:
        """Performance at a cap relative to the default limit."""
        return 1.0 / self.cap_slowdown[cap_w]


@dataclass
class MilcStudyResult:
    """Profiles for the MILC presets."""

    profiles: list[MilcProfile]

    def profile(self, name: str) -> MilcProfile:
        """Look up one preset by workload name."""
        for p in self.profiles:
            if p.name == name:
                return p
        raise KeyError(f"no MILC profile named {name!r}")


def run(
    sizes: tuple[str, ...] = ("small", "medium", "large"),
    caps_w: tuple[float, ...] = POWER_CAPS_W,
    seed: int = 7,
) -> MilcStudyResult:
    """Profile each MILC preset on one node, as one sweep."""
    tasks = [(size, tuple(caps_w), seed) for size in sizes]
    profiles = SweepExecutor().map(_profile_preset, tasks)
    return MilcStudyResult(profiles=profiles)


def render(result: MilcStudyResult) -> str:
    """ASCII rendering of the MILC study."""
    caps = sorted(result.profiles[0].cap_slowdown, reverse=True)
    table = format_table(
        headers=["Campaign", "Runtime (s)", "HPM (W)", "Max (W)", "GPU share"]
        + [f"perf @{c:.0f} W" for c in caps],
        rows=[
            [
                p.name,
                p.runtime_s,
                p.stats.high_power_mode_w,
                p.stats.max_w,
                f"{p.gpu_fraction:.0%}",
            ]
            + [f"{p.normalized_performance(c):.3f}" for c in caps]
            for p in result.profiles
        ],
        title="Section VI-B: MILC power profiles and cap response",
    )
    return table + (
        "\nMILC's bandwidth-bound kernels tolerate deep caps — the scheduler "
        "can treat it like the basic-DFT VASP class."
    )
