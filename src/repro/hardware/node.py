"""A GPU-accelerated node composed from a platform's :class:`NodeSpec`.

The default spec is a Perlmutter GPU node (one Milan CPU, four A100s,
DDR4, four NICs); other platforms swap in their own component envelopes.
The node exposes the same component breakdown as the Cray Power Monitoring
interface: CPU power, per-GPU power, memory power, and total node power
(which additionally includes NICs and the baseboard — the "gap" between the
black node line and the component sum in Fig 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.units.constants import NodeEnvelope
from repro.hardware.cpu import MilanCpu
from repro.hardware.gpu import GpuModel
from repro.hardware.memory import DdrMemory
from repro.hardware.nic import SlingshotNic
from repro.hardware.platform import NodeSpec, default_node_spec
from repro.hardware.variability import ManufacturingVariation


@dataclass(frozen=True)
class NodePowerSample:
    """Instantaneous component-resolved power of one node, in watts."""

    cpu_w: float
    gpu_w: tuple[float, float, float, float]
    memory_w: float
    nic_w: float
    baseboard_w: float

    @property
    def gpu_total_w(self) -> float:
        """Sum over the four GPUs."""
        return float(sum(self.gpu_w))

    @property
    def node_w(self) -> float:
        """Total node power: the quantity the node-level sensor reports."""
        return self.cpu_w + self.gpu_total_w + self.memory_w + self.nic_w + self.baseboard_w

    @property
    def component_sum_w(self) -> float:
        """Sum of the *sensed* components (CPU + GPUs + memory).

        The difference ``node_w - component_sum_w`` is the peripheral gap
        the paper attributes to NICs and other un-sensed parts.
        """
        return self.cpu_w + self.gpu_total_w + self.memory_w


@dataclass
class GpuNode:
    """One GPU-accelerated node with deterministic per-node variability.

    Components (CPU model, GPU specs, memory, NIC count) are composed
    from ``spec``; the default is the registry's default platform (a
    Perlmutter A100 node).  Mixed-platform pools are just lists of nodes
    built from different specs.
    """

    name: str = "nid001000"
    spec: NodeSpec = field(default_factory=default_node_spec)
    cpu: MilanCpu = field(init=False)
    gpus: list[GpuModel] = field(init=False)
    memory: DdrMemory = field(init=False)
    nics: list[SlingshotNic] = field(init=False)
    baseboard_variation: ManufacturingVariation = field(init=False)

    def __post_init__(self) -> None:
        if not isinstance(self.spec, NodeSpec):
            raise TypeError(
                f"spec must be a NodeSpec (see repro.hardware.platform), "
                f"got {type(self.spec).__name__}"
            )
        spec = self.spec
        self.cpu = MilanCpu(serial=f"{self.name}-cpu0", envelope=spec.cpu)
        self.gpus = [
            GpuModel(serial=f"{self.name}-gpu{i}", spec=spec.gpu)
            for i in range(spec.gpus_per_node)
        ]
        self.memory = DdrMemory(serial=f"{self.name}-mem0", envelope=spec.memory)
        self.nics = [
            SlingshotNic(serial=f"{self.name}-nic{i}", envelope=spec.nic)
            for i in range(spec.n_nics)
        ]
        self.baseboard_variation = ManufacturingVariation.sample(
            f"{self.name}-board", idle_sigma_w=spec.board_idle_sigma_w
        )

    @property
    def envelope(self) -> NodeEnvelope:
        """The node spec (a :class:`NodeEnvelope` subtype); legacy name."""
        return self.spec

    # ------------------------------------------------------------------
    # Power limits (applied to all GPUs, as in the paper's experiments)
    # ------------------------------------------------------------------
    def set_gpu_power_limit(self, watts: float) -> None:
        """Apply the same power cap to every GPU on the node."""
        for gpu in self.gpus:
            gpu.set_power_limit(watts)

    def reset_gpu_power_limit(self) -> None:
        """Restore the default (TDP) power limit on every GPU."""
        for gpu in self.gpus:
            gpu.reset_power_limit()

    @property
    def gpu_power_limit_w(self) -> float:
        """The common GPU power limit (asserts all GPUs agree)."""
        limits = {gpu.power_limit_w for gpu in self.gpus}
        if len(limits) != 1:
            raise RuntimeError(f"GPUs on {self.name} have mixed power limits: {sorted(limits)}")
        return limits.pop()

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    @property
    def baseboard_power_w(self) -> float:
        """Baseboard (fans, VRM, BMC) power with per-node offset."""
        return self.spec.baseboard_w + self.baseboard_variation.idle_offset_w

    def idle_sample(self) -> NodePowerSample:
        """Component power of the node at idle."""
        return NodePowerSample(
            cpu_w=self.cpu.idle_power_w,
            gpu_w=tuple(g.idle_power_w for g in self.gpus),  # type: ignore[arg-type]
            memory_w=self.memory.idle_power_w,
            nic_w=sum(n.idle_power_w for n in self.nics),
            baseboard_w=self.baseboard_power_w,
        )

    def sample(
        self,
        gpu_power_w: tuple[float, float, float, float] | list[float],
        cpu_utilization: float = 0.05,
        memory_bandwidth_utilization: float = 0.05,
        nic_utilization: float = 0.0,
    ) -> NodePowerSample:
        """Assemble a node sample from already-resolved GPU powers.

        GPU power is resolved by :meth:`A100Gpu.resolve_phase` (it depends
        on caps and the DVFS state), so the node takes it as input; the
        other components are resolved from utilization here.
        """
        if len(gpu_power_w) != len(self.gpus):
            raise ValueError(f"expected {len(self.gpus)} GPU powers, got {len(gpu_power_w)}")
        return NodePowerSample(
            cpu_w=self.cpu.power_at_utilization(cpu_utilization),
            gpu_w=tuple(float(p) for p in gpu_power_w),  # type: ignore[arg-type]
            memory_w=self.memory.power_at_bandwidth(memory_bandwidth_utilization),
            nic_w=sum(n.power_at_traffic(nic_utilization) for n in self.nics),
            baseboard_w=self.baseboard_power_w,
        )

    def host_power_batch(
        self,
        cpu_utilization: np.ndarray,
        memory_bandwidth_utilization: np.ndarray,
        nic_utilization: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Host-side component power for many phases at once.

        Returns ``(cpu_w, memory_w, nic_w)`` arrays, one entry per phase
        (baseboard power is a per-node constant, see
        :attr:`baseboard_power_w`).  NIC power sums the per-unit biased
        draws in unit order, matching :meth:`sample`.
        """
        cpu_w = self.cpu.power_at_utilization_batch(cpu_utilization)
        memory_w = self.memory.power_at_bandwidth_batch(memory_bandwidth_utilization)
        nic_w = sum(n.power_at_traffic_batch(nic_utilization) for n in self.nics)
        return cpu_w, memory_w, np.asarray(nic_w, dtype=float)

    def gpu_state_arrays(self) -> dict[str, np.ndarray]:
        """Per-GPU model state as flat arrays (vectorized engine input).

        Keys: ``cap_w``, ``static_w``, ``idle_env_w``, ``cap_min_w``,
        ``cap_max_w``, ``tdp_w``, ``idle_w`` (biased idle), ``power_factor``,
        ``idle_offset_w``, plus the per-GPU behavioural spec fields
        (``min_clock_fraction``, ``control_margin``,
        ``regulation_error_max``, ``regulation_error_exponent``), each of
        length ``len(self.gpus)`` — carrying the spec per GPU is what lets
        the vectorized engine resolve mixed-platform pools in one pass.
        """
        gpus = self.gpus
        assert all(g.variation is not None for g in gpus)
        return {
            "cap_w": np.array([g.power_limit_w for g in gpus]),
            "static_w": np.array([g.spec.static_w for g in gpus]),
            "idle_env_w": np.array([g.spec.idle_w for g in gpus]),
            "cap_min_w": np.array([g.spec.cap_min_w for g in gpus]),
            "cap_max_w": np.array([g.spec.cap_max_w for g in gpus]),
            "tdp_w": np.array([g.spec.tdp_w for g in gpus]),
            "idle_w": np.array([g.idle_power_w for g in gpus]),
            "power_factor": np.array([g.variation.power_factor for g in gpus]),  # type: ignore[union-attr]
            "idle_offset_w": np.array([g.variation.idle_offset_w for g in gpus]),  # type: ignore[union-attr]
            "min_clock_fraction": np.array([g.spec.min_clock_fraction for g in gpus]),
            "control_margin": np.array([g.spec.control_margin for g in gpus]),
            "regulation_error_max": np.array([g.spec.regulation_error_max for g in gpus]),
            "regulation_error_exponent": np.array(
                [g.spec.regulation_error_exponent for g in gpus]
            ),
        }
