"""Hardware platform registry: device identity as data, not code.

Every number the power pipeline needs about a GPU or its host node —
cap range, DVFS clock floor, controller margin, idle band, manufacturing
spread, roofline ceilings — lives in a frozen :class:`GpuSpec` /
:class:`NodeSpec` pair, grouped into a named :class:`Platform` and looked
up through a registry.  The default platform, ``a100-40g``, reproduces
the paper's Perlmutter A100 nodes bit-for-bit (its spec values are the
same floats the code previously hard-wired); the other entries are
seeded from public spec sheets so the same experiments, sweeps, monitors
and benches run unmodified on other hardware, including mixed pools.

Registering a custom platform::

    from repro.hardware.platform import (
        GpuSpec, NodeSpec, Platform, get_platform, register_platform,
    )

    base = get_platform("a100-40g")
    my_gpu = GpuSpec.from_envelope(base.gpu, name="Lab A100", cap_min_w=150.0)
    register_platform(Platform(
        id="lab-a100",
        description="A100 with a raised 150 W cap floor",
        node=NodeSpec.from_spec(base.node, gpu=my_gpu),
    ))
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.units.constants import (
    A100_40GB,
    CPU_MILAN,
    DDR4_256GB,
    PERLMUTTER_GPU_NODE,
    SLINGSHOT_NIC,
    CPUEnvelope,
    GPUEnvelope,
    MemoryEnvelope,
    NICEnvelope,
    NodeEnvelope,
)

#: Platform id resolved when callers pass ``platform=None``.
DEFAULT_PLATFORM_ID = "a100-40g"

#: The trace schema carries four GPU columns (``gpu0``..``gpu3``), so
#: every registered node spec must expose exactly this many GPUs.
GPUS_PER_NODE = 4


@dataclass(frozen=True)
class GpuSpec(GPUEnvelope):
    """A :class:`GPUEnvelope` plus the behavioural model parameters.

    The envelope describes *how much* power the board can draw; the spec
    adds *how the board behaves*: the DVFS clock floor, the power
    controller's regulation characteristics, and the manufacturing
    spread.  Defaults are the calibrated A100 values, so coercing a bare
    envelope yields the historical behaviour unless overridden.

    Attributes
    ----------
    min_clock_fraction:
        Lowest clock fraction the board throttles to (A100: ~210 MHz of
        1410 MHz boost = 0.15).  Below this a cap cannot be honoured.
    control_margin:
        The controller regulates this relative margin *below* the limit
        so sustained power stays inside it (Fig 10).
    regulation_error_max / regulation_error_exponent:
        Relative overshoot of the controller at the cap floor and the
        steepness of its ramp: the error is
        ``max * depth**exponent`` for cap depth ``(cap_max - cap) /
        (cap_max - cap_min)`` — ~8 % at the A100's 100 W floor,
        negligible at 200 W and above.
    power_rel_sigma / idle_sigma_w:
        Manufacturing-variation distribution: relative sigma of the
        dynamic-power factor and absolute sigma of the idle offset
        (Section III-B spread).
    """

    min_clock_fraction: float = 0.15
    control_margin: float = 0.03
    regulation_error_max: float = 0.08
    regulation_error_exponent: float = 6.0
    power_rel_sigma: float = 0.02
    idle_sigma_w: float = 6.0

    @classmethod
    def from_envelope(cls, envelope: GPUEnvelope, **overrides: object) -> "GpuSpec":
        """Promote a bare envelope to a spec (behaviour fields default).

        This is the escape hatch that fixes the old behaviour where a
        custom :class:`GPUEnvelope` was silently throttled with the
        A100's clock floor and control margin: the behavioural knobs are
        now explicit spec fields, overridable per device.
        """
        if isinstance(envelope, cls) and not overrides:
            return envelope
        fields = {
            f.name: getattr(envelope, f.name)
            for f in dataclasses.fields(GPUEnvelope)
        }
        if isinstance(envelope, cls):
            fields.update(
                {
                    f.name: getattr(envelope, f.name)
                    for f in dataclasses.fields(cls)
                    if f.name not in fields
                }
            )
        fields.update(overrides)
        return cls(**fields)  # type: ignore[arg-type]


@dataclass(frozen=True)
class NodeSpec(NodeEnvelope):
    """A :class:`NodeEnvelope` plus the components a node composes.

    ``GpuNode`` builds itself from this spec: which GPU model (and how
    many, from the inherited ``gpus_per_node``), which CPU, memory and
    NIC envelopes, and the node-level calibration constants the analytic
    scheduler shares with the trace-streaming fleet simulation.
    """

    gpu: GpuSpec = None  # type: ignore[assignment]
    cpu: CPUEnvelope = None  # type: ignore[assignment]
    memory: MemoryEnvelope = None  # type: ignore[assignment]
    nic: NICEnvelope = None  # type: ignore[assignment]
    #: NICs per node (Perlmutter: four Slingshot Cassini).
    n_nics: int = 4
    #: Non-GPU node power while a job runs (analytic estimator).
    host_power_w: float = 265.0
    #: Idle power of an unallocated node (mid-range of the idle band).
    idle_node_w: float = 460.0
    #: Sigma of the baseboard's additive idle offset.
    board_idle_sigma_w: float = 10.0

    def __post_init__(self) -> None:
        for name in ("gpu", "cpu", "memory", "nic"):
            if getattr(self, name) is None:
                raise ValueError(f"NodeSpec requires a {name} envelope")

    @classmethod
    def from_spec(cls, spec: "NodeSpec", **overrides: object) -> "NodeSpec":
        """A copy of ``spec`` with selected fields replaced."""
        return dataclasses.replace(spec, **overrides)


@dataclass(frozen=True)
class Platform:
    """A named, registrable hardware platform (one node flavour)."""

    id: str
    description: str
    node: NodeSpec

    @property
    def gpu(self) -> GpuSpec:
        """The platform's GPU spec (shorthand for ``node.gpu``)."""
        return self.node.gpu


_REGISTRY: dict[str, Platform] = {}


def register_platform(platform: Platform, replace: bool = False) -> Platform:
    """Validate and add a platform to the registry.

    Raises ``ValueError`` on an inconsistent spec or (unless
    ``replace=True``) a duplicate id.
    """
    if not platform.id:
        raise ValueError("platform id must be non-empty")
    if platform.id in _REGISTRY and not replace:
        raise ValueError(f"platform {platform.id!r} is already registered")
    gpu = platform.gpu
    node = platform.node
    if not (gpu.cap_min_w < gpu.cap_max_w):
        raise ValueError(
            f"{platform.id}: cap range [{gpu.cap_min_w}, {gpu.cap_max_w}] W is empty"
        )
    if not (gpu.cap_min_w <= gpu.tdp_w <= gpu.cap_max_w):
        raise ValueError(
            f"{platform.id}: TDP {gpu.tdp_w} W outside cap range "
            f"[{gpu.cap_min_w}, {gpu.cap_max_w}] W"
        )
    if not (0.0 < gpu.min_clock_fraction <= 1.0):
        raise ValueError(
            f"{platform.id}: min_clock_fraction must be in (0, 1], "
            f"got {gpu.min_clock_fraction}"
        )
    if node.idle_max_w <= node.idle_min_w:
        raise ValueError(
            f"{platform.id}: idle band [{node.idle_min_w}, {node.idle_max_w}] W is empty"
        )
    if node.gpus_per_node != GPUS_PER_NODE:
        raise ValueError(
            f"{platform.id}: trace schema is fixed at {GPUS_PER_NODE} GPUs "
            f"per node, got {node.gpus_per_node}"
        )
    _REGISTRY[platform.id] = platform
    return platform


def get_platform(platform: "str | Platform | None" = None) -> Platform:
    """Resolve a platform argument: id, instance, or None (the default)."""
    if platform is None:
        platform = DEFAULT_PLATFORM_ID
    if isinstance(platform, Platform):
        return platform
    try:
        return _REGISTRY[platform]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown platform {platform!r}; registered: {known}"
        ) from None


def platform_ids() -> list[str]:
    """Registered platform ids, default first, then alphabetical."""
    rest = sorted(pid for pid in _REGISTRY if pid != DEFAULT_PLATFORM_ID)
    head = [DEFAULT_PLATFORM_ID] if DEFAULT_PLATFORM_ID in _REGISTRY else []
    return head + rest


def default_gpu_spec() -> GpuSpec:
    """The default platform's GPU spec (the paper's A100 40 GB)."""
    return get_platform().gpu


def default_node_spec() -> NodeSpec:
    """The default platform's node spec (a Perlmutter GPU node)."""
    return get_platform().node


# ----------------------------------------------------------------------
# Built-in platforms
# ----------------------------------------------------------------------
# The default platform reuses the exact envelope instances from
# repro.units.constants, so every derived float is bit-identical to the
# pre-registry code path (EXPERIMENTS.md regenerates byte-identical).
A100_40G = register_platform(
    Platform(
        id="a100-40g",
        description="Perlmutter GPU node: 4x A100-SXM4-40GB + EPYC Milan (paper default)",
        node=NodeSpec(
            name=PERLMUTTER_GPU_NODE.name,
            tdp_w=PERLMUTTER_GPU_NODE.tdp_w,
            gpus_per_node=PERLMUTTER_GPU_NODE.gpus_per_node,
            idle_min_w=PERLMUTTER_GPU_NODE.idle_min_w,
            idle_max_w=PERLMUTTER_GPU_NODE.idle_max_w,
            baseboard_w=PERLMUTTER_GPU_NODE.baseboard_w,
            gpu=GpuSpec.from_envelope(A100_40GB),
            cpu=CPU_MILAN,
            memory=DDR4_256GB,
            nic=SLINGSHOT_NIC,
        ),
    )
)

#: A100 80 GB: same GPC silicon and 400 W envelope, HBM2e doubles
#: capacity and raises bandwidth to 2,039 GB/s (and idle by a few watts).
A100_80G = register_platform(
    Platform(
        id="a100-80g",
        description="4x A100-SXM4-80GB node (HBM2e: 2,039 GB/s, higher idle)",
        node=NodeSpec(
            name="A100-80GB GPU node",
            tdp_w=2350.0,
            gpus_per_node=4,
            idle_min_w=420.0,
            idle_max_w=530.0,
            baseboard_w=50.0,
            gpu=GpuSpec.from_envelope(
                A100_40GB,
                name="NVIDIA A100-SXM4-80GB",
                idle_w=60.0,
                hbm_gib=80.0,
                hbm_bw_gbs=2039.0,
            ),
            cpu=CPU_MILAN,
            memory=DDR4_256GB,
            nic=SLINGSHOT_NIC,
            idle_node_w=475.0,
        ),
    )
)

#: AMD EPYC 9454 "Genoa" — the host CPU in typical H100 SXM nodes.
CPU_GENOA = CPUEnvelope(
    name="AMD EPYC 9454",
    tdp_w=290.0,
    idle_w=100.0,
    cores=48,
    peak_fp64_gflops_per_core=44.0,
)

#: 512 GB DDR5 host memory.
DDR5_512GB = MemoryEnvelope(
    name="DDR5-4800 512GB",
    capacity_gib=512.0,
    idle_w=35.0,
    max_w=110.0,
)

#: H100 SXM5: 700 W envelope with a 200 W cap floor, HBM3 at 3,350 GB/s,
#: FP64 34 TFLOPS (67 via tensor cores).  Boost 1,980 MHz with a ~210 MHz
#: floor gives a lower relative clock floor than the A100.
H100_SXM = register_platform(
    Platform(
        id="h100-sxm",
        description="4x H100-SXM5-80GB node + EPYC Genoa (700 W, 200-700 W caps)",
        node=NodeSpec(
            name="H100 SXM GPU node",
            tdp_w=3600.0,
            gpus_per_node=4,
            idle_min_w=460.0,
            idle_max_w=620.0,
            baseboard_w=60.0,
            gpu=GpuSpec.from_envelope(
                GPUEnvelope(
                    name="NVIDIA H100-SXM5-80GB",
                    tdp_w=700.0,
                    cap_min_w=200.0,
                    cap_max_w=700.0,
                    idle_w=70.0,
                    static_w=130.0,
                    hbm_gib=80.0,
                    peak_fp64_tflops=34.0,
                    peak_fp64_tc_tflops=67.0,
                    hbm_bw_gbs=3350.0,
                ),
                min_clock_fraction=0.11,
                idle_sigma_w=8.0,
            ),
            cpu=CPU_GENOA,
            memory=DDR5_512GB,
            nic=SLINGSHOT_NIC,
            host_power_w=300.0,
            idle_node_w=540.0,
        ),
    )
)

#: Intel Xeon Gold 6148 "Skylake" — host CPU of V100-era nodes.
CPU_SKYLAKE = CPUEnvelope(
    name="Intel Xeon Gold 6148",
    tdp_w=150.0,
    idle_w=60.0,
    cores=20,
    peak_fp64_gflops_per_core=38.4,
)

#: Mellanox EDR InfiniBand NIC.
EDR_NIC = NICEnvelope(
    name="Mellanox ConnectX-5 EDR",
    idle_w=10.0,
    max_w=20.0,
)

#: V100 SXM2 16 GB: 300 W envelope, 150-300 W caps, no FP64 tensor cores
#: (the tensor-core ceiling equals the FP64 ceiling), HBM2 at 900 GB/s.
V100_SXM2 = register_platform(
    Platform(
        id="v100-sxm2",
        description="4x V100-SXM2-16GB node + Xeon Skylake (300 W, 150-300 W caps)",
        node=NodeSpec(
            name="V100 SXM2 GPU node",
            tdp_w=1600.0,
            gpus_per_node=4,
            idle_min_w=250.0,
            idle_max_w=360.0,
            baseboard_w=40.0,
            gpu=GpuSpec.from_envelope(
                GPUEnvelope(
                    name="NVIDIA V100-SXM2-16GB",
                    tdp_w=300.0,
                    cap_min_w=150.0,
                    cap_max_w=300.0,
                    idle_w=40.0,
                    static_w=70.0,
                    hbm_gib=16.0,
                    peak_fp64_tflops=7.8,
                    peak_fp64_tc_tflops=7.8,
                    hbm_bw_gbs=900.0,
                ),
                min_clock_fraction=0.10,
                idle_sigma_w=5.0,
            ),
            cpu=CPU_SKYLAKE,
            memory=DDR4_256GB,
            nic=EDR_NIC,
            n_nics=1,
            host_power_w=170.0,
            idle_node_w=300.0,
        ),
    )
)
