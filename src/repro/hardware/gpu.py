"""Behavioural model of a data-centre GPU: power, capping and DVFS.

The model answers two questions per kernel phase:

1. *How much power does the GPU draw* while a phase with demand power
   ``P_d`` runs under power limit ``C``?
2. *How much slower does the phase run* when the cap binds?

It implements the classic DVFS relationship: sustained board power is

    P(f) = P_static + (P_d - P_static) * f**3

for clock fraction ``f`` (voltage scales with frequency, so dynamic power
scales roughly cubically), while compute-bound kernel time scales as
``1/f``.  When a cap binds, the board's power controller picks the largest
``f`` with ``P(f) <= C``.  Near the cap floor the controller's regulation
error grows, reproducing the overshoot the paper reports in Fig 10.

Every device-specific number — cap range, clock floor, control margin,
regulation ramp, manufacturing spread — comes from the
:class:`~repro.hardware.platform.GpuSpec` the model is built with; the
default spec is the paper's A100 40 GB (``a100-40g`` in the platform
registry), whose cubic law is what makes the headline result possible:
capping an A100 to 50 % of TDP costs far less than 50 % of performance,
because the last watts buy very few hertz.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.units.constants import GPUEnvelope
from repro.hardware.platform import GpuSpec, default_gpu_spec
from repro.hardware.variability import ManufacturingVariation

#: Deprecated module-level defaults, kept for backward compatibility.
#: The authoritative values are per-device spec fields
#: (:attr:`GpuSpec.min_clock_fraction` / :attr:`GpuSpec.control_margin`);
#: these constants only describe the default A100 spec.
MIN_CLOCK_FRACTION: float = default_gpu_spec().min_clock_fraction
CONTROL_MARGIN: float = default_gpu_spec().control_margin
_DEFAULT_REG_MAX: float = default_gpu_spec().regulation_error_max
_DEFAULT_REG_EXP: float = default_gpu_spec().regulation_error_exponent


@dataclass(frozen=True)
class GpuPowerSample:
    """One resolved phase on a GPU: sustained power and slowdown."""

    power_w: float
    clock_fraction: float
    slowdown: float


class PowerLimitError(ValueError):
    """Raised when a requested power limit is outside the supported range."""


@dataclass
class GpuModel:
    """One GPU board with a settable power limit.

    Parameters
    ----------
    serial:
        Serial number; drives deterministic manufacturing variation.
    spec:
        Device spec (envelope plus behavioural parameters).  A bare
        :class:`~repro.units.constants.GPUEnvelope` is promoted via
        :meth:`GpuSpec.from_envelope`, so custom envelopes get explicit —
        and overridable — clock-floor and controller behaviour instead of
        silently inheriting the A100's.
    variation:
        Per-unit bias; defaults to a deterministic draw from ``serial``
        using the spec's manufacturing-spread parameters.
    """

    serial: str = "GPU-000000"
    spec: GpuSpec = field(default_factory=default_gpu_spec)
    variation: ManufacturingVariation | None = None
    _power_limit_w: float = field(init=False)

    def __post_init__(self) -> None:
        if not isinstance(self.spec, GpuSpec):
            if not isinstance(self.spec, GPUEnvelope):
                raise TypeError(f"spec must be a GpuSpec, got {type(self.spec).__name__}")
            self.spec = GpuSpec.from_envelope(self.spec)
        if self.variation is None:
            self.variation = ManufacturingVariation.sample(
                self.serial,
                rel_sigma=self.spec.power_rel_sigma,
                idle_sigma_w=self.spec.idle_sigma_w,
            )
        self._power_limit_w = self.spec.tdp_w

    @property
    def envelope(self) -> GpuSpec:
        """The device spec (a :class:`GPUEnvelope` subtype); legacy name."""
        return self.spec

    # ------------------------------------------------------------------
    # nvidia-smi -pl semantics
    # ------------------------------------------------------------------
    @property
    def power_limit_w(self) -> float:
        """Current software power limit (default: TDP)."""
        return self._power_limit_w

    def set_power_limit(self, watts: float) -> None:
        """Set the power limit, mirroring ``nvidia-smi -pl``.

        Raises
        ------
        PowerLimitError
            If ``watts`` is outside the board's supported cap range.
        """
        if not (self.spec.cap_min_w <= watts <= self.spec.cap_max_w):
            raise PowerLimitError(
                f"{self.spec.name}: power limit {watts:.0f} W outside supported "
                f"range [{self.spec.cap_min_w:.0f}, {self.spec.cap_max_w:.0f}] W"
            )
        self._power_limit_w = float(watts)

    def reset_power_limit(self) -> None:
        """Restore the default power limit (the TDP)."""
        self._power_limit_w = self.spec.tdp_w

    # ------------------------------------------------------------------
    # DVFS power/performance model
    # ------------------------------------------------------------------
    @property
    def idle_power_w(self) -> float:
        """Idle power including this unit's manufacturing offset."""
        assert self.variation is not None
        return self.spec.idle_w + self.variation.idle_offset_w

    def clock_fraction(self, demand_w: float, cap_w: float | None = None) -> float:
        """Largest clock fraction whose sustained power fits under the cap.

        ``demand_w`` is the power the kernel mix would draw at full clocks.
        When the cap does not bind the answer is 1.  When it binds, invert
        ``P(f) = static + (demand - static) * f**3`` and clamp at the
        hardware's minimum clock (``spec.min_clock_fraction``).
        """
        cap = self._power_limit_w if cap_w is None else cap_w
        spec = self.spec
        static = spec.static_w
        # The controller clocks against an effective target: a margin
        # below the limit in its authority range, relaxed (slightly above
        # the limit) by the regulation error near the cap floor.
        target = cap * (1.0 - spec.control_margin + self.regulation_error(cap))
        if demand_w <= target:
            return 1.0
        if demand_w <= static:
            # Demand below static power cannot be reduced by clocking down.
            return 1.0
        headroom = target - static
        if headroom <= 0.0:
            return spec.min_clock_fraction
        frac = float((headroom / (demand_w - static)) ** (1.0 / 3.0))
        return max(spec.min_clock_fraction, min(1.0, frac))

    def regulation_error(self, cap_w: float | None = None) -> float:
        """Relative overshoot of the power controller at a given cap.

        The controller holds the cap tightly except near the floor of the
        cap range, where the paper observes sustained power slightly
        above the cap (Fig 10).  Steep ramp (``spec``'s exponent):
        negligible in the upper cap range, ``spec.regulation_error_max``
        at the floor.
        """
        cap = self._power_limit_w if cap_w is None else cap_w
        spec = self.spec
        span = spec.cap_max_w - spec.cap_min_w
        depth = float(np.clip((spec.cap_max_w - cap) / span, 0.0, 1.0))
        return spec.regulation_error_max * depth**spec.regulation_error_exponent

    def resolve_phase(
        self,
        demand_w: float,
        compute_fraction: float = 1.0,
        cap_w: float | None = None,
    ) -> GpuPowerSample:
        """Resolve sustained power and slowdown for one kernel phase.

        Parameters
        ----------
        demand_w:
            Board power the phase would draw at full clocks (nominal unit).
        compute_fraction:
            Fraction of the phase's time that scales with core clock
            (compute-bound part).  Memory-bound time is clock-insensitive.
        cap_w:
            Override the GPU's current power limit (for what-if queries).

        Returns
        -------
        GpuPowerSample
            Sustained power in watts (with manufacturing bias and
            regulation error applied) and the phase time multiplier.
        """
        if not 0.0 <= compute_fraction <= 1.0:
            raise ValueError(f"compute_fraction must be in [0, 1], got {compute_fraction}")
        cap = self._power_limit_w if cap_w is None else cap_w
        spec = self.spec
        static = spec.static_w
        frac = self.clock_fraction(demand_w, cap)
        if frac >= 1.0:
            # The controller enforces its effective target, not the raw
            # limit: near the cap floor the regulation error puts the
            # target *above* the cap, and demand inside that window runs
            # unthrottled (keeps sustained power monotone in the cap —
            # a binding lower cap already lands on its own target).
            target = cap * (1.0 - spec.control_margin + self.regulation_error(cap))
            power = min(demand_w, max(cap, target))
            slowdown = 1.0
        else:
            # Sustained power lands on the controller's effective target:
            # slightly under the cap in its authority range, slightly over
            # near the floor (the regulation error baked into frac).
            power = min(static + (demand_w - static) * frac**3, demand_w)
            slowdown = compute_fraction / frac + (1.0 - compute_fraction)
        assert self.variation is not None
        biased = self.variation.apply(max(power, spec.idle_w), spec.idle_w)
        return GpuPowerSample(power_w=biased, clock_fraction=frac, slowdown=slowdown)

    def idle_sample(self) -> GpuPowerSample:
        """Power sample for an idle GPU."""
        return GpuPowerSample(power_w=self.idle_power_w, clock_fraction=1.0, slowdown=1.0)


@dataclass
class A100Gpu(GpuModel):
    """Deprecated alias of :class:`GpuModel` (default spec: A100 40 GB).

    Kept so existing callers and pickles keep working; new code should
    construct ``GpuModel(spec=get_platform(...).gpu)``.
    """


# ----------------------------------------------------------------------
# Array-capable entry points (the engine's vectorized hot path)
# ----------------------------------------------------------------------
def regulation_error_batch(
    cap_w: np.ndarray,
    cap_min_w: float | np.ndarray,
    cap_max_w: float | np.ndarray,
    regulation_error_max: float | np.ndarray = _DEFAULT_REG_MAX,
    regulation_error_exponent: float | np.ndarray = _DEFAULT_REG_EXP,
) -> np.ndarray:
    """Array version of :meth:`GpuModel.regulation_error`."""
    cap = np.asarray(cap_w, dtype=float)
    span = np.asarray(cap_max_w, dtype=float) - np.asarray(cap_min_w, dtype=float)
    depth = np.clip((np.asarray(cap_max_w, dtype=float) - cap) / span, 0.0, 1.0)
    return np.asarray(regulation_error_max, dtype=float) * np.power(
        depth, np.asarray(regulation_error_exponent, dtype=float)
    )


def resolve_phase_batch(
    demand_w: np.ndarray,
    compute_fraction: np.ndarray,
    cap_w: np.ndarray,
    *,
    static_w: float | np.ndarray,
    idle_env_w: float | np.ndarray,
    cap_min_w: float | np.ndarray,
    cap_max_w: float | np.ndarray,
    power_factor: np.ndarray,
    idle_offset_w: np.ndarray,
    min_clock_fraction: float | np.ndarray = MIN_CLOCK_FRACTION,
    control_margin: float | np.ndarray = CONTROL_MARGIN,
    regulation_error_max: float | np.ndarray = _DEFAULT_REG_MAX,
    regulation_error_exponent: float | np.ndarray = _DEFAULT_REG_EXP,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Resolve many kernel phases on many GPUs in one shot.

    Broadcasts ``demand_w`` / ``compute_fraction`` (typically one entry per
    phase, shaped ``[P, 1, 1]``) against per-GPU cap, spec and variation
    arrays (shaped ``[nodes, gpus]``) and returns ``(power_w,
    clock_fraction, slowdown)`` arrays — the same quantities
    :meth:`GpuModel.resolve_phase` produces one scalar at a time, with the
    manufacturing bias already applied to the power.  The spec keywords
    default to the A100 values so scalar-spec callers stay unchanged;
    the engine passes per-GPU arrays, which is what lets one pool mix
    platforms (every GPU carries its own clock floor and controller).

    The branch structure mirrors the scalar path exactly: the controller's
    effective target, the full-clock short-circuits (demand under target or
    under static power), the minimum-clock clamp, and the cubic DVFS law.
    """
    demand = np.asarray(demand_w, dtype=float)
    cf = np.asarray(compute_fraction, dtype=float)
    cap = np.asarray(cap_w, dtype=float)
    static = np.asarray(static_w, dtype=float)
    idle_env = np.asarray(idle_env_w, dtype=float)
    min_clock = np.asarray(min_clock_fraction, dtype=float)
    margin = np.asarray(control_margin, dtype=float)

    err = regulation_error_batch(
        cap, cap_min_w, cap_max_w, regulation_error_max, regulation_error_exponent
    )
    target = cap * (1.0 - margin + err)

    headroom = target - static
    denom = demand - static
    with np.errstate(divide="ignore", invalid="ignore"):
        frac = np.power(np.clip(headroom / denom, 0.0, 1.0), 1.0 / 3.0)
    frac = np.clip(frac, min_clock, 1.0)
    frac = np.where(headroom <= 0.0, min_clock, frac)
    frac = np.where(demand <= static, 1.0, frac)
    frac = np.where(demand <= target, 1.0, frac)

    at_full = frac >= 1.0
    throttled_power = np.minimum(static + (demand - static) * np.power(frac, 3), demand)
    # Mirror the scalar path: at full clocks the controller enforces its
    # effective target (above the cap near the floor), not the raw limit.
    full_power = np.minimum(demand, np.maximum(cap, target))
    power = np.where(at_full, full_power, throttled_power)
    with np.errstate(divide="ignore", invalid="ignore"):
        slowdown = np.where(at_full, 1.0, cf / frac + (1.0 - cf))

    # Manufacturing bias (ManufacturingVariation.apply, element-wise).
    floored = np.maximum(power, idle_env)
    dynamic = np.maximum(0.0, floored - idle_env)
    biased = idle_env + np.asarray(idle_offset_w, dtype=float) + dynamic * np.asarray(
        power_factor, dtype=float
    )
    return biased, frac, slowdown
