"""Behavioural model of an NVIDIA A100 GPU: power, capping and DVFS.

The model answers two questions per kernel phase:

1. *How much power does the GPU draw* while a phase with demand power
   ``P_d`` runs under power limit ``C``?
2. *How much slower does the phase run* when the cap binds?

It implements the classic DVFS relationship: sustained board power is

    P(f) = P_static + (P_d - P_static) * f**3

for clock fraction ``f`` (voltage scales with frequency, so dynamic power
scales roughly cubically), while compute-bound kernel time scales as
``1/f``.  When a cap binds, the board's power controller picks the largest
``f`` with ``P(f) <= C``.  Near the 100 W floor the controller's regulation
error grows, reproducing the overshoot the paper reports in Fig 10.

This cubic law is what makes the paper's headline result possible: capping
an A100 to 50 % of TDP costs far less than 50 % of performance, because the
last watts buy very few hertz.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.units.constants import A100_40GB, GPUEnvelope
from repro.hardware.variability import ManufacturingVariation

#: Lowest clock fraction the board will throttle to (A100: ~210 MHz of
#: 1410 MHz boost).  Below this the cap simply cannot be honoured.
MIN_CLOCK_FRACTION: float = 0.15

#: The power controller regulates a few percent *below* the limit so that
#: sustained power stays inside it (observable in Fig 10: bars sit under
#: the cap line everywhere the controller has authority).
CONTROL_MARGIN: float = 0.03


@dataclass(frozen=True)
class GpuPowerSample:
    """One resolved phase on a GPU: sustained power and slowdown."""

    power_w: float
    clock_fraction: float
    slowdown: float


class PowerLimitError(ValueError):
    """Raised when a requested power limit is outside the supported range."""


@dataclass
class A100Gpu:
    """One A100 board with a settable power limit.

    Parameters
    ----------
    serial:
        Serial number; drives deterministic manufacturing variation.
    envelope:
        Static envelope (TDP, cap range, idle/static power).
    variation:
        Per-unit bias; defaults to a deterministic draw from ``serial``.
    """

    serial: str = "GPU-000000"
    envelope: GPUEnvelope = field(default_factory=lambda: A100_40GB)
    variation: ManufacturingVariation | None = None
    _power_limit_w: float = field(init=False)

    def __post_init__(self) -> None:
        if self.variation is None:
            self.variation = ManufacturingVariation.sample(self.serial)
        self._power_limit_w = self.envelope.tdp_w

    # ------------------------------------------------------------------
    # nvidia-smi -pl semantics
    # ------------------------------------------------------------------
    @property
    def power_limit_w(self) -> float:
        """Current software power limit (default: TDP)."""
        return self._power_limit_w

    def set_power_limit(self, watts: float) -> None:
        """Set the power limit, mirroring ``nvidia-smi -pl``.

        Raises
        ------
        PowerLimitError
            If ``watts`` is outside the board's supported cap range.
        """
        if not (self.envelope.cap_min_w <= watts <= self.envelope.cap_max_w):
            raise PowerLimitError(
                f"power limit {watts:.0f} W outside supported range "
                f"[{self.envelope.cap_min_w:.0f}, {self.envelope.cap_max_w:.0f}] W"
            )
        self._power_limit_w = float(watts)

    def reset_power_limit(self) -> None:
        """Restore the default power limit (the TDP)."""
        self._power_limit_w = self.envelope.tdp_w

    # ------------------------------------------------------------------
    # DVFS power/performance model
    # ------------------------------------------------------------------
    @property
    def idle_power_w(self) -> float:
        """Idle power including this unit's manufacturing offset."""
        assert self.variation is not None
        return self.envelope.idle_w + self.variation.idle_offset_w

    def clock_fraction(self, demand_w: float, cap_w: float | None = None) -> float:
        """Largest clock fraction whose sustained power fits under the cap.

        ``demand_w`` is the power the kernel mix would draw at full clocks.
        When the cap does not bind the answer is 1.  When it binds, invert
        ``P(f) = static + (demand - static) * f**3`` and clamp at the
        hardware's minimum clock.
        """
        cap = self._power_limit_w if cap_w is None else cap_w
        static = self.envelope.static_w
        # The controller clocks against an effective target: a margin
        # below the limit in its authority range, relaxed (slightly above
        # the limit) by the regulation error near the 100 W floor.
        target = cap * (1.0 - CONTROL_MARGIN + self.regulation_error(cap))
        if demand_w <= target:
            return 1.0
        if demand_w <= static:
            # Demand below static power cannot be reduced by clocking down.
            return 1.0
        headroom = target - static
        if headroom <= 0.0:
            return MIN_CLOCK_FRACTION
        frac = float((headroom / (demand_w - static)) ** (1.0 / 3.0))
        return max(MIN_CLOCK_FRACTION, min(1.0, frac))

    def regulation_error(self, cap_w: float | None = None) -> float:
        """Relative overshoot of the power controller at a given cap.

        The controller holds the cap tightly except near the 100 W floor,
        where the paper observes sustained power slightly above the cap
        (Fig 10).  Steep (sixth-power) ramp: negligible at 300/200 W,
        ~8 % at the floor.
        """
        cap = self._power_limit_w if cap_w is None else cap_w
        env = self.envelope
        span = env.cap_max_w - env.cap_min_w
        depth = float(np.clip((env.cap_max_w - cap) / span, 0.0, 1.0))
        return 0.08 * depth**6

    def resolve_phase(
        self,
        demand_w: float,
        compute_fraction: float = 1.0,
        cap_w: float | None = None,
    ) -> GpuPowerSample:
        """Resolve sustained power and slowdown for one kernel phase.

        Parameters
        ----------
        demand_w:
            Board power the phase would draw at full clocks (nominal unit).
        compute_fraction:
            Fraction of the phase's time that scales with core clock
            (compute-bound part).  Memory-bound time is clock-insensitive.
        cap_w:
            Override the GPU's current power limit (for what-if queries).

        Returns
        -------
        GpuPowerSample
            Sustained power in watts (with manufacturing bias and
            regulation error applied) and the phase time multiplier.
        """
        if not 0.0 <= compute_fraction <= 1.0:
            raise ValueError(f"compute_fraction must be in [0, 1], got {compute_fraction}")
        cap = self._power_limit_w if cap_w is None else cap_w
        static = self.envelope.static_w
        frac = self.clock_fraction(demand_w, cap)
        if frac >= 1.0:
            # The controller enforces its effective target, not the raw
            # limit: near the 100 W floor the regulation error puts the
            # target *above* the cap, and demand inside that window runs
            # unthrottled (keeps sustained power monotone in the cap —
            # a binding lower cap already lands on its own target).
            target = cap * (1.0 - CONTROL_MARGIN + self.regulation_error(cap))
            power = min(demand_w, max(cap, target))
            slowdown = 1.0
        else:
            # Sustained power lands on the controller's effective target:
            # slightly under the cap in its authority range, slightly over
            # near the 100 W floor (the regulation error baked into frac).
            power = min(static + (demand_w - static) * frac**3, demand_w)
            slowdown = compute_fraction / frac + (1.0 - compute_fraction)
        assert self.variation is not None
        biased = self.variation.apply(max(power, self.envelope.idle_w), self.envelope.idle_w)
        return GpuPowerSample(power_w=biased, clock_fraction=frac, slowdown=slowdown)

    def idle_sample(self) -> GpuPowerSample:
        """Power sample for an idle GPU."""
        return GpuPowerSample(power_w=self.idle_power_w, clock_fraction=1.0, slowdown=1.0)


# ----------------------------------------------------------------------
# Array-capable entry points (the engine's vectorized hot path)
# ----------------------------------------------------------------------
def regulation_error_batch(
    cap_w: np.ndarray, cap_min_w: float | np.ndarray, cap_max_w: float | np.ndarray
) -> np.ndarray:
    """Array version of :meth:`A100Gpu.regulation_error`."""
    cap = np.asarray(cap_w, dtype=float)
    span = np.asarray(cap_max_w, dtype=float) - np.asarray(cap_min_w, dtype=float)
    depth = np.clip((np.asarray(cap_max_w, dtype=float) - cap) / span, 0.0, 1.0)
    return 0.08 * np.power(depth, 6)


def resolve_phase_batch(
    demand_w: np.ndarray,
    compute_fraction: np.ndarray,
    cap_w: np.ndarray,
    *,
    static_w: float | np.ndarray,
    idle_env_w: float | np.ndarray,
    cap_min_w: float | np.ndarray,
    cap_max_w: float | np.ndarray,
    power_factor: np.ndarray,
    idle_offset_w: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Resolve many kernel phases on many GPUs in one shot.

    Broadcasts ``demand_w`` / ``compute_fraction`` (typically one entry per
    phase, shaped ``[P, 1, 1]``) against per-GPU cap and variation arrays
    (shaped ``[nodes, gpus]``) and returns ``(power_w, clock_fraction,
    slowdown)`` arrays — the same quantities :meth:`A100Gpu.resolve_phase`
    produces one scalar at a time, with the manufacturing bias already
    applied to the power.

    The branch structure mirrors the scalar path exactly: the controller's
    effective target, the full-clock short-circuits (demand under target or
    under static power), the minimum-clock clamp, and the cubic DVFS law.
    """
    demand = np.asarray(demand_w, dtype=float)
    cf = np.asarray(compute_fraction, dtype=float)
    cap = np.asarray(cap_w, dtype=float)
    static = np.asarray(static_w, dtype=float)
    idle_env = np.asarray(idle_env_w, dtype=float)

    err = regulation_error_batch(cap, cap_min_w, cap_max_w)
    target = cap * (1.0 - CONTROL_MARGIN + err)

    headroom = target - static
    denom = demand - static
    with np.errstate(divide="ignore", invalid="ignore"):
        frac = np.power(np.clip(headroom / denom, 0.0, 1.0), 1.0 / 3.0)
    frac = np.clip(frac, MIN_CLOCK_FRACTION, 1.0)
    frac = np.where(headroom <= 0.0, MIN_CLOCK_FRACTION, frac)
    frac = np.where(demand <= static, 1.0, frac)
    frac = np.where(demand <= target, 1.0, frac)

    at_full = frac >= 1.0
    throttled_power = np.minimum(static + (demand - static) * np.power(frac, 3), demand)
    # Mirror the scalar path: at full clocks the controller enforces its
    # effective target (above the cap near the floor), not the raw limit.
    full_power = np.minimum(demand, np.maximum(cap, target))
    power = np.where(at_full, full_power, throttled_power)
    with np.errstate(divide="ignore", invalid="ignore"):
        slowdown = np.where(at_full, 1.0, cf / frac + (1.0 - cf))

    # Manufacturing bias (ManufacturingVariation.apply, element-wise).
    floored = np.maximum(power, idle_env)
    dynamic = np.maximum(0.0, floored - idle_env)
    biased = idle_env + np.asarray(idle_offset_w, dtype=float) + dynamic * np.asarray(
        power_factor, dtype=float
    )
    return biased, frac, slowdown
