"""Behavioural power model of the AMD EPYC 7763 host CPU.

On the GPU nodes the CPU mostly shepherds the four device-bound MPI ranks,
so its power stays in a narrow band well below its 280 W TDP — the paper
notes CPU plus memory account for less than 10 % of node power for the
GPU-heavy workloads.  The exception is Si128_acfdtr, whose exact
diagonalization step had not been ported to the GPU in VASP 6.4.1 and runs
on the host, which we model as a high-utilization CPU phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.units.constants import CPU_MILAN, CPUEnvelope
from repro.hardware.variability import ManufacturingVariation


@dataclass
class MilanCpu:
    """One Milan socket with a utilization -> power mapping."""

    serial: str = "CPU-000000"
    envelope: CPUEnvelope = field(default_factory=lambda: CPU_MILAN)
    variation: ManufacturingVariation | None = None

    def __post_init__(self) -> None:
        if self.variation is None:
            self.variation = ManufacturingVariation.sample(self.serial)

    @property
    def idle_power_w(self) -> float:
        """Idle power including the unit's manufacturing offset."""
        assert self.variation is not None
        return self.envelope.idle_w + self.variation.idle_offset_w

    def power_at_utilization(self, utilization: float) -> float:
        """Sustained power at a given core-utilization level.

        A mildly concave map (exponent 0.9): package power rises slightly
        slower than linearly with active cores because shared uncore power
        is already paid at low utilization.
        """
        if not 0.0 <= utilization <= 1.0:
            raise ValueError(f"utilization must be in [0, 1], got {utilization}")
        env = self.envelope
        nominal = env.idle_w + (env.tdp_w - env.idle_w) * utilization**0.9
        assert self.variation is not None
        return self.variation.apply(nominal, env.idle_w)

    def power_at_utilization_batch(self, utilization: np.ndarray) -> np.ndarray:
        """Array version of :meth:`power_at_utilization` (one entry per phase)."""
        u = np.asarray(utilization, dtype=float)
        if np.any((u < 0.0) | (u > 1.0)):
            raise ValueError("utilization must be in [0, 1]")
        env = self.envelope
        nominal = env.idle_w + (env.tdp_w - env.idle_w) * np.power(u, 0.9)
        assert self.variation is not None
        return self.variation.apply_batch(nominal, env.idle_w)
