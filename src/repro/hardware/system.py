"""System-level view: a pool of GPU nodes with allocation bookkeeping.

``PerlmutterSystem`` stands in for the machine as the batch system sees it:
a set of named nodes, a facility power envelope, and allocate/release
primitives the power-aware scheduler (``repro.capping.scheduler``) builds
on.  :class:`RunningMoments` and :class:`SystemPowerAccumulator` are the
incremental aggregation primitives the fleet simulation streams node
traces through — system power statistics in bounded memory, without
retaining any job's full trace.
"""

from __future__ import annotations

import heapq
import math

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.units.constants import PERLMUTTER_SYSTEM_TDP_W
from repro.hardware.node import GpuNode
from repro.hardware.platform import NodeSpec, Platform, get_platform


class RunningMoments:
    """Streaming count/mean/variance (Welford) plus sum, min, max.

    Batches merge via the Chan et al. parallel update, so arbitrarily
    large sample streams reduce to O(1) state.  Population variance, to
    match ``np.var`` over the concatenated stream.
    """

    __slots__ = ("count", "mean", "_m2", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def update(self, values: np.ndarray) -> None:
        """Fold a batch of samples into the moments."""
        values = np.asarray(values, dtype=float).ravel()
        n = values.size
        if n == 0:
            return
        batch_mean = float(values.mean())
        batch_m2 = float(np.sum((values - batch_mean) ** 2))
        delta = batch_mean - self.mean
        merged = self.count + n
        self.mean += delta * n / merged
        self._m2 += batch_m2 + delta * delta * self.count * n / merged
        self.count = merged
        self.total += float(values.sum())
        self.minimum = min(self.minimum, float(values.min()))
        self.maximum = max(self.maximum, float(values.max()))

    def update_scalar(self, value: float) -> None:
        """Fold a single sample into the moments (no array round-trip)."""
        value = float(value)
        delta = value - self.mean
        self.count += 1
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def merge(self, other: "RunningMoments") -> None:
        """Fold another moment set into this one (Chan et al. merge).

        The fleet monitor maintains per-node moments and derives the
        fleet-wide distribution by merging them — merging then reading is
        equivalent to having streamed every sample through one instance.
        """
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.total = other.total
            self.minimum = other.minimum
            self.maximum = other.maximum
            return
        delta = other.mean - self.mean
        merged = self.count + other.count
        self.mean += delta * other.count / merged
        self._m2 += other._m2 + delta * delta * self.count * other.count / merged
        self.count = merged
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    @classmethod
    def from_batch(cls, values: np.ndarray) -> "RunningMoments":
        """Moments of a single batch of samples.

        ``acc.merge(RunningMoments.from_batch(values))`` performs the
        same float operations as ``acc.update(values)`` — the Chan merge
        against a one-batch moment set reduces to the batched Welford
        update.  Shard workers rely on this to ship one compact moment
        row per chunk instead of the samples themselves.
        """
        moments = cls()
        moments.update(values)
        return moments

    def state(self) -> tuple[int, float, float, float, float, float]:
        """Compact picklable snapshot (count, mean, m2, total, min, max)."""
        return (
            self.count,
            self.mean,
            self._m2,
            self.total,
            self.minimum,
            self.maximum,
        )

    @classmethod
    def from_state(
        cls, state: "tuple[int, float, float, float, float, float]"
    ) -> "RunningMoments":
        """Rebuild a moment set from a :meth:`state` snapshot."""
        moments = cls()
        (
            moments.count,
            moments.mean,
            moments._m2,
            moments.total,
            moments.minimum,
            moments.maximum,
        ) = state
        return moments

    def zscore(self, value: float) -> float:
        """Standard score of ``value`` against these moments.

        Returns 0.0 when the distribution is degenerate (fewer than two
        samples, or zero variance) — a lone node can never drift from a
        fleet of itself.
        """
        if self.count < 2:
            return 0.0
        std = self.std
        if std <= 0.0:
            return 0.0
        return (float(value) - self.mean) / std

    @property
    def variance(self) -> float:
        """Population variance of everything folded in so far."""
        return self._m2 / self.count if self.count else 0.0

    @property
    def std(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    @property
    def peak(self) -> float:
        """Largest sample seen (0.0 when empty)."""
        return self.maximum if self.count else 0.0


@dataclass
class SystemPowerStats:
    """Finalized system-power statistics from an accumulator."""

    mean_power_w: float
    peak_power_w: float
    power_std_w: float
    horizon_s: float
    energy_j: float
    n_bins: int


class JobPowerPartial:
    """One job's energy-bin deposits, offset to the job's first bin.

    Shard workers deposit a job's streamed chunks here using bin math
    identical to :meth:`SystemPowerAccumulator.add_samples`, then ship
    the compact array back to the coordinator, which folds partials in
    chronological job order via
    :meth:`SystemPowerAccumulator.merge_partial`.  The serial fleet path
    performs the *same* partial-then-merge fold, so serial, sharded and
    resumed runs finalize to identical bits.  Memory is
    O(job duration / bin_s), independent of the fleet horizon.
    """

    __slots__ = ("bin_s", "origin_bin", "energy_j", "used_bins", "horizon_s", "samples")

    def __init__(self, start_s: float, bin_s: float) -> None:
        if bin_s <= 0:
            raise ValueError(f"bin_s must be positive, got {bin_s}")
        self.bin_s = bin_s
        self.origin_bin = max(int(math.floor(start_s / bin_s)), 0)
        self.energy_j = np.zeros(256)
        self.used_bins = 0
        self.horizon_s = 0.0
        self.samples = 0

    def _ensure(self, n: int) -> None:
        if n <= len(self.energy_j):
            return
        size = max(n, 2 * len(self.energy_j))
        self.energy_j = np.concatenate(
            [self.energy_j, np.zeros(size - len(self.energy_j))]
        )

    def add_samples(
        self,
        start_s: float,
        times: np.ndarray,
        powers: np.ndarray,
        interval_s: float,
    ) -> None:
        """Deposit one chunk of node-power samples (job-relative times)."""
        if len(times) == 0:
            return
        absolute = start_s + np.asarray(times, dtype=float)
        index = np.floor(absolute / self.bin_s).astype(np.intp)
        index = np.maximum(index, 0)
        local = index - self.origin_bin
        # Chunk times are increasing, so the last sample holds the top bin.
        top = int(local[-1]) + 1
        self._ensure(top)
        energy = np.asarray(powers, dtype=float) * interval_s
        np.add.at(self.energy_j, local, energy)
        self.used_bins = max(self.used_bins, top)
        self.horizon_s = max(self.horizon_s, float(absolute[-1]) + interval_s / 2.0)
        self.samples += len(times)

    def trim(self) -> "JobPowerPartial":
        """Shrink the bin array to its used extent (before crossing IPC)."""
        if len(self.energy_j) > self.used_bins:
            self.energy_j = self.energy_j[: self.used_bins].copy()
        return self


class SystemPowerAccumulator:
    """Incremental system-power aggregation over streamed trace chunks.

    Jobs overlap in time, so per-sample powers cannot be reduced to
    scalar moments directly; instead each streamed sample deposits its
    energy into a fixed-width time bin (columnar, grown geometrically),
    and busy-node intervals deposit node-seconds the same way.  Memory is
    O(makespan / bin_s) + O(chunk) — independent of how many node traces
    stream through.  ``finalize`` converts bins to a system power series
    (job power + idle power of unoccupied nodes) and reduces it through
    :class:`RunningMoments`.
    """

    def __init__(
        self, n_nodes: int, bin_s: float = 1.0, idle_node_w: float | None = None
    ) -> None:
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        if bin_s <= 0:
            raise ValueError(f"bin_s must be positive, got {bin_s}")
        if idle_node_w is None:
            idle_node_w = get_platform().node.idle_node_w
        self.n_nodes = n_nodes
        self.bin_s = bin_s
        self.idle_node_w = idle_node_w
        self._energy_j = np.zeros(1024)
        self._busy_node_s = np.zeros(1024)
        self._horizon_s = 0.0
        self.samples_added = 0

    @property
    def resident_bytes(self) -> int:
        """Bytes held by the bin arrays — the accumulator's whole footprint."""
        return int(self._energy_j.nbytes + self._busy_node_s.nbytes)

    def _ensure_bins(self, n: int) -> None:
        if n <= len(self._energy_j):
            return
        size = max(n, 2 * len(self._energy_j))
        self._energy_j = np.concatenate(
            [self._energy_j, np.zeros(size - len(self._energy_j))]
        )
        self._busy_node_s = np.concatenate(
            [self._busy_node_s, np.zeros(size - len(self._busy_node_s))]
        )

    def add_samples(
        self,
        start_s: float,
        times: np.ndarray,
        powers: np.ndarray,
        interval_s: float,
    ) -> None:
        """Deposit one chunk of node-power samples.

        ``times`` are sample midpoints relative to the job, offset by
        ``start_s`` on the system clock; each sample's energy
        (``power * interval_s``) lands in the bin holding its midpoint.
        """
        if len(times) == 0:
            return
        absolute = start_s + np.asarray(times, dtype=float)
        index = np.floor(absolute / self.bin_s).astype(np.intp)
        index = np.maximum(index, 0)
        self._ensure_bins(int(index[-1]) + 1 if index.size else 0)
        energy = np.asarray(powers, dtype=float) * interval_s
        np.add.at(self._energy_j, index, energy)
        self._horizon_s = max(
            self._horizon_s, float(absolute[-1]) + interval_s / 2.0
        )
        self.samples_added += len(times)

    def merge_partial(self, partial: JobPowerPartial) -> None:
        """Fold one job's :class:`JobPowerPartial` into the global bins.

        Merging partials in chronological job order is the canonical
        fold: because the global bins start at zero and every partial
        already holds its job's full within-job sums, the result matches
        the serial partial-then-merge path bit for bit regardless of
        which process rendered the job.
        """
        if partial.bin_s != self.bin_s:
            raise ValueError(
                f"bin width mismatch: accumulator {self.bin_s} s, "
                f"partial {partial.bin_s} s"
            )
        used = partial.used_bins
        if used:
            top = partial.origin_bin + used
            self._ensure_bins(top)
            self._energy_j[partial.origin_bin : top] += partial.energy_j[:used]
        self._horizon_s = max(self._horizon_s, partial.horizon_s)
        self.samples_added += partial.samples

    def state(self) -> dict:
        """Checkpointable snapshot of the bin state (see :meth:`restore`)."""
        return {
            "n_nodes": self.n_nodes,
            "bin_s": self.bin_s,
            "idle_node_w": self.idle_node_w,
            "energy_j": self._energy_j.copy(),
            "busy_node_s": self._busy_node_s.copy(),
            "horizon_s": self._horizon_s,
            "samples_added": self.samples_added,
        }

    def restore(self, state: dict) -> None:
        """Adopt a snapshot taken by :meth:`state` (checkpoint resume)."""
        for name in ("n_nodes", "bin_s", "idle_node_w"):
            if state[name] != getattr(self, name):
                raise ValueError(
                    f"checkpoint mismatch: {name} was {state[name]!r}, "
                    f"accumulator has {getattr(self, name)!r}"
                )
        self._energy_j = np.array(state["energy_j"], dtype=float)
        self._busy_node_s = np.array(state["busy_node_s"], dtype=float)
        self._horizon_s = float(state["horizon_s"])
        self.samples_added = int(state["samples_added"])

    def add_busy_interval(self, start_s: float, end_s: float, n_nodes: int) -> None:
        """Mark nodes busy over a wall-clock interval (for idle power)."""
        if end_s <= start_s or n_nodes <= 0:
            return
        first = int(start_s / self.bin_s)
        last = int(np.ceil(end_s / self.bin_s))
        self._ensure_bins(last)
        edges = np.arange(first, last + 1) * self.bin_s
        overlap = np.minimum(edges[1:], end_s) - np.maximum(edges[:-1], start_s)
        self._busy_node_s[first:last] += n_nodes * np.maximum(overlap, 0.0)
        self._horizon_s = max(self._horizon_s, end_s)

    def finalize(self) -> SystemPowerStats:
        """Reduce the bins to system power statistics.

        System power per bin = deposited job power + idle power of the
        nodes not busy in that bin (fractional occupancy honoured).
        """
        # Epsilon guards against float slivers (e.g. a horizon of
        # 10.000000000000002 s) opening a spurious all-idle trailing bin.
        n_bins = max(int(np.ceil(self._horizon_s / self.bin_s - 1e-9)), 1)
        job_power = self._energy_j[:n_bins] / self.bin_s
        busy_nodes = np.clip(
            self._busy_node_s[:n_bins] / self.bin_s, 0.0, self.n_nodes
        )
        system = job_power + (self.n_nodes - busy_nodes) * self.idle_node_w
        moments = RunningMoments()
        moments.update(system)
        return SystemPowerStats(
            mean_power_w=moments.mean,
            peak_power_w=moments.peak,
            power_std_w=moments.std,
            horizon_s=self._horizon_s,
            energy_j=float(self._energy_j[:n_bins].sum())
            + float((self.n_nodes - busy_nodes).sum()) * self.bin_s * self.idle_node_w,
            n_bins=n_bins,
        )


class AllocationError(RuntimeError):
    """Raised when a node allocation request cannot be satisfied."""


class _LazyNodeMap(Mapping):
    """Name → :class:`GpuNode` mapping that builds nodes on first access.

    A 100k-node pool would spend seconds sampling manufacturing
    variability for nodes no job ever touches; node construction is
    deterministic in (name, spec), so building on demand returns the
    same object state as building eagerly.  Iteration order is the
    insertion (name) order of the pool.
    """

    __slots__ = ("_specs_by_name", "_built")

    def __init__(self, names: Sequence[str], specs: "Sequence[NodeSpec]") -> None:
        self._specs_by_name = dict(zip(names, specs))
        self._built: dict[str, GpuNode] = {}

    def __getitem__(self, name: str) -> GpuNode:
        node = self._built.get(name)
        if node is None:
            spec = self._specs_by_name[name]
            node = self._built[name] = GpuNode(name=name, spec=spec)
        return node

    def __iter__(self):
        return iter(self._specs_by_name)

    def __len__(self) -> int:
        return len(self._specs_by_name)

    def get_built(self, name: str) -> GpuNode | None:
        """The node if it has been materialized, else None (no build)."""
        return self._built.get(name)

    @property
    def built_count(self) -> int:
        """How many nodes have been materialized so far."""
        return len(self._built)


@dataclass
class PerlmutterSystem:
    """A pool of GPU nodes plus a facility power budget.

    Parameters
    ----------
    n_nodes:
        Number of GPU nodes in the pool (the real machine has 1,536
        40 GB nodes; tests use far fewer).
    power_budget_w:
        Facility budget available to this pool.  Defaults to the GPU
        partition's share of the 6.9 MW system TDP, scaled by pool size.
    platform:
        Platform id / :class:`~repro.hardware.platform.Platform` every
        node is built from (None = the registry default, a100-40g).
    node_platforms:
        Per-node override for heterogeneous pools: a sequence of
        platform ids / Platforms / :class:`NodeSpec` instances, cycled
        over the pool (e.g. ``["a100-40g", "h100-sxm"]`` alternates the
        two).  Overrides ``platform``.
    """

    n_nodes: int = 16
    power_budget_w: float | None = None
    platform: "str | Platform | None" = None
    node_platforms: "Sequence[str | Platform | NodeSpec] | None" = None
    nodes: "Mapping[str, GpuNode]" = field(init=False, repr=False, compare=False)
    _free: set[str] = field(init=False, repr=False, compare=False)
    _allocations: dict[str, list[str]] = field(init=False, repr=False, compare=False)
    _specs: "list[NodeSpec]" = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {self.n_nodes}")
        if self.node_platforms is not None and len(self.node_platforms) == 0:
            raise ValueError("node_platforms must be non-empty when given")
        specs = self._node_specs()
        self._specs = specs
        names = [f"nid{1000 + i:06d}" for i in range(self.n_nodes)]
        self.nodes = _LazyNodeMap(names, specs)
        self._free = set(names)
        self._allocations = {}
        if self.power_budget_w is None:
            # Scale the 1,536-node GPU partition's nominal share of the
            # facility TDP down to this pool (node TDP from the spec).
            mean_node_tdp = sum(spec.tdp_w for spec in specs) / len(specs)
            full_partition_w = 1536 * mean_node_tdp
            self.power_budget_w = min(PERLMUTTER_SYSTEM_TDP_W, full_partition_w) * (
                self.n_nodes / 1536
            )

    def _node_specs(self) -> "list[NodeSpec]":
        """The resolved per-node spec list (length ``n_nodes``)."""
        if self.node_platforms is None:
            spec = get_platform(self.platform).node
            return [spec] * self.n_nodes
        resolved = [
            entry if isinstance(entry, NodeSpec) else get_platform(entry).node
            for entry in self.node_platforms
        ]
        return [resolved[i % len(resolved)] for i in range(self.n_nodes)]

    # ------------------------------------------------------------------
    def node_specs(self) -> "list[NodeSpec]":
        """Per-node spec list in pool (name) order, without building nodes."""
        return list(self._specs)

    def node_spec(self, name: str) -> "NodeSpec":
        """The spec one named node is built from (no node construction)."""
        return self.nodes._specs_by_name[name]

    def materialize(self) -> list[GpuNode]:
        """Build (if needed) and return every node, in name order.

        Monitored fleet runs survey the whole pool; everything else
        should prefer the lazy ``nodes`` mapping, which only constructs
        the nodes jobs actually touch.
        """
        return [self.nodes[name] for name in self.nodes]

    @property
    def free_node_count(self) -> int:
        """Number of currently unallocated nodes."""
        return len(self._free)

    def allocate_names(self, job_id: str, n_nodes: int) -> list[str]:
        """Allocate ``n_nodes`` node *names* to a job (no node construction).

        Nodes are handed out in name order for determinism.  The shard
        coordinator plans with names only; workers build the nodes.

        Raises
        ------
        AllocationError
            If the job already holds an allocation or not enough nodes are
            free.
        """
        if job_id in self._allocations:
            raise AllocationError(f"job {job_id!r} already holds an allocation")
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        if n_nodes > len(self._free):
            raise AllocationError(
                f"job {job_id!r} wants {n_nodes} nodes, only {len(self._free)} free"
            )
        # n smallest names == sorted(free)[:n], without the full sort.
        chosen = heapq.nsmallest(n_nodes, self._free)
        self._free.difference_update(chosen)
        self._allocations[job_id] = chosen
        return chosen

    def allocate(self, job_id: str, n_nodes: int) -> list[GpuNode]:
        """Allocate ``n_nodes`` nodes to a job (see :meth:`allocate_names`)."""
        return [self.nodes[name] for name in self.allocate_names(job_id, n_nodes)]

    def release(self, job_id: str) -> None:
        """Release a job's nodes back to the pool and reset their caps."""
        try:
            names = self._allocations.pop(job_id)
        except KeyError:
            raise AllocationError(f"job {job_id!r} holds no allocation") from None
        for name in names:
            # Only materialized nodes can carry a cap to reset.
            node = self.nodes.get_built(name)
            if node is not None:
                node.reset_gpu_power_limit()
            self._free.add(name)

    def allocated_nodes(self, job_id: str) -> list[GpuNode]:
        """The nodes currently held by a job."""
        try:
            names = self._allocations[job_id]
        except KeyError:
            raise AllocationError(f"job {job_id!r} holds no allocation") from None
        return [self.nodes[name] for name in names]

    def idle_power_w(self) -> float:
        """Total idle power of currently free nodes."""
        return sum(self.nodes[name].idle_sample().node_w for name in self._free)
