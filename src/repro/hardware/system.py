"""System-level view: a pool of GPU nodes with allocation bookkeeping.

``PerlmutterSystem`` stands in for the machine as the batch system sees it:
a set of named nodes, a facility power envelope, and allocate/release
primitives the power-aware scheduler (``repro.capping.scheduler``) builds
on.  :class:`RunningMoments` and :class:`SystemPowerAccumulator` are the
incremental aggregation primitives the fleet simulation streams node
traces through — system power statistics in bounded memory, without
retaining any job's full trace.
"""

from __future__ import annotations

import math

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.units.constants import PERLMUTTER_SYSTEM_TDP_W
from repro.hardware.node import GpuNode
from repro.hardware.platform import NodeSpec, Platform, get_platform


class RunningMoments:
    """Streaming count/mean/variance (Welford) plus sum, min, max.

    Batches merge via the Chan et al. parallel update, so arbitrarily
    large sample streams reduce to O(1) state.  Population variance, to
    match ``np.var`` over the concatenated stream.
    """

    __slots__ = ("count", "mean", "_m2", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def update(self, values: np.ndarray) -> None:
        """Fold a batch of samples into the moments."""
        values = np.asarray(values, dtype=float).ravel()
        n = values.size
        if n == 0:
            return
        batch_mean = float(values.mean())
        batch_m2 = float(np.sum((values - batch_mean) ** 2))
        delta = batch_mean - self.mean
        merged = self.count + n
        self.mean += delta * n / merged
        self._m2 += batch_m2 + delta * delta * self.count * n / merged
        self.count = merged
        self.total += float(values.sum())
        self.minimum = min(self.minimum, float(values.min()))
        self.maximum = max(self.maximum, float(values.max()))

    def update_scalar(self, value: float) -> None:
        """Fold a single sample into the moments (no array round-trip)."""
        value = float(value)
        delta = value - self.mean
        self.count += 1
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def merge(self, other: "RunningMoments") -> None:
        """Fold another moment set into this one (Chan et al. merge).

        The fleet monitor maintains per-node moments and derives the
        fleet-wide distribution by merging them — merging then reading is
        equivalent to having streamed every sample through one instance.
        """
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.total = other.total
            self.minimum = other.minimum
            self.maximum = other.maximum
            return
        delta = other.mean - self.mean
        merged = self.count + other.count
        self.mean += delta * other.count / merged
        self._m2 += other._m2 + delta * delta * self.count * other.count / merged
        self.count = merged
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    def zscore(self, value: float) -> float:
        """Standard score of ``value`` against these moments.

        Returns 0.0 when the distribution is degenerate (fewer than two
        samples, or zero variance) — a lone node can never drift from a
        fleet of itself.
        """
        if self.count < 2:
            return 0.0
        std = self.std
        if std <= 0.0:
            return 0.0
        return (float(value) - self.mean) / std

    @property
    def variance(self) -> float:
        """Population variance of everything folded in so far."""
        return self._m2 / self.count if self.count else 0.0

    @property
    def std(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    @property
    def peak(self) -> float:
        """Largest sample seen (0.0 when empty)."""
        return self.maximum if self.count else 0.0


@dataclass
class SystemPowerStats:
    """Finalized system-power statistics from an accumulator."""

    mean_power_w: float
    peak_power_w: float
    power_std_w: float
    horizon_s: float
    energy_j: float
    n_bins: int


class SystemPowerAccumulator:
    """Incremental system-power aggregation over streamed trace chunks.

    Jobs overlap in time, so per-sample powers cannot be reduced to
    scalar moments directly; instead each streamed sample deposits its
    energy into a fixed-width time bin (columnar, grown geometrically),
    and busy-node intervals deposit node-seconds the same way.  Memory is
    O(makespan / bin_s) + O(chunk) — independent of how many node traces
    stream through.  ``finalize`` converts bins to a system power series
    (job power + idle power of unoccupied nodes) and reduces it through
    :class:`RunningMoments`.
    """

    def __init__(
        self, n_nodes: int, bin_s: float = 1.0, idle_node_w: float | None = None
    ) -> None:
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        if bin_s <= 0:
            raise ValueError(f"bin_s must be positive, got {bin_s}")
        if idle_node_w is None:
            idle_node_w = get_platform().node.idle_node_w
        self.n_nodes = n_nodes
        self.bin_s = bin_s
        self.idle_node_w = idle_node_w
        self._energy_j = np.zeros(1024)
        self._busy_node_s = np.zeros(1024)
        self._horizon_s = 0.0
        self.samples_added = 0

    @property
    def resident_bytes(self) -> int:
        """Bytes held by the bin arrays — the accumulator's whole footprint."""
        return int(self._energy_j.nbytes + self._busy_node_s.nbytes)

    def _ensure_bins(self, n: int) -> None:
        if n <= len(self._energy_j):
            return
        size = max(n, 2 * len(self._energy_j))
        self._energy_j = np.concatenate(
            [self._energy_j, np.zeros(size - len(self._energy_j))]
        )
        self._busy_node_s = np.concatenate(
            [self._busy_node_s, np.zeros(size - len(self._busy_node_s))]
        )

    def add_samples(
        self,
        start_s: float,
        times: np.ndarray,
        powers: np.ndarray,
        interval_s: float,
    ) -> None:
        """Deposit one chunk of node-power samples.

        ``times`` are sample midpoints relative to the job, offset by
        ``start_s`` on the system clock; each sample's energy
        (``power * interval_s``) lands in the bin holding its midpoint.
        """
        if len(times) == 0:
            return
        absolute = start_s + np.asarray(times, dtype=float)
        index = np.floor(absolute / self.bin_s).astype(np.intp)
        index = np.maximum(index, 0)
        self._ensure_bins(int(index[-1]) + 1 if index.size else 0)
        energy = np.asarray(powers, dtype=float) * interval_s
        np.add.at(self._energy_j, index, energy)
        self._horizon_s = max(
            self._horizon_s, float(absolute[-1]) + interval_s / 2.0
        )
        self.samples_added += len(times)

    def add_busy_interval(self, start_s: float, end_s: float, n_nodes: int) -> None:
        """Mark nodes busy over a wall-clock interval (for idle power)."""
        if end_s <= start_s or n_nodes <= 0:
            return
        first = int(start_s / self.bin_s)
        last = int(np.ceil(end_s / self.bin_s))
        self._ensure_bins(last)
        edges = np.arange(first, last + 1) * self.bin_s
        overlap = np.minimum(edges[1:], end_s) - np.maximum(edges[:-1], start_s)
        self._busy_node_s[first:last] += n_nodes * np.maximum(overlap, 0.0)
        self._horizon_s = max(self._horizon_s, end_s)

    def finalize(self) -> SystemPowerStats:
        """Reduce the bins to system power statistics.

        System power per bin = deposited job power + idle power of the
        nodes not busy in that bin (fractional occupancy honoured).
        """
        # Epsilon guards against float slivers (e.g. a horizon of
        # 10.000000000000002 s) opening a spurious all-idle trailing bin.
        n_bins = max(int(np.ceil(self._horizon_s / self.bin_s - 1e-9)), 1)
        job_power = self._energy_j[:n_bins] / self.bin_s
        busy_nodes = np.clip(
            self._busy_node_s[:n_bins] / self.bin_s, 0.0, self.n_nodes
        )
        system = job_power + (self.n_nodes - busy_nodes) * self.idle_node_w
        moments = RunningMoments()
        moments.update(system)
        return SystemPowerStats(
            mean_power_w=moments.mean,
            peak_power_w=moments.peak,
            power_std_w=moments.std,
            horizon_s=self._horizon_s,
            energy_j=float(self._energy_j[:n_bins].sum())
            + float((self.n_nodes - busy_nodes).sum()) * self.bin_s * self.idle_node_w,
            n_bins=n_bins,
        )


class AllocationError(RuntimeError):
    """Raised when a node allocation request cannot be satisfied."""


@dataclass
class PerlmutterSystem:
    """A pool of GPU nodes plus a facility power budget.

    Parameters
    ----------
    n_nodes:
        Number of GPU nodes in the pool (the real machine has 1,536
        40 GB nodes; tests use far fewer).
    power_budget_w:
        Facility budget available to this pool.  Defaults to the GPU
        partition's share of the 6.9 MW system TDP, scaled by pool size.
    platform:
        Platform id / :class:`~repro.hardware.platform.Platform` every
        node is built from (None = the registry default, a100-40g).
    node_platforms:
        Per-node override for heterogeneous pools: a sequence of
        platform ids / Platforms / :class:`NodeSpec` instances, cycled
        over the pool (e.g. ``["a100-40g", "h100-sxm"]`` alternates the
        two).  Overrides ``platform``.
    """

    n_nodes: int = 16
    power_budget_w: float | None = None
    platform: "str | Platform | None" = None
    node_platforms: "Sequence[str | Platform | NodeSpec] | None" = None
    nodes: dict[str, GpuNode] = field(init=False)
    _free: set[str] = field(init=False)
    _allocations: dict[str, list[str]] = field(init=False)

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {self.n_nodes}")
        if self.node_platforms is not None and len(self.node_platforms) == 0:
            raise ValueError("node_platforms must be non-empty when given")
        specs = self._node_specs()
        self.nodes = {}
        for i in range(self.n_nodes):
            name = f"nid{1000 + i:06d}"
            self.nodes[name] = GpuNode(name=name, spec=specs[i])
        self._free = set(self.nodes)
        self._allocations = {}
        if self.power_budget_w is None:
            # Scale the 1,536-node GPU partition's nominal share of the
            # facility TDP down to this pool (node TDP from the spec).
            mean_node_tdp = sum(spec.tdp_w for spec in specs) / len(specs)
            full_partition_w = 1536 * mean_node_tdp
            self.power_budget_w = min(PERLMUTTER_SYSTEM_TDP_W, full_partition_w) * (
                self.n_nodes / 1536
            )

    def _node_specs(self) -> "list[NodeSpec]":
        """The resolved per-node spec list (length ``n_nodes``)."""
        if self.node_platforms is None:
            spec = get_platform(self.platform).node
            return [spec] * self.n_nodes
        resolved = [
            entry if isinstance(entry, NodeSpec) else get_platform(entry).node
            for entry in self.node_platforms
        ]
        return [resolved[i % len(resolved)] for i in range(self.n_nodes)]

    # ------------------------------------------------------------------
    @property
    def free_node_count(self) -> int:
        """Number of currently unallocated nodes."""
        return len(self._free)

    def allocate(self, job_id: str, n_nodes: int) -> list[GpuNode]:
        """Allocate ``n_nodes`` nodes to a job.

        Nodes are handed out in name order for determinism.

        Raises
        ------
        AllocationError
            If the job already holds an allocation or not enough nodes are
            free.
        """
        if job_id in self._allocations:
            raise AllocationError(f"job {job_id!r} already holds an allocation")
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        if n_nodes > len(self._free):
            raise AllocationError(
                f"job {job_id!r} wants {n_nodes} nodes, only {len(self._free)} free"
            )
        chosen = sorted(self._free)[:n_nodes]
        self._free.difference_update(chosen)
        self._allocations[job_id] = chosen
        return [self.nodes[name] for name in chosen]

    def release(self, job_id: str) -> None:
        """Release a job's nodes back to the pool and reset their caps."""
        try:
            names = self._allocations.pop(job_id)
        except KeyError:
            raise AllocationError(f"job {job_id!r} holds no allocation") from None
        for name in names:
            self.nodes[name].reset_gpu_power_limit()
            self._free.add(name)

    def allocated_nodes(self, job_id: str) -> list[GpuNode]:
        """The nodes currently held by a job."""
        try:
            names = self._allocations[job_id]
        except KeyError:
            raise AllocationError(f"job {job_id!r} holds no allocation") from None
        return [self.nodes[name] for name in names]

    def idle_power_w(self) -> float:
        """Total idle power of currently free nodes."""
        return sum(self.nodes[name].idle_sample().node_w for name in self._free)
