"""System-level view: a pool of GPU nodes with allocation bookkeeping.

``PerlmutterSystem`` stands in for the machine as the batch system sees it:
a set of named nodes, a facility power envelope, and allocate/release
primitives the power-aware scheduler (``repro.capping.scheduler``) builds
on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.units.constants import PERLMUTTER_SYSTEM_TDP_W
from repro.hardware.node import GpuNode


class AllocationError(RuntimeError):
    """Raised when a node allocation request cannot be satisfied."""


@dataclass
class PerlmutterSystem:
    """A pool of GPU nodes plus a facility power budget.

    Parameters
    ----------
    n_nodes:
        Number of GPU nodes in the pool (the real machine has 1,536
        40 GB nodes; tests use far fewer).
    power_budget_w:
        Facility budget available to this pool.  Defaults to the GPU
        partition's share of the 6.9 MW system TDP, scaled by pool size.
    """

    n_nodes: int = 16
    power_budget_w: float | None = None
    nodes: dict[str, GpuNode] = field(init=False)
    _free: set[str] = field(init=False)
    _allocations: dict[str, list[str]] = field(init=False)

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {self.n_nodes}")
        self.nodes = {}
        for i in range(self.n_nodes):
            name = f"nid{1000 + i:06d}"
            self.nodes[name] = GpuNode(name=name)
        self._free = set(self.nodes)
        self._allocations = {}
        if self.power_budget_w is None:
            # Scale the 1,536-node GPU partition's nominal share of the
            # facility TDP down to this pool.
            full_partition_w = 1536 * 2350.0
            self.power_budget_w = min(PERLMUTTER_SYSTEM_TDP_W, full_partition_w) * (
                self.n_nodes / 1536
            )

    # ------------------------------------------------------------------
    @property
    def free_node_count(self) -> int:
        """Number of currently unallocated nodes."""
        return len(self._free)

    def allocate(self, job_id: str, n_nodes: int) -> list[GpuNode]:
        """Allocate ``n_nodes`` nodes to a job.

        Nodes are handed out in name order for determinism.

        Raises
        ------
        AllocationError
            If the job already holds an allocation or not enough nodes are
            free.
        """
        if job_id in self._allocations:
            raise AllocationError(f"job {job_id!r} already holds an allocation")
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        if n_nodes > len(self._free):
            raise AllocationError(
                f"job {job_id!r} wants {n_nodes} nodes, only {len(self._free)} free"
            )
        chosen = sorted(self._free)[:n_nodes]
        self._free.difference_update(chosen)
        self._allocations[job_id] = chosen
        return [self.nodes[name] for name in chosen]

    def release(self, job_id: str) -> None:
        """Release a job's nodes back to the pool and reset their caps."""
        try:
            names = self._allocations.pop(job_id)
        except KeyError:
            raise AllocationError(f"job {job_id!r} holds no allocation") from None
        for name in names:
            self.nodes[name].reset_gpu_power_limit()
            self._free.add(name)

    def allocated_nodes(self, job_id: str) -> list[GpuNode]:
        """The nodes currently held by a job."""
        try:
            names = self._allocations[job_id]
        except KeyError:
            raise AllocationError(f"job {job_id!r} holds no allocation") from None
        return [self.nodes[name] for name in names]

    def idle_power_w(self) -> float:
        """Total idle power of currently free nodes."""
        return sum(self.nodes[name].idle_sample().node_w for name in self._free)
