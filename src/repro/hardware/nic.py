"""Behavioural power model of a Slingshot NIC.

NIC power is part of the "peripherals" gap between the node total and the
sum of CPU/GPU/DDR sensors that the paper points out under Fig 3.  It is
nearly flat: a few watts of swing between idle and saturated links.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.units.constants import SLINGSHOT_NIC, NICEnvelope
from repro.hardware.variability import ManufacturingVariation


@dataclass
class SlingshotNic:
    """One Cassini NIC with a traffic-utilization -> power mapping."""

    serial: str = "NIC-000000"
    envelope: NICEnvelope = field(default_factory=lambda: SLINGSHOT_NIC)
    variation: ManufacturingVariation | None = None

    def __post_init__(self) -> None:
        if self.variation is None:
            self.variation = ManufacturingVariation.sample(self.serial)

    @property
    def idle_power_w(self) -> float:
        """Idle power with manufacturing offset."""
        assert self.variation is not None
        return self.envelope.idle_w + self.variation.idle_offset_w

    def power_at_traffic(self, link_utilization: float) -> float:
        """Sustained power at a fraction of peak link bandwidth."""
        if not 0.0 <= link_utilization <= 1.0:
            raise ValueError(f"link_utilization must be in [0, 1], got {link_utilization}")
        env = self.envelope
        nominal = env.idle_w + (env.max_w - env.idle_w) * link_utilization
        assert self.variation is not None
        return self.variation.apply(nominal, env.idle_w)

    def power_at_traffic_batch(self, link_utilization: np.ndarray) -> np.ndarray:
        """Array version of :meth:`power_at_traffic` (one entry per phase)."""
        u = np.asarray(link_utilization, dtype=float)
        if np.any((u < 0.0) | (u > 1.0)):
            raise ValueError("link_utilization must be in [0, 1]")
        env = self.envelope
        nominal = env.idle_w + (env.max_w - env.idle_w) * u
        assert self.variation is not None
        return self.variation.apply_batch(nominal, env.idle_w)
