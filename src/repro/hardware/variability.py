"""Manufacturing variability of nominally identical hardware units.

Section III-B of the paper observes that individual nodes in a multi-node
VASP job draw slightly different power, that identical DGEMM/STREAM runs
show the same per-node offsets, and that idle node power varies by up to
100 W (410-510 W) across 16 randomly checked nodes.

We model this with a per-unit multiplicative power factor and an additive
idle offset, both drawn deterministically from the unit's serial number so
that the same node always exhibits the same bias — which is exactly what
makes the Fig 1 per-node offsets reproducible across job segments.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np


def unit_rng(serial: str, salt: str = "") -> np.random.Generator:
    """Return a deterministic RNG keyed by a hardware serial number.

    The same ``(serial, salt)`` pair always yields the same stream, so a
    simulated node's manufacturing bias is a stable property of the node,
    not of the run.
    """
    seed = zlib.crc32(f"{serial}:{salt}".encode("utf-8"))
    return np.random.default_rng(seed)


@dataclass(frozen=True)
class ManufacturingVariation:
    """Per-unit deviation from the nominal power model.

    Attributes
    ----------
    power_factor:
        Multiplier on dynamic (activity-dependent) power.  Drawn from a
        normal distribution with ~2 % relative spread, truncated to
        +/- 3 sigma.
    idle_offset_w:
        Additive offset on idle power, in watts.  Spread chosen so node
        idle totals span the observed 410-510 W window.
    """

    power_factor: float
    idle_offset_w: float

    @classmethod
    def nominal(cls) -> "ManufacturingVariation":
        """A unit with exactly nominal behaviour (no spread)."""
        return cls(power_factor=1.0, idle_offset_w=0.0)

    @classmethod
    def sample(
        cls,
        serial: str,
        *,
        rel_sigma: float = 0.02,
        idle_sigma_w: float = 6.0,
    ) -> "ManufacturingVariation":
        """Draw the variation for a given serial number.

        Parameters
        ----------
        serial:
            Unit serial number; determines the draw.
        rel_sigma:
            Relative standard deviation of the dynamic-power factor.
        idle_sigma_w:
            Standard deviation of the additive idle offset in watts.
        """
        rng = unit_rng(serial, "manufacturing")
        factor = float(np.clip(rng.normal(1.0, rel_sigma), 1 - 3 * rel_sigma, 1 + 3 * rel_sigma))
        idle = float(np.clip(rng.normal(0.0, idle_sigma_w), -3 * idle_sigma_w, 3 * idle_sigma_w))
        return cls(power_factor=factor, idle_offset_w=idle)

    def apply(self, nominal_power_w: float, idle_w: float) -> float:
        """Apply this unit's bias to a nominal power reading.

        The idle portion receives the additive offset; the dynamic portion
        (above idle) is scaled by :attr:`power_factor`.
        """
        dynamic = max(0.0, nominal_power_w - idle_w)
        return idle_w + self.idle_offset_w + dynamic * self.power_factor

    def apply_batch(
        self, nominal_power_w: np.ndarray, idle_w: float | np.ndarray
    ) -> np.ndarray:
        """Array version of :meth:`apply` (element-wise, same arithmetic)."""
        idle = np.asarray(idle_w, dtype=float)
        dynamic = np.maximum(0.0, np.asarray(nominal_power_w, dtype=float) - idle)
        return idle + self.idle_offset_w + dynamic * self.power_factor
