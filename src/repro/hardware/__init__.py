"""Simulated Perlmutter hardware substrate.

This package models the power-relevant behaviour of a Perlmutter GPU node:
four NVIDIA A100 GPUs with a DVFS-based power/performance model and a
power-limit (capping) interface, one AMD Milan CPU, DDR4 memory, Slingshot
NICs, and node/system aggregation with per-unit manufacturing variability.

The models are *behavioural*: they do not execute CUDA, they answer the two
questions the paper's measurements depend on — "how much power does this
component draw while running a given kernel mix?" and "how much slower does
that kernel mix run under a power cap?".
"""

from repro.hardware.variability import ManufacturingVariation, unit_rng
from repro.hardware.gpu import A100Gpu, GpuPowerSample
from repro.hardware.cpu import MilanCpu
from repro.hardware.memory import DdrMemory
from repro.hardware.nic import SlingshotNic
from repro.hardware.node import GpuNode, NodePowerSample
from repro.hardware.system import PerlmutterSystem

__all__ = [
    "A100Gpu",
    "DdrMemory",
    "GpuNode",
    "GpuPowerSample",
    "ManufacturingVariation",
    "MilanCpu",
    "NodePowerSample",
    "PerlmutterSystem",
    "SlingshotNic",
    "unit_rng",
]
