"""Simulated GPU-node hardware substrate, composed from platform specs.

This package models the power-relevant behaviour of a GPU node: GPUs with
a DVFS-based power/performance model and a power-limit (capping)
interface, a host CPU, DRAM, NICs, and node/system aggregation with
per-unit manufacturing variability.  Which hardware a node contains is
data, not code: every node is built from a
:class:`~repro.hardware.platform.NodeSpec` resolved through the platform
registry (:mod:`repro.hardware.platform`).  The default platform,
``a100-40g``, is the paper's Perlmutter GPU node — one AMD Milan CPU,
four NVIDIA A100s, DDR4 and Slingshot NICs.

The models are *behavioural*: they do not execute CUDA, they answer the two
questions the paper's measurements depend on — "how much power does this
component draw while running a given kernel mix?" and "how much slower does
that kernel mix run under a power cap?".
"""

from repro.hardware.variability import ManufacturingVariation, unit_rng
from repro.hardware.platform import (
    DEFAULT_PLATFORM_ID,
    GpuSpec,
    NodeSpec,
    Platform,
    get_platform,
    platform_ids,
    register_platform,
)
from repro.hardware.gpu import A100Gpu, GpuModel, GpuPowerSample
from repro.hardware.cpu import MilanCpu
from repro.hardware.memory import DdrMemory
from repro.hardware.nic import SlingshotNic
from repro.hardware.node import GpuNode, NodePowerSample
from repro.hardware.system import PerlmutterSystem

__all__ = [
    "A100Gpu",
    "DEFAULT_PLATFORM_ID",
    "DdrMemory",
    "GpuModel",
    "GpuNode",
    "GpuPowerSample",
    "GpuSpec",
    "ManufacturingVariation",
    "MilanCpu",
    "NodePowerSample",
    "NodeSpec",
    "PerlmutterSystem",
    "Platform",
    "SlingshotNic",
    "get_platform",
    "platform_ids",
    "register_platform",
    "unit_rng",
]
