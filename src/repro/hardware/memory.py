"""Behavioural power model of the node's DDR4 memory.

DDR power on the GPU nodes is small and flat during VASP execution (the
working set lives in HBM); it rises with host-side traffic, which only
matters for the CPU-resident phases and the STREAM prologue segment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.units.constants import DDR4_256GB, MemoryEnvelope
from repro.hardware.variability import ManufacturingVariation


@dataclass
class DdrMemory:
    """Host DRAM with a bandwidth-utilization -> power mapping."""

    serial: str = "MEM-000000"
    envelope: MemoryEnvelope = field(default_factory=lambda: DDR4_256GB)
    variation: ManufacturingVariation | None = None

    def __post_init__(self) -> None:
        if self.variation is None:
            self.variation = ManufacturingVariation.sample(self.serial)

    @property
    def idle_power_w(self) -> float:
        """Idle (refresh-dominated) power with manufacturing offset."""
        assert self.variation is not None
        return self.envelope.idle_w + self.variation.idle_offset_w

    def power_at_bandwidth(self, bandwidth_utilization: float) -> float:
        """Sustained power at a fraction of peak DDR bandwidth."""
        if not 0.0 <= bandwidth_utilization <= 1.0:
            raise ValueError(
                f"bandwidth_utilization must be in [0, 1], got {bandwidth_utilization}"
            )
        env = self.envelope
        nominal = env.idle_w + (env.max_w - env.idle_w) * bandwidth_utilization
        assert self.variation is not None
        return self.variation.apply(nominal, env.idle_w)

    def power_at_bandwidth_batch(self, bandwidth_utilization: np.ndarray) -> np.ndarray:
        """Array version of :meth:`power_at_bandwidth` (one entry per phase)."""
        u = np.asarray(bandwidth_utilization, dtype=float)
        if np.any((u < 0.0) | (u > 1.0)):
            raise ValueError("bandwidth_utilization must be in [0, 1]")
        env = self.envelope
        nominal = env.idle_w + (env.max_w - env.idle_w) * u
        assert self.variation is not None
        return self.variation.apply_batch(nominal, env.idle_w)
