"""Live progress telemetry for long fleet runs: heartbeat file + callback.

A 100k-node sharded simulation runs for a long time with nothing but a
final report at the end — inoperable mid-flight.  The fleet fold calls a
:class:`RunHeartbeat` after every folded job; the heartbeat throttles
itself (at most one emission per ``min_interval_s``) and publishes a
compact JSON snapshot — jobs folded, node-weighted progress, nodes/sec,
ETA, age of the last checkpoint — to an atomically-replaced file and/or
an in-process callback.  ``watch -n1 cat heartbeat.json`` (or any
scraper) then shows a live view of the run; the atomic replace means a
reader never sees a torn file.

Progress is **node-weighted**: jobs vary enormously in render cost, and
cost scales with allocated nodes, so nodes-folded-per-second is a far
better rate estimate than jobs/sec.  Resumed prefixes are excluded from
the rate (they cost nothing this run) via :meth:`resume_baseline`.

Activation mirrors the checkpoint machinery: the ``--heartbeat PATH``
CLI flag or the ``REPRO_FLEET_HEARTBEAT`` environment variable.
Everything here is observation-only — a heartbeat never changes a
simulation result.
"""

from __future__ import annotations

import json
import logging
import math
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.obs.ledger import atomic_write_text, utc_now_iso

logger = logging.getLogger(__name__)

#: Environment variable: default heartbeat path for traced fleet runs.
HEARTBEAT_ENV = "REPRO_FLEET_HEARTBEAT"


def heartbeat_path_from_env() -> Path | None:
    """Heartbeat location from ``REPRO_FLEET_HEARTBEAT`` (None = off)."""
    raw = os.environ.get(HEARTBEAT_ENV, "").strip()
    return Path(raw) if raw else None


@dataclass(frozen=True)
class HeartbeatSnapshot:
    """One published progress reading."""

    label: str
    pid: int
    jobs_folded: int
    jobs_total: int
    nodes_folded: int
    nodes_total: int
    elapsed_s: float
    #: Fresh (non-resumed) nodes folded per wall-clock second.
    nodes_per_s: float
    #: Estimated seconds to completion; None before a rate exists.
    eta_s: float | None
    #: Seconds since the last fleet checkpoint write; None when
    #: checkpointing is off or nothing has been written yet.
    checkpoint_age_s: float | None
    done: bool
    updated_at: str

    @property
    def progress(self) -> float:
        """Node-weighted completion fraction in [0, 1]."""
        if self.nodes_total > 0:
            return min(self.nodes_folded / self.nodes_total, 1.0)
        if self.jobs_total > 0:
            return min(self.jobs_folded / self.jobs_total, 1.0)
        return 1.0 if self.done else 0.0

    def to_json(self) -> dict[str, Any]:
        """JSON-ready snapshot (what the heartbeat file contains)."""
        return {
            "label": self.label,
            "pid": self.pid,
            "jobs_folded": self.jobs_folded,
            "jobs_total": self.jobs_total,
            "nodes_folded": self.nodes_folded,
            "nodes_total": self.nodes_total,
            "progress": round(self.progress, 6),
            "elapsed_s": round(self.elapsed_s, 3),
            "nodes_per_s": round(self.nodes_per_s, 3),
            "eta_s": round(self.eta_s, 3) if self.eta_s is not None else None,
            "checkpoint_age_s": (
                round(self.checkpoint_age_s, 3)
                if self.checkpoint_age_s is not None
                else None
            ),
            "done": self.done,
            "updated_at": self.updated_at,
        }


class RunHeartbeat:
    """Throttled progress publisher for one fleet simulation.

    Parameters
    ----------
    path:
        Atomically-replaced JSON snapshot file (None: no file).
    callback:
        Called with each emitted :class:`HeartbeatSnapshot` (None: no
        callback).  Exceptions propagate — the callback is caller code.
    min_interval_s:
        Emission floor; :meth:`update` calls inside the window are
        dropped (``force=True`` bypasses).  0 emits every update.
    clock:
        Injectable monotonic clock (tests).
    """

    def __init__(
        self,
        path: "str | Path | None" = None,
        callback: "Callable[[HeartbeatSnapshot], None] | None" = None,
        *,
        label: str = "fleet",
        jobs_total: int = 0,
        nodes_total: int = 0,
        min_interval_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.callback = callback
        self.label = label
        self.jobs_total = jobs_total
        self.nodes_total = nodes_total
        self.min_interval_s = min_interval_s
        self._clock = clock
        self._t0 = clock()
        self._last_emit: float | None = None
        self._last_checkpoint: float | None = None
        self._jobs0 = 0
        self._nodes0 = 0
        #: Snapshots actually emitted (after throttling).
        self.emits = 0

    def resume_baseline(self, jobs_folded: int, nodes_folded: int) -> None:
        """Exclude a resumed prefix from the rate/ETA estimate."""
        self._jobs0 = jobs_folded
        self._nodes0 = nodes_folded

    def note_checkpoint(self) -> None:
        """Record that a fleet checkpoint was just written."""
        self._last_checkpoint = self._clock()

    def update(
        self,
        jobs_folded: int,
        nodes_folded: int,
        *,
        force: bool = False,
        done: bool = False,
    ) -> HeartbeatSnapshot | None:
        """Publish progress; returns the snapshot, or None when throttled."""
        now = self._clock()
        if (
            not force
            and self._last_emit is not None
            and (now - self._last_emit) < self.min_interval_s
        ):
            return None
        self._last_emit = now
        elapsed = max(now - self._t0, 0.0)
        fresh_nodes = max(nodes_folded - self._nodes0, 0)
        # Zero-elapsed updates (first fold lands inside clock resolution)
        # and fully-resumed runs (no fresh work this process) both have
        # no rate to report: rate stays 0 and the ETA stays null rather
        # than a ZeroDivisionError or an inf that json.dumps rejects.
        rate = fresh_nodes / elapsed if elapsed > 0 and fresh_nodes > 0 else 0.0
        if not math.isfinite(rate):
            rate = 0.0
        remaining = max(self.nodes_total - nodes_folded, 0)
        if done:
            eta: float | None = 0.0
        elif rate > 0:
            eta = remaining / rate
            if not math.isfinite(eta):
                eta = None
        else:
            eta = None
        snapshot = HeartbeatSnapshot(
            label=self.label,
            pid=os.getpid(),
            jobs_folded=jobs_folded,
            jobs_total=self.jobs_total,
            nodes_folded=nodes_folded,
            nodes_total=self.nodes_total,
            elapsed_s=elapsed,
            nodes_per_s=rate,
            eta_s=eta,
            checkpoint_age_s=(
                now - self._last_checkpoint
                if self._last_checkpoint is not None
                else None
            ),
            done=done,
            updated_at=utc_now_iso(),
        )
        if self.path is not None:
            try:
                atomic_write_text(
                    self.path, json.dumps(snapshot.to_json(), sort_keys=True) + "\n"
                )
            except OSError as exc:
                # A broken heartbeat must never take the run down; stop
                # writing and keep simulating.
                logger.warning(
                    "heartbeat write to %s failed (%s); disabling the file",
                    self.path,
                    exc,
                )
                self.path = None
        if self.callback is not None:
            self.callback(snapshot)
        self.emits += 1
        return snapshot

    def finish(self, jobs_folded: int, nodes_folded: int) -> HeartbeatSnapshot:
        """Force-publish the terminal snapshot (``done: true``)."""
        snapshot = self.update(jobs_folded, nodes_folded, force=True, done=True)
        assert snapshot is not None  # force=True always emits
        return snapshot


def read_heartbeat(path: "str | Path") -> dict[str, Any]:
    """Parse a heartbeat file back to its JSON dict."""
    return json.loads(Path(path).read_text())
