"""Cross-process observability: capture in workers, fold at the coordinator.

Sharded fleet rendering and parallel sweeps execute in worker processes,
and a per-process tracer/registry dies with its worker — which made the
100k-node path the *least* observable one.  This module closes that gap
the same way the simulation itself crosses the pool boundary: with a
compact, picklable partial.

* :func:`begin_worker_capture` swaps a **fresh, in-memory** tracer and
  registry into the worker's global obs state (no export paths — a
  worker must never write the coordinator's trace file), returning a
  token holding the previous state.
* :func:`finish_worker_capture` restores the previous state and returns
  everything the worker recorded as an :class:`ObsPartial`: spans with
  their origin pid/tid, process/thread labels, the tracer's
  ``perf_counter`` epoch, and the full metrics state.
* :func:`absorb_partial` folds a shipped partial into the coordinator's
  live tracer/registry.  Span timestamps are rebased by the epoch delta
  (``perf_counter`` is system-wide monotonic on Linux); counters merge
  by addition, so the merged totals equal a serial run's **exactly** —
  addition is commutative, and both modes execute the same increments.

Like everything else in :mod:`repro.obs`, capture is observation-only:
the rendered partials a worker ships are byte-identical with capture on
or off.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import SpanProfiler, interval_from_env
from repro.obs.trace import TraceEvent, Tracer


@dataclass(frozen=True)
class ObsPartial:
    """One worker's observability capture, ready to cross the pool boundary.

    Everything in here is plain picklable data.  ``epoch_perf_s`` is the
    worker tracer's ``time.perf_counter`` epoch — the coordinator rebases
    ``events`` by the delta against its own epoch so worker spans land at
    the right wall-clock position in the merged timeline.
    """

    pid: int
    epoch_perf_s: float
    events: tuple[TraceEvent, ...] = ()
    process_names: dict[int, str] = field(default_factory=dict)
    thread_names: dict[tuple[int, int], str] = field(default_factory=dict)
    #: ``MetricsRegistry.state()`` payload; None when metrics were off.
    metrics_state: dict | None = None
    #: ``Profile.state()`` payload; None when profiling was off.
    profile_state: dict | None = None

    @property
    def span_count(self) -> int:
        """Recorded trace events in this capture."""
        return len(self.events)

    @property
    def profile_samples(self) -> int:
        """Profiler samples captured in this partial."""
        if not self.profile_state:
            return 0
        return sum(
            count
            for entries in self.profile_state.get("rows", {}).values()
            for _stack, count in entries
        )


def capture_flags() -> tuple[bool, bool, bool] | None:
    """The (trace, metrics, profile) layers the coordinator has on, or None.

    Shipped inside worker task payloads so workers enable exactly the
    layers the coordinator is collecting — and nothing when obs is off
    (the no-capture path stays zero-overhead).
    """
    if not obs.is_active():
        return None
    return (
        obs.tracing_active(),
        obs.metrics() is not None,
        obs.profiling_active(),
    )


def begin_worker_capture(
    trace: bool = True,
    metrics: bool = True,
    process_label: str | None = None,
    thread_label: str = "render",
    profile: bool = False,
):
    """Install fresh in-memory obs state in this (worker) process.

    Returns an opaque token for :func:`finish_worker_capture`.  The fresh
    state has **no export paths**: a worker's atexit flush can therefore
    never clobber the coordinator's configured trace/metrics files, even
    if the worker inherited them via fork or ``REPRO_TRACE``.
    """
    previous = obs._STATE
    fresh = obs._ObsState()
    label = (
        process_label
        if process_label is not None
        else f"repro worker {os.getpid()}"
    )
    if profile and not trace:
        trace = True  # span attribution needs the open-span stacks
    if trace:
        fresh.tracer = Tracer()
        fresh.tracer.name_process(label)
        fresh.tracer.name_thread(thread_label)
    if metrics:
        fresh.registry = MetricsRegistry()
    if profile:
        fresh.profiler = SpanProfiler(
            interval_from_env(), tracer=fresh.tracer, process_label=label
        )
        fresh.profiler.start()
    obs._STATE = fresh
    return previous


def finish_worker_capture(token) -> ObsPartial | None:
    """Restore the pre-capture obs state; return what was recorded.

    Returns None when the capture collected nothing (both layers off).
    Safe to call in a ``finally`` — restoration happens even if the
    captured work raised.
    """
    captured = obs._STATE
    obs._STATE = token
    tracer = captured.tracer
    registry = captured.registry
    profiler = captured.profiler
    if profiler is not None:
        profiler.stop()
    if tracer is None and registry is None and profiler is None:
        return None
    process_names: dict[int, str] = {}
    thread_names: dict[tuple[int, int], str] = {}
    events: tuple[TraceEvent, ...] = ()
    epoch = time.perf_counter()
    if tracer is not None:
        epoch = tracer.epoch_perf_s
        events = tuple(tracer.events)
        process_names, thread_names = tracer.metadata()
    return ObsPartial(
        pid=os.getpid(),
        epoch_perf_s=epoch,
        events=events,
        process_names=process_names,
        thread_names=thread_names,
        metrics_state=registry.state() if registry is not None else None,
        profile_state=profiler.profile.state() if profiler is not None else None,
    )


def absorb_partial(partial: ObsPartial | None) -> None:
    """Fold one worker's capture into the coordinator's live obs state.

    No-op for None partials and for layers the coordinator no longer has
    on.  Deliberately records no bookkeeping metrics of its own — a
    "partials absorbed" counter would break the merged-counters ==
    serial-counters contract the sharded path guarantees.
    """
    if partial is None:
        return
    tracer = obs.tracer()
    if tracer is not None and (
        partial.events or partial.process_names or partial.thread_names
    ):
        offset_us = (partial.epoch_perf_s - tracer.epoch_perf_s) * 1e6
        tracer.absorb(
            partial.events,
            process_names=partial.process_names,
            thread_names=partial.thread_names,
            offset_us=offset_us,
        )
    registry = obs.metrics()
    if registry is not None and partial.metrics_state:
        registry.merge_state(partial.metrics_state)
    profiler = obs.profiler()
    if profiler is not None and partial.profile_state:
        profiler.profile.merge_state(partial.profile_state)
