"""Stdlib logging configuration for the ``repro`` package.

Every instrumented module holds a ``logging.getLogger(__name__)`` logger
under the ``repro`` hierarchy; nothing is emitted until a handler is
attached.  :func:`configure_logging` attaches a stderr handler to the
``repro`` root logger at a level taken from (in priority order) the
explicit argument, the ``REPRO_LOG`` environment variable, or WARNING.

This keeps library behaviour quiet by default — the former silent
failure paths (torn disk reads, process-pool fallbacks) now *log*, and
``REPRO_LOG=debug`` / ``--log-level debug`` makes them visible.
"""

from __future__ import annotations

import logging
import os
import sys

#: Environment variable naming the log level (``debug``/``info``/...).
LOG_ENV = "REPRO_LOG"

#: The package root logger name.
ROOT_LOGGER = "repro"

_LOG_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"

_configured_handler: logging.Handler | None = None


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (thin getLogger wrapper)."""
    return logging.getLogger(name)


def parse_level(raw: str) -> int:
    """Translate a level name or number into a logging level.

    Raises
    ------
    ValueError
        If the string names no known level.
    """
    text = raw.strip()
    if not text:
        raise ValueError("empty log level")
    if text.isdigit():
        return int(text)
    level = logging.getLevelName(text.upper())
    if not isinstance(level, int):
        raise ValueError(f"unknown log level {raw!r}")
    return level


def level_from_env(default: int = logging.WARNING) -> int:
    """The level named by ``REPRO_LOG``, or ``default`` when unset/bad."""
    raw = os.environ.get(LOG_ENV, "").strip()
    if not raw:
        return default
    try:
        return parse_level(raw)
    except ValueError:
        return default


def configure_logging(level: str | int | None = None) -> logging.Logger:
    """Attach (or retune) the stderr handler on the ``repro`` logger.

    Safe to call repeatedly: one handler is installed and its level
    updated in place.  Returns the configured root logger.
    """
    global _configured_handler
    if level is None:
        resolved = level_from_env()
    elif isinstance(level, str):
        resolved = parse_level(level)
    else:
        resolved = int(level)
    root = logging.getLogger(ROOT_LOGGER)
    if _configured_handler is None:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter(_LOG_FORMAT))
        root.addHandler(handler)
        _configured_handler = handler
    root.setLevel(resolved)
    _configured_handler.setLevel(resolved)
    return root


def reset_logging() -> None:
    """Detach the handler installed by :func:`configure_logging` (tests)."""
    global _configured_handler
    if _configured_handler is not None:
        logging.getLogger(ROOT_LOGGER).removeHandler(_configured_handler)
        _configured_handler = None
    logging.getLogger(ROOT_LOGGER).setLevel(logging.NOTSET)
