"""Sampling wall-clock profiler, integrated with the span tracer.

Spans (:mod:`repro.obs.trace`) say *that* a phase was slow; this module
says *where the time went inside it*.  A daemon thread wakes every
``interval_s`` seconds, snapshots every live thread's Python stack via
``sys._current_frames()``, and attributes the sample to the innermost
**open span** on that thread (the tracer keeps a per-thread stack of
open span names exactly for this read).  Pure stdlib, no signals, no
C extension — and observation-only: sampling reads frames, it never
touches the computation, so profiled runs stay bit-identical.

Accumulated samples live in a :class:`Profile` — a mapping of *process
label* (``repro fleet``, ``repro fleet worker 1234``) to collapsed call
stacks and their sample counts — which is plain picklable data.  A
sharded run therefore profiles the same way it traces: each worker
samples itself into a fresh profile, ships the
:meth:`Profile.state` payload home inside its
:class:`repro.obs.merge.ObsPartial`, and the coordinator folds it with
:meth:`Profile.merge_state`.  One run, one merged profile, one row per
worker process.

Exports:

* :func:`to_speedscope` — the `speedscope <https://speedscope.app>`_
  JSON file format, one sampled profile per process label;
* :func:`to_collapsed` — Brendan-Gregg collapsed stacks
  (``label;span:<name>;frame;... count``) for flamegraph tooling;
* :func:`top_functions` — a plain-text self-time report (per function
  and per active span).

Activation mirrors tracing: ``--profile FILE`` on the CLI or
``REPRO_PROFILE=FILE`` in the environment (``.json``/``.speedscope``
suffixes select speedscope output, ``.txt`` the top-functions report,
anything else collapsed stacks).  ``REPRO_PROFILE_INTERVAL`` overrides
the sampling period in seconds.
"""

from __future__ import annotations

import json
import os
import sys
import threading
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs -> profile)
    from repro.obs.trace import Tracer

#: Environment variable: profile export path (enables profiling).
PROFILE_ENV = "REPRO_PROFILE"
#: Environment variable: sampling period override, in seconds.
PROFILE_INTERVAL_ENV = "REPRO_PROFILE_INTERVAL"
#: Default wall-clock sampling period (200 Hz).
DEFAULT_INTERVAL_S = 0.005
#: Span pseudo-frame used when a sampled thread has no open span.
NO_SPAN = "(no span)"
#: Stack frames kept per sample (innermost); deeper tails are dropped.
MAX_STACK_DEPTH = 64


def interval_from_env() -> float:
    """The sampling period: ``REPRO_PROFILE_INTERVAL`` or the default.

    Invalid or non-positive values fall back to the default rather than
    erroring — a bad knob should never break the profiled run.
    """
    raw = os.environ.get(PROFILE_INTERVAL_ENV, "").strip()
    if not raw:
        return DEFAULT_INTERVAL_S
    try:
        interval = float(raw)
    except ValueError:
        return DEFAULT_INTERVAL_S
    return interval if interval > 0 else DEFAULT_INTERVAL_S


def _format_frame(frame) -> str:
    """``func (pkg/module.py:lineno)`` — short, stable frame label."""
    code = frame.f_code
    filename = code.co_filename
    parts = filename.replace(os.sep, "/").rsplit("/", 2)
    short = "/".join(parts[-2:]) if len(parts) > 1 else filename
    return f"{code.co_name} ({short}:{frame.f_lineno})"


class Profile:
    """Accumulated stack samples, grouped by process label.

    ``rows`` maps a process label to ``{stack: count}`` where ``stack``
    is a tuple of frame labels, **outermost first**, whose first element
    is always the ``span:<name>`` pseudo-frame the sample was attributed
    to.  All methods are thread-safe (the sampler thread writes while
    exporters read).
    """

    def __init__(self, interval_s: float = DEFAULT_INTERVAL_S) -> None:
        self.interval_s = interval_s
        self.rows: dict[str, dict[tuple[str, ...], int]] = {}
        self._lock = threading.Lock()

    def add(self, label: str, stack: tuple[str, ...], count: int = 1) -> None:
        """Record ``count`` samples of ``stack`` under process ``label``."""
        with self._lock:
            counts = self.rows.setdefault(label, {})
            counts[stack] = counts.get(stack, 0) + count

    @property
    def total_samples(self) -> int:
        """Samples recorded across every process row."""
        with self._lock:
            return sum(
                count for counts in self.rows.values() for count in counts.values()
            )

    def state(self) -> dict[str, Any]:
        """Picklable snapshot: ships inside a worker ``ObsPartial``."""
        with self._lock:
            return {
                "interval_s": self.interval_s,
                "rows": {
                    label: [[list(stack), count] for stack, count in counts.items()]
                    for label, counts in self.rows.items()
                },
            }

    def merge_state(self, state: dict[str, Any]) -> int:
        """Fold another profile's :meth:`state` payload into this one.

        Counts add per (label, stack) — the merge is commutative, so the
        coordinator can absorb worker partials in any order.  Returns
        the number of samples folded in.
        """
        folded = 0
        for label, entries in state.get("rows", {}).items():
            for stack, count in entries:
                self.add(label, tuple(stack), count)
                folded += count
        return folded

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "Profile":
        """Rebuild a profile from a :meth:`state` payload."""
        profile = cls(interval_s=state.get("interval_s", DEFAULT_INTERVAL_S))
        profile.merge_state(state)
        return profile

    def span_self_samples(self) -> dict[str, int]:
        """Samples attributed to each active span (the ``span:`` frame)."""
        totals: dict[str, int] = {}
        with self._lock:
            for counts in self.rows.values():
                for stack, count in counts.items():
                    span = stack[0] if stack else f"span:{NO_SPAN}"
                    totals[span] = totals.get(span, 0) + count
        return totals


class SpanProfiler:
    """The sampler: a daemon thread snapshotting stacks into a profile.

    Parameters
    ----------
    interval_s:
        Wall-clock sampling period.
    tracer:
        The live span tracer whose open-span stacks attribute samples;
        None records every sample under ``span:(no span)``.
    process_label:
        Row label for this process's samples (defaults to ``pid <n>``).
    """

    def __init__(
        self,
        interval_s: float = DEFAULT_INTERVAL_S,
        *,
        tracer: "Tracer | None" = None,
        process_label: str | None = None,
    ) -> None:
        self.profile = Profile(interval_s)
        self.tracer = tracer
        self.process_label = (
            process_label if process_label is not None else f"pid {os.getpid()}"
        )
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- sampling ---------------------------------------------------------
    def sample_once(self) -> int:
        """Take one sample of every live thread; returns threads sampled.

        Exposed for deterministic tests — the background thread just
        calls this in a loop.  Only the sampler thread itself is
        excluded (never the caller: a direct test call from the main
        thread must sample the main thread).
        """
        sampler = self._thread
        sampler_tid = sampler.ident if sampler is not None else None
        sampled = 0
        for tid, frame in sys._current_frames().items():
            if tid == sampler_tid:
                continue
            stack: list[str] = []
            while frame is not None and len(stack) < MAX_STACK_DEPTH:
                stack.append(_format_frame(frame))
                frame = frame.f_back
            stack.reverse()
            # `is not None`, not truthiness: Tracer.__len__ makes an
            # empty (no recorded events yet) tracer falsy.
            span = (
                self.tracer.active_span_name(tid)
                if self.tracer is not None
                else None
            )
            key = (f"span:{span if span is not None else NO_SPAN}", *stack)
            self.profile.add(self.process_label, key)
            sampled += 1
        return sampled

    def _run(self) -> None:
        while not self._stop.wait(self.profile.interval_s):
            self.sample_once()

    def start(self) -> None:
        """Start the sampler thread (idempotent)."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the sampler thread and wait for it (idempotent)."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None

    @property
    def running(self) -> bool:
        """True while the sampler thread is alive."""
        return self._thread is not None

    def relabel(self, label: str) -> None:
        """Rename this process's profile row (moves recorded samples).

        The CLI names its process *after* enabling observability; any
        samples the background thread grabbed in between move with the
        rename so the profile keeps one row per process.
        """
        old = self.process_label
        self.process_label = label
        if old == label:
            return
        with self.profile._lock:
            counts = self.profile.rows.pop(old, None)
            if counts:
                merged = self.profile.rows.setdefault(label, {})
                for stack, count in counts.items():
                    merged[stack] = merged.get(stack, 0) + count


# ----------------------------------------------------------------------
# Exports
# ----------------------------------------------------------------------
def to_speedscope(
    state: dict[str, Any], name: str = "repro profile"
) -> dict[str, Any]:
    """A profile state as a speedscope JSON document.

    Each process label becomes one *sampled* profile entry — speedscope
    renders them as switchable rows, so a merged sharded capture shows
    the coordinator and every worker side by side.  Weights are seconds
    (samples x sampling period).
    """
    interval_s = state.get("interval_s", DEFAULT_INTERVAL_S)
    frame_index: dict[str, int] = {}
    frames: list[dict[str, str]] = []

    def index_of(label: str) -> int:
        at = frame_index.get(label)
        if at is None:
            at = frame_index[label] = len(frames)
            frames.append({"name": label})
        return at

    profiles = []
    for label in sorted(state.get("rows", {})):
        samples: list[list[int]] = []
        weights: list[float] = []
        for stack, count in sorted(state["rows"][label]):
            samples.append([index_of(frame) for frame in stack])
            weights.append(count * interval_s)
        profiles.append(
            {
                "type": "sampled",
                "name": label,
                "unit": "seconds",
                "startValue": 0,
                "endValue": round(sum(weights), 9),
                "samples": samples,
                "weights": [round(w, 9) for w in weights],
            }
        )
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "shared": {"frames": frames},
        "profiles": profiles,
        "name": name,
        "activeProfileIndex": 0,
        "exporter": "repro.obs.profile",
    }


def to_collapsed(state: dict[str, Any]) -> str:
    """Collapsed-stack text: ``label;span:<s>;frame;... count`` per line."""
    lines = []
    for label in sorted(state.get("rows", {})):
        for stack, count in sorted(state["rows"][label]):
            lines.append(";".join([label, *stack]) + f" {count}")
    return "\n".join(lines) + ("\n" if lines else "")


def top_functions(state: dict[str, Any], limit: int = 15) -> str:
    """Plain-text self-time report: hottest leaf frames, then spans.

    Self time is leaf-frame occupancy — the function actually on-CPU (or
    blocking) when the sample fired — scaled by the sampling period.
    """
    interval_s = state.get("interval_s", DEFAULT_INTERVAL_S)
    leaf_counts: dict[str, int] = {}
    span_counts: dict[str, int] = {}
    total = 0
    for counts in state.get("rows", {}).values():
        for stack, count in counts:
            total += count
            if stack:
                leaf = stack[-1]
                leaf_counts[leaf] = leaf_counts.get(leaf, 0) + count
                span = stack[0]
                span_counts[span] = span_counts.get(span, 0) + count
    if total == 0:
        return "profile is empty (no samples)\n"
    lines = [
        f"profile: {total} samples @ {interval_s * 1e3:.1f} ms "
        f"(~{total * interval_s:.2f} s of thread time)",
        "",
        f"{'self (s)':>9}  {'share':>6}  function",
    ]
    ranked = sorted(leaf_counts.items(), key=lambda kv: (-kv[1], kv[0]))
    for frame, count in ranked[:limit]:
        lines.append(
            f"{count * interval_s:>9.3f}  {count / total:>6.1%}  {frame}"
        )
    lines += ["", f"{'time (s)':>9}  {'share':>6}  active span"]
    for span, count in sorted(span_counts.items(), key=lambda kv: (-kv[1], kv[0])):
        lines.append(
            f"{count * interval_s:>9.3f}  {count / total:>6.1%}  {span}"
        )
    return "\n".join(lines) + "\n"


def export_profile(state: dict[str, Any], path: "str | Path") -> Path:
    """Write a profile state to ``path`` in the format its suffix names.

    ``.json`` / ``.speedscope`` get the speedscope document, ``.txt``
    the plain-text :func:`top_functions` report; any other suffix gets
    collapsed stacks.  Returns the path written.
    """
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix in {".json", ".speedscope"}:
        path.write_text(json.dumps(to_speedscope(state)) + "\n")
    elif suffix == ".txt":
        path.write_text(top_functions(state))
    else:
        path.write_text(to_collapsed(state))
    return path
