"""Ledger-mining regression sentinel: record -> detect, not just record.

The run ledger (:mod:`repro.obs.ledger`) accumulates per-run outcomes in
``.repro_runs/`` — wall time, energy, cache effectiveness, surrogate
verification errors — but until now nothing *analyzed* that history.
This module closes the loop the way the paper's methodology watches
power signals over time (LDMS archives, §III): every config fingerprint
becomes a time series, each series gets a **robust baseline**
(median/MAD — a single noisy run cannot move it), and the sentinel
judges new runs against those baselines instead of against the single
best historical point.

Three analyses, all advisory by default and CI-gateable via exit code:

* **regression check** (:func:`check_target`) — is this run slower /
  less cached / less accurate than its comparable history?  A wall-time
  (or hit-rate, or drift) excursion must clear *both* a relative
  tolerance over the median and a ``Z_GATE``-sigma robust z-score, so
  jitter-only history stays green while a genuine 2x regression flags
  no matter how quiet the history was.
* **change-point detection** (:func:`detect_change_point`) — where in a
  series did the level shift?  Single split-point binary segmentation
  over the robust z-statistic: cheap, deterministic, and enough to say
  "wall time stepped +80 % four runs ago" in ``repro sentinel report``.
* **surrogate drift** — ``verification_error`` records (the
  verify-the-winner contract of :mod:`repro.prediction`) are mined
  across the history; when the recent mean error exceeds the held-out
  accuracy gate the surrogate has drifted from the engine and needs
  retraining.

``repro sentinel check`` supersedes the single-point best-of-history
``repro runs check`` gate; the latter now routes through
:func:`check_target` so both paths agree on what a regression is.
Everything here is stdlib + the ledger — no numpy, so the sentinel can
run in CI before anything heavy imports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import median as _median
from typing import Any, Iterable

from repro.obs.ledger import RunRecord

#: Relative wall-time (etc.) tolerance over the baseline median.
DEFAULT_TOLERANCE = 0.25
#: Comparable runs required before the sentinel will judge a series.
DEFAULT_MIN_HISTORY = 2
#: Surrogate drift gate: recent mean verification error above this
#: means the surrogate no longer tracks the engine.  Mirrors the
#: held-out MAPE ceiling in ``scripts/bench_compare.py``
#: (``SURROGATE_MAPE_CEILING``) — the accuracy the store was admitted at.
DEFAULT_DRIFT_GATE = 0.25
#: Relative energy tolerance: the engine is bit-deterministic per
#: config, so anything beyond float noise is a determinism break.
ENERGY_REL_TOL = 1e-9
#: Robust z-score a point must exceed (as well as the tolerance) to
#: count as a regression — keeps noisy-history tolerances honest.
Z_GATE = 3.0
#: Robust z-statistic a mean shift must reach to report a change point.
CHANGE_Z_GATE = 4.0
#: MAD -> sigma scale for normally-distributed noise.
MAD_SIGMA = 1.4826
#: Verification errors folded into the "recent drift" mean.
DRIFT_WINDOW = 3


# ----------------------------------------------------------------------
# Robust statistics
# ----------------------------------------------------------------------
def robust_stats(values: "Iterable[float]") -> tuple[float, float]:
    """(median, robust sigma) of a series.

    Sigma is the scaled median absolute deviation — one wild outlier
    moves it far less than a standard deviation, which is the point:
    baselines must survive the occasional host-noise-inflated run.
    """
    data = [float(v) for v in values]
    if not data:
        return 0.0, 0.0
    center = _median(data)
    mad = _median([abs(v - center) for v in data])
    return center, MAD_SIGMA * mad


def robust_zscore(value: float, center: float, sigma: float) -> float:
    """|value - center| in robust sigmas (inf when sigma is 0 and the
    value moved at all — identical history makes any change significant)."""
    delta = abs(value - center)
    if sigma > 0.0:
        return delta / sigma
    return float("inf") if delta > 0.0 else 0.0


@dataclass(frozen=True)
class ChangePoint:
    """A detected level shift inside one series."""

    #: First index of the *after* segment.
    index: int
    before_median: float
    after_median: float
    #: Robust z-statistic of the shift.
    zscore: float

    @property
    def shift(self) -> float:
        """Relative level change (after vs before; 0 when before is 0)."""
        if self.before_median == 0.0:
            return 0.0
        return self.after_median / self.before_median - 1.0


def detect_change_point(
    values: "Iterable[float]",
    *,
    min_segment: int = 3,
    z_gate: float = CHANGE_Z_GATE,
    min_shift: float = 0.10,
) -> ChangePoint | None:
    """Single most-significant level shift in a series, or None.

    Binary segmentation with one split: every cut leaving at least
    ``min_segment`` points on each side is scored by the difference of
    segment medians in units of the robust sigma of the *residuals
    around each segment's own median* (the whole-series sigma would be
    inflated by the very step being tested, hiding even a clean level
    shift); the best cut is reported when it clears ``z_gate`` *and* a
    ``min_shift`` relative change (a statistically-loud but
    practically-tiny shift is noise, not news).  O(n^2) medians —
    ledgers are hundreds of runs, not millions of samples.
    """
    data = [float(v) for v in values]
    if len(data) < 2 * min_segment:
        return None
    best: ChangePoint | None = None
    for cut in range(min_segment, len(data) - min_segment + 1):
        before, _ = robust_stats(data[:cut])
        after, _ = robust_stats(data[cut:])
        delta = abs(after - before)
        residuals = [abs(v - before) for v in data[:cut]]
        residuals += [abs(v - after) for v in data[cut:]]
        sigma = MAD_SIGMA * _median(residuals)
        if sigma > 0.0:
            z = delta / sigma
        else:
            # Perfectly-flat segments: any step at all is significant.
            z = float("inf") if delta > 0.0 else 0.0
        if best is None or z > best.zscore:
            best = ChangePoint(
                index=cut, before_median=before, after_median=after, zscore=z
            )
    if best is None or best.zscore < z_gate or abs(best.shift) < min_shift:
        return None
    return best


# ----------------------------------------------------------------------
# Series extraction from ledger records
# ----------------------------------------------------------------------
def _cache_hit_rates(record: RunRecord) -> dict[str, float]:
    """``{cache_name: hit_rate}`` recorded on one run (may be empty)."""
    rates: dict[str, float] = {}
    for name, stats in (record.cache or {}).items():
        rate = stats.get("hit_rate") if isinstance(stats, dict) else None
        if isinstance(rate, (int, float)):
            rates[name] = float(rate)
    return rates


def verification_error(record: RunRecord) -> float | None:
    """The surrogate-vs-exact error a run recorded, if any.

    ``cap-sweep --surrogate`` and the cap-policy search annotate
    ``metrics.winner_verification_error``; ``predict --exact`` annotates
    ``metrics.exact_energy_error``.  Either one is a drift observation.
    """
    metrics = record.metrics or {}
    for key in ("winner_verification_error", "exact_energy_error"):
        value = metrics.get(key)
        if isinstance(value, (int, float)):
            return float(value)
    return None


def comparable_history(
    records: "list[RunRecord]", target: RunRecord
) -> list[RunRecord]:
    """Prior ``ok`` runs sharing the target's config fingerprint,
    oldest first (the target itself excluded)."""
    if target.fingerprint is None:
        return []
    return [
        r
        for r in records
        if r.run_id != target.run_id
        and r.status == "ok"
        and r.fingerprint == target.fingerprint
    ]


# ----------------------------------------------------------------------
# The check (CI-gateable)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Finding:
    """One sentinel judgement against a run."""

    #: ``regression`` | ``determinism`` | ``drift``
    category: str
    #: Which mined series fired (``wall_s``, ``cache.run.hit_rate``, ...).
    series: str
    message: str

    def __str__(self) -> str:  # findings print directly in CLI output
        return self.message


def _exceeds(
    value: float,
    center: float,
    sigma: float,
    tolerance: float,
    *,
    direction: int,
) -> bool:
    """True when ``value`` regressed past the baseline.

    ``direction`` +1 flags increases (wall time, error), -1 flags
    decreases (cache hit rate).  Both the relative tolerance and the
    robust z-gate must fire: tolerance alone would page on noisy
    history, the z-gate alone would page on microscopic shifts of a
    perfectly-quiet series.
    """
    delta = direction * (value - center)
    if delta <= abs(center) * tolerance:
        return False
    return robust_zscore(value, center, sigma) > Z_GATE


def check_target(
    records: "list[RunRecord]",
    target: RunRecord,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    min_history: int = DEFAULT_MIN_HISTORY,
    drift_gate: float = DEFAULT_DRIFT_GATE,
    energy_rel_tol: float = ENERGY_REL_TOL,
) -> tuple[list[Finding], int]:
    """Judge ``target`` against its comparable ledger history.

    Returns (findings, history size).  With fewer than ``min_history``
    comparable runs only the determinism check runs — a median of one
    point is not a baseline.  Checks:

    * **wall time** — above the history median by more than
      ``tolerance`` *and* ``Z_GATE`` robust sigmas;
    * **energy determinism** — same fingerprint must reproduce the same
      joules to ``energy_rel_tol`` relative (vs the most recent
      comparable run; needs only one prior run);
    * **cache hit rate** — per-cache rate below the baseline by the
      same two-sided rule;
    * **surrogate drift** — the mean of the last ``DRIFT_WINDOW``
      verification errors (target included) exceeds ``drift_gate``.
    """
    history = comparable_history(records, target)
    findings: list[Finding] = []
    if not history:
        return findings, 0

    # Energy determinism: a single prior run suffices — the engine is
    # bit-deterministic, so this is not a statistical judgement.
    priors = [r for r in history if r.energy_j is not None]
    if priors and target.energy_j is not None:
        prior = priors[-1]
        scale = max(abs(prior.energy_j), abs(target.energy_j), 1.0)
        if abs(target.energy_j - prior.energy_j) / scale > energy_rel_tol:
            findings.append(
                Finding(
                    "determinism",
                    "energy_j",
                    f"energy {target.energy_j:.3f} J diverged from run "
                    f"{prior.run_id} ({prior.energy_j:.3f} J) under the "
                    "same config fingerprint — determinism drift",
                )
            )

    if len(history) >= min_history:
        walls = [r.wall_s for r in history if r.wall_s]
        if walls and target.wall_s:
            center, sigma = robust_stats(walls)
            if _exceeds(target.wall_s, center, sigma, tolerance, direction=+1):
                findings.append(
                    Finding(
                        "regression",
                        "wall_s",
                        f"wall time {target.wall_s:.2f} s is "
                        f"{target.wall_s / center - 1.0:+.0%} vs the "
                        f"baseline median of {len(walls)} comparable "
                        f"run(s) ({center:.2f} s ± {sigma:.2f}; "
                        f"tolerance {tolerance:+.0%})",
                    )
                )
        target_rates = _cache_hit_rates(target)
        for name, rate in sorted(target_rates.items()):
            series = [
                rates[name]
                for rates in (_cache_hit_rates(r) for r in history)
                if name in rates
            ]
            if len(series) < min_history:
                continue
            center, sigma = robust_stats(series)
            if _exceeds(rate, center, sigma, tolerance, direction=-1):
                findings.append(
                    Finding(
                        "regression",
                        f"cache.{name}.hit_rate",
                        f"cache '{name}' hit rate {rate:.1%} fell below "
                        f"its baseline median {center:.1%} "
                        f"(± {sigma:.3f}) — caching effectiveness "
                        "regressed",
                    )
                )

    # Surrogate drift: recent mean verification error vs the held-out
    # gate the store was admitted at.  Judged whenever the target
    # carries an error — drift is about the surrogate, not the history
    # depth.
    target_error = verification_error(target)
    if target_error is not None:
        errors = [
            e
            for e in (verification_error(r) for r in history)
            if e is not None
        ]
        recent = (errors + [target_error])[-DRIFT_WINDOW:]
        mean_recent = sum(recent) / len(recent)
        if mean_recent > drift_gate:
            findings.append(
                Finding(
                    "drift",
                    "verification_error",
                    f"surrogate drift: mean verification error "
                    f"{mean_recent:.1%} over the last {len(recent)} "
                    f"verified run(s) exceeds the held-out gate "
                    f"{drift_gate:.0%} — retrain the surrogate "
                    "(delete the store or rebuild the corpus)",
                )
            )
    return findings, len(history)


# ----------------------------------------------------------------------
# Baselines and the fleet-wide report
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Baseline:
    """The robust baseline of one config fingerprint's history."""

    fingerprint: str
    kind: str
    label: str
    runs: int
    wall_median_s: float | None
    wall_sigma_s: float | None
    energy_j: float | None
    hit_rates: dict[str, float] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "kind": self.kind,
            "label": self.label,
            "runs": self.runs,
            "wall_median_s": (
                round(self.wall_median_s, 4)
                if self.wall_median_s is not None
                else None
            ),
            "wall_sigma_s": (
                round(self.wall_sigma_s, 4)
                if self.wall_sigma_s is not None
                else None
            ),
            "energy_j": self.energy_j,
            "hit_rates": {k: round(v, 4) for k, v in self.hit_rates.items()},
        }


def group_by_fingerprint(
    records: "list[RunRecord]",
) -> dict[str, list[RunRecord]]:
    """``ok`` records bucketed by config fingerprint, ledger order kept."""
    groups: dict[str, list[RunRecord]] = {}
    for record in records:
        if record.status != "ok" or record.fingerprint is None:
            continue
        groups.setdefault(record.fingerprint, []).append(record)
    return groups


def compute_baselines(records: "list[RunRecord]") -> list[Baseline]:
    """One :class:`Baseline` per config fingerprint, most-run first."""
    baselines = []
    for fingerprint, group in group_by_fingerprint(records).items():
        walls = [r.wall_s for r in group if r.wall_s]
        center, sigma = robust_stats(walls) if walls else (None, None)
        energies = [r.energy_j for r in group if r.energy_j is not None]
        rate_series: dict[str, list[float]] = {}
        for record in group:
            for name, rate in _cache_hit_rates(record).items():
                rate_series.setdefault(name, []).append(rate)
        last = group[-1]
        baselines.append(
            Baseline(
                fingerprint=fingerprint,
                kind=last.kind,
                label=last.label,
                runs=len(group),
                wall_median_s=center,
                wall_sigma_s=sigma,
                energy_j=energies[-1] if energies else None,
                hit_rates={
                    name: robust_stats(series)[0]
                    for name, series in sorted(rate_series.items())
                },
            )
        )
    baselines.sort(key=lambda b: (-b.runs, b.kind, b.fingerprint))
    return baselines


@dataclass(frozen=True)
class ReportRow:
    """One fingerprint's health line in ``repro sentinel report``."""

    baseline: Baseline
    latest_wall_s: float | None
    change_point: ChangePoint | None
    findings: list[Finding]

    @property
    def verdict(self) -> str:
        if self.findings:
            return "REGRESSED"
        if self.change_point is not None:
            return "shifted"
        return "ok"

    def to_json(self) -> dict[str, Any]:
        data = self.baseline.to_json()
        data["latest_wall_s"] = (
            round(self.latest_wall_s, 4) if self.latest_wall_s is not None else None
        )
        data["verdict"] = self.verdict
        data["findings"] = [f.message for f in self.findings]
        if self.change_point is not None:
            data["change_point"] = {
                "index": self.change_point.index,
                "before_median": round(self.change_point.before_median, 4),
                "after_median": round(self.change_point.after_median, 4),
                "shift": round(self.change_point.shift, 4),
                "zscore": (
                    round(self.change_point.zscore, 2)
                    if self.change_point.zscore != float("inf")
                    else "inf"
                ),
            }
        else:
            data["change_point"] = None
        return data


def build_report(
    records: "list[RunRecord]",
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    min_history: int = DEFAULT_MIN_HISTORY,
    drift_gate: float = DEFAULT_DRIFT_GATE,
    kind: str | None = None,
) -> list[ReportRow]:
    """Sentinel health of every fingerprint: baseline, shift, verdict.

    Each group's most recent run is checked against the rest of its
    history (exactly what ``sentinel check`` would do run-by-run), and
    the wall-time series is scanned for a change point.
    """
    rows = []
    for baseline in compute_baselines(records):
        if kind is not None and baseline.kind != kind:
            continue
        group = group_by_fingerprint(records)[baseline.fingerprint]
        target = group[-1]
        findings, _ = check_target(
            records,
            target,
            tolerance=tolerance,
            min_history=min_history,
            drift_gate=drift_gate,
        )
        walls = [r.wall_s for r in group if r.wall_s]
        rows.append(
            ReportRow(
                baseline=baseline,
                latest_wall_s=target.wall_s,
                change_point=detect_change_point(walls),
                findings=findings,
            )
        )
    return rows
