"""Live terminal dashboard for running fleet simulations (``repro top``).

A sharded 100k-node run publishes heartbeat snapshots
(:mod:`repro.obs.heartbeat`), streams alert lifecycle events to the
monitor's JSON-lines log, and seals a ledger record at exit — but each
of those is a file you have to go read.  ``repro top`` is the single
pane of glass: it tails every heartbeat under the configured base path
(the ``.capped`` / ``.uncapped`` per-policy suffixes the fleet CLI
writes), the most recent alert events, and — optionally — a metrics
snapshot, re-rendering a compact text dashboard once per interval until
the run finishes.  On completion it asks the regression sentinel
(:mod:`repro.obs.sentinel`) for a verdict on the freshly-sealed ledger
record, closing the record → detect → watch loop in one screen.

Everything is read-only over atomically-replaced or append-only files,
so the dashboard can run in a second terminal (or a scraper can call
``repro top --once --json``) without perturbing the simulation — the
same observation-only contract as every other obs layer.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, TextIO

from repro import obs
from repro.obs import ledger as run_ledger
from repro.obs import sentinel
from repro.obs.heartbeat import heartbeat_path_from_env

#: Per-policy heartbeat suffixes the fleet comparison CLI writes.
HEARTBEAT_SUFFIXES = ("", ".capped", ".uncapped")
#: Alert events shown in the feed.
DEFAULT_ALERT_TAIL = 8
#: A heartbeat older than this (vs file mtime) is flagged as stale.
STALE_AFTER_S = 30.0


def discover_heartbeats(base: "str | Path | None") -> list[Path]:
    """Existing heartbeat files at ``base`` and its per-policy suffixes."""
    if base is None:
        return []
    base = Path(base)
    found = []
    for suffix in HEARTBEAT_SUFFIXES:
        candidate = (
            base if not suffix else base.with_name(base.name + suffix)
        )
        if candidate.is_file():
            found.append(candidate)
    return found


def _read_json(path: Path) -> dict[str, Any] | None:
    """Parse a JSON file, tolerating mid-replace races and corruption."""
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    return data if isinstance(data, dict) else None


def tail_alert_events(
    path: "str | Path | None", limit: int = DEFAULT_ALERT_TAIL
) -> tuple[list[dict[str, Any]], int]:
    """(last ``limit`` alert events, currently-firing count).

    The alert log is JSON lines appended live as alerts fire and
    resolve; a partially-written tail line (we raced the writer) is
    skipped, like the run ledger's reader.  Firing count is replayed
    from the full event stream: fired minus resolved per (rule, node).
    """
    if path is None:
        return [], 0
    path = Path(path)
    if not path.is_file():
        return [], 0
    events: list[dict[str, Any]] = []
    firing: set[tuple[str, str]] = set()
    try:
        lines = path.read_text().splitlines()
    except OSError:
        return [], 0
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn tail from the live appender
        if not isinstance(event, dict):
            continue
        events.append(event)
        key = (str(event.get("rule")), str(event.get("node")))
        if event.get("event") == "firing":
            firing.add(key)
        elif event.get("event") == "resolved":
            firing.discard(key)
    return events[-limit:], len(firing)


def _metrics_snapshot(metrics_path: "str | Path | None") -> dict[str, Any] | None:
    """The in-process registry snapshot, or an exported ``.json`` one."""
    registry = obs.metrics()
    if registry is not None:
        return registry.to_json()
    if metrics_path is None:
        return None
    path = Path(metrics_path)
    if path.suffix.lower() != ".json" or not path.is_file():
        return None
    return _read_json(path)


@dataclass(frozen=True)
class DashSnapshot:
    """One collected dashboard frame (everything ``repro top`` shows)."""

    heartbeats: list[dict[str, Any]] = field(default_factory=list)
    alerts: list[dict[str, Any]] = field(default_factory=list)
    alerts_firing: int = 0
    metrics: dict[str, Any] | None = None
    last_run: dict[str, Any] | None = None
    #: Sentinel verdict over the last ledger record; None until the run
    #: completes (the record only exists once the CLI seals it).
    sentinel: dict[str, Any] | None = None
    updated_at: str = ""

    @property
    def done(self) -> bool:
        """True when every discovered heartbeat reports completion."""
        return bool(self.heartbeats) and all(
            h.get("done") for h in self.heartbeats
        )

    def to_json(self) -> dict[str, Any]:
        return {
            "heartbeats": self.heartbeats,
            "alerts": self.alerts,
            "alerts_firing": self.alerts_firing,
            "metrics": self.metrics,
            "last_run": self.last_run,
            "sentinel": self.sentinel,
            "done": self.done,
            "updated_at": self.updated_at,
        }


def sentinel_verdict(
    ledger_root: "str | Path | None" = None,
    *,
    tolerance: float = sentinel.DEFAULT_TOLERANCE,
    min_history: int = sentinel.DEFAULT_MIN_HISTORY,
) -> dict[str, Any] | None:
    """Sentinel check of the most recent ledger record (None when empty)."""
    ledger = run_ledger.RunLedger(ledger_root)
    records = ledger.records()
    if not records:
        return None
    target = records[-1]
    findings, history = sentinel.check_target(
        records, target, tolerance=tolerance, min_history=min_history
    )
    return {
        "run_id": target.run_id,
        "kind": target.kind,
        "history": history,
        "verdict": "REGRESSED" if findings else "ok",
        "findings": [finding.message for finding in findings],
    }


def collect_snapshot(
    heartbeat: "str | Path | None" = None,
    *,
    alert_log: "str | Path | None" = None,
    metrics_path: "str | Path | None" = None,
    ledger_root: "str | Path | None" = None,
    alert_tail: int = DEFAULT_ALERT_TAIL,
    now: Callable[[], float] = time.time,
) -> DashSnapshot:
    """Gather one dashboard frame from every available source.

    Missing sources are simply absent from the snapshot — a dashboard
    pointed at a run that has not started yet is empty, not an error.
    """
    base = Path(heartbeat) if heartbeat is not None else heartbeat_path_from_env()
    beats = []
    for path in discover_heartbeats(base):
        data = _read_json(path)
        if data is None:
            continue
        try:
            data["stale_s"] = round(max(now() - path.stat().st_mtime, 0.0), 3)
        except OSError:
            data["stale_s"] = None
        data["path"] = str(path)
        beats.append(data)
    alerts, firing = tail_alert_events(alert_log, alert_tail)
    snapshot = DashSnapshot(
        heartbeats=beats,
        alerts=alerts,
        alerts_firing=firing,
        metrics=_metrics_snapshot(metrics_path),
        last_run=None,
        sentinel=None,
        updated_at=run_ledger.utc_now_iso(),
    )
    if snapshot.done:
        # The run is over: the CLI has sealed (or is about to seal) its
        # ledger record — surface the sentinel's view of it.
        verdict = sentinel_verdict(ledger_root)
        if verdict is not None:
            ledger = run_ledger.RunLedger(ledger_root)
            last = ledger.last()
            snapshot = DashSnapshot(
                heartbeats=snapshot.heartbeats,
                alerts=snapshot.alerts,
                alerts_firing=snapshot.alerts_firing,
                metrics=snapshot.metrics,
                last_run=last.to_json() if last is not None else None,
                sentinel=verdict,
                updated_at=snapshot.updated_at,
            )
    return snapshot


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _bar(fraction: float, width: int = 28) -> str:
    fraction = min(max(fraction, 0.0), 1.0)
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def _fmt_eta(eta_s: Any) -> str:
    if not isinstance(eta_s, (int, float)):
        return "--"
    if eta_s >= 3600:
        return f"{eta_s / 3600:.1f} h"
    if eta_s >= 120:
        return f"{eta_s / 60:.1f} min"
    return f"{eta_s:.0f} s"


def render_snapshot(snapshot: DashSnapshot) -> str:
    """The dashboard frame as plain text (no ANSI colour, pipe-safe)."""
    lines = [f"repro top — {snapshot.updated_at}"]
    if not snapshot.heartbeats:
        lines.append("  (no heartbeat found — is the fleet run publishing one?)")
    for beat in snapshot.heartbeats:
        label = beat.get("label", "?")
        progress = float(beat.get("progress", 0.0) or 0.0)
        rate = beat.get("nodes_per_s")
        stale = beat.get("stale_s")
        stale_note = (
            "  STALE"
            if isinstance(stale, (int, float)) and stale > STALE_AFTER_S
            and not beat.get("done")
            else ""
        )
        lines.append(
            f"  {label:24s} [{_bar(progress)}] {progress:6.1%}"
            f"  jobs {beat.get('jobs_folded', 0)}/{beat.get('jobs_total', 0)}"
            f"  {rate if isinstance(rate, (int, float)) else 0.0:,.0f} nodes/s"
            f"  ETA {_fmt_eta(beat.get('eta_s'))}"
            + (
                f"  ckpt {beat['checkpoint_age_s']:.0f} s"
                if isinstance(beat.get("checkpoint_age_s"), (int, float))
                else ""
            )
            + ("  done" if beat.get("done") else "")
            + stale_note
        )
    if snapshot.alerts or snapshot.alerts_firing:
        lines.append(f"  alerts ({snapshot.alerts_firing} firing):")
        for event in snapshot.alerts:
            lines.append(
                f"    {event.get('event', '?'):9s}"
                f" {event.get('severity', '?'):8s}"
                f" {event.get('rule', '?'):22s}"
                f" {event.get('node', '?'):12s}"
                f" t={event.get('time_s', 0)}"
            )
    if snapshot.metrics:
        interesting = [
            (name, data)
            for name, data in sorted(snapshot.metrics.items())
            if data.get("type") in {"counter", "gauge"}
        ][:6]
        if interesting:
            lines.append("  metrics:")
            for name, data in interesting:
                total = sum(
                    v for v in data.get("values", {}).values()
                    if isinstance(v, (int, float))
                )
                lines.append(f"    {name:40s} {total:,.0f}")
    if snapshot.sentinel is not None:
        verdict = snapshot.sentinel
        lines.append(
            f"  sentinel: run {verdict['run_id']} ({verdict['kind']}) "
            f"vs {verdict['history']} comparable run(s) — {verdict['verdict']}"
        )
        for finding in verdict["findings"]:
            lines.append(f"    ! {finding}")
    return "\n".join(lines) + "\n"


def run_dashboard(
    heartbeat: "str | Path | None" = None,
    *,
    alert_log: "str | Path | None" = None,
    metrics_path: "str | Path | None" = None,
    ledger_root: "str | Path | None" = None,
    interval_s: float = 1.0,
    once: bool = False,
    json_out: bool = False,
    duration_s: float | None = None,
    stream: TextIO | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> int:
    """The ``repro top`` loop: collect, render, repeat until done.

    ``once`` collects and renders a single frame (``json_out`` emits the
    raw snapshot instead — the scripting interface).  Live mode redraws
    every ``interval_s`` seconds until every heartbeat reports done (or
    ``duration_s`` elapses), then leaves the final frame — with the
    sentinel verdict — on screen.  Returns 0, or 2 when a single-shot
    render found no heartbeat at all.
    """
    out = stream if stream is not None else sys.stdout
    deadline = (
        time.monotonic() + duration_s if duration_s is not None else None
    )
    clear = "\x1b[H\x1b[2J" if (not once and out.isatty()) else ""
    while True:
        snapshot = collect_snapshot(
            heartbeat,
            alert_log=alert_log,
            metrics_path=metrics_path,
            ledger_root=ledger_root,
        )
        if json_out:
            out.write(json.dumps(snapshot.to_json(), sort_keys=True) + "\n")
        else:
            out.write(clear + render_snapshot(snapshot))
        out.flush()
        if once:
            return 0 if snapshot.heartbeats else 2
        if snapshot.done:
            return 0
        if deadline is not None and time.monotonic() >= deadline:
            return 0
        sleep(interval_s)
