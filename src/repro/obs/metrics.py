"""Counters, gauges and histograms with Prometheus/JSON exporters.

The metric model mirrors what an LDMS/OMNI-style collector would scrape
from a production deployment of this simulator: monotonic counters
(cache hits, specs executed), point-in-time gauges (worker counts) and
latency histograms (per-spec sweep latency), exposed in the Prometheus
text exposition format plus a JSON snapshot for programmatic use.

Like :mod:`repro.obs.trace`, everything here is observation-only: a
metric update never feeds back into the computation, so instrumented
runs stay bit-identical to uninstrumented ones.
"""

from __future__ import annotations

import json
import math
import threading
from pathlib import Path
from typing import Any, Iterable

#: Default histogram bucket upper bounds, in seconds — tuned for the
#: sweep/engine latencies this harness sees (sub-millisecond cache hits
#: up to multi-second full-pipeline runs).
DEFAULT_BUCKETS_S: tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    60.0,
)

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition format.

    Backslash, double-quote and line-feed must be escaped (in that
    order, so inserted backslashes are not re-escaped).
    """
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    """Escape ``# HELP`` text: backslash and line-feed only."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_labels(key: _LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in key
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    value = float(value)
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if math.isnan(value):
        return "NaN"
    if value.is_integer():
        return str(int(value))
    return repr(value)


class Counter:
    """A monotonically increasing counter, optionally labelled."""

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help_text = help_text
        self._lock = threading.Lock()
        self._values: dict[_LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (must be >= 0) to the labelled series."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        """Current value of one labelled series (0 if never incremented)."""
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across all labelled series."""
        with self._lock:
            return sum(self._values.values())

    # -- export --------------------------------------------------------
    def expose(self) -> list[str]:
        lines = []
        if self.help_text:
            lines.append(f"# HELP {self.name} {_escape_help(self.help_text)}")
        lines.append(f"# TYPE {self.name} counter")
        with self._lock:
            series = sorted(self._values.items())
        if not series:
            series = [((), 0.0)]
        for key, value in series:
            lines.append(f"{self.name}{_format_labels(key)} {_format_value(value)}")
        return lines

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            series = {
                _format_labels(key) or "": value
                for key, value in sorted(self._values.items())
            }
        return {"type": "counter", "help": self.help_text, "values": series}

    # -- cross-process merge --------------------------------------------
    def state(self) -> dict[str, Any]:
        """Picklable per-series state (for :mod:`repro.obs.merge`)."""
        with self._lock:
            return {"values": dict(self._values)}

    def merge_state(self, state: dict[str, Any]) -> None:
        """Fold another counter's :meth:`state` in (values add).

        Addition is commutative, so merging worker states in any arrival
        order yields exactly the totals a serial run would have counted.
        """
        with self._lock:
            for key, value in state["values"].items():
                self._values[key] = self._values.get(key, 0.0) + value


class Gauge:
    """A point-in-time value that can move both ways."""

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help_text = help_text
        self._lock = threading.Lock()
        self._values: dict[_LabelKey, float] = {}

    def set(self, value: float, **labels: str) -> None:
        """Set the labelled series to ``value``."""
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (may be negative) to the labelled series."""
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        """Current value of one labelled series (0 if never set)."""
        return self._values.get(_label_key(labels), 0.0)

    def expose(self) -> list[str]:
        lines = []
        if self.help_text:
            lines.append(f"# HELP {self.name} {_escape_help(self.help_text)}")
        lines.append(f"# TYPE {self.name} gauge")
        with self._lock:
            series = sorted(self._values.items())
        if not series:
            series = [((), 0.0)]
        for key, value in series:
            lines.append(f"{self.name}{_format_labels(key)} {_format_value(value)}")
        return lines

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            series = {
                _format_labels(key) or "": value
                for key, value in sorted(self._values.items())
            }
        return {"type": "gauge", "help": self.help_text, "values": series}

    # -- cross-process merge --------------------------------------------
    def state(self) -> dict[str, Any]:
        """Picklable per-series state (for :mod:`repro.obs.merge`)."""
        with self._lock:
            return {"values": dict(self._values)}

    def merge_state(self, state: dict[str, Any]) -> None:
        """Fold another gauge's :meth:`state` in (last writer wins).

        Gauges are point-in-time readings, so a worker's value replaces
        the local one — the merged gauge reports whatever was observed
        most recently in absorb order.
        """
        with self._lock:
            self._values.update(state["values"])


class Histogram:
    """A cumulative-bucket histogram (Prometheus semantics).

    Tracks per-bucket counts plus ``_sum`` and ``_count``; buckets are
    upper bounds with an implicit ``+Inf`` bucket.
    """

    def __init__(
        self,
        name: str,
        help_text: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS_S,
    ) -> None:
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        self.name = name
        self.help_text = help_text
        self.bounds = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)  # last = +Inf
        self._sum = 0.0
        self._total = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            self._sum += value
            self._total += 1
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    self._counts[index] += 1
                    return
            self._counts[-1] += 1

    @property
    def count(self) -> int:
        """Total observations."""
        return self._total

    @property
    def sum(self) -> float:
        """Sum of observed values."""
        return self._sum

    def expose(self) -> list[str]:
        lines = []
        if self.help_text:
            lines.append(f"# HELP {self.name} {_escape_help(self.help_text)}")
        lines.append(f"# TYPE {self.name} histogram")
        with self._lock:
            counts = list(self._counts)
            total = self._total
            value_sum = self._sum
        cumulative = 0
        for bound, count in zip(self.bounds + [math.inf], counts):
            cumulative += count
            label = _format_labels((("le", _format_value(bound)),))
            lines.append(f"{self.name}_bucket{label} {cumulative}")
        lines.append(f"{self.name}_sum {_format_value(value_sum)}")
        lines.append(f"{self.name}_count {total}")
        return lines

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "type": "histogram",
                "help": self.help_text,
                "buckets": {
                    _format_value(bound): count
                    for bound, count in zip(self.bounds, self._counts)
                },
                "inf": self._counts[-1],
                "sum": self._sum,
                "count": self._total,
            }

    # -- cross-process merge --------------------------------------------
    def state(self) -> dict[str, Any]:
        """Picklable bucket state (for :mod:`repro.obs.merge`)."""
        with self._lock:
            return {
                "bounds": tuple(self.bounds),
                "counts": list(self._counts),
                "sum": self._sum,
                "count": self._total,
            }

    def merge_state(self, state: dict[str, Any]) -> None:
        """Fold another histogram's :meth:`state` in (bucket counts add).

        Raises
        ------
        ValueError
            If the bucket bounds differ — counts cannot be re-bucketed.
        """
        if tuple(state["bounds"]) != tuple(self.bounds):
            raise ValueError(
                f"histogram {self.name}: cannot merge states with different "
                f"bucket bounds ({state['bounds']} vs {self.bounds})"
            )
        with self._lock:
            for index, count in enumerate(state["counts"]):
                self._counts[index] += count
            self._sum += state["sum"]
            self._total += state["count"]


class MetricsRegistry:
    """Get-or-create registry of named metrics with both exporters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, factory, kind: type) -> Any:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise TypeError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, not {kind.__name__}"
                    )
                return existing
            metric = factory()
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        """Get or create the named counter."""
        return self._get_or_create(name, lambda: Counter(name, help_text), Counter)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        """Get or create the named gauge."""
        return self._get_or_create(name, lambda: Gauge(name, help_text), Gauge)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS_S,
    ) -> Histogram:
        """Get or create the named histogram."""
        return self._get_or_create(
            name, lambda: Histogram(name, help_text, buckets), Histogram
        )

    # -- inspection ----------------------------------------------------
    def names(self) -> list[str]:
        """Registered metric names, sorted."""
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        """The named metric, or None."""
        with self._lock:
            return self._metrics.get(name)

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    # -- export --------------------------------------------------------
    def to_prometheus(self) -> str:
        """The registry in Prometheus text exposition format."""
        lines: list[str] = []
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        for metric in metrics:
            lines.extend(metric.expose())
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self) -> dict[str, Any]:
        """Snapshot of every metric as plain JSON-ready data."""
        with self._lock:
            metrics = [(name, self._metrics[name]) for name in sorted(self._metrics)]
        return {name: metric.snapshot() for name, metric in metrics}

    # -- cross-process merge --------------------------------------------
    def state(self) -> dict[str, Any]:
        """Picklable snapshot of every metric's mergeable state.

        The payload :class:`repro.obs.merge.ObsPartial` ships across the
        process-pool boundary; :meth:`merge_state` folds it back in.
        """
        with self._lock:
            metrics = list(self._metrics.items())
        kinds = {Counter: "counter", Gauge: "gauge", Histogram: "histogram"}
        return {
            name: {
                "kind": kinds[type(metric)],
                "help": metric.help_text,
                "state": metric.state(),
            }
            for name, metric in metrics
        }

    def merge_state(self, state: dict[str, Any]) -> None:
        """Fold a :meth:`state` payload in (get-or-create, then merge).

        Counters add, gauges take the incoming value, histograms add
        bucket counts — so merging every worker's registry into the
        coordinator's reproduces exactly the counter totals a serial run
        accumulates in one process.
        """
        for name, entry in sorted(state.items()):
            kind = entry["kind"]
            if kind == "counter":
                metric = self.counter(name, entry["help"])
            elif kind == "gauge":
                metric = self.gauge(name, entry["help"])
            elif kind == "histogram":
                metric = self.histogram(
                    name, entry["help"], buckets=entry["state"]["bounds"]
                )
            else:
                raise ValueError(f"unknown metric kind {kind!r} for {name!r}")
            metric.merge_state(entry["state"])

    def export_prometheus(self, path: str | Path) -> Path:
        """Write the Prometheus exposition to a file; returns the path."""
        path = Path(path)
        path.write_text(self.to_prometheus())
        return path

    def export_json(self, path: str | Path) -> Path:
        """Write the JSON snapshot to a file; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.to_json(), indent=2) + "\n")
        return path
