"""``repro.obs`` — tracing, metrics and runtime introspection.

The paper's contribution is telemetry *about jobs*; this subsystem is the
same idea turned inward — telemetry about the reproduction harness.  It
has three parts:

* :mod:`repro.obs.trace` — nested spans with a Chrome trace-event
  (``chrome://tracing`` / Perfetto) JSON exporter;
* :mod:`repro.obs.metrics` — counters / gauges / histograms with
  Prometheus text-exposition and JSON snapshot exporters;
* :mod:`repro.obs.logconf` — stdlib logging wiring (``REPRO_LOG``);
* :mod:`repro.obs.merge` — cross-process capture: workers record into a
  fresh tracer/registry and ship an ``ObsPartial`` back with their
  results, folded into the coordinator's state (sharded fleet runs and
  parallel sweeps stay fully observable);
* :mod:`repro.obs.ledger` — durable JSON-lines run ledger
  (``.repro_runs/``, the ``repro runs`` CLI);
* :mod:`repro.obs.heartbeat` — live progress telemetry for long fleet
  runs (``REPRO_FLEET_HEARTBEAT`` / ``--heartbeat``);
* :mod:`repro.obs.profile` — sampling wall-clock profiler attached to
  the span tracer (``REPRO_PROFILE`` / ``--profile``);
* :mod:`repro.obs.sentinel` — ledger-mining regression sentinel
  (``repro sentinel check/report/baseline``);
* :mod:`repro.obs.dash` — live fleet dashboard (``repro top``).

This module owns the *global observability state* and the cheap
module-level helpers the hot layers call:

``obs.span(name, **args)``
    Context manager; a shared no-op when tracing is disabled.
``obs.inc(name, amount, **labels)`` / ``obs.gauge_set`` / ``obs.observe``
    Metric updates; single ``None``-check no-ops when disabled.

Activation (all default **off**):

* environment — ``REPRO_TRACE=FILE`` enables tracing and writes the
  Chrome JSON to FILE at exit via :func:`flush`; ``REPRO_METRICS=FILE``
  likewise for metrics (``.json`` suffix selects the JSON snapshot,
  anything else Prometheus text); ``REPRO_PROFILE=FILE`` likewise for
  the sampling profiler (``.speedscope``/``.json``, ``.folded`` or
  ``.txt``); ``REPRO_LOG=LEVEL`` configures logging.
* CLI — ``repro ... --trace FILE --metrics FILE --profile FILE
  --log-level LEVEL``.
* programmatic — :func:`enable` / :func:`disable`.

Instrumentation is observation-only: enabling it never changes a
computed result (``EXPERIMENTS.md`` regenerates byte-identical with
tracing on).
"""

from __future__ import annotations

import atexit
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.obs.logconf import (
    LOG_ENV,
    configure_logging,
    get_logger,
    reset_logging,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import (
    PROFILE_ENV,
    PROFILE_INTERVAL_ENV,
    SpanProfiler,
    export_profile,
    interval_from_env,
)
from repro.obs.trace import NULL_SPAN, TraceEvent, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanProfiler",
    "TraceEvent",
    "Tracer",
    "TRACE_ENV",
    "METRICS_ENV",
    "PROFILE_ENV",
    "LOG_ENV",
    "configure_from_env",
    "configure_logging",
    "disable",
    "enable",
    "flush",
    "gauge_set",
    "get_logger",
    "inc",
    "instant",
    "is_active",
    "metrics",
    "name_process",
    "name_thread",
    "observe",
    "profiler",
    "profiling_active",
    "reset_logging",
    "span",
    "status",
    "tracer",
    "tracing_active",
]

#: Environment variable: path for the Chrome trace JSON (enables tracing).
TRACE_ENV = "REPRO_TRACE"
#: Environment variable: path for the metrics export (enables metrics).
METRICS_ENV = "REPRO_METRICS"


@dataclass
class _ObsState:
    """The process-wide observability configuration."""

    tracer: Tracer | None = None
    registry: MetricsRegistry | None = None
    profiler: SpanProfiler | None = None
    trace_path: Path | None = None
    metrics_path: Path | None = None
    profile_path: Path | None = None
    #: Exports already performed by :func:`flush` (path -> kind).
    flushed: dict[str, str] = field(default_factory=dict)


_STATE = _ObsState()
_ENV_CONFIGURED = False


# ----------------------------------------------------------------------
# Activation
# ----------------------------------------------------------------------
def enable(
    trace: bool | str | Path = False,
    metrics: bool | str | Path = False,
    log_level: str | int | None = None,
    profile: bool | str | Path = False,
) -> None:
    """Turn observability layers on.

    ``trace`` / ``metrics`` / ``profile`` accept True (collect in
    memory) or a path (collect and export there on :func:`flush`).
    ``profile`` implies tracing — the sampler attributes samples to the
    open spans — and starts the sampler thread immediately.
    ``log_level`` configures stdlib logging when given.
    """
    if profile and _STATE.tracer is None:
        trace = trace or True
    if trace:
        if _STATE.tracer is None:
            _STATE.tracer = Tracer()
        if not isinstance(trace, bool):
            _STATE.trace_path = Path(trace)
    if metrics:
        if _STATE.registry is None:
            _STATE.registry = MetricsRegistry()
        if not isinstance(metrics, bool):
            _STATE.metrics_path = Path(metrics)
    if profile:
        if _STATE.profiler is None:
            _STATE.profiler = SpanProfiler(
                interval_from_env(), tracer=_STATE.tracer
            )
            _STATE.profiler.start()
        if not isinstance(profile, bool):
            _STATE.profile_path = Path(profile)
    if log_level is not None:
        configure_logging(log_level)


def disable() -> None:
    """Turn all observability layers off and drop collected data."""
    if _STATE.profiler is not None:
        _STATE.profiler.stop()
    _STATE.tracer = None
    _STATE.registry = None
    _STATE.profiler = None
    _STATE.trace_path = None
    _STATE.metrics_path = None
    _STATE.profile_path = None
    _STATE.flushed = {}


def configure_from_env() -> None:
    """Activate layers named by ``REPRO_TRACE`` / ``REPRO_METRICS`` /
    ``REPRO_PROFILE`` / ``REPRO_LOG``.

    Called once on import (so plain library use honours the env vars)
    and again by the CLI after flag parsing; re-calls are cheap and only
    ever *add* layers.
    """
    trace_path = os.environ.get(TRACE_ENV, "").strip()
    metrics_path = os.environ.get(METRICS_ENV, "").strip()
    profile_path = os.environ.get(PROFILE_ENV, "").strip()
    if trace_path:
        enable(trace=trace_path)
    if metrics_path:
        enable(metrics=metrics_path)
    if profile_path:
        enable(profile=profile_path)
    if os.environ.get(LOG_ENV, "").strip():
        configure_logging()


def is_active() -> bool:
    """True when any observability layer (tracing or metrics) is on."""
    return _STATE.tracer is not None or _STATE.registry is not None


def tracing_active() -> bool:
    """True when span collection is on."""
    return _STATE.tracer is not None


def profiling_active() -> bool:
    """True when the sampling profiler is on."""
    return _STATE.profiler is not None


def tracer() -> Tracer | None:
    """The active tracer, or None when tracing is off."""
    return _STATE.tracer


def metrics() -> MetricsRegistry | None:
    """The active metrics registry, or None when metrics are off."""
    return _STATE.registry


def profiler() -> SpanProfiler | None:
    """The active sampling profiler, or None when profiling is off."""
    return _STATE.profiler


# ----------------------------------------------------------------------
# Hot-path helpers (no-ops when disabled)
# ----------------------------------------------------------------------
def span(name: str, category: str = "repro", **args: Any):
    """A tracing span; the shared no-op context manager when disabled."""
    active = _STATE.tracer
    if active is None:
        return NULL_SPAN
    return active.span(name, category, **args)


def instant(name: str, category: str = "repro", **args: Any) -> None:
    """Record an instant event (no-op when tracing is disabled)."""
    active = _STATE.tracer
    if active is not None:
        active.instant(name, category, **args)


def name_process(name: str) -> None:
    """Label this process's row in exported traces and profiles."""
    active = _STATE.tracer
    if active is not None:
        active.name_process(name)
    if _STATE.profiler is not None:
        _STATE.profiler.relabel(f"{name} (pid {os.getpid()})")


def name_thread(name: str) -> None:
    """Label this thread's row in the exported trace (no-op when off)."""
    active = _STATE.tracer
    if active is not None:
        active.name_thread(name)


def inc(name: str, amount: float = 1.0, help_text: str = "", **labels: str) -> None:
    """Increment a counter (no-op when metrics are disabled)."""
    registry = _STATE.registry
    if registry is not None:
        registry.counter(name, help_text).inc(amount, **labels)


def gauge_set(name: str, value: float, help_text: str = "", **labels: str) -> None:
    """Set a gauge (no-op when metrics are disabled)."""
    registry = _STATE.registry
    if registry is not None:
        registry.gauge(name, help_text).set(value, **labels)


def observe(name: str, value: float, help_text: str = "", **labels: str) -> None:
    """Record a histogram observation (no-op when metrics are disabled)."""
    registry = _STATE.registry
    if registry is not None:
        registry.histogram(name, help_text).observe(value)


# ----------------------------------------------------------------------
# Export
# ----------------------------------------------------------------------
def flush() -> dict[str, str]:
    """Write collected data to the configured paths.

    Returns ``{path: kind}`` for the files written this call.  Metrics
    paths ending in ``.json`` get the JSON snapshot; anything else the
    Prometheus text exposition.  Idempotent per (path, content): called
    both by the CLI on exit and by an ``atexit`` hook as a safety net.
    """
    written: dict[str, str] = {}
    if _STATE.profiler is not None and _STATE.profile_path is not None:
        # Stop sampling before the snapshot so the exported profile is
        # final (flush may run again from atexit; stop is idempotent).
        _STATE.profiler.stop()
        export_profile(_STATE.profiler.profile.state(), _STATE.profile_path)
        suffix = _STATE.profile_path.suffix.lower()
        if suffix in {".json", ".speedscope"}:
            kind = "speedscope-profile"
        elif suffix == ".txt":
            kind = "profile-report"
        else:
            kind = "collapsed-profile"
        written[str(_STATE.profile_path)] = kind
    if _STATE.tracer is not None and _STATE.trace_path is not None:
        _STATE.tracer.export_chrome(_STATE.trace_path)
        written[str(_STATE.trace_path)] = "chrome-trace"
    if _STATE.registry is not None and _STATE.metrics_path is not None:
        if _STATE.metrics_path.suffix.lower() == ".json":
            _STATE.registry.export_json(_STATE.metrics_path)
            written[str(_STATE.metrics_path)] = "metrics-json"
        else:
            _STATE.registry.export_prometheus(_STATE.metrics_path)
            written[str(_STATE.metrics_path)] = "prometheus"
    _STATE.flushed.update(written)
    return written


def _flush_at_exit() -> None:  # pragma: no cover - exercised via subprocess
    try:
        flush()
    except OSError:
        pass


atexit.register(_flush_at_exit)


# ----------------------------------------------------------------------
# Introspection (the `repro obs` command)
# ----------------------------------------------------------------------
def status() -> dict[str, Any]:
    """A JSON-ready description of the current observability state."""
    return {
        "tracing": {
            "active": _STATE.tracer is not None,
            "events": len(_STATE.tracer) if _STATE.tracer is not None else 0,
            "path": str(_STATE.trace_path) if _STATE.trace_path else None,
            "env": os.environ.get(TRACE_ENV) or None,
        },
        "metrics": {
            "active": _STATE.registry is not None,
            "names": _STATE.registry.names() if _STATE.registry is not None else [],
            "path": str(_STATE.metrics_path) if _STATE.metrics_path else None,
            "env": os.environ.get(METRICS_ENV) or None,
        },
        "profile": {
            "active": _STATE.profiler is not None,
            "samples": (
                _STATE.profiler.profile.total_samples
                if _STATE.profiler is not None
                else 0
            ),
            "path": str(_STATE.profile_path) if _STATE.profile_path else None,
            "env": os.environ.get(PROFILE_ENV) or None,
        },
        "logging": {
            "env": os.environ.get(LOG_ENV) or None,
        },
    }


# Honour the env vars for plain library use (harmless when unset).
if not _ENV_CONFIGURED:
    _ENV_CONFIGURED = True
    configure_from_env()
