"""Span-based tracing with a Chrome trace-event exporter.

The paper's methodology is built on timelines — OMNI power streams
aligned to job windows — and this module gives the reproduction harness
the same view of *itself*: nested spans around the hot layers (phase
resolution, trace rendering, sweep execution, cache lookups) exported in
the Chrome trace-event JSON format, loadable in ``chrome://tracing`` or
`Perfetto <https://ui.perfetto.dev>`_.

Design constraints:

* **Disabled by default, near-zero overhead.**  The module-level
  :func:`span` helper checks one global and returns a shared no-op
  context manager when no tracer is installed — no allocation, no clock
  read.  The guarded sweep benches run with observability off and must
  not regress.
* **Thread- and process-safe identity.**  Every event records the OS
  process id and thread id it was emitted from, so traces from the
  serial path and from in-process threads interleave correctly in the
  viewer.  Sweep and fleet *worker processes* capture their own spans
  into an :class:`repro.obs.merge.ObsPartial` and ship them back with
  their results; :meth:`Tracer.absorb` rebases them onto the
  coordinator's epoch, so one exported file carries per-worker ``pid``
  rows.
* **Determinism.**  Tracing only ever reads the wall clock; it never
  touches the RNG streams or the computation, so instrumented runs are
  bit-identical to uninstrumented ones.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Sequence


@dataclass(frozen=True)
class TraceEvent:
    """One completed span (Chrome trace-event ``ph: "X"``) or instant."""

    name: str
    category: str
    #: Microseconds since the tracer's epoch.
    start_us: float
    #: Span duration in microseconds; None marks an instant event.
    duration_us: float | None
    pid: int
    tid: int
    args: dict[str, Any] = field(default_factory=dict)

    def to_chrome(self) -> dict[str, Any]:
        """The Chrome trace-event dict for this event."""
        event: dict[str, Any] = {
            "name": self.name,
            "cat": self.category,
            "ph": "X" if self.duration_us is not None else "i",
            "ts": self.start_us,
            "pid": self.pid,
            "tid": self.tid,
        }
        if self.duration_us is not None:
            event["dur"] = self.duration_us
        else:
            event["s"] = "t"  # instant scope: thread
        if self.args:
            event["args"] = self.args
        return event


class _NullSpan:
    """Shared no-op context manager: the disabled-tracing fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def annotate(self, **kwargs: Any) -> None:
        """No-op counterpart of :meth:`_LiveSpan.annotate`."""


NULL_SPAN = _NullSpan()


class _LiveSpan:
    """An open span; records the event on ``__exit__``."""

    __slots__ = ("_tracer", "name", "category", "args", "_start_us")

    def __init__(
        self, tracer: "Tracer", name: str, category: str, args: dict[str, Any]
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.category = category
        self.args = args
        self._start_us = 0.0

    def __enter__(self) -> "_LiveSpan":
        self._start_us = self._tracer._now_us()
        # Per-thread open-span stack: the sampling profiler reads the
        # top to attribute wall-clock samples to the active span.  Each
        # thread only mutates its own list (append/pop are atomic under
        # the GIL), so no lock is needed on this hot path.
        self._tracer._active.setdefault(threading.get_ident(), []).append(self.name)
        return self

    def __exit__(self, *exc: object) -> None:
        end_us = self._tracer._now_us()
        stack = self._tracer._active.get(threading.get_ident())
        if stack:
            stack.pop()
        self._tracer._record(
            TraceEvent(
                name=self.name,
                category=self.category,
                start_us=self._start_us,
                duration_us=max(end_us - self._start_us, 0.0),
                pid=os.getpid(),
                tid=threading.get_ident(),
                args=self.args,
            )
        )

    def annotate(self, **kwargs: Any) -> None:
        """Attach extra args to the span while it is open."""
        self.args = {**self.args, **kwargs}


class Tracer:
    """Collects spans and instants; exports Chrome trace-event JSON.

    All public methods are thread-safe.  Timestamps come from
    ``time.perf_counter`` relative to the tracer's construction, so a
    trace always starts near ``ts = 0``.
    """

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._events: list[TraceEvent] = []
        #: pid -> process label (``process_name`` metadata events).
        self._process_names: dict[int, str] = {}
        #: (pid, tid) -> thread label (``thread_name`` metadata events).
        self._thread_names: dict[tuple[int, int], str] = {}
        #: tid -> stack of open span names (profiler attribution).
        self._active: dict[int, list[str]] = {}

    # -- recording ------------------------------------------------------
    def _now_us(self) -> float:
        return (time.perf_counter() - self._epoch) * 1e6

    def _record(self, event: TraceEvent) -> None:
        with self._lock:
            self._events.append(event)

    def span(self, name: str, category: str = "repro", **args: Any) -> _LiveSpan:
        """A context manager recording one complete ("X") event."""
        return _LiveSpan(self, name, category, args)

    def instant(self, name: str, category: str = "repro", **args: Any) -> None:
        """Record a zero-duration instant event."""
        self._record(
            TraceEvent(
                name=name,
                category=category,
                start_us=self._now_us(),
                duration_us=None,
                pid=os.getpid(),
                tid=threading.get_ident(),
                args=args,
            )
        )

    def name_process(self, name: str, pid: int | None = None) -> None:
        """Label a process row in the trace viewer.

        Emitted as a ``process_name`` metadata event (``ph: "M"``) —
        Perfetto / ``chrome://tracing`` show the label instead of the
        bare pid.  Defaults to the calling process.
        """
        key = pid if pid is not None else os.getpid()
        with self._lock:
            self._process_names[key] = name

    def name_thread(
        self, name: str, tid: int | None = None, pid: int | None = None
    ) -> None:
        """Label a thread row in the trace viewer (``thread_name``).

        Defaults to the calling thread of the calling process.
        """
        key = (
            pid if pid is not None else os.getpid(),
            tid if tid is not None else threading.get_ident(),
        )
        with self._lock:
            self._thread_names[key] = name

    def active_span_name(self, tid: int) -> str | None:
        """The innermost open span on thread ``tid``, or None.

        Read by the sampling profiler from *its own* thread; the stack
        may race with the owning thread's push/pop, so a snapshot of the
        list reference is taken before indexing.
        """
        stack = self._active.get(tid)
        if not stack:
            return None
        try:
            return stack[-1]
        except IndexError:  # popped between the check and the read
            return None

    # -- cross-process merge --------------------------------------------
    @property
    def epoch_perf_s(self) -> float:
        """This tracer's epoch on the ``time.perf_counter`` clock.

        On platforms where ``perf_counter`` is a system-wide monotonic
        clock (Linux: ``CLOCK_MONOTONIC``), two processes' epochs are
        directly comparable — which is what lets :meth:`absorb` rebase a
        worker tracer's timestamps onto the coordinator's timeline.
        """
        return self._epoch

    def metadata(self) -> tuple[dict[int, str], dict[tuple[int, int], str]]:
        """Copies of the (process_names, thread_names) label maps."""
        with self._lock:
            return dict(self._process_names), dict(self._thread_names)

    def absorb(
        self,
        events: "Sequence[TraceEvent]",
        *,
        process_names: dict[int, str] | None = None,
        thread_names: dict[tuple[int, int], str] | None = None,
        offset_us: float = 0.0,
    ) -> int:
        """Merge events recorded by another tracer into this one.

        ``offset_us`` shifts the incoming timestamps onto this tracer's
        epoch (``(other.epoch_perf_s - self.epoch_perf_s) * 1e6`` when
        both epochs share a clock).  Process/thread labels merge in;
        events keep their origin pid/tid, so a merged Chrome export shows
        one row per worker process.  Returns the number of events added.
        """
        shifted = [
            replace(event, start_us=event.start_us + offset_us) for event in events
        ]
        with self._lock:
            self._events.extend(shifted)
            if process_names:
                self._process_names.update(process_names)
            if thread_names:
                self._thread_names.update(thread_names)
        return len(shifted)

    # -- inspection / export -------------------------------------------
    @property
    def events(self) -> list[TraceEvent]:
        """Snapshot of the recorded events (copy; safe to iterate)."""
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def clear(self) -> None:
        """Drop all recorded events."""
        with self._lock:
            self._events.clear()

    def to_chrome(self) -> dict[str, Any]:
        """The full trace as a Chrome trace-event JSON object.

        Metadata (``ph: "M"`` ``process_name`` / ``thread_name``) events
        lead the event list, per the trace-event format: viewers apply
        row labels before laying out the spans.
        """
        with self._lock:
            process_names = dict(self._process_names)
            thread_names = dict(self._thread_names)
        metadata: list[dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": name},
            }
            for pid, name in sorted(process_names.items())
        ]
        metadata += [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": name},
            }
            for (pid, tid), name in sorted(thread_names.items())
        ]
        return {
            "traceEvents": metadata + [e.to_chrome() for e in self.events],
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.obs"},
        }

    def export_chrome(self, path: str | Path) -> Path:
        """Write the Chrome trace-event JSON file; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.to_chrome(), indent=None) + "\n")
        return path
