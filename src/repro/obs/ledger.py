"""Durable run ledger: every CLI run leaves a queryable JSON-lines record.

The paper's workflow joins OUTCAR timings against LDMS telemetry
*archived per run* — observability is only useful when it survives the
run.  This module gives the reproduction harness the same property: each
``repro`` engine/fleet/sweep/monitor invocation appends one structured
record (config fingerprint, platform ids, worker count, wall time,
energy totals, cache/dedupe stats, alert counts, checkpoint lineage) to
``.repro_runs/ledger.jsonl``, and the ``repro runs`` CLI lists, shows,
diffs and regression-checks the history.

Durability contract: appends are a **single ``O_APPEND`` write** of one
newline-terminated line — the kernel serializes concurrent appenders, so
two ``repro`` invocations writing at once can interleave *lines* but
never bytes within a line, and an interrupted append leaves at most one
partial trailing line.  Readers skip (and warn about) any line that does
not parse — a torn tail or a corrupted line never takes the whole
history down.

Recording is **draft-based** so layers stay decoupled: the CLI opens a
draft (:func:`begin_run`), any layer underneath annotates it when a draft
happens to be open (:func:`annotate_run` is a no-op otherwise — plain
library use never writes a ledger), and the CLI seals it
(:func:`finish_run`).  ``REPRO_RUNS=0`` disables recording;
``REPRO_RUNS_DIR`` relocates the ledger directory.
"""

from __future__ import annotations

import dataclasses
import json
import logging
import os
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any

from repro import obs

logger = logging.getLogger(__name__)

#: Environment variable: ledger directory (default ``.repro_runs``).
RUNS_DIR_ENV = "REPRO_RUNS_DIR"
#: Environment variable: set to ``0``/``off`` to disable recording.
RUNS_ENABLE_ENV = "REPRO_RUNS"
#: Default ledger directory, relative to the working directory.
DEFAULT_RUNS_DIR = ".repro_runs"
#: File name of the JSON-lines ledger inside the runs directory.
LEDGER_FILENAME = "ledger.jsonl"
#: On-disk record schema version.
SCHEMA_VERSION = 1


def ledger_enabled() -> bool:
    """False when ``REPRO_RUNS`` opts out of recording."""
    raw = os.environ.get(RUNS_ENABLE_ENV, "").strip().lower()
    return raw not in {"0", "off", "false", "no"}


def runs_dir() -> Path:
    """The ledger directory (``REPRO_RUNS_DIR`` or ``.repro_runs``)."""
    raw = os.environ.get(RUNS_DIR_ENV, "").strip()
    return Path(raw) if raw else Path(DEFAULT_RUNS_DIR)


def utc_now_iso() -> str:
    """Current UTC time as a compact ISO-8601 string (``...Z``)."""
    now = datetime.now(timezone.utc)
    return now.strftime("%Y-%m-%dT%H:%M:%S.") + f"{now.microsecond // 1000:03d}Z"


def parse_iso(stamp: str) -> datetime:
    """Parse the ``utc_now_iso`` format back to an aware datetime."""
    return datetime.fromisoformat(stamp.replace("Z", "+00:00"))


def new_run_id() -> str:
    """A sortable, collision-resistant run id (UTC stamp + random hex)."""
    stamp = datetime.now(timezone.utc).strftime("%Y%m%dT%H%M%S")
    return f"{stamp}-{os.urandom(3).hex()}"


def atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` via temp + ``os.replace`` (crash-safe)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        tmp.write_text(text)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


# ----------------------------------------------------------------------
# The record
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunRecord:
    """One durable run: what executed, how long, what it produced.

    Dict-valued fields are free-form per ``kind`` (e.g. ``fleet`` holds
    per-policy power/energy/checkpoint lineage); scalar fields are the
    cross-kind spine ``repro runs list``/``check`` query.
    """

    run_id: str
    kind: str
    label: str = ""
    created_at: str = ""
    schema: int = SCHEMA_VERSION
    status: str = "ok"
    #: Content fingerprint of the run's configuration (None when the
    #: command annotated nothing — comparable runs share a fingerprint).
    fingerprint: str | None = None
    platforms: list[str] = field(default_factory=list)
    workers: int | None = None
    jobs: int | None = None
    nodes: int | None = None
    wall_s: float | None = None
    energy_j: float | None = None
    #: Cache effectiveness: ``{cache_name: {hits, misses, hit_rate}}``.
    cache: dict[str, Any] = field(default_factory=dict)
    #: Sweep dedupe totals for the session.
    sweeps: dict[str, Any] = field(default_factory=dict)
    #: Monitor outcome: signals/alerts counts.
    alerts: dict[str, Any] = field(default_factory=dict)
    #: Per-policy fleet results incl. checkpoint lineage.
    fleet: dict[str, Any] = field(default_factory=dict)
    #: Free-form per-kind figures (runtime, artifact, ...).
    metrics: dict[str, Any] = field(default_factory=dict)
    #: Unknown keys from newer schema versions (round-tripped untouched).
    extra: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        """JSON-ready dict; empty optional fields are omitted."""
        data: dict[str, Any] = {}
        for fld in dataclasses.fields(self):
            value = getattr(self, fld.name)
            if fld.name == "extra":
                data.update(value)
                continue
            if value is None or value == {} or value == []:
                continue
            data[fld.name] = value
        return data

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "RunRecord":
        """Parse a ledger line; unknown keys survive in ``extra``."""
        known = {fld.name for fld in dataclasses.fields(cls)} - {"extra"}
        kwargs = {key: value for key, value in data.items() if key in known}
        extra = {key: value for key, value in data.items() if key not in known}
        return cls(extra=extra, **kwargs)

    @property
    def age_s(self) -> float | None:
        """Seconds since the record was created (None if unstamped)."""
        if not self.created_at:
            return None
        try:
            created = parse_iso(self.created_at)
        except ValueError:
            return None
        return max((datetime.now(timezone.utc) - created).total_seconds(), 0.0)


# ----------------------------------------------------------------------
# The ledger file
# ----------------------------------------------------------------------
class RunLedger:
    """Append/query interface over one JSON-lines ledger file."""

    def __init__(self, root: "str | Path | None" = None) -> None:
        self.root = Path(root) if root is not None else runs_dir()

    @property
    def path(self) -> Path:
        """The ledger file."""
        return self.root / LEDGER_FILENAME

    def append(self, record: RunRecord) -> None:
        """Append one record as a single ``O_APPEND`` write.

        ``O_APPEND`` makes the seek-to-end + write atomic per call, so
        parallel CLI invocations appending to one ledger interleave
        whole lines — the read-modify-replace pattern this replaces
        silently dropped whichever concurrent append lost the race.
        """
        line = json.dumps(record.to_json(), sort_keys=True) + "\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        data = line.encode("utf-8")
        # A writer that died mid-line left the file without a trailing
        # newline; gluing this record onto that fragment would corrupt
        # both.  Start a fresh line instead — only the crashed record's
        # line is lost (and skipped with a warning on read).
        try:
            with open(self.path, "rb") as fh:
                fh.seek(-1, os.SEEK_END)
                if fh.read(1) != b"\n":
                    data = b"\n" + data
        except OSError:
            pass  # no ledger yet, or an empty one
        fd = os.open(self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            while data:
                data = data[os.write(fd, data) :]
        finally:
            os.close(fd)
        obs.inc("repro_runs_recorded_total")

    def records(self) -> list[RunRecord]:
        """All parseable records, oldest first (corrupt lines are skipped)."""
        if not self.path.is_file():
            return []
        records: list[RunRecord] = []
        for number, line in enumerate(self.path.read_text().splitlines(), 1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
                if not isinstance(data, dict):
                    raise TypeError(f"expected a JSON object, got {type(data).__name__}")
                records.append(RunRecord.from_json(data))
            except (json.JSONDecodeError, TypeError) as exc:
                # A crashed writer leaves at most one partial trailing
                # line; a bit flip corrupts one line.  Either way the
                # rest of the history is intact — use it.
                logger.warning(
                    "skipping corrupt ledger line %s:%d (%s)",
                    self.path,
                    number,
                    exc,
                )
        return records

    def last(self) -> RunRecord | None:
        """The most recent record, or None."""
        records = self.records()
        return records[-1] if records else None

    def find(self, ref: str) -> RunRecord:
        """Resolve ``last`` or a unique run-id prefix to a record.

        Raises
        ------
        KeyError
            If nothing matches, or the prefix is ambiguous.
        """
        records = self.records()
        if not records:
            raise KeyError("run ledger is empty")
        if ref == "last":
            return records[-1]
        matches = [r for r in records if r.run_id.startswith(ref)]
        if not matches:
            raise KeyError(f"no run matches {ref!r}")
        if len({r.run_id for r in matches}) > 1:
            ids = ", ".join(sorted({r.run_id for r in matches})[:5])
            raise KeyError(f"run id prefix {ref!r} is ambiguous ({ids})")
        return matches[-1]


def flatten_record(record: RunRecord) -> dict[str, Any]:
    """The record as one flat ``dotted.key -> scalar`` dict (for diffs)."""

    def walk(prefix: str, value: Any, into: dict[str, Any]) -> None:
        if isinstance(value, dict):
            for key in sorted(value):
                walk(f"{prefix}.{key}" if prefix else str(key), value[key], into)
        elif isinstance(value, (list, tuple)):
            into[prefix] = json.dumps(list(value))
        else:
            into[prefix] = value

    flat: dict[str, Any] = {}
    walk("", record.to_json(), flat)
    return flat


def diff_records(
    a: RunRecord, b: RunRecord
) -> list[tuple[str, Any, Any]]:
    """Changed fields between two records as (key, a_value, b_value).

    Identity fields (run id, timestamps, wall time) are expected to
    differ between any two runs and are therefore excluded — the diff
    highlights *configuration and outcome* changes.
    """
    skip = {"run_id", "created_at", "label", "wall_s"}
    flat_a = flatten_record(a)
    flat_b = flatten_record(b)
    changed = []
    for key in sorted(set(flat_a) | set(flat_b)):
        if key.split(".", 1)[0] in skip:
            continue
        va = flat_a.get(key)
        vb = flat_b.get(key)
        if va != vb:
            changed.append((key, va, vb))
    return changed


def check_regression(
    records: list[RunRecord],
    target: RunRecord,
    *,
    tolerance: float = 0.25,
    min_history: int | None = None,
    energy_rel_tol: float = 1e-9,
) -> tuple[list[str], int]:
    """Regression findings for ``target`` against its ledger history.

    Thin compatibility wrapper over the sentinel's baseline check
    (:func:`repro.obs.sentinel.check_target`) so ``repro runs check``
    and ``repro sentinel check`` agree on what a regression is: wall
    time judged against the robust (median/MAD) baseline of comparable
    runs, energy held to bit-determinism, cache hit rate and surrogate
    drift judged when recorded.  Returns (finding messages, history
    size).
    """
    from repro.obs import sentinel  # local import: sentinel imports us

    findings, history = sentinel.check_target(
        records,
        target,
        tolerance=tolerance,
        min_history=(
            min_history if min_history is not None else sentinel.DEFAULT_MIN_HISTORY
        ),
        energy_rel_tol=energy_rel_tol,
    )
    return [finding.message for finding in findings], history


# ----------------------------------------------------------------------
# Draft API (the CLI opens/seals; any layer annotates)
# ----------------------------------------------------------------------
_DRAFT: dict[str, Any] | None = None
_DRAFT_START: float = 0.0


def _deep_merge(into: dict[str, Any], update: dict[str, Any]) -> None:
    for key, value in update.items():
        if isinstance(value, dict) and isinstance(into.get(key), dict):
            _deep_merge(into[key], value)
        else:
            into[key] = value


def begin_run(kind: str, label: str = "") -> str | None:
    """Open a draft record; returns its run id (None when disabled)."""
    global _DRAFT, _DRAFT_START
    if not ledger_enabled():
        _DRAFT = None
        return None
    _DRAFT = {
        "run_id": new_run_id(),
        "kind": kind,
        "label": label,
        "created_at": utc_now_iso(),
    }
    _DRAFT_START = time.perf_counter()
    return _DRAFT["run_id"]


def annotate_run(**fields: Any) -> None:
    """Merge fields into the open draft; silently no-op without one.

    Dict values deep-merge (so two fleet policies annotate into one
    ``fleet`` mapping); everything else overwrites.  Being a no-op
    outside a draft is what lets library layers (fleet, monitor) call
    this unconditionally without ever writing a ledger of their own.
    """
    if _DRAFT is None:
        return
    for key, value in fields.items():
        if isinstance(value, dict) and isinstance(_DRAFT.get(key), dict):
            _deep_merge(_DRAFT[key], value)
        else:
            _DRAFT[key] = value


def current_run_id() -> str | None:
    """The open draft's run id, or None."""
    return _DRAFT["run_id"] if _DRAFT is not None else None


def discard_run() -> None:
    """Drop the open draft without recording it."""
    global _DRAFT
    _DRAFT = None


def finish_run(status: str = "ok") -> RunRecord | None:
    """Seal and append the open draft; returns the record (None if none).

    A failing append (read-only ledger dir, full disk) is logged and
    swallowed — the ledger must never take a successful run down with it.
    """
    global _DRAFT
    draft = _DRAFT
    _DRAFT = None
    if draft is None:
        return None
    draft.setdefault("wall_s", round(time.perf_counter() - _DRAFT_START, 6))
    draft["status"] = status
    record = RunRecord.from_json(draft)
    try:
        RunLedger().append(record)
    except OSError as exc:
        logger.warning("run ledger append failed (%s); record dropped", exc)
        return None
    return record


def ledger_state() -> dict[str, Any]:
    """A JSON-ready summary for ``repro obs``: records, last run, age."""
    ledger = RunLedger()
    records = ledger.records()
    state: dict[str, Any] = {
        "enabled": ledger_enabled(),
        "path": str(ledger.path),
        "records": len(records),
        "last_run_id": None,
        "last_kind": None,
        "last_status": None,
        "last_age_s": None,
    }
    if records:
        last = records[-1]
        state["last_run_id"] = last.run_id
        state["last_kind"] = last.kind
        state["last_status"] = last.status
        state["last_age_s"] = last.age_s
    return state
