"""Fleet simulation: a production-like job stream on a node pool.

The paper's motivation is system-level: "65 % of the variation in the
system power consumption was due to temporal variation in the power used
by individual jobs" (analysis of Perlmutter, ref [14]), and power-aware
scheduling "has the potential to keep the total system power within a
prescribed budget".

This module generates a production-like stream of VASP jobs (mix weighted
toward the common DFT workloads, node counts drawn from each benchmark's
realistic range, Poisson-ish arrivals) and runs it through the
power-aware scheduler, reporting the system power timeline's statistics —
the quantities a facility watches: mean, peak, variability, throughput.
Comparing the capped policy against the uncapped baseline quantifies how
much system-power variation application-level capping removes.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.capping.policy import CapPolicy
from repro.capping.scheduler import (
    Job,
    PowerAwareScheduler,
    ScheduleResult,
    SchedulerConfig,
)
from repro.runner.sweep import SweepExecutor
from repro.vasp.benchmarks import BENCHMARKS

logger = logging.getLogger(__name__)

#: Production-like mix weights: basic DFT dominates NERSC's VASP cycles,
#: with a meaningful share of higher-order (HSE/RPA) jobs.
DEFAULT_MIX: dict[str, float] = {
    "PdO4": 0.20,
    "PdO2": 0.20,
    "GaAsBi-64": 0.15,
    "CuC_vdw": 0.15,
    "Si256_hse": 0.12,
    "B.hR105_hse": 0.08,
    "Si128_acfdtr": 0.10,
}


def job_stream(
    n_jobs: int = 24,
    mean_interarrival_s: float = 120.0,
    mix: dict[str, float] | None = None,
    seed: int = 0,
) -> list[Job]:
    """A seeded, production-like stream of VASP jobs.

    Arrivals are exponential (Poisson process); each job's benchmark is
    drawn from the mix and its node count from the benchmark's healthy
    range (1 .. optimal).
    """
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
    if mean_interarrival_s <= 0:
        raise ValueError("mean_interarrival_s must be positive")
    weights = mix if mix is not None else DEFAULT_MIX
    unknown = set(weights) - set(BENCHMARKS)
    if unknown:
        raise ValueError(f"unknown benchmarks in mix: {sorted(unknown)}")
    names = sorted(weights)
    probs = np.array([weights[n] for n in names], dtype=float)
    if probs.sum() <= 0:
        raise ValueError("mix weights must sum to a positive value")
    probs = probs / probs.sum()

    rng = np.random.default_rng(seed)
    jobs = []
    clock = 0.0
    for index in range(n_jobs):
        name = names[int(rng.choice(len(names), p=probs))]
        case = BENCHMARKS[name]
        healthy = [n for n in case.node_counts if n <= case.optimal_nodes]
        n_nodes = int(rng.choice(healthy))
        jobs.append(
            Job(
                job_id=f"{name}@{index}",
                workload=case.build(),
                n_nodes=n_nodes,
                submit_s=clock,
            )
        )
        clock += float(rng.exponential(mean_interarrival_s))
    return jobs


@dataclass(frozen=True)
class FleetReport:
    """System-level outcome of one policy on one job stream."""

    policy_name: str
    schedule: ScheduleResult
    mean_power_w: float
    peak_power_w: float
    power_std_w: float
    makespan_s: float
    jobs_completed: int

    @property
    def coefficient_of_variation(self) -> float:
        """Relative temporal variability of system power."""
        return self.power_std_w / self.mean_power_w if self.mean_power_w > 0 else 0.0


def simulate_fleet(
    jobs: list[Job],
    policy: CapPolicy,
    policy_name: str,
    n_nodes: int = 16,
    power_budget_w: float | None = None,
) -> FleetReport:
    """Schedule a stream under a policy and summarize system power.

    The power timeline is duration-weighted over scheduling-cycle samples
    (the samples are irregular when the scheduler skips quiet spans).
    """
    if power_budget_w is None:
        power_budget_w = n_nodes * 2350.0  # node TDP: effectively unbounded
    config = SchedulerConfig(
        n_nodes=n_nodes, power_budget_w=power_budget_w, policy=policy
    )
    logger.debug(
        "simulating fleet: policy=%s, %d jobs on %d nodes, budget %.0f W",
        policy_name,
        len(jobs),
        n_nodes,
        power_budget_w,
    )
    with obs.span("fleet.simulate", policy=policy_name, jobs=len(jobs)):
        schedule = PowerAwareScheduler(config).schedule(list(jobs))
    times = np.array([t for t, _ in schedule.power_timeline])
    powers = np.array([p for _, p in schedule.power_timeline])
    if len(times) > 1:
        spans = np.diff(np.append(times, schedule.makespan_s))
        spans = np.maximum(spans, 0.0)
        total = spans.sum()
        weights = spans / total if total > 0 else np.full_like(spans, 1.0 / len(spans))
        mean = float(np.average(powers, weights=weights))
        std = float(np.sqrt(np.average((powers - mean) ** 2, weights=weights)))
    else:
        mean = float(powers.mean()) if len(powers) else 0.0
        std = 0.0
    return FleetReport(
        policy_name=policy_name,
        schedule=schedule,
        mean_power_w=mean,
        peak_power_w=schedule.peak_power_w,
        power_std_w=std,
        makespan_s=schedule.makespan_s,
        jobs_completed=len(schedule.records),
    )


def _policy_task(
    task: tuple[bool, str, int, int, float | None, int]
) -> FleetReport:
    """Worker-side task: one policy over a regenerated job stream.

    The stream is rebuilt from ``seed`` inside the worker (cheap and
    deterministic), so only this small task tuple crosses the pool
    boundary.
    """
    capped, policy_name, n_jobs, n_nodes, power_budget_w, seed = task
    policy = CapPolicy.half_tdp() if capped else CapPolicy.uncapped()
    jobs = job_stream(n_jobs=n_jobs, seed=seed)
    return simulate_fleet(jobs, policy, policy_name, n_nodes, power_budget_w)


def compare_fleet_policies(
    n_jobs: int = 24,
    n_nodes: int = 16,
    power_budget_w: float | None = None,
    seed: int = 0,
) -> tuple[FleetReport, FleetReport]:
    """(capped, uncapped) fleet reports for the same job stream.

    The two policies are independent simulations over the same seeded
    stream, so they execute as one two-task sweep.
    """
    tasks = [
        (True, "50% TDP policy", n_jobs, n_nodes, power_budget_w, seed),
        (False, "uncapped", n_jobs, n_nodes, power_budget_w, seed),
    ]
    capped, uncapped = SweepExecutor().map(_policy_task, tasks)
    return capped, uncapped
