"""Fleet simulation: a production-like job stream on a node pool.

The paper's motivation is system-level: "65 % of the variation in the
system power consumption was due to temporal variation in the power used
by individual jobs" (analysis of Perlmutter, ref [14]), and power-aware
scheduling "has the potential to keep the total system power within a
prescribed budget".

This module generates a production-like stream of VASP jobs (mix weighted
toward the common DFT workloads, node counts drawn from each benchmark's
realistic range, Poisson-ish arrivals) and runs it through the
power-aware scheduler, reporting the system power timeline's statistics —
the quantities a facility watches: mean, peak, variability, throughput.
Comparing the capped policy against the uncapped baseline quantifies how
much system-power variation application-level capping removes.
"""

from __future__ import annotations

import heapq
import logging
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro import obs
from repro.capping.policy import CapPolicy
from repro.capping.scheduler import (
    Job,
    JobRecord,
    PowerAwareScheduler,
    ScheduleResult,
    SchedulerConfig,
    cached_estimate_run,
)
from repro.hardware.platform import NodeSpec, Platform, get_platform
from repro.hardware.system import (
    PerlmutterSystem,
    RunningMoments,
    SystemPowerAccumulator,
    SystemPowerStats,
)
from repro.runner.cache import fingerprint
from repro.runner.engine import (
    DEFAULT_STREAM_CHUNK,
    EngineConfig,
    PowerEngine,
    render_chunk_samples,
)
from repro.runner.sweep import SweepExecutor
from repro.runner.trace import RunResult
from repro.vasp.benchmarks import BENCHMARKS
from repro.vasp.parallel import ParallelConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.monitor.collector import FleetMonitor

logger = logging.getLogger(__name__)

#: Production-like mix weights: basic DFT dominates NERSC's VASP cycles,
#: with a meaningful share of higher-order (HSE/RPA) jobs.
DEFAULT_MIX: dict[str, float] = {
    "PdO4": 0.20,
    "PdO2": 0.20,
    "GaAsBi-64": 0.15,
    "CuC_vdw": 0.15,
    "Si256_hse": 0.12,
    "B.hR105_hse": 0.08,
    "Si128_acfdtr": 0.10,
}


def job_stream(
    n_jobs: int = 24,
    mean_interarrival_s: float = 120.0,
    mix: dict[str, float] | None = None,
    seed: int = 0,
) -> list[Job]:
    """A seeded, production-like stream of VASP jobs.

    Arrivals are exponential (Poisson process); each job's benchmark is
    drawn from the mix and its node count from the benchmark's healthy
    range (1 .. optimal).
    """
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
    if mean_interarrival_s <= 0:
        raise ValueError("mean_interarrival_s must be positive")
    weights = mix if mix is not None else DEFAULT_MIX
    unknown = set(weights) - set(BENCHMARKS)
    if unknown:
        raise ValueError(f"unknown benchmarks in mix: {sorted(unknown)}")
    names = sorted(weights)
    probs = np.array([weights[n] for n in names], dtype=float)
    if probs.sum() <= 0:
        raise ValueError("mix weights must sum to a positive value")
    probs = probs / probs.sum()

    rng = np.random.default_rng(seed)
    jobs = []
    clock = 0.0
    for index in range(n_jobs):
        name = names[int(rng.choice(len(names), p=probs))]
        case = BENCHMARKS[name]
        healthy = [n for n in case.node_counts if n <= case.optimal_nodes]
        n_nodes = int(rng.choice(healthy))
        jobs.append(
            Job(
                job_id=f"{name}@{index}",
                workload=case.build(),
                n_nodes=n_nodes,
                submit_s=clock,
            )
        )
        clock += float(rng.exponential(mean_interarrival_s))
    return jobs


@dataclass(frozen=True)
class FleetReport:
    """System-level outcome of one policy on one job stream."""

    policy_name: str
    schedule: ScheduleResult
    mean_power_w: float
    peak_power_w: float
    power_std_w: float
    makespan_s: float
    jobs_completed: int

    @property
    def coefficient_of_variation(self) -> float:
        """Relative temporal variability of system power."""
        return self.power_std_w / self.mean_power_w if self.mean_power_w > 0 else 0.0


def simulate_fleet(
    jobs: list[Job],
    policy: CapPolicy,
    policy_name: str,
    n_nodes: int = 16,
    power_budget_w: float | None = None,
    platform: "str | Platform | None" = None,
) -> FleetReport:
    """Schedule a stream under a policy and summarize system power.

    The power timeline is duration-weighted over scheduling-cycle samples
    (the samples are irregular when the scheduler skips quiet spans).
    """
    if power_budget_w is None:
        # Node TDP: effectively unbounded.
        power_budget_w = n_nodes * get_platform(platform).node.tdp_w
    config = SchedulerConfig(
        n_nodes=n_nodes,
        power_budget_w=power_budget_w,
        policy=policy,
        platform=platform,
    )
    logger.debug(
        "simulating fleet: policy=%s, %d jobs on %d nodes, budget %.0f W",
        policy_name,
        len(jobs),
        n_nodes,
        power_budget_w,
    )
    with obs.span("fleet.simulate", policy=policy_name, jobs=len(jobs)):
        schedule = PowerAwareScheduler(config).schedule(list(jobs))
    times = np.array([t for t, _ in schedule.power_timeline])
    powers = np.array([p for _, p in schedule.power_timeline])
    if len(times) > 1:
        spans = np.diff(np.append(times, schedule.makespan_s))
        spans = np.maximum(spans, 0.0)
        total = spans.sum()
        weights = spans / total if total > 0 else np.full_like(spans, 1.0 / len(spans))
        mean = float(np.average(powers, weights=weights))
        std = float(np.sqrt(np.average((powers - mean) ** 2, weights=weights)))
    else:
        mean = float(powers.mean()) if len(powers) else 0.0
        std = 0.0
    return FleetReport(
        policy_name=policy_name,
        schedule=schedule,
        mean_power_w=mean,
        peak_power_w=schedule.peak_power_w,
        power_std_w=std,
        makespan_s=schedule.makespan_s,
        jobs_completed=len(schedule.records),
    )


@dataclass(frozen=True)
class FleetTraceReport:
    """System-level outcome of one policy, from streamed node traces.

    Unlike :class:`FleetReport` (analytic per-cycle projections), these
    statistics come from actually rendering every scheduled job's node
    traces and streaming them through incremental aggregation — the
    engine's noise, per-node manufacturing variability and cap responses
    are all in the numbers, yet no job's full trace is ever retained.
    """

    policy_name: str
    schedule: ScheduleResult
    system: SystemPowerStats
    #: Per-sample node-power moments across every streamed trace (Welford).
    node_power_mean_w: float
    node_power_std_w: float
    node_power_peak_w: float
    jobs_completed: int
    samples_streamed: int
    chunks_streamed: int
    bytes_streamed: int

    @property
    def mean_power_w(self) -> float:
        """Mean system power over the schedule horizon."""
        return self.system.mean_power_w

    @property
    def peak_power_w(self) -> float:
        """Peak binned system power."""
        return self.system.peak_power_w

    @property
    def power_std_w(self) -> float:
        """Temporal standard deviation of system power."""
        return self.system.power_std_w

    @property
    def makespan_s(self) -> float:
        """Makespan of the underlying schedule."""
        return self.schedule.makespan_s

    @property
    def coefficient_of_variation(self) -> float:
        """Relative temporal variability of system power."""
        return self.power_std_w / self.mean_power_w if self.mean_power_w > 0 else 0.0


def _job_seed(job_id: str, seed: int) -> int:
    """Stable per-job render seed (crc32: PYTHONHASHSEED-independent)."""
    return (zlib.crc32(job_id.encode("utf-8")) ^ seed) & 0x7FFFFFFF


def simulate_fleet_traced(
    jobs: list[Job],
    policy: CapPolicy,
    policy_name: str,
    n_nodes: int = 16,
    power_budget_w: float | None = None,
    *,
    bin_s: float = 1.0,
    chunk_samples: int | None = None,
    engine_config: EngineConfig | None = None,
    seed: int = 0,
    retain_traces: bool = False,
    monitor: "FleetMonitor | None" = None,
    platform: "str | Platform | None" = None,
    node_platforms: "list[str | Platform | NodeSpec] | None" = None,
) -> FleetTraceReport:
    """Schedule a stream, render every job's traces, aggregate streaming.

    The schedule comes from the same analytic :class:`PowerAwareScheduler`
    pass as :func:`simulate_fleet`; the report's power statistics come
    from replaying that schedule against a real node pool
    (:class:`PerlmutterSystem` allocations, per-node variability, cap
    state) and streaming each job's chunk-rendered node traces through a
    :class:`SystemPowerAccumulator` plus :class:`RunningMoments` — peak
    memory is O(chunk) + O(makespan / bin_s) regardless of fleet size.

    ``retain_traces=True`` is the dense reference path: it renders and
    retains every job's full trace before aggregating through the same
    accumulator in the same chunk order, producing bit-identical
    statistics at O(sum-of-traces) memory.  The memory-gated fleet bench
    compares the two.

    ``monitor`` attaches a :class:`repro.monitor.FleetMonitor` as an
    engine-stream tap: it observes every chunk (all components) plus the
    job lifecycle, deriving health signals and per-job energy accounts,
    and never writes back — the report is bit-identical with or without
    it.  The caller finalizes the monitor (so one monitor can watch
    several fleets, or sweep staleness at a horizon of its choosing).
    Incompatible with ``retain_traces`` (the monitor rides the streaming
    path).

    ``platform`` selects the hardware platform for the whole pool;
    ``node_platforms`` instead builds a *mixed* pool, cycling the given
    platforms/specs round-robin across nodes.  In a mixed pool each
    node's cap is clamped to its own GPU's supported range before being
    applied (a clamped-up cap can surface as a ``cap_violation`` health
    signal — the node genuinely cannot honour the policy's cap).
    """
    if monitor is not None and retain_traces:
        raise ValueError(
            "monitor= requires the streaming path; retain_traces=True "
            "renders dense traces (monitor them with observe_run instead)"
        )
    pool = PerlmutterSystem(
        n_nodes=n_nodes, platform=platform, node_platforms=node_platforms
    )
    pool_nodes = list(pool.nodes.values())
    if power_budget_w is None:
        # Node TDP: effectively unbounded.
        power_budget_w = sum(node.spec.tdp_w for node in pool_nodes)
    config = SchedulerConfig(
        n_nodes=n_nodes,
        power_budget_w=power_budget_w,
        policy=policy,
        platform=platform,
    )
    with obs.span("fleet.schedule_traced", policy=policy_name, jobs=len(jobs)):
        schedule = PowerAwareScheduler(config).schedule(list(jobs))
    workloads = {job.job_id: job.workload for job in jobs}
    if monitor is not None:
        monitor.attach_pool(pool_nodes)
    idle_node_w = sum(node.spec.idle_node_w for node in pool_nodes) / len(pool_nodes)
    accumulator = SystemPowerAccumulator(
        n_nodes=n_nodes, bin_s=bin_s, idle_node_w=idle_node_w
    )
    node_moments = RunningMoments()
    chunks_streamed = 0
    bytes_streamed = 0
    retained: list[tuple[JobRecord, RunResult]] = []
    #: (analytic end time, job id) release queue for pool bookkeeping.
    release_queue: list[tuple[float, str]] = []
    #: Jobs of the same benchmark at the same width share a phase list;
    #: building one is ~25 ms of SCF modelling, so memoize by content.
    phase_cache: dict[str, list] = {}
    #: Uncapped runtime per (workload, width) for the monitor's slowdown
    #: accounting.  cached_estimate_run is itself memoized, but its key
    #: canonicalizes the whole workload (~1 ms/call) — at one call per
    #: job start that alone would cost the monitor its overhead budget.
    nominal_cache: dict[str, float] = {}

    def ingest(record: JobRecord, times, values, dt: float) -> None:
        nonlocal chunks_streamed, bytes_streamed
        accumulator.add_samples(record.start_s, times, values, dt)
        node_moments.update(values)
        chunks_streamed += 1
        bytes_streamed += int(values.nbytes)
        obs.inc("repro_fleet_chunks_total")

    with obs.span(
        "fleet.stream_traces",
        policy=policy_name,
        jobs=len(schedule.records),
        dense=retain_traces,
    ):
        for record in schedule.records_chronological():
            while release_queue and release_queue[0][0] <= record.start_s + 1e-9:
                _, done = heapq.heappop(release_queue)
                pool.release(done)
            nodes = pool.allocate(record.job_id, record.n_nodes)
            heapq.heappush(release_queue, (record.end_s, record.job_id))
            for node in nodes:
                # A mixed pool may contain GPUs whose supported cap range
                # does not include the policy's cap; clamp per node.
                gpu_spec = node.spec.gpu
                cap_w = min(
                    max(record.cap_w, gpu_spec.cap_min_w), gpu_spec.cap_max_w
                )
                node.set_gpu_power_limit(cap_w)
            workload = workloads[record.job_id]
            phase_key = fingerprint("fleet_phases", workload, record.n_nodes)
            phases = phase_cache.get(phase_key)
            if phases is None:
                parallel = ParallelConfig(
                    n_nodes=record.n_nodes, kpar=workload.incar.kpar
                )
                phases = phase_cache[phase_key] = workload.phases(parallel)
            engine = PowerEngine(nodes, engine_config)
            job_seed = _job_seed(record.job_id, seed)
            if retain_traces:
                result = engine.run(phases, label=record.job_id, seed=job_seed)
                retained.append((record, result))
            else:
                on_chunk = None
                if monitor is not None:
                    nominal_s = nominal_cache.get(phase_key)
                    if nominal_s is None:
                        nominal_s = nominal_cache[phase_key] = cached_estimate_run(
                            workload, record.n_nodes, None, platform
                        ).runtime_s
                    monitor.on_job_start(
                        record.job_id,
                        n_nodes=record.n_nodes,
                        cap_w=record.cap_w,
                        start_s=record.start_s,
                        end_s=record.end_s,
                        nominal_runtime_s=nominal_s,
                    )
                    on_chunk = monitor.tap(
                        record.job_id, engine.config.base_interval_s
                    )
                streamed = engine.stream(
                    phases,
                    label=record.job_id,
                    seed=job_seed,
                    chunk_samples=chunk_samples,
                    on_chunk=on_chunk,
                )
                dt = streamed.base_interval_s
                for chunk in streamed.chunks:
                    if chunk.component != "node":
                        continue
                    ingest(record, chunk.times, chunk.values, dt)
                accumulator.add_busy_interval(
                    record.start_s,
                    record.start_s + streamed.runtime_s,
                    record.n_nodes,
                )
                if monitor is not None:
                    monitor.on_job_end(record.job_id)
            obs.inc("repro_fleet_jobs_rendered_total")
            obs.gauge_set(
                "repro_fleet_resident_bytes",
                accumulator.resident_bytes
                + sum(r.resident_bytes() for _, r in retained),
            )
    if retain_traces:
        # Dense reference: aggregate the retained traces through the same
        # accumulator in the same chunk order the streaming path used, so
        # the two paths produce bit-identical statistics and differ only
        # in peak resident memory.
        step = chunk_samples or render_chunk_samples() or DEFAULT_STREAM_CHUNK
        for record, result in retained:
            for trace in result.traces:
                dt = trace.sample_interval_s
                powers = trace.node_power
                times = trace.times
                for start in range(0, len(times), step):
                    stop = min(start + step, len(times))
                    ingest(record, times[start:stop], powers[start:stop], dt)
            accumulator.add_busy_interval(
                record.start_s, record.start_s + result.runtime_s, record.n_nodes
            )
    for _, job_id in release_queue:
        pool.release(job_id)
    system = accumulator.finalize()
    logger.debug(
        "traced fleet (%s): %d jobs, %d chunks, %.1f MB streamed, peak %.0f W",
        policy_name,
        len(schedule.records),
        chunks_streamed,
        bytes_streamed / 1e6,
        system.peak_power_w,
    )
    return FleetTraceReport(
        policy_name=policy_name,
        schedule=schedule,
        system=system,
        node_power_mean_w=node_moments.mean,
        node_power_std_w=node_moments.std,
        node_power_peak_w=node_moments.peak,
        jobs_completed=len(schedule.records),
        samples_streamed=accumulator.samples_added,
        chunks_streamed=chunks_streamed,
        bytes_streamed=bytes_streamed,
    )


def compare_fleet_policies_traced(
    n_jobs: int = 24,
    n_nodes: int = 16,
    power_budget_w: float | None = None,
    seed: int = 0,
    *,
    bin_s: float = 1.0,
    chunk_samples: int | None = None,
    engine_config: EngineConfig | None = None,
    retain_traces: bool = False,
    monitors: "tuple[FleetMonitor | None, FleetMonitor | None] | None" = None,
    platform: "str | Platform | None" = None,
    node_platforms: "list[str | Platform | NodeSpec] | None" = None,
) -> tuple[FleetTraceReport, FleetTraceReport]:
    """(capped, uncapped) trace-streamed fleet reports, same job stream.

    ``monitors`` optionally attaches one :class:`repro.monitor.FleetMonitor`
    per policy, ``(capped, uncapped)`` — each policy replays the same job
    ids, so the two runs cannot share a single ledger.  Callers finalize.
    """
    reports = []
    for index, (capped, policy_name) in enumerate(
        ((True, "50% TDP policy"), (False, "uncapped"))
    ):
        policy = (
            CapPolicy.half_tdp(platform) if capped else CapPolicy.uncapped(platform)
        )
        jobs = job_stream(n_jobs=n_jobs, seed=seed)
        reports.append(
            simulate_fleet_traced(
                jobs,
                policy,
                policy_name,
                n_nodes,
                power_budget_w,
                bin_s=bin_s,
                chunk_samples=chunk_samples,
                engine_config=engine_config,
                seed=seed,
                retain_traces=retain_traces,
                monitor=monitors[index] if monitors is not None else None,
                platform=platform,
                node_platforms=node_platforms,
            )
        )
    return reports[0], reports[1]


def _policy_task(
    task: tuple[bool, str, int, int, float | None, int, str]
) -> FleetReport:
    """Worker-side task: one policy over a regenerated job stream.

    The stream is rebuilt from ``seed`` inside the worker (cheap and
    deterministic), so only this small task tuple crosses the pool
    boundary (the platform travels as its registry id).
    """
    capped, policy_name, n_jobs, n_nodes, power_budget_w, seed, platform_id = task
    policy = (
        CapPolicy.half_tdp(platform_id) if capped else CapPolicy.uncapped(platform_id)
    )
    jobs = job_stream(n_jobs=n_jobs, seed=seed)
    return simulate_fleet(
        jobs, policy, policy_name, n_nodes, power_budget_w, platform_id
    )


def compare_fleet_policies(
    n_jobs: int = 24,
    n_nodes: int = 16,
    power_budget_w: float | None = None,
    seed: int = 0,
    platform: "str | Platform | None" = None,
) -> tuple[FleetReport, FleetReport]:
    """(capped, uncapped) fleet reports for the same job stream.

    The two policies are independent simulations over the same seeded
    stream, so they execute as one two-task sweep.
    """
    platform_id = get_platform(platform).id
    tasks = [
        (True, "50% TDP policy", n_jobs, n_nodes, power_budget_w, seed, platform_id),
        (False, "uncapped", n_jobs, n_nodes, power_budget_w, seed, platform_id),
    ]
    capped, uncapped = SweepExecutor().map(_policy_task, tasks)
    return capped, uncapped
