"""Fleet simulation: a production-like job stream on a node pool.

The paper's motivation is system-level: "65 % of the variation in the
system power consumption was due to temporal variation in the power used
by individual jobs" (analysis of Perlmutter, ref [14]), and power-aware
scheduling "has the potential to keep the total system power within a
prescribed budget".

This module generates a production-like stream of VASP jobs (mix weighted
toward the common DFT workloads, node counts drawn from each benchmark's
realistic range, Poisson-ish arrivals) and runs it through the
power-aware scheduler, reporting the system power timeline's statistics —
the quantities a facility watches: mean, peak, variability, throughput.
Comparing the capped policy against the uncapped baseline quantifies how
much system-power variation application-level capping removes.
"""

from __future__ import annotations

import heapq
import logging
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro import obs
from repro.capping import shard
from repro.obs import ledger as run_ledger
from repro.obs.heartbeat import (
    HeartbeatSnapshot,
    RunHeartbeat,
    heartbeat_path_from_env,
)
from repro.capping.policy import CapPolicy
from repro.capping.scheduler import (
    Job,
    PowerAwareScheduler,
    ScheduleResult,
    SchedulerConfig,
    cached_estimate_run,
)
from repro.hardware.platform import NodeSpec, Platform, get_platform
from repro.hardware.system import (
    JobPowerPartial,
    PerlmutterSystem,
    RunningMoments,
    SystemPowerAccumulator,
    SystemPowerStats,
)
from repro.runner.cache import fingerprint
from repro.runner.engine import (
    DEFAULT_STREAM_CHUNK,
    EngineConfig,
    PowerEngine,
    render_chunk_samples,
)
from repro.runner.sweep import SweepExecutor
from repro.runner.trace import RunResult
from repro.vasp.benchmarks import BENCHMARKS
from repro.vasp.parallel import layout_for
from repro.workloads.registry import workload_model_id

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.monitor.collector import FleetMonitor

logger = logging.getLogger(__name__)

#: Production-like mix weights: basic DFT dominates NERSC's VASP cycles,
#: with a meaningful share of higher-order (HSE/RPA) jobs.
DEFAULT_MIX: dict[str, float] = {
    "PdO4": 0.20,
    "PdO2": 0.20,
    "GaAsBi-64": 0.15,
    "CuC_vdw": 0.15,
    "Si256_hse": 0.12,
    "B.hR105_hse": 0.08,
    "Si128_acfdtr": 0.10,
}


def job_stream(
    n_jobs: int = 24,
    mean_interarrival_s: float = 120.0,
    mix: dict[str, float] | None = None,
    seed: int = 0,
) -> list[Job]:
    """A seeded, production-like stream of jobs.

    Arrivals are exponential (Poisson process); each job's workload is
    drawn from the mix and its node count from the workload's healthy
    range (1 .. optimal for Table I benchmarks, the model's default
    widths for other registry references).  Mix keys are workload
    references in the :func:`repro.workloads.resolve_workload` sense:
    benchmark names, model ids, or ``model:variant``.  The default
    (all-benchmark) mix draws the exact rng sequence it always has, so
    existing seeded streams are bit-identical.
    """
    from repro.workloads import resolve_widths, resolve_workload

    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
    if mean_interarrival_s <= 0:
        raise ValueError("mean_interarrival_s must be positive")
    weights = mix if mix is not None else DEFAULT_MIX
    for ref in set(weights) - set(BENCHMARKS):
        try:
            resolve_workload(ref)
        except KeyError as err:
            raise ValueError(f"unresolvable mix entry: {err.args[0]}") from None
    names = sorted(weights)
    probs = np.array([weights[n] for n in names], dtype=float)
    if probs.sum() <= 0:
        raise ValueError("mix weights must sum to a positive value")
    probs = probs / probs.sum()
    workloads = {ref: resolve_workload(ref) for ref in names}
    healthy = {ref: list(resolve_widths(ref)) for ref in names}

    rng = np.random.default_rng(seed)
    jobs = []
    clock = 0.0
    for index in range(n_jobs):
        name = names[int(rng.choice(len(names), p=probs))]
        n_nodes = int(rng.choice(healthy[name]))
        jobs.append(
            Job(
                job_id=f"{name}@{index}",
                workload=workloads[name],
                n_nodes=n_nodes,
                submit_s=clock,
            )
        )
        clock += float(rng.exponential(mean_interarrival_s))
    return jobs


@dataclass(frozen=True)
class FleetReport:
    """System-level outcome of one policy on one job stream."""

    policy_name: str
    schedule: ScheduleResult
    mean_power_w: float
    peak_power_w: float
    power_std_w: float
    makespan_s: float
    jobs_completed: int

    @property
    def coefficient_of_variation(self) -> float:
        """Relative temporal variability of system power."""
        return self.power_std_w / self.mean_power_w if self.mean_power_w > 0 else 0.0


def simulate_fleet(
    jobs: list[Job],
    policy: CapPolicy,
    policy_name: str,
    n_nodes: int = 16,
    power_budget_w: float | None = None,
    platform: "str | Platform | None" = None,
) -> FleetReport:
    """Schedule a stream under a policy and summarize system power.

    The power timeline is duration-weighted over scheduling-cycle samples
    (the samples are irregular when the scheduler skips quiet spans).
    """
    if power_budget_w is None:
        # Node TDP: effectively unbounded.
        power_budget_w = n_nodes * get_platform(platform).node.tdp_w
    config = SchedulerConfig(
        n_nodes=n_nodes,
        power_budget_w=power_budget_w,
        policy=policy,
        platform=platform,
    )
    logger.debug(
        "simulating fleet: policy=%s, %d jobs on %d nodes, budget %.0f W",
        policy_name,
        len(jobs),
        n_nodes,
        power_budget_w,
    )
    with obs.span("fleet.simulate", policy=policy_name, jobs=len(jobs)):
        schedule = PowerAwareScheduler(config).schedule(list(jobs))
    times = np.array([t for t, _ in schedule.power_timeline])
    powers = np.array([p for _, p in schedule.power_timeline])
    if len(times) > 1:
        spans = np.diff(np.append(times, schedule.makespan_s))
        spans = np.maximum(spans, 0.0)
        total = spans.sum()
        weights = spans / total if total > 0 else np.full_like(spans, 1.0 / len(spans))
        mean = float(np.average(powers, weights=weights))
        std = float(np.sqrt(np.average((powers - mean) ** 2, weights=weights)))
    else:
        mean = float(powers.mean()) if len(powers) else 0.0
        std = 0.0
    return FleetReport(
        policy_name=policy_name,
        schedule=schedule,
        mean_power_w=mean,
        peak_power_w=schedule.peak_power_w,
        power_std_w=std,
        makespan_s=schedule.makespan_s,
        jobs_completed=len(schedule.records),
    )


@dataclass(frozen=True)
class FleetTraceReport:
    """System-level outcome of one policy, from streamed node traces.

    Unlike :class:`FleetReport` (analytic per-cycle projections), these
    statistics come from actually rendering every scheduled job's node
    traces and streaming them through incremental aggregation — the
    engine's noise, per-node manufacturing variability and cap responses
    are all in the numbers, yet no job's full trace is ever retained.
    """

    policy_name: str
    schedule: ScheduleResult
    system: SystemPowerStats
    #: Per-sample node-power moments across every streamed trace (Welford).
    node_power_mean_w: float
    node_power_std_w: float
    node_power_peak_w: float
    jobs_completed: int
    samples_streamed: int
    chunks_streamed: int
    bytes_streamed: int

    @property
    def mean_power_w(self) -> float:
        """Mean system power over the schedule horizon."""
        return self.system.mean_power_w

    @property
    def peak_power_w(self) -> float:
        """Peak binned system power."""
        return self.system.peak_power_w

    @property
    def power_std_w(self) -> float:
        """Temporal standard deviation of system power."""
        return self.system.power_std_w

    @property
    def makespan_s(self) -> float:
        """Makespan of the underlying schedule."""
        return self.schedule.makespan_s

    @property
    def coefficient_of_variation(self) -> float:
        """Relative temporal variability of system power."""
        return self.power_std_w / self.mean_power_w if self.mean_power_w > 0 else 0.0


def _job_seed(job_id: str, seed: int) -> int:
    """Stable per-job render seed (crc32: PYTHONHASHSEED-independent)."""
    return (zlib.crc32(job_id.encode("utf-8")) ^ seed) & 0x7FFFFFFF


def simulate_fleet_traced(
    jobs: list[Job],
    policy: CapPolicy,
    policy_name: str,
    n_nodes: int = 16,
    power_budget_w: float | None = None,
    *,
    bin_s: float = 1.0,
    chunk_samples: int | None = None,
    engine_config: EngineConfig | None = None,
    seed: int = 0,
    retain_traces: bool = False,
    monitor: "FleetMonitor | None" = None,
    platform: "str | Platform | None" = None,
    node_platforms: "list[str | Platform | NodeSpec] | None" = None,
    workers: int | None = None,
    eager_pool: bool = False,
    checkpoint: "str | Path | None" = None,
    checkpoint_every: int = 64,
    resume: bool = False,
    heartbeat: "str | Path | None" = None,
    heartbeat_interval_s: float = 1.0,
    progress: "Callable[[HeartbeatSnapshot], None] | None" = None,
) -> FleetTraceReport:
    """Schedule a stream, render every job's traces, aggregate streaming.

    The schedule comes from the same analytic :class:`PowerAwareScheduler`
    pass as :func:`simulate_fleet`; the report's power statistics come
    from replaying that schedule against a real node pool
    (:class:`PerlmutterSystem` allocations, per-node variability, cap
    state).  Every execution mode reduces each job to a compact
    :class:`repro.capping.shard.JobPartial` and folds the partials in
    chronological job order through one shared fold (accumulator bins,
    node moments, busy intervals, monitor state) — which is why the modes
    below are bit-identical to each other.

    ``workers`` > 1 (or ``REPRO_SWEEP_WORKERS``) shards the schedule
    across worker processes (:func:`repro.capping.shard.run_sharded`):
    jobs are balanced by platform-aware render cost, workers rebuild
    their nodes from (name, spec) and ship partials back — raw trace
    chunks never cross IPC.  Peak memory at the coordinator stays
    O(chunk) + O(makespan / bin_s) regardless of fleet size.

    ``checkpoint`` (or ``REPRO_FLEET_CHECKPOINT``) atomically snapshots
    the fold every ``checkpoint_every`` jobs and after the last one;
    ``resume=True`` restores the snapshot — after validating a content
    fingerprint of the simulation inputs — and continues from the next
    chronological job, producing the same bits as an uninterrupted run.
    Incompatible with ``retain_traces`` and ``monitor`` (dense traces
    and monitor state are not checkpointed).

    ``heartbeat`` (or ``REPRO_FLEET_HEARTBEAT``) publishes a live,
    atomically-replaced JSON progress snapshot — jobs folded,
    node-weighted progress, nodes/sec, ETA, checkpoint age — after each
    folded job (throttled to ``heartbeat_interval_s``); ``progress``
    receives the same :class:`repro.obs.heartbeat.HeartbeatSnapshot`
    objects in-process.  Observation-only, like the monitor.

    Observability composes with every mode: sharded workers capture
    their spans and metric updates into a fresh per-process state and
    ship an :class:`repro.obs.merge.ObsPartial` back with their job
    partials, which the coordinator folds into the live tracer and
    registry — the merged Chrome trace carries one row per worker pid,
    and merged counter totals equal a serial run's exactly.

    ``retain_traces=True`` is the dense reference path: it renders and
    retains every job's full trace before re-chunking it through the
    same per-job fold, producing bit-identical statistics at
    O(sum-of-traces) memory.  The memory-gated fleet bench compares the
    two.  Always in-process (``workers`` must stay unset or 1).

    ``monitor`` attaches a :class:`repro.monitor.FleetMonitor`: on the
    serial path as a live engine-stream tap, on the sharded path by
    replaying worker-recorded :class:`repro.monitor.JobMonitorPartial`
    summaries in chronological order — both yield the same report.  It
    never writes back; the fleet report is bit-identical with or without
    it.  The caller finalizes the monitor.

    ``platform`` selects the hardware platform for the whole pool;
    ``node_platforms`` instead builds a *mixed* pool, cycling the given
    platforms/specs round-robin across nodes.  In a mixed pool each
    node's cap is clamped to its own GPU's supported range before being
    applied (a clamped-up cap can surface as a ``cap_violation`` health
    signal — the node genuinely cannot honour the policy's cap).

    The node pool is lazy: only nodes that jobs actually touch are
    constructed (a 100k-node pool with a handful of jobs builds a
    handful of nodes).  ``eager_pool=True`` forces up-front construction
    of every node — the pre-sharding reference behaviour the scaling
    bench compares against.  Monitored runs always materialize the pool
    (the monitor surveys every node's idle band).
    """
    if monitor is not None and retain_traces:
        raise ValueError(
            "monitor= requires the streaming path; retain_traces=True "
            "renders dense traces (monitor them with observe_run instead)"
        )
    explicit_workers = workers is not None
    resolved_workers = shard.resolve_fleet_workers(len(jobs), workers)
    if retain_traces and resolved_workers > 1:
        if explicit_workers:
            raise ValueError(
                "retain_traces=True is the dense in-process reference "
                "path; workers > 1 is unsupported"
            )
        # An ambient REPRO_SWEEP_WORKERS should not break the dense path.
        resolved_workers = 1
    checkpoint_path = (
        Path(checkpoint) if checkpoint is not None else shard.checkpoint_path_from_env()
    )
    if checkpoint_path is not None and retain_traces:
        raise ValueError(
            "checkpointing requires the streaming path (retain_traces=False)"
        )
    if checkpoint_path is not None and monitor is not None:
        raise ValueError(
            "monitor state is not checkpointable; run monitored fleets "
            "without checkpoint="
        )
    if checkpoint_every < 1:
        raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
    if resume and checkpoint_path is None:
        raise ValueError(
            "resume=True requires checkpoint= (or REPRO_FLEET_CHECKPOINT)"
        )
    run_fp = None
    if checkpoint_path is not None:
        run_fp = shard.run_fingerprint(
            jobs,
            policy,
            policy_name,
            n_nodes,
            power_budget_w,
            bin_s,
            chunk_samples,
            engine_config,
            seed,
            get_platform(platform).id,
            node_platforms,
        )
    pool = PerlmutterSystem(
        n_nodes=n_nodes, platform=platform, node_platforms=node_platforms
    )
    pool_specs = pool.node_specs()
    if power_budget_w is None:
        # Node TDP: effectively unbounded.
        power_budget_w = sum(spec.tdp_w for spec in pool_specs)
    config = SchedulerConfig(
        n_nodes=n_nodes,
        power_budget_w=power_budget_w,
        policy=policy,
        platform=platform,
    )
    with obs.span("fleet.schedule_traced", policy=policy_name, jobs=len(jobs)):
        schedule = PowerAwareScheduler(config).schedule(list(jobs))
    workloads = {job.job_id: job.workload for job in jobs}
    if monitor is not None or eager_pool:
        # The monitor surveys every node's idle band up front; eager_pool
        # is the pre-sharding reference behaviour the scaling bench times.
        built = pool.materialize()
        if monitor is not None:
            monitor.attach_pool(built)
    idle_node_w = sum(spec.idle_node_w for spec in pool_specs) / len(pool_specs)
    accumulator = SystemPowerAccumulator(
        n_nodes=n_nodes, bin_s=bin_s, idle_node_w=idle_node_w
    )
    node_moments = RunningMoments()
    chunks_streamed = 0
    bytes_streamed = 0
    jobs_done = 0
    retained: list[tuple[shard.ShardJobTask, RunResult]] = []
    #: (analytic end time, job id) release queue for pool bookkeeping.
    release_queue: list[tuple[float, str]] = []
    #: Jobs of the same benchmark at the same width share a phase list;
    #: building one is ~25 ms of SCF modelling, so memoize by content.
    phase_cache: dict[str, list] = {}
    #: Uncapped runtime per (workload, width) for the monitor's slowdown
    #: accounting.  cached_estimate_run is itself memoized, but its key
    #: canonicalizes the whole workload (~1 ms/call) — at one call per
    #: job start that alone would cost the monitor its overhead budget.
    nominal_cache: dict[str, float] = {}

    # ---- plan: replay allocations, binding each job to node *names* ----
    # No nodes are built here; workers (or the serial renderer) construct
    # exactly the nodes their jobs touch from the deduplicated spec table.
    spec_table: list[NodeSpec] = []
    spec_ids: dict[int, int] = {}
    tasks: list[shard.ShardJobTask] = []
    for index, record in enumerate(schedule.records_chronological()):
        while release_queue and release_queue[0][0] <= record.start_s + 1e-9:
            _, done = heapq.heappop(release_queue)
            pool.release(done)
        names = pool.allocate_names(record.job_id, record.n_nodes)
        heapq.heappush(release_queue, (record.end_s, record.job_id))
        indices = []
        for name in names:
            spec = pool.node_spec(name)
            at = spec_ids.get(id(spec))
            if at is None:
                at = spec_ids[id(spec)] = len(spec_table)
                spec_table.append(spec)
            indices.append(at)
        workload = workloads[record.job_id]
        nominal_s = None
        if monitor is not None:
            phase_key = fingerprint(
                "fleet_phases", workload_model_id(workload), workload, record.n_nodes
            )
            nominal_s = nominal_cache.get(phase_key)
            if nominal_s is None:
                nominal_s = nominal_cache[phase_key] = cached_estimate_run(
                    workload, record.n_nodes, None, platform
                ).runtime_s
        tasks.append(
            shard.ShardJobTask(
                index=index,
                job_id=record.job_id,
                start_s=record.start_s,
                end_s=record.end_s,
                cap_w=record.cap_w,
                n_nodes=record.n_nodes,
                node_names=tuple(names),
                spec_indices=tuple(indices),
                workload=workload,
                seed=_job_seed(record.job_id, seed),
                nominal_runtime_s=nominal_s,
            )
        )
    for _, job_id in release_queue:
        pool.release(job_id)
    total_jobs = len(tasks)
    total_task_nodes = sum(task.n_nodes for task in tasks)
    nodes_folded = 0

    heartbeat_path = (
        Path(heartbeat) if heartbeat is not None else heartbeat_path_from_env()
    )
    beat: RunHeartbeat | None = None
    if heartbeat_path is not None or progress is not None:
        beat = RunHeartbeat(
            heartbeat_path,
            progress,
            label=f"fleet:{policy_name}",
            jobs_total=total_jobs,
            nodes_total=total_task_nodes,
            min_interval_s=heartbeat_interval_s,
        )

    # ---- resume: restore the fold, skip the covered chronological prefix
    if resume:
        state = shard.load_checkpoint(checkpoint_path)
        if state is not None:
            if state.fingerprint != run_fp:
                raise ValueError(
                    f"{checkpoint_path} was written by a different "
                    "simulation (input fingerprint mismatch); refusing "
                    "to resume"
                )
            skipped = min(state.jobs_done, total_jobs)
            accumulator.restore(state.accumulator_state)
            node_moments = RunningMoments.from_state(state.moments_state)
            chunks_streamed = state.chunks_streamed
            bytes_streamed = state.bytes_streamed
            jobs_done = skipped
            nodes_folded = sum(task.n_nodes for task in tasks[:skipped])
            tasks = tasks[skipped:]
            if beat is not None:
                # Resumed jobs cost nothing this run; keep them out of
                # the nodes/sec (and therefore ETA) estimate.
                beat.resume_baseline(skipped, nodes_folded)
            obs.inc("repro_fleet_jobs_resumed_total", skipped)
            logger.debug(
                "resuming fleet (%s) from %s: %d/%d jobs already folded",
                policy_name,
                checkpoint_path,
                skipped,
                total_jobs,
            )

    def fold(partial: shard.JobPartial) -> None:
        """Chan-merge one job's partial into the run aggregates.

        Called in chronological job order by every execution mode — this
        single fold is the bit-identity anchor.
        """
        nonlocal chunks_streamed, bytes_streamed, jobs_done, nodes_folded
        accumulator.merge_partial(partial.power)
        for row in partial.moment_rows:
            node_moments.merge(RunningMoments.from_state(row))
        accumulator.add_busy_interval(
            partial.start_s, partial.start_s + partial.runtime_s, partial.n_nodes
        )
        chunks_streamed += partial.chunks
        bytes_streamed += partial.nbytes
        if partial.chunks:
            obs.inc("repro_fleet_chunks_total", partial.chunks)
        if monitor is not None and partial.monitor is not None:
            monitor.absorb_job_partial(partial.monitor)
        jobs_done += 1
        nodes_folded += partial.n_nodes
        obs.inc("repro_fleet_jobs_rendered_total")
        obs.inc("repro_fleet_partials_merged_total")
        obs.gauge_set(
            "repro_fleet_resident_bytes",
            accumulator.resident_bytes
            + sum(r.resident_bytes() for _, r in retained),
        )
        if checkpoint_path is not None and (
            jobs_done % checkpoint_every == 0 or jobs_done == total_jobs
        ):
            shard.save_checkpoint(
                checkpoint_path,
                shard.FleetCheckpoint(
                    version=shard.CHECKPOINT_VERSION,
                    fingerprint=run_fp,
                    jobs_done=jobs_done,
                    accumulator_state=accumulator.state(),
                    moments_state=node_moments.state(),
                    chunks_streamed=chunks_streamed,
                    bytes_streamed=bytes_streamed,
                ),
            )
            if beat is not None:
                beat.note_checkpoint()
        if beat is not None:
            beat.update(jobs_done, nodes_folded)

    def phases_for(workload, width: int):
        phase_key = fingerprint(
            "fleet_phases", workload_model_id(workload), workload, width
        )
        phases = phase_cache.get(phase_key)
        if phases is None:
            parallel = layout_for(workload, width)
            phases = phase_cache[phase_key] = workload.phases(parallel)
        return phases

    def run_serial(serial_tasks: "list[shard.ShardJobTask]") -> None:
        for task in serial_tasks:
            nodes = [pool.nodes[name] for name in task.node_names]
            for node in nodes:
                # A mixed pool may contain GPUs whose supported cap range
                # does not include the policy's cap; clamp per node.
                node.set_gpu_power_limit(shard.clamped_cap_w(task.cap_w, node.spec))
            phases = phases_for(task.workload, task.n_nodes)
            tap_factories: tuple = ()
            if monitor is not None:
                monitor.on_job_start(
                    task.job_id,
                    n_nodes=task.n_nodes,
                    cap_w=task.cap_w,
                    start_s=task.start_s,
                    end_s=task.end_s,
                    nominal_runtime_s=task.nominal_runtime_s,
                )
                tap_factories = (
                    lambda dt, job_id=task.job_id: monitor.tap(job_id, dt),
                )
            fold(
                shard.render_job_partial(
                    nodes,
                    phases,
                    index=task.index,
                    job_id=task.job_id,
                    start_s=task.start_s,
                    n_nodes=task.n_nodes,
                    bin_s=bin_s,
                    seed=task.seed,
                    chunk_samples=chunk_samples,
                    engine_config=engine_config,
                    tap_factories=tap_factories,
                )
            )
            if monitor is not None:
                monitor.on_job_end(task.job_id)

    with obs.span(
        "fleet.stream_traces",
        policy=policy_name,
        jobs=total_jobs,
        dense=retain_traces,
        workers=resolved_workers,
    ):
        if retain_traces:
            step = chunk_samples or render_chunk_samples() or DEFAULT_STREAM_CHUNK
            for task in tasks:
                nodes = [pool.nodes[name] for name in task.node_names]
                for node in nodes:
                    node.set_gpu_power_limit(
                        shard.clamped_cap_w(task.cap_w, node.spec)
                    )
                engine = PowerEngine(nodes, engine_config)
                result = engine.run(
                    phases_for(task.workload, task.n_nodes),
                    label=task.job_id,
                    seed=task.seed,
                )
                retained.append((task, result))
                obs.gauge_set(
                    "repro_fleet_resident_bytes",
                    accumulator.resident_bytes
                    + sum(r.resident_bytes() for _, r in retained),
                )
            # Dense reference: re-chunk the retained traces through the
            # same per-job partial fold the streaming path uses —
            # identical chunk boundaries, identical fold, bit-identical
            # statistics; the paths differ only in peak resident memory.
            for task, result in retained:
                power = JobPowerPartial(start_s=task.start_s, bin_s=bin_s)
                moment_rows: list[tuple] = []
                chunks = 0
                nbytes = 0
                for trace in result.traces:
                    dt = trace.sample_interval_s
                    powers = trace.node_power
                    times = trace.times
                    for start in range(0, len(times), step):
                        stop = min(start + step, len(times))
                        power.add_samples(
                            task.start_s, times[start:stop], powers[start:stop], dt
                        )
                        moment_rows.append(
                            RunningMoments.from_batch(powers[start:stop]).state()
                        )
                        chunks += 1
                        nbytes += int(powers[start:stop].nbytes)
                power.trim()
                fold(
                    shard.JobPartial(
                        index=task.index,
                        job_id=task.job_id,
                        start_s=task.start_s,
                        n_nodes=task.n_nodes,
                        runtime_s=result.runtime_s,
                        power=power,
                        moment_rows=moment_rows,
                        chunks=chunks,
                        nbytes=nbytes,
                    )
                )
        elif resolved_workers > 1 and tasks:
            pooled = shard.run_sharded(
                tasks,
                spec_table,
                workers=resolved_workers,
                engine_config=engine_config,
                bin_s=bin_s,
                chunk_samples=chunk_samples,
                monitor_config=monitor.config if monitor is not None else None,
                fold=fold,
            )
            if not pooled:
                run_serial(tasks)
        else:
            run_serial(tasks)
    if beat is not None:
        beat.finish(jobs_done, nodes_folded)
    system = accumulator.finalize()
    logger.debug(
        "traced fleet (%s): %d jobs, %d chunks, %.1f MB streamed, peak %.0f W, "
        "%d/%d nodes built",
        policy_name,
        len(schedule.records),
        chunks_streamed,
        bytes_streamed / 1e6,
        system.peak_power_w,
        pool.nodes.built_count,
        n_nodes,
    )
    run_ledger.annotate_run(
        workers=resolved_workers,
        nodes=n_nodes,
        fleet={
            policy_name: {
                "jobs": len(schedule.records),
                "pool_nodes": n_nodes,
                "workers": resolved_workers,
                "mean_power_w": round(system.mean_power_w, 3),
                "peak_power_w": round(system.peak_power_w, 3),
                "energy_j": system.energy_j,
                "makespan_s": round(schedule.makespan_s, 3),
                "chunks_streamed": chunks_streamed,
                "checkpoint": str(checkpoint_path) if checkpoint_path else None,
                "resumed_jobs": (total_jobs - len(tasks)) if resume else 0,
            }
        },
    )
    return FleetTraceReport(
        policy_name=policy_name,
        schedule=schedule,
        system=system,
        node_power_mean_w=node_moments.mean,
        node_power_std_w=node_moments.std,
        node_power_peak_w=node_moments.peak,
        jobs_completed=len(schedule.records),
        samples_streamed=accumulator.samples_added,
        chunks_streamed=chunks_streamed,
        bytes_streamed=bytes_streamed,
    )


def compare_fleet_policies_traced(
    n_jobs: int = 24,
    n_nodes: int = 16,
    power_budget_w: float | None = None,
    seed: int = 0,
    *,
    bin_s: float = 1.0,
    chunk_samples: int | None = None,
    engine_config: EngineConfig | None = None,
    retain_traces: bool = False,
    monitors: "tuple[FleetMonitor | None, FleetMonitor | None] | None" = None,
    platform: "str | Platform | None" = None,
    node_platforms: "list[str | Platform | NodeSpec] | None" = None,
    workers: int | None = None,
    checkpoint: "str | Path | None" = None,
    checkpoint_every: int = 64,
    resume: bool = False,
    heartbeat: "str | Path | None" = None,
    heartbeat_interval_s: float = 1.0,
    progress: "Callable[[HeartbeatSnapshot], None] | None" = None,
    scenario: "str | object | None" = None,
) -> tuple[FleetTraceReport, FleetTraceReport]:
    """(capped, uncapped) trace-streamed fleet reports, same job stream.

    ``scenario`` names a registered :class:`repro.capping.scenarios.
    FleetScenario` (or passes one directly): the job stream then comes
    from ``scenario.build_jobs(seed)`` — its arrival process, workload
    mix and failure drains — instead of the default :func:`job_stream`,
    and ``n_jobs`` is ignored (the scenario fixes its own job count).
    The caller remains responsible for aligning ``n_nodes`` /
    ``node_platforms`` with the scenario's pool (the CLI does this).

    ``monitors`` optionally attaches one :class:`repro.monitor.FleetMonitor`
    per policy, ``(capped, uncapped)`` — each policy replays the same job
    ids, so the two runs cannot share a single ledger.  Callers finalize.

    ``workers``/``checkpoint``/``resume``/``heartbeat`` pass through to
    :func:`simulate_fleet_traced`.  The two policies are distinct
    simulations, so the checkpoint and heartbeat base paths (argument or
    ``REPRO_FLEET_CHECKPOINT`` / ``REPRO_FLEET_HEARTBEAT``) get a
    per-policy suffix (``.capped`` / ``.uncapped``) — resolved here so
    both policies don't fight over the env-provided path.
    """
    base = Path(checkpoint) if checkpoint is not None else shard.checkpoint_path_from_env()
    beat_base = Path(heartbeat) if heartbeat is not None else heartbeat_path_from_env()
    if scenario is not None:
        from repro.capping.scenarios import get_scenario

        scenario = get_scenario(scenario)
    reports = []
    for index, (capped, policy_name, suffix) in enumerate(
        ((True, "50% TDP policy", ".capped"), (False, "uncapped", ".uncapped"))
    ):
        policy = (
            CapPolicy.half_tdp(platform) if capped else CapPolicy.uncapped(platform)
        )
        jobs = (
            scenario.build_jobs(seed=seed)
            if scenario is not None
            else job_stream(n_jobs=n_jobs, seed=seed)
        )
        reports.append(
            simulate_fleet_traced(
                jobs,
                policy,
                policy_name,
                n_nodes,
                power_budget_w,
                bin_s=bin_s,
                chunk_samples=chunk_samples,
                engine_config=engine_config,
                seed=seed,
                retain_traces=retain_traces,
                monitor=monitors[index] if monitors is not None else None,
                platform=platform,
                node_platforms=node_platforms,
                workers=workers,
                checkpoint=(
                    base.with_name(base.name + suffix) if base is not None else None
                ),
                checkpoint_every=checkpoint_every,
                resume=resume,
                heartbeat=(
                    beat_base.with_name(beat_base.name + suffix)
                    if beat_base is not None
                    else None
                ),
                heartbeat_interval_s=heartbeat_interval_s,
                progress=progress,
            )
        )
    return reports[0], reports[1]


def _policy_task(
    task: tuple[bool, str, int, int, float | None, int, str]
) -> FleetReport:
    """Worker-side task: one policy over a regenerated job stream.

    The stream is rebuilt from ``seed`` inside the worker (cheap and
    deterministic), so only this small task tuple crosses the pool
    boundary (the platform travels as its registry id).
    """
    capped, policy_name, n_jobs, n_nodes, power_budget_w, seed, platform_id = task
    policy = (
        CapPolicy.half_tdp(platform_id) if capped else CapPolicy.uncapped(platform_id)
    )
    jobs = job_stream(n_jobs=n_jobs, seed=seed)
    return simulate_fleet(
        jobs, policy, policy_name, n_nodes, power_budget_w, platform_id
    )


def compare_fleet_policies(
    n_jobs: int = 24,
    n_nodes: int = 16,
    power_budget_w: float | None = None,
    seed: int = 0,
    platform: "str | Platform | None" = None,
) -> tuple[FleetReport, FleetReport]:
    """(capped, uncapped) fleet reports for the same job stream.

    The two policies are independent simulations over the same seeded
    stream, so they execute as one two-task sweep.
    """
    platform_id = get_platform(platform).id
    tasks = [
        (True, "50% TDP policy", n_jobs, n_nodes, power_budget_w, seed, platform_id),
        (False, "uncapped", n_jobs, n_nodes, power_budget_w, seed, platform_id),
    ]
    capped, uncapped = SweepExecutor().map(_policy_task, tasks)
    return capped, uncapped
