"""Power management: capping interface, policy, power-aware scheduling.

* :mod:`nvsmi` — an ``nvidia-smi``-like facade for setting GPU power
  limits on allocated nodes (Section V's experimental knob);
* :mod:`policy` — workload-class -> cap policies built on the paper's
  finding that 50 % TDP costs most VASP workloads <10 % performance;
* :mod:`scheduler` — a power-aware batch scheduler that applies the
  policy each scheduling cycle and enforces a facility power budget
  (the Section VI-A deployment story);
* :mod:`dvfsctl` — static DVFS control, quantifying why the paper chose
  power capping ("more efficient and accurate").
"""

from repro.capping.dvfsctl import (
    ControlComparison,
    ControlOutcome,
    compare_control,
    run_with_capping,
    run_with_static_dvfs,
)
from repro.capping.nvsmi import NvidiaSmi
from repro.capping.policy import CapPolicy, WorkloadClass, classify_workload
from repro.capping.scheduler import (
    Job,
    PowerAwareScheduler,
    ScheduleResult,
    SchedulerConfig,
)

__all__ = [
    "CapPolicy",
    "ControlComparison",
    "ControlOutcome",
    "compare_control",
    "run_with_capping",
    "run_with_static_dvfs",
    "Job",
    "NvidiaSmi",
    "PowerAwareScheduler",
    "ScheduleResult",
    "SchedulerConfig",
    "WorkloadClass",
    "classify_workload",
]
