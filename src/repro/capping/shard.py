"""Sharded execution and checkpointing for the traced fleet simulation.

A 100k-node fleet cannot be rendered by one Python process in useful
time, and a week-long-horizon simulation should not restart from zero
after an interruption.  This layer extends the ``REPRO_SWEEP_WORKERS``
machinery of :mod:`repro.runner.sweep` to the fleet path:

* The coordinator plans the whole schedule (allocation replay binds each
  job to node *names* — no node objects are built), balances the jobs
  across shards by per-node render cost (platform-aware, so mixed
  ``node_platforms`` pools split evenly), and each worker process
  rebuilds its jobs' nodes from (name, spec) and renders them through
  :meth:`repro.runner.engine.PowerEngine.stream`.
* Workers never ship raw trace chunks.  Each job comes back as a
  compact :class:`JobPartial`: an origin-offset
  :class:`~repro.hardware.system.JobPowerPartial` energy array, one
  :class:`~repro.hardware.system.RunningMoments` row per chunk, and (for
  monitored runs) a :class:`~repro.monitor.collector.JobMonitorPartial`.
  The coordinator Chan-merges partials in chronological job order — the
  canonical fold the serial path also uses, so sharded output is
  bit-identical to single-process output by construction.
* :class:`FleetCheckpoint` snapshots the fold state (accumulator bins,
  node moments, stream counters, jobs folded) to an atomic on-disk
  pickle (``REPRO_FLEET_CHECKPOINT``).  Per-job render seeds are
  content-derived, so no RNG stream state needs saving: resuming
  recomputes the schedule, validates the input fingerprint, restores the
  fold and continues from the next chronological job — bit-identical to
  an uninterrupted run.
"""

from __future__ import annotations

import logging
import math
import os
import pickle
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Sequence

from repro import obs
from repro.obs import merge as obs_merge
from repro.hardware.node import GpuNode
from repro.hardware.platform import NodeSpec
from repro.hardware.system import JobPowerPartial, RunningMoments
from repro.runner.cache import atomic_write_pickle, fingerprint
from repro.runner.engine import EngineConfig, PowerEngine
from repro.runner.sweep import workers_from_env
from repro.vasp.parallel import layout_for
from repro.workloads.registry import workload_model_id
from repro.vasp.workload import VaspWorkload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.monitor.collector import JobMonitorPartial, MonitorConfig
    from repro.vasp.phases import MacroPhase

logger = logging.getLogger(__name__)

#: Environment variable: default checkpoint path for traced fleet runs.
CHECKPOINT_ENV = "REPRO_FLEET_CHECKPOINT"
#: On-disk checkpoint format version.
CHECKPOINT_VERSION = 1


def resolve_fleet_workers(n_jobs: int, workers: int | None = None) -> int:
    """Fleet worker count: explicit arg > ``REPRO_SWEEP_WORKERS`` > serial.

    Unlike grid sweeps (which size themselves to the host), the fleet
    stays serial unless parallelism is asked for — the serial path *is*
    the reference output, and small fleets don't amortize pool startup.
    """
    if workers is None:
        workers = workers_from_env()
    if workers is None:
        return 1
    return max(min(workers, n_jobs), 1)


def checkpoint_path_from_env() -> Path | None:
    """Checkpoint location from ``REPRO_FLEET_CHECKPOINT`` (None = off)."""
    raw = os.environ.get(CHECKPOINT_ENV, "").strip()
    return Path(raw) if raw else None


# ----------------------------------------------------------------------
# Task and partial records (everything that crosses the pool boundary)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardJobTask:
    """One scheduled job, bound to its allocated nodes, ready to render."""

    #: Chronological position in the schedule (the fold order).
    index: int
    job_id: str
    start_s: float
    end_s: float
    cap_w: float
    n_nodes: int
    node_names: tuple[str, ...]
    #: Per-node indices into the shard's spec table.
    spec_indices: tuple[int, ...]
    workload: VaspWorkload
    #: Content-derived render seed (crc32 of the job id ^ run seed).
    seed: int
    #: Uncapped runtime estimate (monitored runs only).
    nominal_runtime_s: float | None = None


@dataclass(frozen=True)
class ShardTask:
    """One worker's batch of the schedule plus shared render parameters."""

    shard_index: int
    specs: tuple[NodeSpec, ...]
    engine_config: EngineConfig | None
    bin_s: float
    chunk_samples: int | None
    monitor_config: "MonitorConfig | None"
    jobs: tuple[ShardJobTask, ...]
    #: (trace, metrics, profile) layers the coordinator is collecting —
    #: the worker captures matching :class:`repro.obs.merge.ObsPartial`
    #: snapshots.  None (obs off at the coordinator) skips capture
    #: entirely.  Two-element tuples (pre-profiler callers) mean
    #: profile off.
    obs_capture: tuple[bool, ...] | None = None


@dataclass
class JobPartial:
    """Compact per-job render result shipped from worker to coordinator."""

    index: int
    job_id: str
    start_s: float
    n_nodes: int
    runtime_s: float
    power: JobPowerPartial
    #: One RunningMoments.state() row per streamed node-power chunk, in
    #: chunk order — merged rows reproduce the serial update sequence.
    moment_rows: list[tuple]
    chunks: int
    nbytes: int
    monitor: "JobMonitorPartial | None" = None


@dataclass
class ShardResult:
    """One batch's render results plus the worker's observability capture."""

    jobs: list[JobPartial]
    #: Spans/metrics the worker recorded while rendering this batch;
    #: None when the coordinator is not collecting.
    obs: "obs_merge.ObsPartial | None" = None


# ----------------------------------------------------------------------
# Rendering (shared by the serial path and the shard workers)
# ----------------------------------------------------------------------
def render_job_partial(
    nodes: list[GpuNode],
    phases: "list[MacroPhase]",
    *,
    index: int,
    job_id: str,
    start_s: float,
    n_nodes: int,
    bin_s: float,
    seed: int,
    chunk_samples: int | None,
    engine_config: EngineConfig | None,
    tap_factories: Sequence[Callable[[float], Callable]] = (),
) -> JobPartial:
    """Render one job's traces and reduce them to a :class:`JobPartial`.

    This is the single render-and-reduce routine every execution mode
    runs — in-process for serial fleets, inside a worker for sharded
    ones — which is what makes the modes bit-identical.  Each
    ``tap_factories`` entry receives the engine's sample interval and
    returns an ``on_chunk`` tap (live monitor or worker probe).
    """
    engine = PowerEngine(nodes, engine_config)
    taps = tuple(
        factory(engine.config.base_interval_s) for factory in tap_factories
    )
    streamed = engine.stream(
        phases,
        label=job_id,
        seed=seed,
        chunk_samples=chunk_samples,
        on_chunk=taps or None,
    )
    power = JobPowerPartial(start_s=start_s, bin_s=bin_s)
    moment_rows: list[tuple] = []
    chunks = 0
    nbytes = 0
    dt = streamed.base_interval_s
    for chunk in streamed.chunks:
        if chunk.component != "node":
            continue
        power.add_samples(start_s, chunk.times, chunk.values, dt)
        moment_rows.append(RunningMoments.from_batch(chunk.values).state())
        chunks += 1
        nbytes += int(chunk.values.nbytes)
    power.trim()
    return JobPartial(
        index=index,
        job_id=job_id,
        start_s=start_s,
        n_nodes=n_nodes,
        runtime_s=streamed.runtime_s,
        power=power,
        moment_rows=moment_rows,
        chunks=chunks,
        nbytes=nbytes,
    )


def clamped_cap_w(cap_w: float, spec: NodeSpec) -> float:
    """A policy cap clamped to one node's supported GPU cap range."""
    gpu = spec.gpu
    return min(max(cap_w, gpu.cap_min_w), gpu.cap_max_w)


#: Worker-process-global phase memo: batched submission sends several
#: small batches to the same worker process, and jobs of one (workload,
#: width) must not re-run ~25 ms of SCF modelling per batch.  Keyed by
#: content fingerprint, so it is safe across batches of different runs.
_WORKER_PHASE_CACHE: dict[str, list] = {}


def _render_shard(task: ShardTask) -> ShardResult:
    """Worker entry point: render every job in one batch.

    Nodes are rebuilt from (name, spec) — node construction is
    deterministic, so worker-built nodes match coordinator-built ones
    bit for bit.  When ``task.obs_capture`` is set, the batch renders
    under a fresh in-memory tracer/registry whose contents ship back in
    the :class:`ShardResult` (see :mod:`repro.obs.merge`); capture is
    observation-only, so the job partials are byte-identical either way.
    """
    token = None
    if task.obs_capture is not None:
        trace_on, metrics_on, profile_on = (*task.obs_capture, False)[:3]
        token = obs_merge.begin_worker_capture(
            trace=trace_on,
            metrics=metrics_on,
            profile=profile_on,
            process_label=f"repro fleet worker {os.getpid()}",
        )
    try:
        with obs.span(
            "shard.render_batch", shard=task.shard_index, jobs=len(task.jobs)
        ):
            partials = [
                _render_task_job(job, task, _WORKER_PHASE_CACHE)
                for job in task.jobs
            ]
    finally:
        captured = (
            obs_merge.finish_worker_capture(token) if token is not None else None
        )
    return ShardResult(jobs=partials, obs=captured)


def _render_task_job(
    job: ShardJobTask, task: ShardTask, phase_cache: dict[str, list]
) -> JobPartial:
    specs = [task.specs[i] for i in job.spec_indices]
    nodes = [
        GpuNode(name=name, spec=spec) for name, spec in zip(job.node_names, specs)
    ]
    for node in nodes:
        node.set_gpu_power_limit(clamped_cap_w(job.cap_w, node.spec))
    phase_key = fingerprint(
        "fleet_phases", workload_model_id(job.workload), job.workload, job.n_nodes
    )
    phases = phase_cache.get(phase_key)
    if phases is None:
        parallel = layout_for(job.workload, job.n_nodes)
        phases = phase_cache[phase_key] = job.workload.phases(parallel)
    probe = None
    tap_factories: tuple = ()
    if task.monitor_config is not None:
        from repro.monitor.collector import JobProbe

        probe = JobProbe(
            task.monitor_config,
            job_id=job.job_id,
            n_nodes=job.n_nodes,
            cap_w=job.cap_w,
            start_s=job.start_s,
            end_s=job.end_s,
            nominal_runtime_s=job.nominal_runtime_s,
            node_specs=dict(zip(job.node_names, specs)),
        )
        tap_factories = (probe.tap,)
    partial = render_job_partial(
        nodes,
        phases,
        index=job.index,
        job_id=job.job_id,
        start_s=job.start_s,
        n_nodes=job.n_nodes,
        bin_s=task.bin_s,
        seed=job.seed,
        chunk_samples=task.chunk_samples,
        engine_config=task.engine_config,
        tap_factories=tap_factories,
    )
    if probe is not None:
        partial.monitor = probe.partial
    return partial


# ----------------------------------------------------------------------
# Shard planning and dispatch
# ----------------------------------------------------------------------
def estimate_task_cost(task: ShardJobTask, specs: Sequence[NodeSpec]) -> float:
    """Relative render cost of one job (for shard balancing).

    Samples scale with scheduled duration; streams per node with the
    node's component count (cpu + memory + node + its GPUs), which is
    what makes mixed-platform pools balance by real work, not job count.
    """
    duration = max(task.end_s - task.start_s, 1.0)
    streams = sum(3 + specs[i].gpus_per_node for i in task.spec_indices)
    return duration * streams


def plan_shards(
    tasks: Sequence[ShardJobTask],
    specs: Sequence[NodeSpec],
    n_shards: int,
) -> list[list[ShardJobTask]]:
    """Balance jobs across shards (LPT greedy on estimated render cost).

    Deterministic: ties break on chronological index, and each shard's
    slice is returned in chronological order.  Empty shards are dropped.
    """
    n_shards = max(min(n_shards, len(tasks)), 1)
    costs = [estimate_task_cost(task, specs) for task in tasks]
    order = sorted(range(len(tasks)), key=lambda i: (-costs[i], i))
    loads = [0.0] * n_shards
    members: list[list[ShardJobTask]] = [[] for _ in range(n_shards)]
    for i in order:
        target = min(range(n_shards), key=lambda s: (loads[s], s))
        loads[target] += costs[i]
        members[target].append(tasks[i])
    for slice_ in members:
        slice_.sort(key=lambda task: task.index)
    return [slice_ for slice_ in members if slice_]


def default_batch_jobs(
    n_tasks: int, n_shards: int, target_batches: int = 4
) -> int:
    """Jobs per submitted batch (aim ``target_batches`` per shard).

    Batching trades a little IPC overhead for steady coordinator-side
    progress: with whole-shard futures the chronological fold — and with
    it checkpoints and the heartbeat — only advances when an entire
    shard completes.  A handful of batches per shard keeps partials
    arriving throughout the run without flooding the pool with
    single-job tasks.
    """
    return max(1, math.ceil(n_tasks / max(n_shards * target_batches, 1)))


def run_sharded(
    tasks: Sequence[ShardJobTask],
    specs: Sequence[NodeSpec],
    *,
    workers: int,
    engine_config: EngineConfig | None,
    bin_s: float,
    chunk_samples: int | None,
    monitor_config: "MonitorConfig | None",
    fold: Callable[[JobPartial], None],
    batch_jobs: int | None = None,
) -> bool:
    """Render job tasks across worker processes, folding chronologically.

    ``fold`` is invoked in chronological (schedule) order as soon as the
    prefix is complete — a checkpoint written mid-run therefore always
    covers an exact chronological prefix.  Each shard's slice is
    submitted as several chronological batches (``batch_jobs`` jobs
    each), interleaved round-robin across shards, so early-schedule
    partials arrive early and the fold advances steadily.

    While the coordinator's observability is active, every batch comes
    back with an :class:`repro.obs.merge.ObsPartial` that is absorbed
    into the live tracer/registry — worker spans land in the merged
    Chrome trace under their own pid row, and merged counter totals
    equal a serial run's exactly.

    Returns False when no process pool could be started before any work
    was folded (the caller falls back to the serial path, which produces
    identical results).
    """
    if not tasks:
        return True
    shards = plan_shards(tasks, specs, workers)
    capture = obs_merge.capture_flags()
    if batch_jobs is None:
        batch_jobs = default_batch_jobs(len(tasks), len(shards))
    per_shard_batches: list[list[ShardTask]] = []
    for i, slice_ in enumerate(shards):
        per_shard_batches.append(
            [
                ShardTask(
                    shard_index=i,
                    specs=tuple(specs),
                    engine_config=engine_config,
                    bin_s=bin_s,
                    chunk_samples=chunk_samples,
                    monitor_config=monitor_config,
                    jobs=tuple(slice_[at : at + batch_jobs]),
                    obs_capture=capture,
                )
                for at in range(0, len(slice_), batch_jobs)
            ]
        )
    # Round-robin across shards: every shard's chronologically-earliest
    # batch is in flight first, so the fold's prefix completes early.
    rounds = max(len(batches) for batches in per_shard_batches)
    ordered = [
        batches[round_index]
        for round_index in range(rounds)
        for batches in per_shard_batches
        if round_index < len(batches)
    ]
    obs.gauge_set("repro_fleet_shard_workers", len(shards))
    expected = sorted(task.index for task in tasks)
    pending: dict[int, JobPartial] = {}
    folded = 0
    try:
        try:
            with ProcessPoolExecutor(max_workers=len(shards)) as pool:
                futures = [pool.submit(_render_shard, st) for st in ordered]
                for future in as_completed(futures):
                    result = future.result()
                    obs_merge.absorb_partial(result.obs)
                    for partial in result.jobs:
                        pending[partial.index] = partial
                    while folded < len(expected) and expected[folded] in pending:
                        fold(pending.pop(expected[folded]))
                        folded += 1
        except (OSError, PermissionError, ImportError) as exc:
            # Pools need fork/spawn and pipes; restricted hosts fall back
            # to the serial path — unless results were already folded, in
            # which case a retry would double-count and the error must
            # surface.
            if folded:
                raise
            logger.warning(
                "fleet process pool unavailable (%s: %s); falling back to "
                "serial rendering of %d jobs",
                type(exc).__name__,
                exc,
                len(tasks),
            )
            return False
    finally:
        # The gauge reports *live* pool width; once the run is over (or
        # dead) there are zero shard workers — leaving the last pool size
        # behind would misreport idle state to `repro obs` and scrapes.
        obs.gauge_set("repro_fleet_shard_workers", 0)
    return True


# ----------------------------------------------------------------------
# Checkpointing
# ----------------------------------------------------------------------
@dataclass
class FleetCheckpoint:
    """Resumable fold state of a traced fleet simulation.

    Everything downstream of rendering is here: the accumulator's bins,
    the node-power moments and the stream counters, plus how many
    chronological jobs they cover.  The schedule itself is *not* stored —
    it is recomputed on resume (deterministic), and ``fingerprint``
    (over jobs, policy, pool and engine inputs) guards against resuming
    into a different simulation.  Render seeds are content-derived per
    job, so no RNG stream state is needed.
    """

    version: int
    fingerprint: str
    jobs_done: int
    accumulator_state: dict
    moments_state: tuple
    chunks_streamed: int
    bytes_streamed: int


def run_fingerprint(*parts) -> str:
    """Content fingerprint binding a checkpoint to its simulation inputs."""
    return fingerprint("fleet_checkpoint", CHECKPOINT_VERSION, *parts)


def save_checkpoint(path: str | Path, checkpoint: FleetCheckpoint) -> None:
    """Atomically persist a checkpoint (crash-safe: old file or new file)."""
    atomic_write_pickle(Path(path), checkpoint)
    obs.inc("repro_fleet_checkpoint_writes_total")


def load_checkpoint(path: str | Path) -> FleetCheckpoint | None:
    """Load a checkpoint; None when the file does not exist.

    Raises
    ------
    ValueError
        If the file exists but is not a compatible checkpoint.
    """
    path = Path(path)
    if not path.is_file():
        return None
    try:
        with path.open("rb") as fh:
            value = pickle.load(fh)
    except (OSError, pickle.UnpicklingError, EOFError) as exc:
        raise ValueError(f"unreadable fleet checkpoint {path}: {exc}") from exc
    if not isinstance(value, FleetCheckpoint) or value.version != CHECKPOINT_VERSION:
        raise ValueError(
            f"{path} is not a version-{CHECKPOINT_VERSION} fleet checkpoint"
        )
    obs.inc("repro_fleet_checkpoint_loads_total")
    return value
