"""An ``nvidia-smi``-like facade over simulated nodes.

The paper set GPU power limits with ``nvidia-smi -pl <watts>`` on the
nodes allocated to each job.  This facade provides the same operations
(query, set, reset) against :class:`~repro.hardware.node.GpuNode`
objects, including the tool's validation behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.gpu import PowerLimitError
from repro.hardware.node import GpuNode


@dataclass(frozen=True)
class GpuInfo:
    """One row of ``nvidia-smi -q -d POWER``-style output."""

    node_name: str
    index: int
    name: str
    power_limit_w: float
    default_limit_w: float
    min_limit_w: float
    max_limit_w: float


class NvidiaSmi:
    """Power-limit management across a set of nodes."""

    def __init__(self, nodes: list[GpuNode]) -> None:
        if not nodes:
            raise ValueError("nvidia-smi facade needs at least one node")
        self.nodes = nodes

    def query(self) -> list[GpuInfo]:
        """Power-limit info for every GPU on every node."""
        rows = []
        for node in self.nodes:
            for index, gpu in enumerate(node.gpus):
                rows.append(
                    GpuInfo(
                        node_name=node.name,
                        index=index,
                        name=gpu.envelope.name,
                        power_limit_w=gpu.power_limit_w,
                        default_limit_w=gpu.envelope.tdp_w,
                        min_limit_w=gpu.envelope.cap_min_w,
                        max_limit_w=gpu.envelope.cap_max_w,
                    )
                )
        return rows

    def set_power_limit(self, watts: float) -> int:
        """``nvidia-smi -pl <watts>`` on every GPU; returns GPUs changed.

        Raises
        ------
        PowerLimitError
            If the value is outside the supported range — no GPU is
            changed in that case (validation happens first, as the real
            tool rejects the value up front).
        """
        # Validate against every GPU before mutating any (a mixed pool
        # rejects a value any of its platforms cannot honour).
        for node in self.nodes:
            for gpu in node.gpus:
                spec = gpu.spec
                if not (spec.cap_min_w <= watts <= spec.cap_max_w):
                    raise PowerLimitError(
                        f"{node.name} {spec.name}: {watts:.0f} W outside "
                        f"supported range [{spec.cap_min_w:.0f}, "
                        f"{spec.cap_max_w:.0f}] W"
                    )
        changed = 0
        for node in self.nodes:
            node.set_gpu_power_limit(watts)
            changed += len(node.gpus)
        return changed

    def reset_power_limit(self) -> int:
        """Restore default (TDP) limits; returns GPUs changed."""
        changed = 0
        for node in self.nodes:
            node.reset_gpu_power_limit()
            changed += len(node.gpus)
        return changed
