"""A power-aware batch scheduler driven by application power profiles.

Implements the Section VI-A deployment story: each scheduling cycle
(30 s), the batch system classifies queued VASP jobs from their input
files, applies the cap policy to the job's GPUs at launch, and admits jobs
only while the projected facility power stays inside the budget.  Because
capped jobs draw less power, the policy lets more jobs run concurrently
under a tight budget — trading a small, workload-dependent slowdown
(quantified in Fig 12) for throughput.

The scheduler uses a fast analytic estimator (phase durations and DVFS
slowdowns, no trace rendering) so thousands of jobs schedule in
milliseconds.
"""

from __future__ import annotations

import heapq
import logging
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro import obs
from repro.hardware.gpu import GpuModel
from repro.hardware.platform import Platform, get_platform
from repro.hardware.variability import ManufacturingVariation
from repro.perfmodel.power import demand_power_w, duty_cycle_power_w
from repro.runner.cache import RunCache, caching_disabled, fingerprint
from repro.vasp.parallel import layout_for
from repro.workloads.registry import workload_model_id
from repro.vasp.workload import VaspWorkload
from repro.capping.policy import CapPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.prediction.model import TwoStageSurrogate

#: Non-GPU node power while a VASP job runs (CPU + DDR + NICs + board at
#: typical activity) on the default a100-40g platform.  Kept as a module
#: constant for callers that want the paper's number; platform-aware code
#: reads ``NodeSpec.host_power_w`` instead.
HOST_POWER_W: float = get_platform().node.host_power_w
#: Idle power of an unallocated a100-40g node (mid-range of the 410-510 W
#: window).  Platform-aware code reads ``NodeSpec.idle_node_w``.
IDLE_NODE_W: float = get_platform().node.idle_node_w


@dataclass(frozen=True)
class RunEstimate:
    """Analytic runtime/power estimate for one job at one cap."""

    runtime_s: float
    mean_node_power_w: float
    peak_node_power_w: float

    @property
    def energy_per_node_j(self) -> float:
        """Mean energy one node spends over the run."""
        return self.runtime_s * self.mean_node_power_w


def estimate_run(
    workload: VaspWorkload,
    n_nodes: int,
    cap_w: float | None = None,
    platform: "str | Platform | None" = None,
) -> RunEstimate:
    """Estimate runtime and node power for a job under a GPU power cap.

    Uses a nominal (variation-free) GPU so estimates are deterministic —
    this is what a scheduler could precompute per workload class.  The
    GPU model, GPU count and host power come from ``platform`` (None
    means the registry default, a100-40g).
    """
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
    node_spec = get_platform(platform).node
    gpu = GpuModel(
        serial="NOMINAL",
        spec=node_spec.gpu,
        variation=ManufacturingVariation.nominal(),
    )
    if cap_w is not None:
        gpu.set_power_limit(cap_w)
    parallel = layout_for(workload, n_nodes)
    phases = workload.phases(parallel)
    total_time = 0.0
    total_energy = 0.0
    peak = 0.0
    gpus_per_node = node_spec.gpus_per_node
    for phase in phases:
        profile = phase.gpu_profile
        if profile.duty_cycle <= 0.0:
            gpu_w = gpu.idle_power_w
            duration = phase.duration_s
        else:
            demand = demand_power_w(profile, gpu.envelope)
            sample = gpu.resolve_phase(demand, profile.compute_fraction)
            gpu_w = duty_cycle_power_w(
                sample.power_w, profile.duty_cycle, gpu.idle_power_w
            )
            duration = phase.duration_s * (
                profile.duty_cycle * sample.slowdown + (1.0 - profile.duty_cycle)
            )
        node_w = gpus_per_node * gpu_w + node_spec.host_power_w
        total_time += duration
        total_energy += duration * node_w
        peak = max(peak, node_w)
    mean_power = total_energy / total_time if total_time > 0 else node_spec.idle_node_w
    return RunEstimate(
        runtime_s=total_time, mean_node_power_w=mean_power, peak_node_power_w=peak
    )


logger = logging.getLogger(__name__)

#: Memoized estimates: scheduling cycles re-estimate the same (workload,
#: nodes, cap) triples thousands of times, and the estimator is pure.
_ESTIMATE_CACHE = RunCache(maxsize=1024, name="estimate")


def estimate_cache() -> RunCache:
    """The process-wide cache behind :func:`cached_estimate_run`."""
    return _ESTIMATE_CACHE


def cached_estimate_run(
    workload: VaspWorkload,
    n_nodes: int,
    cap_w: float | None = None,
    platform: "str | Platform | None" = None,
) -> RunEstimate:
    """Content-keyed memoization of :func:`estimate_run`.

    The estimator is deterministic (nominal GPU, no sampling), so the
    result is fully identified by the workload fingerprint, node count,
    cap and platform id — estimates for different platforms never
    collide.  ``REPRO_CACHE=0`` bypasses the cache.
    """
    if caching_disabled():
        return estimate_run(workload, n_nodes, cap_w, platform)
    plat = get_platform(platform)
    key = fingerprint(
        "estimate_run", workload_model_id(workload), workload, n_nodes, cap_w, plat.id
    )
    return _ESTIMATE_CACHE.get_or_compute(
        key, lambda: estimate_run(workload, n_nodes, cap_w, plat)
    )


@dataclass
class Job:
    """One queued job (any workload from the registry zoo)."""

    job_id: str
    workload: object
    n_nodes: int
    submit_s: float = 0.0

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if self.submit_s < 0:
            raise ValueError(f"submit_s must be >= 0, got {self.submit_s}")


@dataclass(frozen=True)
class JobRecord:
    """Outcome of one job in a schedule."""

    job_id: str
    start_s: float
    end_s: float
    n_nodes: int
    cap_w: float
    mean_node_power_w: float

    @property
    def runtime_s(self) -> float:
        """Wall time of the job."""
        return self.end_s - self.start_s


@dataclass(frozen=True)
class SchedulerConfig:
    """Scheduler knobs: pool size, budget, cycle length, policy."""

    n_nodes: int = 16
    power_budget_w: float = 16 * 1200.0
    cycle_s: float = 30.0
    policy: CapPolicy = field(default_factory=CapPolicy.half_tdp)
    #: Hardware platform the pool runs on (None = registry default).
    platform: "str | Platform | None" = None
    #: Learned fast path for admission estimates.  In-envelope
    #: predictions replace the analytic estimator; out-of-envelope jobs
    #: (and ``REPRO_SURROGATE=0``) fall back to it, counted in the
    #: ``repro_surrogate_*`` metrics.  None = analytic only.
    surrogate: "TwoStageSurrogate | None" = None

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if self.power_budget_w <= 0:
            raise ValueError("power_budget_w must be positive")
        if self.cycle_s <= 0:
            raise ValueError("cycle_s must be positive")


@dataclass
class ScheduleResult:
    """A completed schedule with its power timeline."""

    records: list[JobRecord]
    makespan_s: float
    #: (cycle start time, projected system power) samples.
    power_timeline: list[tuple[float, float]]
    peak_power_w: float
    budget_w: float

    @property
    def budget_respected(self) -> bool:
        """True when projected power never exceeded the budget."""
        return self.peak_power_w <= self.budget_w + 1e-9

    def mean_wait_s(self) -> float:
        """Mean queue wait (start - submit is not tracked; start time)."""
        if not self.records:
            return 0.0
        return sum(r.start_s for r in self.records) / len(self.records)

    def total_node_seconds(self) -> float:
        """Aggregate node-seconds consumed."""
        return sum(r.runtime_s * r.n_nodes for r in self.records)

    def records_chronological(self) -> list[JobRecord]:
        """Records ordered by start time (ties broken by job id).

        The order a trace-streaming replay must process jobs in so node
        allocations mirror the schedule.
        """
        return sorted(self.records, key=lambda r: (r.start_s, r.job_id))


class PowerAwareScheduler:
    """FCFS-with-backfill scheduler under a facility power budget."""

    def __init__(self, config: SchedulerConfig) -> None:
        self.config = config
        #: Per-scheduler memo of surrogate admission estimates — cycles
        #: re-estimate the same (workload, nodes, cap) triples, and the
        #: analytic path has :func:`cached_estimate_run` for the same
        #: reason.
        self._admission_memo: dict[
            tuple[str, int, float | None], RunEstimate | None
        ] = {}

    def _admission_estimate(
        self,
        workload: VaspWorkload,
        n_nodes: int,
        cap_w: float | None,
        plat: Platform,
    ) -> RunEstimate:
        """Admission estimate: surrogate fast path, analytic fallback.

        The surrogate answers from scheduler-visible features in ~0.1 ms;
        anything out of its training envelope (or an unset/disabled
        surrogate) uses the exact analytic estimator instead, so admission
        decisions never rest on an extrapolated prediction.
        """
        surrogate = self.config.surrogate
        if surrogate is not None:
            from repro.prediction.store import surrogate_disabled

            if not surrogate_disabled():
                key = (fingerprint(workload), n_nodes, cap_w)
                if key not in self._admission_memo:
                    prediction = surrogate.predict(workload, n_nodes, cap_w, plat.id)
                    # Out-of-envelope memoizes as None so the fallback
                    # decision (and its metric) is made once per triple,
                    # not once per scheduling cycle.
                    self._admission_memo[key] = (
                        RunEstimate(
                            runtime_s=prediction.runtime_s,
                            mean_node_power_w=prediction.mean_node_power_w,
                            peak_node_power_w=prediction.hpm_w,
                        )
                        if prediction.in_envelope
                        else None
                    )
                estimate = self._admission_memo[key]
                if estimate is not None:
                    return estimate
        return cached_estimate_run(workload, n_nodes, cap_w, plat)

    def schedule(self, jobs: list[Job]) -> ScheduleResult:
        """Run the full schedule for a job list.

        Jobs are considered FCFS in submit order; a job that does not fit
        (nodes or power) blocks only itself — later jobs may backfill.
        """
        with obs.span(
            "scheduler.schedule", jobs=len(jobs), n_nodes=self.config.n_nodes
        ) as sched_span:
            result = self._schedule_inner(jobs)
            sched_span.annotate(
                makespan_s=result.makespan_s, cycles=len(result.power_timeline)
            )
        obs.inc("repro_scheduler_jobs_total", len(jobs))
        obs.inc("repro_scheduler_cycles_total", len(result.power_timeline))
        logger.debug(
            "scheduled %d jobs in %d cycles; makespan %.0f s, peak %.0f W",
            len(jobs),
            len(result.power_timeline),
            result.makespan_s,
            result.peak_power_w,
        )
        return result

    def _schedule_inner(self, jobs: list[Job]) -> ScheduleResult:
        cfg = self.config
        plat = get_platform(cfg.platform)
        idle_node_w = plat.node.idle_node_w
        queue = sorted(jobs, key=lambda j: (j.submit_s, j.job_id))
        free_nodes = cfg.n_nodes
        running: list[tuple[float, str, int, float]] = []  # (end, id, nodes, power)
        records: list[JobRecord] = []
        power_timeline: list[tuple[float, float]] = []
        peak_power = 0.0
        now = 0.0
        pending = list(queue)
        max_cycles = 10_000_000
        cycles = 0
        while pending or running:
            cycles += 1
            if cycles > max_cycles:
                raise RuntimeError("scheduler exceeded cycle limit; check job sizes")
            # Complete finished jobs.
            while running and running[0][0] <= now + 1e-9:
                _, _, nodes, _ = heapq.heappop(running)
                free_nodes += nodes
            running_power = sum(p * n for _, _, n, p in running)
            # Try to start pending jobs (FCFS with backfill).
            still_pending: list[Job] = []
            for job in pending:
                if job.submit_s > now + 1e-9:
                    still_pending.append(job)
                    continue
                if job.n_nodes > cfg.n_nodes:
                    raise ValueError(
                        f"job {job.job_id} wants {job.n_nodes} nodes; pool has {cfg.n_nodes}"
                    )
                cap = cfg.policy.cap_for(job.workload)
                estimate = self._admission_estimate(
                    job.workload, job.n_nodes, cap, plat
                )
                idle_after = free_nodes - job.n_nodes
                projected = (
                    running_power
                    + estimate.mean_node_power_w * job.n_nodes
                    + max(idle_after, 0) * idle_node_w
                )
                if job.n_nodes <= free_nodes and projected <= cfg.power_budget_w:
                    end = now + estimate.runtime_s
                    heapq.heappush(
                        running,
                        (end, job.job_id, job.n_nodes, estimate.mean_node_power_w),
                    )
                    free_nodes -= job.n_nodes
                    running_power += estimate.mean_node_power_w * job.n_nodes
                    records.append(
                        JobRecord(
                            job_id=job.job_id,
                            start_s=now,
                            end_s=end,
                            n_nodes=job.n_nodes,
                            cap_w=cap,
                            mean_node_power_w=estimate.mean_node_power_w,
                        )
                    )
                else:
                    still_pending.append(job)
            pending = still_pending
            system_power = running_power + free_nodes * idle_node_w
            power_timeline.append((now, system_power))
            peak_power = max(peak_power, system_power)
            # Advance one scheduling cycle.  The state only changes at the
            # next event (a job ending or a submission arriving), so when
            # that is further than a cycle away, skip ahead along the
            # cycle grid instead of idling through empty cycles.
            next_tick = now + cfg.cycle_s
            events = [running[0][0]] if running else []
            events += [j.submit_s for j in pending if j.submit_s > now + 1e-9]
            if events:
                horizon = min(events)
                if horizon > next_tick:
                    skipped = math.ceil((horizon - now) / cfg.cycle_s)
                    next_tick = now + skipped * cfg.cycle_s
            now = next_tick
        makespan = max((r.end_s for r in records), default=0.0)
        return ScheduleResult(
            records=records,
            makespan_s=makespan,
            power_timeline=power_timeline,
            peak_power_w=peak_power,
            budget_w=cfg.power_budget_w,
        )


def half_tdp_cap_w(platform: "str | Platform | None" = None) -> float:
    """50 % of the platform GPU's TDP — the paper's recommended cap."""
    return get_platform(platform).gpu.tdp_w / 2.0


def scheduling_cycle_s() -> float:
    """The paper's quoted scheduling cycle length."""
    return 30.0


def required_cycles(makespan_s: float, cycle_s: float = 30.0) -> int:
    """Scheduling cycles a makespan spans (utility for reports)."""
    if makespan_s < 0:
        raise ValueError("makespan_s must be non-negative")
    return int(math.ceil(makespan_s / cycle_s))
