"""Cap policies from application power profiles.

Section VI-A: "VASP can run at only 50 % of TDP with a less than 10 %
performance decrease, and the lower power-demanding jobs, DFT functional
calculations, can run without visible performance loss at this power
limit.  The batch system ... can determine the workload type of VASP jobs
in the queue without costly computation."

:func:`classify_workload` is that cheap determination (it reads INCAR
tags, which the scheduler can see); :class:`CapPolicy` maps classes to
GPU power caps.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.hardware.platform import Platform, get_platform
from repro.vasp.incar import Incar
from repro.vasp.workload import VaspWorkload


class WorkloadClass(enum.Enum):
    """Power classes of VASP workloads, from the paper's findings."""

    #: Higher-order methods (HSE, RPA): power-hungry, cap-sensitive.
    HIGHER_ORDER = "higher_order"
    #: Basic DFT functional calculations (incl. vdW): moderate power,
    #: nearly cap-insensitive.
    BASIC_DFT = "basic_dft"


def classify_workload(source: Incar | VaspWorkload) -> WorkloadClass:
    """Classify a job from its INCAR alone (no costly computation).

    Accepts either the INCAR or a full workload, because the scheduler
    only ever sees input files.
    """
    incar = source.incar if isinstance(source, VaspWorkload) else source
    if incar.functional.is_higher_order:
        return WorkloadClass.HIGHER_ORDER
    return WorkloadClass.BASIC_DFT


def _default_caps(platform: "str | Platform | None" = None) -> dict[WorkloadClass, float]:
    half_tdp = get_platform(platform).gpu.tdp_w / 2.0
    return {
        WorkloadClass.HIGHER_ORDER: half_tdp,  # <10 % loss (Fig 12)
        WorkloadClass.BASIC_DFT: half_tdp,  # no visible loss (Fig 12)
    }


@dataclass
class CapPolicy:
    """Workload class -> GPU power cap, with an uncapped escape hatch.

    Caps are validated against (and the 50 %-of-TDP defaults derived
    from) ``platform``'s GPU spec; None means the registry default.
    """

    caps_w: dict[WorkloadClass, float] | None = None
    enabled: bool = True
    platform: "str | Platform | None" = None

    def __post_init__(self) -> None:
        spec = get_platform(self.platform).gpu
        if self.caps_w is None:
            self.caps_w = _default_caps(self.platform)
        for cls, cap in self.caps_w.items():
            if not (spec.cap_min_w <= cap <= spec.cap_max_w):
                raise ValueError(
                    f"cap for {cls.value} ({cap:.0f} W) outside {spec.name} "
                    f"range [{spec.cap_min_w:.0f}, {spec.cap_max_w:.0f}] W"
                )

    def cap_for(self, source: Incar | VaspWorkload) -> float:
        """The GPU power limit this policy applies to a job."""
        if not self.enabled:
            return get_platform(self.platform).gpu.tdp_w
        assert self.caps_w is not None
        return self.caps_w[classify_workload(source)]

    @classmethod
    def uncapped(cls, platform: "str | Platform | None" = None) -> "CapPolicy":
        """The do-nothing baseline policy."""
        return cls(enabled=False, platform=platform)

    @classmethod
    def half_tdp(cls, platform: "str | Platform | None" = None) -> "CapPolicy":
        """The paper's recommended 50 %-of-TDP policy."""
        return cls(platform=platform)
