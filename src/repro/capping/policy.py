"""Cap policies from application power profiles.

Section VI-A: "VASP can run at only 50 % of TDP with a less than 10 %
performance decrease, and the lower power-demanding jobs, DFT functional
calculations, can run without visible performance loss at this power
limit.  The batch system ... can determine the workload type of VASP jobs
in the queue without costly computation."

:func:`classify_workload` is that cheap determination (it reads INCAR
tags, which the scheduler can see); :class:`CapPolicy` maps classes to
GPU power caps.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.units.constants import A100_40GB
from repro.vasp.incar import Incar
from repro.vasp.workload import VaspWorkload


class WorkloadClass(enum.Enum):
    """Power classes of VASP workloads, from the paper's findings."""

    #: Higher-order methods (HSE, RPA): power-hungry, cap-sensitive.
    HIGHER_ORDER = "higher_order"
    #: Basic DFT functional calculations (incl. vdW): moderate power,
    #: nearly cap-insensitive.
    BASIC_DFT = "basic_dft"


def classify_workload(source: Incar | VaspWorkload) -> WorkloadClass:
    """Classify a job from its INCAR alone (no costly computation).

    Accepts either the INCAR or a full workload, because the scheduler
    only ever sees input files.
    """
    incar = source.incar if isinstance(source, VaspWorkload) else source
    if incar.functional.is_higher_order:
        return WorkloadClass.HIGHER_ORDER
    return WorkloadClass.BASIC_DFT


def _default_caps() -> dict[WorkloadClass, float]:
    half_tdp = A100_40GB.tdp_w / 2.0
    return {
        WorkloadClass.HIGHER_ORDER: half_tdp,  # <10 % loss (Fig 12)
        WorkloadClass.BASIC_DFT: half_tdp,  # no visible loss (Fig 12)
    }


@dataclass
class CapPolicy:
    """Workload class -> GPU power cap, with an uncapped escape hatch."""

    caps_w: dict[WorkloadClass, float] = field(default_factory=_default_caps)
    enabled: bool = True

    def __post_init__(self) -> None:
        env = A100_40GB
        for cls, cap in self.caps_w.items():
            if not (env.cap_min_w <= cap <= env.cap_max_w):
                raise ValueError(
                    f"cap for {cls.value} ({cap:.0f} W) outside "
                    f"[{env.cap_min_w:.0f}, {env.cap_max_w:.0f}] W"
                )

    def cap_for(self, source: Incar | VaspWorkload) -> float:
        """The GPU power limit this policy applies to a job."""
        if not self.enabled:
            return A100_40GB.tdp_w
        return self.caps_w[classify_workload(source)]

    @classmethod
    def uncapped(cls) -> "CapPolicy":
        """The do-nothing baseline policy."""
        return cls(enabled=False)

    @classmethod
    def half_tdp(cls) -> "CapPolicy":
        """The paper's recommended 50 %-of-TDP policy."""
        return cls()
