"""Cap policies from application power profiles.

Section VI-A: "VASP can run at only 50 % of TDP with a less than 10 %
performance decrease, and the lower power-demanding jobs, DFT functional
calculations, can run without visible performance loss at this power
limit.  The batch system ... can determine the workload type of VASP jobs
in the queue without costly computation."

:func:`classify_workload` is that cheap determination (it reads INCAR
tags, which the scheduler can see); :class:`CapPolicy` maps classes to
GPU power caps.
"""

from __future__ import annotations

import enum
import itertools
import logging
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro import obs
from repro.hardware.platform import Platform, get_platform
from repro.vasp.incar import Incar
from repro.vasp.workload import VaspWorkload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.prediction.model import TwoStageSurrogate

logger = logging.getLogger(__name__)


class WorkloadClass(enum.Enum):
    """Power classes of workloads, from the paper's findings."""

    #: Higher-order methods (HSE, RPA): power-hungry, cap-sensitive.
    HIGHER_ORDER = "higher_order"
    #: Basic DFT functional calculations (incl. vdW): moderate power,
    #: nearly cap-insensitive.
    BASIC_DFT = "basic_dft"
    #: Not classifiable from the inputs: an unregistered workload type,
    #: or a registered model that declines to pick a power class.
    #: Policies treat OTHER fail-safe (no cap; see :meth:`CapPolicy.cap_for`).
    OTHER = "other"


def classify_workload(source: "Incar | object") -> WorkloadClass:
    """Classify a job from scheduler-visible inputs (no costly computation).

    VASP jobs classify from the INCAR alone, exactly as before — pass the
    :class:`~repro.vasp.incar.Incar` or the full workload.  Any other
    workload classifies through its registered
    :class:`~repro.workloads.registry.WorkloadModel` hint (the model's
    ``classifier``/``class_hint``); workload types the registry does not
    know fall back to :attr:`WorkloadClass.OTHER` instead of raising.
    """
    incar = source.incar if isinstance(source, VaspWorkload) else source
    if isinstance(incar, Incar):
        if incar.functional.is_higher_order:
            return WorkloadClass.HIGHER_ORDER
        return WorkloadClass.BASIC_DFT
    from repro.workloads import model_for

    model = model_for(source)
    if model is None:
        return WorkloadClass.OTHER
    return WorkloadClass(model.classify(source))


def _default_caps(platform: "str | Platform | None" = None) -> dict[WorkloadClass, float]:
    half_tdp = get_platform(platform).gpu.tdp_w / 2.0
    return {
        WorkloadClass.HIGHER_ORDER: half_tdp,  # <10 % loss (Fig 12)
        WorkloadClass.BASIC_DFT: half_tdp,  # no visible loss (Fig 12)
    }


@dataclass
class CapPolicy:
    """Workload class -> GPU power cap, with an uncapped escape hatch.

    Caps are validated against (and the 50 %-of-TDP defaults derived
    from) ``platform``'s GPU spec; None means the registry default.
    """

    caps_w: dict[WorkloadClass, float] | None = None
    enabled: bool = True
    platform: "str | Platform | None" = None

    def __post_init__(self) -> None:
        spec = get_platform(self.platform).gpu
        if self.caps_w is None:
            self.caps_w = _default_caps(self.platform)
        for cls, cap in self.caps_w.items():
            if not (spec.cap_min_w <= cap <= spec.cap_max_w):
                raise ValueError(
                    f"cap for {cls.value} ({cap:.0f} W) outside {spec.name} "
                    f"range [{spec.cap_min_w:.0f}, {spec.cap_max_w:.0f}] W"
                )

    def cap_for(self, source: "Incar | object") -> float:
        """The GPU power limit this policy applies to a job.

        Classes without an assigned cap — notably
        :attr:`WorkloadClass.OTHER` under the default two-class caps —
        run uncapped (platform TDP): an unknown workload must never be
        throttled by a policy that knows nothing about it.
        """
        if not self.enabled:
            return get_platform(self.platform).gpu.tdp_w
        assert self.caps_w is not None
        cls = classify_workload(source)
        cap = self.caps_w.get(cls)
        if cap is None:
            return get_platform(self.platform).gpu.tdp_w
        return cap

    @classmethod
    def uncapped(cls, platform: "str | Platform | None" = None) -> "CapPolicy":
        """The do-nothing baseline policy."""
        return cls(enabled=False, platform=platform)

    @classmethod
    def half_tdp(cls, platform: "str | Platform | None" = None) -> "CapPolicy":
        """The paper's recommended 50 %-of-TDP policy."""
        return cls(platform=platform)


# ---------------------------------------------------------------------------
# Cap-policy search (surrogate fast path, exact winner verification)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CandidateOutcome:
    """One evaluated candidate policy: its caps, objective and feasibility."""

    cap_higher_w: float
    cap_dft_w: float
    #: Total energy over the workload set (per-node energy x nodes), J.
    energy_j: float
    #: Worst per-workload cap-induced slowdown under this policy.
    max_slowdown: float

    def feasible(self, slowdown_limit: float) -> bool:
        """Whether the worst slowdown stays inside the limit."""
        return self.max_slowdown <= slowdown_limit + 1e-9


@dataclass
class CapPolicySearchResult:
    """Outcome of a cap-policy search over a candidate grid.

    When the search ran on the surrogate, the winner's objective is
    re-simulated exactly (the verify-the-winner contract) and
    ``verification_error`` reports how far the fast path was off —
    candidates that lost are never re-simulated, which is where the
    speedup comes from.
    """

    best_policy: CapPolicy
    best: CandidateOutcome
    outcomes: list[CandidateOutcome]
    slowdown_limit: float
    used_surrogate: bool
    #: Surrogate predictions served / engine fallbacks during the search.
    predictions: int = 0
    fallbacks: int = 0
    #: The winner's objective re-simulated exactly (surrogate runs only).
    exact_energy_j: float | None = None
    exact_max_slowdown: float | None = None
    notes: list[str] = field(default_factory=list)

    @property
    def verification_error(self) -> float | None:
        """Relative surrogate-vs-exact error on the winner's objective."""
        if self.exact_energy_j is None or not self.used_surrogate:
            return None
        return abs(self.best.energy_j - self.exact_energy_j) / self.exact_energy_j


def _pair_key(workload: "object", n_nodes: int) -> tuple[str, int]:
    return (workload.name, n_nodes)


def _exact_table(
    pairs: "Sequence[tuple[object, int]]",
    caps: Sequence[float],
    platform: "str | Platform | None",
    seed: int,
    workers: int | None,
) -> dict[tuple[str, int, float | None], tuple[float, float]]:
    """Engine truth for every (workload, nodes) x (caps + uncapped) point.

    Returns (energy-per-node J, slowdown) per point, computed through the
    sweep executor — candidates sharing a cap for a class share these
    engine runs, and the uncapped baseline is one run per pair.
    """
    from repro.runner.sweep import RunSpec, SweepExecutor

    plat = get_platform(platform)
    cap_grid: list[float | None] = [None] + list(dict.fromkeys(caps))
    specs = [
        RunSpec(
            workload=workload,
            n_nodes=n_nodes,
            gpu_cap_w=cap_w,
            seed=seed,
            platform=plat.id,
        )
        for workload, n_nodes in pairs
        for cap_w in cap_grid
    ]
    results = SweepExecutor(workers=workers).run(specs)
    table: dict[tuple[str, int, float | None], tuple[float, float]] = {}
    measured = {}
    index = 0
    for workload, n_nodes in pairs:
        for cap_w in cap_grid:
            measured[(workload.name, n_nodes, cap_w)] = results[index]
            index += 1
    for workload, n_nodes in pairs:
        baseline = measured[(workload.name, n_nodes, None)]
        for cap_w in cap_grid:
            run = measured[(workload.name, n_nodes, cap_w)]
            table[(workload.name, n_nodes, cap_w)] = (
                run.result.total_energy_j() / n_nodes,
                run.runtime_s / baseline.runtime_s,
            )
    return table


def search_cap_policy(
    pairs: "Sequence[tuple[object, int]]",
    caps_w: Sequence[float],
    platform: "str | Platform | None" = None,
    slowdown_limit: float = 1.25,
    surrogate: "TwoStageSurrogate | None" = None,
    seed: int = 7,
    workers: int | None = None,
) -> CapPolicySearchResult:
    """Search per-class cap assignments for the lowest-energy policy.

    Candidates are the cross product of ``caps_w`` over the two workload
    classes.  A candidate's objective is the total energy-to-solution of
    the (workload, node count) set under its caps; candidates whose worst
    cap-induced slowdown exceeds ``slowdown_limit`` are infeasible (when
    nothing is feasible, the least-slow candidate wins and a note says
    so).

    With ``surrogate`` set, every candidate point is predicted instead of
    simulated (out-of-envelope predictions fall back to the engine
    per-point), and only the winning policy is re-simulated exactly —
    the fast path evaluates ``caps^2`` candidates for the engine cost of
    roughly one.

    Non-VASP workloads from the registry zoo participate through their
    registered class hints; pairs that classify as
    :attr:`WorkloadClass.OTHER` share the basic-DFT cap axis during the
    search, and the winning policy then carries an explicit OTHER cap so
    :meth:`CapPolicy.cap_for` applies what the search scored (VASP-only
    searches produce exactly the two-class policy they always did).
    """
    if not pairs:
        raise ValueError("need at least one (workload, n_nodes) pair")
    caps = list(dict.fromkeys(caps_w))
    if not caps:
        raise ValueError("need at least one candidate cap")
    plat = get_platform(platform)
    spec = plat.gpu
    for cap in caps:
        if not (spec.cap_min_w <= cap <= spec.cap_max_w):
            raise ValueError(
                f"candidate cap {cap:.0f} W outside {spec.name} range "
                f"[{spec.cap_min_w:.0f}, {spec.cap_max_w:.0f}] W"
            )

    classes = {
        _pair_key(workload, n_nodes): classify_workload(workload)
        for workload, n_nodes in pairs
    }

    predictions = 0
    fallbacks = 0
    notes: list[str] = []

    with obs.span(
        "capping.search_cap_policy",
        candidates=len(caps) ** 2,
        pairs=len(pairs),
        surrogate=surrogate is not None,
    ):
        # Per-point measurements for every candidate cap (plus uncapped).
        if surrogate is None:
            table = _exact_table(pairs, caps, plat, seed, workers)
        else:
            table = {}
            exact_pairs: list[tuple[VaspWorkload, int]] = []
            seen_pairs: set[tuple[str, int]] = set()
            exact_caps: set[float] = set()
            for workload, n_nodes in pairs:
                for cap_w in caps:
                    prediction = surrogate.predict(workload, n_nodes, cap_w, plat.id)
                    predictions += 1
                    if prediction.in_envelope:
                        table[(workload.name, n_nodes, cap_w)] = (
                            prediction.energy_per_node_j,
                            prediction.slowdown,
                        )
                    else:
                        fallbacks += 1
                        if (workload.name, n_nodes) not in seen_pairs:
                            seen_pairs.add((workload.name, n_nodes))
                            exact_pairs.append((workload, n_nodes))
                        exact_caps.add(cap_w)
            if exact_pairs:
                notes.append(
                    f"{fallbacks} out-of-envelope point(s) re-simulated exactly"
                )
                exact = _exact_table(
                    exact_pairs, sorted(exact_caps), plat, seed, workers
                )
                for key, value in exact.items():
                    if key[2] is not None:
                        table[key] = value

        # Score every candidate from the point table.
        outcomes: list[CandidateOutcome] = []
        for cap_higher, cap_dft in itertools.product(caps, repeat=2):
            energy = 0.0
            worst = 1.0
            for workload, n_nodes in pairs:
                cls = classes[_pair_key(workload, n_nodes)]
                cap = cap_higher if cls is WorkloadClass.HIGHER_ORDER else cap_dft
                energy_per_node, slowdown = table[(workload.name, n_nodes, cap)]
                energy += energy_per_node * n_nodes
                worst = max(worst, slowdown)
            outcomes.append(
                CandidateOutcome(
                    cap_higher_w=cap_higher,
                    cap_dft_w=cap_dft,
                    energy_j=energy,
                    max_slowdown=worst,
                )
            )

        feasible = [o for o in outcomes if o.feasible(slowdown_limit)]
        if feasible:
            best = min(feasible, key=lambda o: o.energy_j)
        else:
            best = min(outcomes, key=lambda o: o.max_slowdown)
            notes.append(
                f"no candidate met the {slowdown_limit:.2f}x slowdown limit; "
                f"picked the least-slow one"
            )
        winner_caps_w = {
            WorkloadClass.HIGHER_ORDER: best.cap_higher_w,
            WorkloadClass.BASIC_DFT: best.cap_dft_w,
        }
        if any(cls is WorkloadClass.OTHER for cls in classes.values()):
            # OTHER pairs were scored on the DFT axis; pin that cap so the
            # resulting policy applies it instead of the TDP fallback.
            winner_caps_w[WorkloadClass.OTHER] = best.cap_dft_w
        best_policy = CapPolicy(caps_w=winner_caps_w, platform=plat)

        # Verify the winner: re-simulate only the winning policy exactly.
        exact_energy: float | None = None
        exact_worst: float | None = None
        if surrogate is not None:
            winner_caps = sorted({best.cap_higher_w, best.cap_dft_w})
            exact = _exact_table(pairs, winner_caps, plat, seed, workers)
            exact_energy = 0.0
            exact_worst = 1.0
            for workload, n_nodes in pairs:
                cls = classes[_pair_key(workload, n_nodes)]
                cap = (
                    best.cap_higher_w
                    if cls is WorkloadClass.HIGHER_ORDER
                    else best.cap_dft_w
                )
                energy_per_node, slowdown = exact[(workload.name, n_nodes, cap)]
                exact_energy += energy_per_node * n_nodes
                exact_worst = max(exact_worst, slowdown)

    result = CapPolicySearchResult(
        best_policy=best_policy,
        best=best,
        outcomes=outcomes,
        slowdown_limit=slowdown_limit,
        used_surrogate=surrogate is not None,
        predictions=predictions,
        fallbacks=fallbacks,
        exact_energy_j=exact_energy,
        exact_max_slowdown=exact_worst,
        notes=notes,
    )
    error = result.verification_error
    if error is not None:
        obs.observe(
            "repro_surrogate_winner_error",
            error,
            help_text="Surrogate-vs-exact relative error on search winners",
        )
        # Feed the drift trackers: the in-process surrogate stats and the
        # run ledger record the sentinel mines verification errors from.
        from repro.obs import ledger as run_ledger
        from repro.prediction.model import surrogate_stats

        surrogate_stats().record_verification(error)
        run_ledger.annotate_run(
            metrics={"winner_verification_error": round(error, 4)}
        )
        logger.debug(
            "cap-policy search winner verified: %.1f%% surrogate error",
            100.0 * error,
        )
    return result
