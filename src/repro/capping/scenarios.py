"""Named, seeded fleet scenarios: arrival processes, mixes, pools, failures.

:func:`repro.capping.fleet.job_stream` generates one synthetic mix with
Poisson arrivals — enough to compare cap policies, but not to exercise a
power optimizer against realistic demand.  A :class:`FleetScenario`
composes the pieces a production trace has:

* an *arrival process* — homogeneous Poisson, diurnally modulated
  Poisson (the day/night load swing every center sees), or trace-driven
  fixed submit times;
* a *workload mix* over registry references (``"PdO4"``,
  ``"milc:large"``...), with node widths sampled from each workload's
  healthy range;
* a *node pool* that may mix hardware platforms (round-robin, the same
  convention as ``repro fleet --platform a,b``);
* *failure events* — node drains injected as near-idle ``outage`` jobs
  that occupy capacity for the outage duration (an approximation: the
  drain queues like a job rather than preempting one, so it models
  scheduled maintenance windows rather than surprise kills).

Scenarios are registered by name (``repro fleet --scenario diurnal``)
and deterministic: the same (scenario, seed) builds the bit-identical
job list, so the serial/sharded/checkpointed fleet paths inherit their
bit-identity contract unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.capping.scheduler import Job
from repro.workloads import resolve_widths, resolve_workload

#: Arrival process kinds a scenario may declare.
ARRIVAL_KINDS: tuple[str, ...] = ("poisson", "diurnal", "trace")


@dataclass(frozen=True)
class ArrivalProcess:
    """When jobs arrive.

    ``poisson``: exponential interarrivals at ``mean_interarrival_s``.
    ``diurnal``: Poisson with sinusoidally modulated rate — the
    instantaneous mean interarrival swings between
    ``mean_interarrival_s / peak_factor`` (rush) and
    ``mean_interarrival_s * peak_factor`` (lull) over ``period_s``.
    ``trace``: fixed submit times (cycled, shifted by ``period_s`` per
    lap, when a scenario asks for more jobs than the trace holds).
    """

    kind: str = "poisson"
    mean_interarrival_s: float = 120.0
    period_s: float = 7200.0
    peak_factor: float = 3.0
    times_s: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ARRIVAL_KINDS:
            raise ValueError(
                f"arrival kind {self.kind!r} not one of {', '.join(ARRIVAL_KINDS)}"
            )
        if self.mean_interarrival_s <= 0:
            raise ValueError("mean_interarrival_s must be positive")
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")
        if self.peak_factor < 1.0:
            raise ValueError(f"peak_factor must be >= 1, got {self.peak_factor}")
        if self.kind == "trace":
            if not self.times_s:
                raise ValueError("trace arrivals need at least one time")
            if any(t < 0 for t in self.times_s) or list(self.times_s) != sorted(
                self.times_s
            ):
                raise ValueError("trace times must be non-negative and sorted")

    def submit_times(self, n_jobs: int, rng: np.random.Generator) -> list[float]:
        """The first ``n_jobs`` submit times of this process."""
        if self.kind == "trace":
            laps = [
                self.times_s[i % len(self.times_s)]
                + (i // len(self.times_s)) * self.period_s
                for i in range(n_jobs)
            ]
            return laps
        times: list[float] = []
        clock = 0.0
        for _ in range(n_jobs):
            times.append(clock)
            mean = self.mean_interarrival_s
            if self.kind == "diurnal":
                # Rate modulation in log space keeps the swing symmetric
                # around the nominal mean: x peak_factor at the trough of
                # the cosine, / peak_factor at its crest.
                phase = math.cos(2.0 * math.pi * clock / self.period_s)
                mean = self.mean_interarrival_s * self.peak_factor ** (-phase)
            clock += float(rng.exponential(mean))
        return times


@dataclass(frozen=True)
class FailureEvent:
    """One node-drain window: ``n_nodes`` drop out at ``at_s``."""

    at_s: float
    n_nodes: int = 1
    duration_s: float = 600.0

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError(f"at_s must be >= 0, got {self.at_s}")
        if self.n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if self.duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {self.duration_s}")


@dataclass(frozen=True)
class FleetScenario:
    """One named, seeded fleet scenario."""

    id: str
    description: str
    n_jobs: int = 24
    n_nodes: int = 16
    #: (workload reference, weight) pairs; resolved via the registry.
    mix: tuple[tuple[str, float], ...] = ()
    arrival: ArrivalProcess = field(default_factory=ArrivalProcess)
    #: Platform ids of the node pool (len > 1 = round-robin mixed pool).
    platforms: tuple[str, ...] = ()
    failures: tuple[FailureEvent, ...] = ()

    def __post_init__(self) -> None:
        if not self.id:
            raise ValueError("scenario id must be non-empty")
        if self.n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1, got {self.n_jobs}")
        if self.n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if not self.mix:
            raise ValueError(f"scenario {self.id}: mix must be non-empty")
        if any(weight <= 0 for _, weight in self.mix):
            raise ValueError(f"scenario {self.id}: mix weights must be positive")
        for failure in self.failures:
            if failure.n_nodes > self.n_nodes:
                raise ValueError(
                    f"scenario {self.id}: failure drains {failure.n_nodes} of "
                    f"{self.n_nodes} nodes"
                )

    def build_jobs(self, seed: int = 0, n_jobs: int | None = None) -> list[Job]:
        """The deterministic job list for one seed.

        Draw order (fixed; the determinism contract): one rng drives
        arrivals first, then per-job (workload, width) choices — so two
        calls with the same (scenario, seed) are bit-identical, and the
        fleet's serial/sharded paths see the same stream.  Failure
        drains are appended after the regular jobs and merged by submit
        time.
        """
        count = self.n_jobs if n_jobs is None else n_jobs
        if count < 1:
            raise ValueError(f"n_jobs must be >= 1, got {count}")
        rng = np.random.default_rng(seed)
        times = self.arrival.submit_times(count, rng)
        refs = [ref for ref, _ in self.mix]
        probs = np.array([weight for _, weight in self.mix], dtype=float)
        probs = probs / probs.sum()
        # One prototype per ref: instances are stateless descriptions, so
        # jobs of the same ref share the object (and the phase cache).
        prototypes = {ref: resolve_workload(ref) for ref in refs}
        widths = {
            ref: [w for w in resolve_widths(ref) if w <= self.n_nodes] or [1]
            for ref in refs
        }
        jobs: list[Job] = []
        for index, submit_s in enumerate(times):
            ref = refs[int(rng.choice(len(refs), p=probs))]
            n_nodes = int(rng.choice(widths[ref]))
            jobs.append(
                Job(
                    job_id=f"{prototypes[ref].name}@{index}",
                    workload=prototypes[ref],
                    n_nodes=n_nodes,
                    submit_s=float(submit_s),
                )
            )
        for at, failure in enumerate(self.failures):
            outage = resolve_workload("outage")
            jobs.append(
                Job(
                    job_id=f"outage@{at}",
                    workload=type(outage)(
                        name=f"outage_{failure.duration_s:.0f}s",
                        duration_s=failure.duration_s,
                    ),
                    n_nodes=failure.n_nodes,
                    submit_s=failure.at_s,
                )
            )
        jobs.sort(key=lambda job: (job.submit_s, job.job_id))
        return jobs


_SCENARIOS: dict[str, FleetScenario] = {}


def register_scenario(scenario: FleetScenario, replace: bool = False) -> None:
    """Register a scenario under its id."""
    if scenario.id in _SCENARIOS and not replace:
        raise ValueError(
            f"scenario {scenario.id!r} already registered "
            "(pass replace=True to override)"
        )
    _SCENARIOS[scenario.id] = scenario


def get_scenario(scenario: "str | FleetScenario") -> FleetScenario:
    """Resolve a scenario id (or pass a scenario through)."""
    if isinstance(scenario, FleetScenario):
        return scenario
    try:
        return _SCENARIOS[scenario]
    except KeyError:
        raise KeyError(
            f"unknown scenario {scenario!r}; known: {', '.join(scenario_ids())}"
        ) from None


def scenario_ids() -> list[str]:
    """Registered scenario ids, sorted."""
    return sorted(_SCENARIOS)


# ---------------------------------------------------------------------------
# Built-in scenarios
# ---------------------------------------------------------------------------

#: The production-like VASP-dominated mix with a zoo minority share.
_MIXED_PRODUCTION: tuple[tuple[str, float], ...] = (
    ("PdO4", 0.18),
    ("PdO2", 0.16),
    ("GaAsBi-64", 0.12),
    ("CuC_vdw", 0.10),
    ("Si256_hse", 0.10),
    ("Si128_acfdtr", 0.08),
    ("milc:small", 0.14),
    ("cloudsc:small", 0.12),
)

register_scenario(
    FleetScenario(
        id="diurnal",
        description=(
            "day/night demand swing: diurnally modulated Poisson arrivals "
            "over the production VASP+MILC+CLOUDSC mix, uniform pool"
        ),
        n_jobs=24,
        n_nodes=16,
        mix=_MIXED_PRODUCTION,
        arrival=ArrivalProcess(
            kind="diurnal", mean_interarrival_s=120.0, period_s=3600.0,
            peak_factor=3.0,
        ),
    )
)

register_scenario(
    FleetScenario(
        id="steady-mixed",
        description=(
            "steady Poisson arrivals over a heterogeneous zoo mix on a "
            "mixed a100-40g/h100-sxm pool"
        ),
        n_jobs=24,
        n_nodes=16,
        mix=(
            ("PdO4", 0.25),
            ("Si256_hse", 0.15),
            ("milc:small", 0.20),
            ("cloudsc:small", 0.15),
            ("multiphysics:small", 0.15),
            ("entropy:high", 0.10),
        ),
        arrival=ArrivalProcess(kind="poisson", mean_interarrival_s=120.0),
        platforms=("a100-40g", "h100-sxm"),
    )
)

register_scenario(
    FleetScenario(
        id="burst-maintenance",
        description=(
            "trace-driven submission bursts (campaign starts) with two "
            "scheduled node-drain windows mid-campaign"
        ),
        n_jobs=18,
        n_nodes=12,
        mix=(
            ("PdO2", 0.30),
            ("gemm-stream:burst", 0.15),
            ("multiphysics:small", 0.25),
            ("entropy:low", 0.30),
        ),
        arrival=ArrivalProcess(
            kind="trace",
            period_s=5400.0,
            times_s=(0.0, 5.0, 10.0, 20.0, 1800.0, 1805.0, 1815.0, 3600.0, 3610.0),
        ),
        failures=(
            FailureEvent(at_s=900.0, n_nodes=2, duration_s=900.0),
            FailureEvent(at_s=2700.0, n_nodes=1, duration_s=600.0),
        ),
    )
)
