"""Static DVFS control, for comparison against power capping.

Section V justifies the paper's choice: "While the DVFS method is
commonly employed for its ease of use, we chose to use power capping to
control the device power, which is more efficient and accurate in power
control" (citing Imes & Zhang).  This module makes that comparison
quantitative:

* **Power capping** is a closed loop: the board's controller adapts the
  clock per phase, so sustained power tracks the limit whatever kernel
  runs.
* **Static DVFS** (``nvidia-smi -lgc``-style) pins one clock for the whole
  job.  To *guarantee* a power target, the operator must provision for
  the hottest phase — over-throttling every other phase; provisioning for
  the average instead violates the target during hot phases.

:func:`compare_control` runs a workload both ways at the same target and
reports power-tracking error and runtime for each.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.gpu import GpuModel
from repro.hardware.platform import Platform, get_platform
from repro.hardware.variability import ManufacturingVariation
from repro.perfmodel.dvfs import capped_phase_slowdown, sustained_power_w
from repro.perfmodel.power import demand_power_w, duty_cycle_power_w
from repro.vasp.parallel import layout_for
from repro.vasp.workload import VaspWorkload

#: Discrete clock fractions a static-DVFS operator can pin (the A100
#: exposes ~15 MHz steps; operators use a coarse ladder).
CLOCK_LADDER: tuple[float, ...] = (1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2)


@dataclass(frozen=True)
class ControlOutcome:
    """One control scheme's result at a power target."""

    scheme: str
    target_w: float
    runtime_s: float
    mean_power_w: float
    peak_power_w: float
    #: RMS deviation of sustained active power from the target, over the
    #: phases where the target binds.
    tracking_error_w: float

    @property
    def target_violated(self) -> bool:
        """Whether any phase's sustained power exceeded the target."""
        return self.peak_power_w > self.target_w * 1.001


def _phase_table(
    workload: VaspWorkload,
    n_nodes: int,
    platform: "str | Platform | None" = None,
):
    """(duration, demand, compute_fraction, duty) per GPU-active phase."""
    parallel = layout_for(workload, n_nodes)
    gpu = GpuModel(
        serial="CTL",
        spec=get_platform(platform).gpu,
        variation=ManufacturingVariation.nominal(),
    )
    rows = []
    for phase in workload.phases(parallel):
        profile = phase.gpu_profile
        demand = (
            demand_power_w(profile, gpu.envelope) if profile.duty_cycle > 0 else 0.0
        )
        rows.append(
            (phase.duration_s, demand, profile.compute_fraction, profile.duty_cycle)
        )
    return gpu, rows


def run_with_capping(
    workload: VaspWorkload,
    target_w: float,
    n_nodes: int = 1,
    platform: "str | Platform | None" = None,
) -> ControlOutcome:
    """Per-phase adaptive control: the board's power-capping loop."""
    gpu, rows = _phase_table(workload, n_nodes, platform)
    gpu.set_power_limit(target_w)
    return _accumulate("capping", target_w, gpu, rows, clock=None)


def run_with_static_dvfs(
    workload: VaspWorkload,
    target_w: float,
    n_nodes: int = 1,
    provision_for: str = "worst",
    platform: "str | Platform | None" = None,
) -> ControlOutcome:
    """One pinned clock for the whole job.

    ``provision_for='worst'`` picks the fastest ladder step whose
    *hottest* phase stays under the target (safe, slow);
    ``'mean'`` provisions for the duty-weighted average demand
    (fast, violates the target during hot phases).
    """
    if provision_for not in ("worst", "mean"):
        raise ValueError(f"provision_for must be 'worst' or 'mean', got {provision_for!r}")
    gpu, rows = _phase_table(workload, n_nodes, platform)
    static = gpu.envelope.static_w
    demands = [d for _, d, _, duty in rows if duty > 0]
    if not demands:
        raise ValueError("workload has no GPU-active phases")
    if provision_for == "worst":
        reference = max(demands)
    else:
        weights = [t * duty for t, d, _, duty in rows if duty > 0]
        reference = float(np.average(demands, weights=weights))
    clock = gpu.spec.min_clock_fraction
    for step in CLOCK_LADDER:
        if sustained_power_w(reference, step, static) <= target_w:
            clock = step
            break
    return _accumulate("static_dvfs", target_w, gpu, rows, clock=clock)


def _accumulate(scheme, target_w, gpu, rows, clock):
    static = gpu.envelope.static_w
    total_time = 0.0
    total_energy = 0.0
    peak = 0.0
    sq_err = 0.0
    err_time = 0.0
    for duration, demand, cf, duty in rows:
        if duty <= 0.0:
            active_power = gpu.envelope.idle_w
            slowdown = 1.0
        elif clock is None:
            sample = gpu.resolve_phase(demand, cf)
            active_power = sample.power_w
            slowdown = duty * sample.slowdown + (1.0 - duty)
        else:
            active_power = float(sustained_power_w(demand, clock, static))
            slowdown = float(capped_phase_slowdown(clock, cf, duty))
        wall = duration * slowdown
        avg = duty_cycle_power_w(active_power, duty, gpu.envelope.idle_w)
        total_time += wall
        total_energy += wall * avg
        if duty > 0:
            peak = max(peak, active_power)
            # Tracking error counts phases where control binds: demand
            # above the target.
            if demand > target_w:
                sq_err += wall * (active_power - target_w) ** 2
                err_time += wall
    return ControlOutcome(
        scheme=scheme,
        target_w=target_w,
        runtime_s=total_time,
        mean_power_w=total_energy / total_time if total_time > 0 else 0.0,
        peak_power_w=peak,
        tracking_error_w=float(np.sqrt(sq_err / err_time)) if err_time > 0 else 0.0,
    )


@dataclass(frozen=True)
class ControlComparison:
    """Capping vs the two static-DVFS provisioning strategies."""

    capping: ControlOutcome
    dvfs_safe: ControlOutcome
    dvfs_mean: ControlOutcome

    def capping_wins(self) -> bool:
        """The paper's claim: capping is more efficient *and* accurate.

        More efficient: no slower than safe static DVFS.  More accurate:
        tighter power tracking than the mean-provisioned DVFS, without
        the safe variant's over-throttle or the mean variant's target
        violations.
        """
        return (
            self.capping.runtime_s <= self.dvfs_safe.runtime_s * 1.001
            and not self.capping.target_violated
            and self.capping.tracking_error_w
            <= min(self.dvfs_safe.tracking_error_w, self.dvfs_mean.tracking_error_w)
            + 1e-9
        )


def compare_control(
    workload: VaspWorkload,
    target_w: float,
    n_nodes: int = 1,
    platform: "str | Platform | None" = None,
) -> ControlComparison:
    """Run the three control schemes at the same power target."""
    plat = get_platform(platform)
    return ControlComparison(
        capping=run_with_capping(workload, target_w, n_nodes, plat),
        dvfs_safe=run_with_static_dvfs(workload, target_w, n_nodes, "worst", plat),
        dvfs_mean=run_with_static_dvfs(workload, target_w, n_nodes, "mean", plat),
    )
