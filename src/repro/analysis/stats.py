"""Distribution summaries: the numbers printed in the paper's figures.

Fig 3's text boxes report maximum / median / minimum node power alongside
the high power mode; Fig 9 draws violin plots with quartiles.  These
helpers compute those summaries from power samples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.kde import GaussianKDE
from repro.analysis.modes import fwhm, high_power_mode


@dataclass(frozen=True)
class DistributionSummary:
    """Max / median / min / mean plus the high power mode and its FWHM."""

    max_w: float
    median_w: float
    min_w: float
    mean_w: float
    high_power_mode_w: float
    fwhm_w: float
    n_samples: int

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view (report rendering)."""
        return {
            "max_w": self.max_w,
            "median_w": self.median_w,
            "min_w": self.min_w,
            "mean_w": self.mean_w,
            "high_power_mode_w": self.high_power_mode_w,
            "fwhm_w": self.fwhm_w,
            "n_samples": float(self.n_samples),
        }


def summarize(data, bandwidth: float | str = "silverman") -> DistributionSummary:
    """Full summary of a power sample (Fig 3 text-box contents)."""
    arr = np.asarray(data, dtype=float).ravel()
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    mode = high_power_mode(arr, bandwidth=bandwidth)
    return DistributionSummary(
        max_w=float(arr.max()),
        median_w=float(np.median(arr)),
        min_w=float(arr.min()),
        mean_w=float(arr.mean()),
        high_power_mode_w=mode.power_w,
        fwhm_w=fwhm(arr, mode=mode, bandwidth=bandwidth),
        n_samples=int(arr.size),
    )


@dataclass(frozen=True)
class ViolinStats:
    """Everything needed to draw one violin with quartiles (Fig 9)."""

    label: str
    q1_w: float
    median_w: float
    q3_w: float
    min_w: float
    max_w: float
    high_power_mode_w: float
    density_grid_w: np.ndarray
    density: np.ndarray

    @property
    def iqr_w(self) -> float:
        """Interquartile range."""
        return self.q3_w - self.q1_w


def violin_stats(
    data, label: str = "", bandwidth: float | str = "silverman", n_grid: int = 256
) -> ViolinStats:
    """Violin-plot statistics of a power sample."""
    arr = np.asarray(data, dtype=float).ravel()
    if arr.size == 0:
        raise ValueError("cannot build violin stats from an empty sample")
    q1, median, q3 = np.percentile(arr, [25.0, 50.0, 75.0])
    kde = GaussianKDE(arr, bandwidth=bandwidth)
    grid = kde.grid(n_points=n_grid)
    return ViolinStats(
        label=label,
        q1_w=float(q1),
        median_w=float(median),
        q3_w=float(q3),
        min_w=float(arr.min()),
        max_w=float(arr.max()),
        high_power_mode_w=high_power_mode(arr, bandwidth=bandwidth).power_w,
        density_grid_w=grid,
        density=kde.evaluate(grid),
    )
