"""Energy/performance trade-off metrics.

The paper's related work surveys metrics quantifying the capping
trade-off (energy-delay product, ET^2, and bounded-slowdown criteria,
refs [49]-[51]).  These are the quantities a centre optimizes when it
picks a cap: Fig 12's ~9 % slowdown at half power is a large EDP win.
"""

from __future__ import annotations

from dataclasses import dataclass


def energy_delay_product(energy_j: float, runtime_s: float) -> float:
    """EDP = E * T (joule-seconds); lower is better."""
    if energy_j < 0 or runtime_s < 0:
        raise ValueError("energy and runtime must be non-negative")
    return energy_j * runtime_s


def energy_delay_squared(energy_j: float, runtime_s: float) -> float:
    """ET^2 = E * T^2 — the voltage-invariant metric of Martin et al."""
    if energy_j < 0 or runtime_s < 0:
        raise ValueError("energy and runtime must be non-negative")
    return energy_j * runtime_s**2


@dataclass(frozen=True)
class CapTradeoff:
    """The trade-off one power cap buys relative to the default limit."""

    cap_w: float
    runtime_s: float
    energy_j: float
    reference_runtime_s: float
    reference_energy_j: float

    def __post_init__(self) -> None:
        if min(self.runtime_s, self.reference_runtime_s) <= 0:
            raise ValueError("runtimes must be positive")
        if min(self.energy_j, self.reference_energy_j) < 0:
            raise ValueError("energies must be non-negative")

    @property
    def slowdown(self) -> float:
        """Runtime multiplier vs the default limit."""
        return self.runtime_s / self.reference_runtime_s

    @property
    def energy_saving(self) -> float:
        """Relative energy saved vs the default limit (can be negative)."""
        return 1.0 - self.energy_j / self.reference_energy_j

    @property
    def edp_ratio(self) -> float:
        """EDP under the cap relative to the default (<1 = win)."""
        return energy_delay_product(self.energy_j, self.runtime_s) / energy_delay_product(
            self.reference_energy_j, self.reference_runtime_s
        )

    @property
    def et2_ratio(self) -> float:
        """ET^2 under the cap relative to the default (<1 = win)."""
        return energy_delay_squared(self.energy_j, self.runtime_s) / energy_delay_squared(
            self.reference_energy_j, self.reference_runtime_s
        )

    def acceptable(self, max_slowdown: float = 1.10) -> bool:
        """The paper's deployment criterion: bounded performance loss."""
        if max_slowdown < 1.0:
            raise ValueError(f"max_slowdown must be >= 1, got {max_slowdown}")
        return self.slowdown <= max_slowdown
