"""Power-profile analysis toolkit.

Implements the statistical machinery of Section III-B: kernel density
estimates of power timeline data, mode finding, the **high power mode**
(the mode at the highest power — the paper's preferred power metric) and
its full width at half maximum, plus distribution summaries (violin
statistics for Fig 9) and performance/energy metrics (parallel efficiency,
energy-to-solution).
"""

from repro.analysis.kde import GaussianKDE, silverman_bandwidth, scott_bandwidth
from repro.analysis.modes import (
    Mode,
    find_modes,
    fwhm,
    high_power_mode,
    high_power_mode_w,
)
from repro.analysis.stats import (
    DistributionSummary,
    ViolinStats,
    summarize,
    violin_stats,
)
from repro.analysis.efficiency import (
    ScalingPoint,
    energy_to_solution_mj,
    parallel_efficiency,
    scaling_table,
    speedup,
)
from repro.analysis.timeline import (
    Segment,
    detect_changepoints,
    duty_cycle_estimate,
    low_power_dwell_s,
    segment_timeline,
)
from repro.analysis.metrics import (
    CapTradeoff,
    energy_delay_product,
    energy_delay_squared,
)

__all__ = [
    "CapTradeoff",
    "DistributionSummary",
    "GaussianKDE",
    "Mode",
    "ScalingPoint",
    "Segment",
    "ViolinStats",
    "detect_changepoints",
    "duty_cycle_estimate",
    "energy_delay_product",
    "energy_delay_squared",
    "energy_to_solution_mj",
    "find_modes",
    "fwhm",
    "high_power_mode",
    "high_power_mode_w",
    "low_power_dwell_s",
    "parallel_efficiency",
    "segment_timeline",
    "scaling_table",
    "scott_bandwidth",
    "silverman_bandwidth",
    "speedup",
    "summarize",
    "violin_stats",
]
