"""Gaussian kernel density estimation.

A from-scratch, vectorized KDE (the paper determines the high power mode
from "the kernel density estimate (KDE) plot of the power timeline data
distribution").  Supports Silverman's and Scott's bandwidth rules and
evaluation on arbitrary grids.  ``scipy.stats.gaussian_kde`` is used only
in the test suite as a cross-check.
"""

from __future__ import annotations

import numpy as np

_SQRT_2PI = np.sqrt(2.0 * np.pi)


def _robust_sigma(data: np.ndarray) -> float:
    """min(std, IQR/1.34) — the robust spread both rules build on.

    A spread estimate below ``1e-12 x data span`` is treated as degenerate
    (e.g. an IQR produced by a denormal-tiny value in otherwise discrete
    data): using it would give a bandwidth no finite evaluation grid can
    resolve.
    """
    span = float(np.ptp(data))
    floor = span * 1e-12
    std = float(np.std(data))
    q75, q25 = np.percentile(data, [75.0, 25.0])
    iqr_sigma = float(q75 - q25) / 1.34
    candidates = [s for s in (std, iqr_sigma) if s > floor]
    return min(candidates) if candidates else 0.0


def silverman_bandwidth(data: np.ndarray) -> float:
    """Silverman's rule of thumb: 0.9 * sigma * n^(-1/5)."""
    data = np.asarray(data, dtype=float)
    if data.size < 2:
        raise ValueError("bandwidth needs at least two data points")
    sigma = _robust_sigma(data)
    if sigma == 0.0:
        # Degenerate (constant) data: any positive bandwidth works.
        return max(abs(float(data[0])) * 1e-3, 1e-3)
    return 0.9 * sigma * data.size ** (-0.2)


def scott_bandwidth(data: np.ndarray) -> float:
    """Scott's rule: 1.06 * sigma * n^(-1/5)."""
    data = np.asarray(data, dtype=float)
    if data.size < 2:
        raise ValueError("bandwidth needs at least two data points")
    sigma = _robust_sigma(data)
    if sigma == 0.0:
        return max(abs(float(data[0])) * 1e-3, 1e-3)
    return 1.06 * sigma * data.size ** (-0.2)


class GaussianKDE:
    """A 1-D Gaussian kernel density estimate.

    Parameters
    ----------
    data:
        Sample values (e.g. power readings in watts).
    bandwidth:
        Kernel width in data units, or ``"silverman"`` / ``"scott"``.
    """

    def __init__(self, data, bandwidth: float | str = "silverman") -> None:
        self.data = np.asarray(data, dtype=float).ravel()
        if self.data.size == 0:
            raise ValueError("KDE needs at least one data point")
        if isinstance(bandwidth, str):
            if bandwidth == "silverman":
                self.bandwidth = silverman_bandwidth(self.data)
            elif bandwidth == "scott":
                self.bandwidth = scott_bandwidth(self.data)
            else:
                raise ValueError(
                    f"unknown bandwidth rule {bandwidth!r}; use 'silverman' or 'scott'"
                )
        else:
            if bandwidth <= 0:
                raise ValueError(f"bandwidth must be positive, got {bandwidth}")
            self.bandwidth = float(bandwidth)

    def evaluate(self, grid) -> np.ndarray:
        """Density values on a grid (integrates to 1 over the real line)."""
        grid = np.atleast_1d(np.asarray(grid, dtype=float))
        # Chunk the outer product to bound memory for long timelines.
        out = np.zeros_like(grid)
        h = self.bandwidth
        n = self.data.size
        chunk = max(1, int(4e6 // max(grid.size, 1)))
        for start in range(0, n, chunk):
            block = self.data[start : start + chunk]
            z = (grid[:, None] - block[None, :]) / h
            out += np.exp(-0.5 * z * z).sum(axis=1)
        return out / (n * h * _SQRT_2PI)

    __call__ = evaluate

    def grid(self, n_points: int = 512, pad_bandwidths: float = 3.0) -> np.ndarray:
        """A natural evaluation grid spanning the data plus kernel tails.

        The point count adapts upward when the data span is large relative
        to the bandwidth (e.g. a narrow mode far from the bulk), so grid
        spacing stays below ``bandwidth / 3`` — otherwise narrow modes can
        fall between grid points.
        """
        if n_points < 2:
            raise ValueError(f"n_points must be >= 2, got {n_points}")
        lo = float(self.data.min()) - pad_bandwidths * self.bandwidth
        hi = float(self.data.max()) + pad_bandwidths * self.bandwidth
        needed = int(np.ceil((hi - lo) / (self.bandwidth / 3.0))) + 1
        n_points = min(max(n_points, needed), 65536)
        return np.linspace(lo, hi, n_points)
