"""Mode analysis of power distributions: the paper's headline metric.

Section III-B defines the **high power mode** as "the mode corresponding
to the highest power" in the KDE of the power timeline, and characterizes
its spread with the full width at half maximum (FWHM).  Compared to the
mean (skewed by multi-modality) or the maximum (skewed by transient
spikes), the high power mode is what a power-capping policy must respect.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.kde import GaussianKDE


@dataclass(frozen=True)
class Mode:
    """One local maximum of the density."""

    power_w: float
    density: float
    prominence: float

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Mode({self.power_w:.0f} W, density={self.density:.3g})"


def _local_maxima(values: np.ndarray) -> np.ndarray:
    """Indices of strict-or-plateau local maxima of a 1-D array."""
    n = len(values)
    if n < 3:
        return np.array([0] if n == 1 else [int(np.argmax(values))])
    rising = values[1:-1] > values[:-2]
    falling = values[1:-1] >= values[2:]
    interior = np.where(rising & falling)[0] + 1
    maxima = list(interior)
    if values[0] > values[1]:
        maxima.insert(0, 0)
    if values[-1] > values[-2]:
        maxima.append(n - 1)
    return np.array(sorted(set(maxima)), dtype=int)


def find_modes(
    data,
    bandwidth: float | str = "silverman",
    min_prominence: float = 0.05,
    n_grid: int = 1024,
) -> list[Mode]:
    """Modes of the KDE of a sample, sorted by power (ascending).

    ``min_prominence`` filters noise peaks: a mode must rise at least that
    fraction of the global density maximum above the higher of its two
    flanking minima.
    """
    if not 0.0 <= min_prominence <= 1.0:
        raise ValueError(f"min_prominence must be in [0, 1], got {min_prominence}")
    kde = GaussianKDE(data, bandwidth=bandwidth)
    grid = kde.grid(n_points=n_grid)
    density = kde.evaluate(grid)
    peak_indices = _local_maxima(density)
    global_max = float(density.max())
    if global_max <= 0:
        return []
    modes: list[Mode] = []
    for idx in peak_indices:
        # Topographic prominence: on each side, walk to the nearest peak
        # *higher* than this one; the key saddle is the minimum density
        # along that path.  The higher of the two key saddles bounds the
        # peak's prominence; the global maximum has no higher terrain and
        # gets full prominence.
        height = float(density[idx])
        saddles: list[float] = []
        higher_left = peak_indices[
            (peak_indices < idx) & (density[peak_indices] > height)
        ]
        if higher_left.size:
            saddles.append(float(density[higher_left[-1] : idx + 1].min()))
        higher_right = peak_indices[
            (peak_indices > idx) & (density[peak_indices] > height)
        ]
        if higher_right.size:
            saddles.append(float(density[idx : higher_right[0] + 1].min()))
        key_saddle = max(saddles) if saddles else 0.0
        prominence = (height - key_saddle) / global_max
        if prominence >= min_prominence:
            modes.append(
                Mode(
                    power_w=float(grid[idx]),
                    density=float(density[idx]),
                    prominence=prominence,
                )
            )
    modes.sort(key=lambda m: m.power_w)
    return modes


def high_power_mode(
    data,
    bandwidth: float | str = "silverman",
    min_prominence: float = 0.05,
) -> Mode:
    """The mode at the highest power (the paper's power metric).

    Raises
    ------
    ValueError
        If no mode passes the prominence filter (degenerate input).
    """
    modes = find_modes(data, bandwidth=bandwidth, min_prominence=min_prominence)
    if not modes:
        raise ValueError("no modes found; input too short or degenerate")
    return modes[-1]


def high_power_mode_w(data, **kwargs) -> float:
    """Convenience: the high power mode's location in watts."""
    return high_power_mode(data, **kwargs).power_w


def fwhm(
    data,
    mode: Mode | None = None,
    bandwidth: float | str = "silverman",
    n_grid: int = 1024,
) -> float:
    """Full width at half maximum of (by default) the high power mode.

    Walks outward from the mode until the density falls below half the
    mode's density on each side; the width between the crossings is the
    FWHM.  For a multi-modal density the walk stops at the first crossing,
    so the width describes the chosen mode, not the whole distribution.
    """
    kde = GaussianKDE(data, bandwidth=bandwidth)
    grid = kde.grid(n_points=n_grid)
    density = kde.evaluate(grid)
    if mode is None:
        mode = high_power_mode(data, bandwidth=bandwidth)
    center = int(np.argmin(np.abs(grid - mode.power_w)))
    half = density[center] / 2.0
    left = center
    while left > 0 and density[left] > half:
        left -= 1
    right = center
    while right < len(grid) - 1 and density[right] > half:
        right += 1
    return float(grid[right] - grid[left])
