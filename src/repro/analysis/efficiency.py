"""Scaling metrics: speedup, parallel efficiency, energy-to-solution.

The paper defines parallel efficiency as ``S / N`` with speedup
``S = T(1) / T(N)`` (its footnote 2) and recommends 70 %+ for optimal
resource use; energy-to-solution is reported in megajoules (Figs 7, 8).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units.si import joules_to_megajoules


def speedup(t_reference_s: float, t_parallel_s: float) -> float:
    """Speedup over the reference (usually single-node) runtime."""
    if t_reference_s <= 0 or t_parallel_s <= 0:
        raise ValueError("runtimes must be positive")
    return t_reference_s / t_parallel_s


def parallel_efficiency(
    t_reference_s: float, t_parallel_s: float, n_nodes: int, reference_nodes: int = 1
) -> float:
    """Parallel efficiency S/N, normalized to the reference node count."""
    if n_nodes < 1 or reference_nodes < 1:
        raise ValueError("node counts must be >= 1")
    scale = n_nodes / reference_nodes
    return speedup(t_reference_s, t_parallel_s) / scale


def energy_to_solution_mj(total_energy_j: float) -> float:
    """Energy-to-solution in megajoules (the paper's unit)."""
    if total_energy_j < 0:
        raise ValueError(f"energy must be non-negative, got {total_energy_j}")
    return joules_to_megajoules(total_energy_j)


@dataclass(frozen=True)
class ScalingPoint:
    """One node count in a strong-scaling sweep."""

    n_nodes: int
    runtime_s: float
    speedup: float
    parallel_efficiency: float
    energy_mj: float | None = None


def scaling_table(
    node_counts: list[int],
    runtimes_s: list[float],
    energies_j: list[float] | None = None,
) -> list[ScalingPoint]:
    """Build a strong-scaling table from matched sweeps.

    The first entry is the reference (its efficiency is 1 by definition
    when it is the smallest node count).
    """
    if len(node_counts) != len(runtimes_s):
        raise ValueError("node_counts and runtimes_s must have equal length")
    if not node_counts:
        raise ValueError("empty scaling sweep")
    if energies_j is not None and len(energies_j) != len(node_counts):
        raise ValueError("energies_j length mismatch")
    ref_nodes, ref_time = node_counts[0], runtimes_s[0]
    points = []
    for i, (n, t) in enumerate(zip(node_counts, runtimes_s)):
        points.append(
            ScalingPoint(
                n_nodes=n,
                runtime_s=t,
                speedup=speedup(ref_time, t),
                parallel_efficiency=parallel_efficiency(ref_time, t, n, ref_nodes),
                energy_mj=(
                    energy_to_solution_mj(energies_j[i]) if energies_j is not None else None
                ),
            )
        )
    return points
