"""Timeline segmentation: recover phase structure from power data alone.

The paper reads execution phases off power timelines by eye (the flat
CPU section of Si128_acfdtr in Fig 3, the slowed high-power section under
a cap in Fig 11).  This module does it programmatically: a changepoint
detector over a sampled power series, and segment classification into
power levels — the building block for the top-down (measurement-only)
workload analysis of Section VI-B, where no ground-truth phase schedule
exists.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Segment:
    """One detected stationary segment of a power timeline."""

    start_s: float
    end_s: float
    mean_w: float
    std_w: float

    @property
    def duration_s(self) -> float:
        """Segment length in seconds."""
        return self.end_s - self.start_s


def detect_changepoints(
    times: np.ndarray,
    values: np.ndarray,
    min_segment_s: float = 10.0,
    threshold_sigma: float = 4.0,
) -> list[int]:
    """Indices where the power level shifts (mean-shift changepoints).

    A greedy binary-segmentation detector: recursively split at the index
    maximizing the between-segment mean gap (CUSUM-style statistic) while
    the gap exceeds ``threshold_sigma`` local noise deviations and both
    halves stay longer than ``min_segment_s``.
    """
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if times.shape != values.shape:
        raise ValueError("times and values must have the same shape")
    if len(times) < 4:
        return []
    if min_segment_s <= 0:
        raise ValueError(f"min_segment_s must be positive, got {min_segment_s}")
    dt = float(times[1] - times[0]) if len(times) > 1 else 1.0
    min_len = max(int(round(min_segment_s / dt)), 2)

    changepoints: list[int] = []

    def split(lo: int, hi: int) -> None:
        n = hi - lo
        if n < 2 * min_len:
            return
        seg = values[lo:hi]
        # Cumulative-sum statistic: for each cut k, the normalized gap
        # between left and right means.
        csum = np.cumsum(seg)
        total = csum[-1]
        ks = np.arange(min_len, n - min_len)
        left_mean = csum[ks - 1] / ks
        right_mean = (total - csum[ks - 1]) / (n - ks)
        weight = np.sqrt(ks * (n - ks) / n)
        stat = np.abs(left_mean - right_mean) * weight
        best = int(np.argmax(stat))
        k = int(ks[best])
        # Noise scale from first differences (robust to the mean shift).
        noise = float(np.median(np.abs(np.diff(seg)))) / 0.6745 / np.sqrt(2) + 1e-9
        if stat[best] / noise < threshold_sigma:
            return
        changepoints.append(lo + k)
        split(lo, lo + k)
        split(lo + k, hi)

    split(0, len(values))
    return sorted(changepoints)


def segment_timeline(
    times: np.ndarray,
    values: np.ndarray,
    min_segment_s: float = 10.0,
    threshold_sigma: float = 4.0,
) -> list[Segment]:
    """Split a power timeline into stationary segments."""
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if len(times) == 0:
        return []
    cuts = detect_changepoints(times, values, min_segment_s, threshold_sigma)
    bounds = [0] + cuts + [len(values)]
    segments = []
    for lo, hi in zip(bounds, bounds[1:]):
        chunk = values[lo:hi]
        segments.append(
            Segment(
                start_s=float(times[lo]),
                end_s=float(times[hi - 1]) + (float(times[1] - times[0]) if len(times) > 1 else 0.0),
                mean_w=float(chunk.mean()),
                std_w=float(chunk.std()),
            )
        )
    return segments


def low_power_dwell_s(
    segments: list[Segment], threshold_w: float
) -> float:
    """Total time spent in segments below a power threshold.

    With the threshold between the CPU-section level and the GPU-active
    level, this measures Si128_acfdtr's host-resident section from power
    data alone (no schedule needed).
    """
    return sum(s.duration_s for s in segments if s.mean_w < threshold_w)


def duty_cycle_estimate(
    values: np.ndarray, low_w: float, high_w: float
) -> float:
    """Fraction of samples nearer the high level than the low level.

    A measurement-side estimate of the GPU duty cycle for two-level
    timelines; ``low_w``/``high_w`` bracket the two levels.
    """
    if high_w <= low_w:
        raise ValueError(f"high_w ({high_w}) must exceed low_w ({low_w})")
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("empty sample")
    midpoint = (low_w + high_w) / 2.0
    return float(np.mean(values >= midpoint))
