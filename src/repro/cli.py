"""Command-line interface: run workloads, sweeps and paper artifacts.

Installed as ``repro`` (also ``python -m repro``)::

    repro list                         # benchmarks and reproducible artifacts
    repro platforms                    # registered hardware platforms
    repro run Si256_hse --nodes 2      # one workload, full power stats
    repro run PdO4 --platform h100-sxm # same workload on another platform
    repro survey                       # all seven benchmarks
    repro cap-sweep Si128_acfdtr       # power-cap response of one workload
    repro cap-sweep PdO4 --surrogate   # surrogate-scored grid, winner verified
    repro predict Si256_hse --cap 300  # surrogate prediction, no engine run
    repro reproduce fig12              # regenerate a paper table/figure
    repro reproduce fig05 --json out.json
    repro schedule --watts-per-node 900
    repro fleet --jobs 200 --nodes 1000  # trace-streamed fleet simulation
    repro obs                          # observability configuration/status
    repro reproduce fig10 --trace t.json --metrics m.prom
    repro runs list                    # durable run ledger (.repro_runs/)
    repro runs show last               # one run's full JSON record
    repro runs check                   # regression-check vs ledger history
    repro sentinel check               # robust-baseline regression sentinel
    repro sentinel report              # per-fingerprint health + change points
    repro sentinel baseline            # the mined baselines themselves
    repro top                          # live dashboard over a running fleet
    repro fleet --jobs 50 --profile p.speedscope  # where the time went

Every executing command (``run``/``survey``/``cap-sweep``/``reproduce``/
``fleet``/``monitor``/``schedule``/``predict``) also appends one structured
record —
config fingerprint, platforms, wall time, energy, cache/dedupe stats,
alert counts — to the run ledger (``REPRO_RUNS=0`` opts out,
``REPRO_RUNS_DIR`` relocates it); ``repro runs`` queries the history.

Observability flags (``run``/``survey``/``cap-sweep``/``reproduce``):
``--trace FILE`` writes a Chrome trace-event JSON of the session,
``--metrics FILE`` a Prometheus text exposition (``.json`` for a JSON
snapshot), ``--profile FILE`` a sampling wall-clock profile
(``.json``/``.speedscope`` for speedscope, ``.txt`` for a top-functions
report, else collapsed stacks), ``--log-level LEVEL`` configures stdlib
logging.  The ``REPRO_TRACE`` / ``REPRO_METRICS`` / ``REPRO_PROFILE`` /
``REPRO_LOG`` environment variables do the same for library use.
"""

from __future__ import annotations

import argparse
import json
import os
import shlex
import sys
import time
from collections.abc import Sequence

from repro import obs
from repro.analysis.modes import high_power_mode_w
from repro.analysis.stats import summarize
from repro.experiments import (
    fig01_node_variation,
    fig02_sampling,
    fig03_timelines,
    fig04_parallel_efficiency,
    fig05_workload_power,
    fig06_system_size,
    fig07_internal_params,
    fig08_concurrency,
    fig09_methods,
    fig10_cap_efficacy,
    fig11_cap_timeline,
    fig12_cap_performance,
    fig13_cap_concurrency,
    milc_study,
    scheduling,
    system_power,
    table1,
    topdown,
)
from repro.capping.fleet import (
    compare_fleet_policies_traced,
    job_stream,
    simulate_fleet_traced,
)
from repro.capping.policy import CapPolicy
from repro.capping.scenarios import get_scenario, scenario_ids
from repro.capping.shard import CHECKPOINT_ENV, checkpoint_path_from_env
from repro.capping.scheduler import estimate_cache
from repro.experiments.common import run_cache, run_workload
from repro.hardware.platform import DEFAULT_PLATFORM_ID, get_platform, platform_ids
from repro.experiments.report import format_table, sparkline
from repro.io import result_to_json, save_trace_csv
from repro.obs import dash as obs_dash
from repro.obs import ledger as run_ledger
from repro.obs import sentinel
from repro.obs.heartbeat import HEARTBEAT_ENV
from repro.obs.ledger import RUNS_DIR_ENV, RUNS_ENABLE_ENV
from repro.monitor import (
    MONITOR_ENV,
    MONITOR_LOG_ENV,
    MONITOR_WINDOW_ENV,
    FleetMonitor,
    MonitorConfig,
    monitor_state,
    monitoring_requested,
    render_dashboard,
)
from repro.prediction.model import surrogate_stats
from repro.prediction.store import (
    SURROGATE_DIR_ENV,
    SURROGATE_ENV,
    load_or_train,
    surrogate_disabled,
)
from repro.runner.cache import CACHE_DIR_ENV, CACHE_ENABLE_ENV, fingerprint
from repro.runner.engine import RENDER_CHUNK_ENV, EngineConfig
from repro.runner.runlog import summarize_run
from repro.runner.sweep import WORKERS_ENV, sweep_stats
from repro.runner.trace import TRACE_DTYPE_ENV
from repro.vasp.benchmarks import BENCHMARKS, benchmark, benchmark_names
from repro.workloads import (
    get_workload_model,
    resolve_widths,
    resolve_workload,
    workload_model_ids,
)

#: Artifact name -> (run, render) for `repro reproduce`.
ARTIFACTS = {
    "table1": (table1.run, table1.render),
    "fig01": (fig01_node_variation.run, fig01_node_variation.render),
    "fig02": (fig02_sampling.run, fig02_sampling.render),
    "fig03": (fig03_timelines.run, fig03_timelines.render),
    "fig04": (fig04_parallel_efficiency.run, fig04_parallel_efficiency.render),
    "fig05": (fig05_workload_power.run, fig05_workload_power.render),
    "fig06": (fig06_system_size.run, fig06_system_size.render),
    "fig07": (fig07_internal_params.run, fig07_internal_params.render),
    "fig08": (fig08_concurrency.run, fig08_concurrency.render),
    "fig09": (fig09_methods.run, fig09_methods.render),
    "fig10": (fig10_cap_efficacy.run, fig10_cap_efficacy.render),
    "fig11": (fig11_cap_timeline.run, fig11_cap_timeline.render),
    "fig12": (fig12_cap_performance.run, fig12_cap_performance.render),
    "fig13": (fig13_cap_concurrency.run, fig13_cap_concurrency.render),
    "scheduling": (scheduling.run, scheduling.render),
    "milc": (milc_study.run, milc_study.render),
    "topdown": (topdown.run, topdown.render),
    "system-power": (system_power.run, system_power.render),
}


def _print_efficiency_summary() -> None:
    """One-line cache/dedupe effectiveness footer (reproduce, cap-sweep)."""
    lines = []
    for cache in (run_cache(), estimate_cache()):
        stats = cache.stats()
        if stats.lookups:
            lines.append(stats.summary_line())
    sweeps = sweep_stats()
    if sweeps.grids:
        lines.append(sweeps.summary_line())
    surro = surrogate_stats()
    if surro.predictions:
        lines.append(surro.summary_line())
    if lines:
        print()
        for line in lines:
            print(f"  [{line}]")


#: Commands that append a record to the durable run ledger.
_RECORDED_COMMANDS = {
    "run",
    "survey",
    "cap-sweep",
    "reproduce",
    "fleet",
    "monitor",
    "schedule",
    "predict",
}


def _annotate_efficiency() -> None:
    """Fold session cache/dedupe effectiveness into the open ledger draft."""
    cache_fields = {}
    for cache in (run_cache(), estimate_cache()):
        stats = cache.stats()
        if stats.lookups:
            cache_fields[stats.name] = {
                "hits": stats.hits,
                "misses": stats.misses,
                "hit_rate": round(stats.hit_rate, 4),
            }
    sweeps = sweep_stats()
    fields: dict = {}
    if cache_fields:
        fields["cache"] = cache_fields
    if sweeps.grids:
        fields["sweeps"] = {
            "grids": sweeps.grids,
            "submitted": sweeps.specs_submitted,
            "executed": sweeps.specs_executed,
            "deduped": sweeps.specs_deduped,
            "dedupe_ratio": round(sweeps.dedupe_ratio, 4),
        }
    surro = surrogate_stats()
    if surro.predictions or surro.trainings:
        fields["surrogate"] = {
            "predictions": surro.predictions,
            "hits": surro.hits,
            "fallbacks": surro.fallbacks,
            "trainings": surro.trainings,
        }
    if fields:
        run_ledger.annotate_run(**fields)


def _format_age(seconds: float | None) -> str:
    """Compact human age: ``42 s``, ``7.2 min``, ``3.1 h``, ``2.4 d``."""
    if seconds is None:
        return "?"
    if seconds < 120:
        return f"{seconds:.0f} s"
    if seconds < 7200:
        return f"{seconds / 60:.1f} min"
    if seconds < 172800:
        return f"{seconds / 3600:.1f} h"
    return f"{seconds / 86400:.1f} d"


def _cmd_list(_args: argparse.Namespace) -> int:
    print("benchmarks (Table I):")
    for name, case in BENCHMARKS.items():
        print(f"  {name:14s} {case.description}")
    print("\nreproducible artifacts (repro reproduce <name>):")
    for name in ARTIFACTS:
        print(f"  {name}")
    return 0


def _cmd_platforms(_args: argparse.Namespace) -> int:
    rows = []
    for platform_id in platform_ids():
        plat = get_platform(platform_id)
        gpu = plat.gpu
        node = plat.node
        rows.append(
            [
                platform_id,
                gpu.name,
                f"{gpu.tdp_w:.0f}",
                f"{gpu.cap_min_w:.0f}-{gpu.cap_max_w:.0f}",
                node.gpus_per_node,
                f"{node.idle_min_w:.0f}-{node.idle_max_w:.0f}",
            ]
        )
    print(
        format_table(
            headers=[
                "Platform",
                "GPU",
                "TDP (W)",
                "Cap range (W)",
                "GPUs",
                "Idle band (W)",
            ],
            rows=rows,
            title=f"registered hardware platforms (default: {DEFAULT_PLATFORM_ID})",
        )
    )
    print()
    for platform_id in platform_ids():
        print(f"  {platform_id:12s} {get_platform(platform_id).description}")
    print(
        "\nselect with --platform on run/cap-sweep/fleet/monitor; register "
        "custom specs via repro.hardware.platform.register_platform()."
    )
    return 0


def _cmd_workloads(_args: argparse.Namespace) -> int:
    rows = []
    for model_id in workload_model_ids():
        model = get_workload_model(model_id)
        hint = f"{model.class_hint}*" if model.classifier is not None else model.class_hint
        rows.append(
            [
                model_id,
                model.family,
                model.roofline,
                hint,
                ",".join(str(w) for w in model.default_widths),
                f"{len(model.variants)} ({model.default_variant})",
            ]
        )
    print(
        format_table(
            headers=[
                "Model",
                "Family",
                "Roofline",
                "Class",
                "Widths",
                "Variants (default)",
            ],
            rows=rows,
            title="registered workload models (* = per-instance classifier)",
        )
    )
    print()
    for model_id in workload_model_ids():
        print(f"  {model_id:13s} {get_workload_model(model_id).description}")
    print(
        "\nreference workloads as model, model:variant, or a Table I benchmark "
        "name on run/cap-sweep/predict; register custom models via "
        "repro.workloads.register_workload_model()."
    )
    print("\nnamed fleet scenarios (repro fleet --scenario):")
    for sid in scenario_ids():
        print(f"  {sid:18s} {get_scenario(sid).description}")
    return 0


def _resolve_workload_arg(ref: str):
    """Build the workload a CLI reference names (exit politely if unknown)."""
    try:
        return resolve_workload(ref)
    except KeyError as err:
        raise SystemExit(f"repro: {err.args[0]}") from None


def _default_nodes(ref: str) -> int:
    """Default node count for a reference: top of its healthy range."""
    return max(resolve_widths(ref))


def _split_platforms(value: str | None) -> tuple[str | None, list[str] | None]:
    """``--platform`` value -> (primary platform, mixed-pool list).

    A comma-separated value builds a mixed pool (nodes cycle through the
    listed platforms round-robin); the first entry drives the analytic
    scheduler and monitor defaults.
    """
    if not value:
        return None, None
    parts = [part.strip() for part in value.split(",") if part.strip()]
    if not parts:
        return None, None
    if len(parts) == 1:
        return parts[0], None
    return parts[0], parts


def _cmd_run(args: argparse.Namespace) -> int:
    workload = _resolve_workload_arg(args.benchmark)
    measured = run_workload(
        workload,
        n_nodes=args.nodes,
        gpu_cap_w=args.cap,
        seed=args.seed,
        platform=args.platform,
    )
    telem = measured.telemetry[0]
    stats = summarize(telem.node_power)
    cap_note = f" (GPU cap {args.cap:.0f} W)" if args.cap else ""
    platform_note = f" [{get_platform(args.platform).id}]" if args.platform else ""
    print(f"{workload.name} on {args.nodes} node(s){cap_note}{platform_note}")
    print(f"  runtime            : {measured.runtime_s:,.0f} s")
    print(f"  energy to solution : {measured.energy_mj():.2f} MJ")
    print(f"  node power max     : {stats.max_w:.0f} W")
    print(f"  node power median  : {stats.median_w:.0f} W")
    print(f"  high power mode    : {stats.high_power_mode_w:.0f} W (FWHM {stats.fwhm_w:.0f} W)")
    print(f"  |{sparkline(telem.node_power, 70)}|")
    if args.export_trace:
        path = save_trace_csv(measured.result.traces[0], args.export_trace)
        print(f"  ground-truth trace written to {path}")
    run_ledger.annotate_run(
        fingerprint=fingerprint(
            "cli.run", args.benchmark, args.nodes, args.cap, args.seed,
            get_platform(args.platform).id,
        ),
        platforms=[get_platform(args.platform).id],
        jobs=1,
        nodes=args.nodes,
        energy_j=measured.result.total_energy_j(),
        metrics=summarize_run(measured.result).ledger_fields(),
    )
    return 0


def _cmd_survey(args: argparse.Namespace) -> int:
    rows = []
    for name in benchmark_names():
        workload = benchmark(name).build()
        measured = run_workload(workload, n_nodes=args.nodes, seed=args.seed)
        telem = measured.telemetry[0]
        stats = summarize(telem.node_power)
        rows.append(
            [
                name,
                workload.incar.functional.value,
                measured.runtime_s,
                stats.high_power_mode_w,
                stats.max_w,
                measured.energy_mj(),
            ]
        )
    rows.sort(key=lambda r: -r[3])
    print(
        format_table(
            headers=["Benchmark", "Functional", "Runtime (s)", "HPM (W)", "Max (W)", "Energy (MJ)"],
            rows=rows,
            title=f"workload survey ({args.nodes} node(s))",
        )
    )
    run_ledger.annotate_run(
        fingerprint=fingerprint("cli.survey", args.nodes, args.seed),
        platforms=[get_platform(None).id],
        jobs=len(rows),
        nodes=args.nodes,
        energy_j=round(sum(row[5] for row in rows) * 1e6, 6),
        metrics={"benchmarks": len(rows)},
    )
    return 0


def _cap_sweep_surrogate(
    args: argparse.Namespace, workload, n_nodes: int, plat, caps: list[float]
) -> int:
    """Surrogate fast path: predict the grid, re-simulate only the winner.

    Every cap is scored through the trained surrogate (out-of-envelope
    points fall back to the engine); the winner — lowest predicted
    energy/node within the slowdown limit — is then re-simulated exactly
    and the surrogate-vs-exact energy error reported alongside it.
    """
    with obs.span("cli.cap_sweep_surrogate", benchmark=workload.name):
        surrogate = load_or_train(workers=args.workers)
        t0 = time.perf_counter()
        predictions = []
        for cap in [None, *caps]:
            try:
                predictions.append(
                    surrogate.predict(
                        workload, n_nodes=n_nodes, cap_w=cap, platform=plat.id
                    )
                )
            except ValueError:
                # Cap outside the device's range: not representable in
                # the feature space, so the engine decides this point.
                predictions.append(None)
        predict_s = time.perf_counter() - t0
    base_runtime = (
        predictions[0].runtime_s if predictions[0] is not None else None
    )
    if base_runtime is None:
        base_runtime = run_workload(
            workload, n_nodes=n_nodes, seed=args.seed, platform=args.platform
        ).runtime_s
    rows = []
    # cap -> (runtime_s, energy_per_node_j, slowdown, source)
    table: dict[float, tuple[float, float, float, str]] = {}
    for cap, pred in zip(caps, predictions[1:]):
        if pred is not None and pred.in_envelope:
            gpu_hpm = pred.tdp_fraction * plat.gpu.tdp_w
            table[cap] = (pred.runtime_s, pred.energy_per_node_j, pred.slowdown, "surrogate")
        else:
            # Outside the trained envelope: run this point exactly.
            measured = run_workload(
                workload,
                n_nodes=n_nodes,
                gpu_cap_w=cap,
                seed=args.seed,
                platform=args.platform,
            )
            gpu_hpm = high_power_mode_w(measured.telemetry[0].gpu_power(0))
            table[cap] = (
                measured.runtime_s,
                measured.result.total_energy_j() / n_nodes,
                measured.runtime_s / base_runtime,
                "engine",
            )
        runtime_s, energy_j, slowdown, source = table[cap]
        rows.append(
            [
                f"{cap:.0f}",
                runtime_s,
                1.0 / slowdown if slowdown > 0 else 0.0,
                gpu_hpm,
                gpu_hpm / cap,
                source,
            ]
        )
    print(
        format_table(
            headers=["Cap (W)", "Runtime (s)", "Perf", "GPU HPM (W)", "HPM/cap", "Source"],
            rows=rows,
            title=(
                f"{workload.name} cap sweep ({n_nodes} node(s), {plat.id}, "
                "surrogate)"
            ),
        )
    )
    # Winner: lowest energy/node within the slowdown limit (least-slow
    # cap when nothing qualifies), then one exact run to verify it.
    feasible = [c for c in caps if table[c][2] <= args.slowdown_limit]
    if feasible:
        winner = min(feasible, key=lambda c: table[c][1])
        note = ""
    else:
        winner = min(caps, key=lambda c: table[c][2])
        note = f" (no cap met slowdown <= {args.slowdown_limit:g}; least-slow shown)"
    runtime_s, energy_j, slowdown, source = table[winner]
    measured = run_workload(
        workload,
        n_nodes=n_nodes,
        gpu_cap_w=winner,
        seed=args.seed,
        platform=args.platform,
    )
    exact_energy_j = measured.result.total_energy_j() / n_nodes
    error = abs(energy_j - exact_energy_j) / exact_energy_j
    obs.observe("repro_surrogate_winner_error", error)
    surrogate_stats().record_verification(error)
    print()
    print(
        f"  winner: {winner:.0f} W — predicted {energy_j / 1e6:.3f} MJ/node, "
        f"slowdown {slowdown:.3f}{note}"
    )
    print(
        f"  exact re-simulation: {exact_energy_j / 1e6:.3f} MJ/node "
        f"({measured.runtime_s:.0f} s) — surrogate off by {error:.1%}"
    )
    print(
        f"  [{len(predictions)} predictions in "
        f"{predict_s * 1e3:.1f} ms, 1 verification run]"
    )
    stats = surrogate_stats()
    run_ledger.annotate_run(
        fingerprint=fingerprint(
            "cli.cap_sweep",
            args.benchmark,
            n_nodes,
            caps,
            args.seed,
            plat.id,
            "surrogate",
        ),
        platforms=[plat.id],
        jobs=len(caps),
        nodes=n_nodes,
        metrics={
            "caps_w": [round(cap, 1) for cap in caps],
            "winner_cap_w": round(winner, 1),
            "winner_verification_error": round(error, 4),
            "surrogate_fallbacks": stats.fallbacks,
        },
    )
    _print_efficiency_summary()
    return 0


def _cmd_cap_sweep(args: argparse.Namespace) -> int:
    workload = _resolve_workload_arg(args.benchmark)
    n_nodes = args.nodes if args.nodes else _default_nodes(args.benchmark)
    plat = get_platform(args.platform)
    caps = args.caps
    if caps is None:
        # Platform-derived default grid: TDP down to the cap floor
        # ([400, 300, 200, 100] W on the default a100-40g).
        spec = plat.gpu
        caps = [
            spec.tdp_w,
            0.75 * spec.tdp_w,
            0.50 * spec.tdp_w,
            max(0.25 * spec.tdp_w, spec.cap_min_w),
        ]
    if args.surrogate and not surrogate_disabled():
        return _cap_sweep_surrogate(args, workload, n_nodes, plat, caps)
    monitor = None
    if args.monitor or monitoring_requested():
        monitor = FleetMonitor(
            MonitorConfig(platform=args.platform),
            label=f"{workload.name} cap sweep",
        )
    rows = []
    base = None
    clock = 0.0
    for cap in caps:
        measured = run_workload(
            workload,
            n_nodes=n_nodes,
            gpu_cap_w=cap,
            seed=args.seed,
            platform=args.platform,
        )
        gpu_hpm = high_power_mode_w(measured.telemetry[0].gpu_power(0))
        if base is None:
            base = measured.runtime_s
        if monitor is not None:
            # Replay each sweep point's retained traces through the
            # streaming monitor path, laid out back-to-back on one clock.
            monitor.observe_run(
                measured.result,
                job_id=f"{workload.name}@{cap:.0f}W",
                start_s=clock,
                nominal_runtime_s=base,
            )
            clock += measured.runtime_s
        rows.append(
            [f"{cap:.0f}", measured.runtime_s, base / measured.runtime_s, gpu_hpm, gpu_hpm / cap]
        )
    platform_note = f", {plat.id}" if args.platform else ""
    print(
        format_table(
            headers=["Cap (W)", "Runtime (s)", "Perf", "GPU HPM (W)", "HPM/cap"],
            rows=rows,
            title=f"{workload.name} cap sweep ({n_nodes} node(s){platform_note})",
        )
    )
    if monitor is not None:
        print()
        report = monitor.finalize()
        print(render_dashboard(report))
        run_ledger.annotate_run(alerts=report.ledger_summary())
    run_ledger.annotate_run(
        fingerprint=fingerprint(
            "cli.cap_sweep", args.benchmark, n_nodes, caps, args.seed, plat.id
        ),
        platforms=[plat.id],
        jobs=len(caps),
        nodes=n_nodes,
        metrics={"caps_w": [round(cap, 1) for cap in caps]},
    )
    _print_efficiency_summary()
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    """Surrogate prediction for one (benchmark, nodes, cap, platform) point.

    Trains (or loads) the two-stage surrogate, prints every predicted
    target plus the envelope verdict; ``--exact`` also runs the engine
    and reports the surrogate-vs-exact errors.
    """
    workload = _resolve_workload_arg(args.benchmark)
    n_nodes = args.nodes if args.nodes else _default_nodes(args.benchmark)
    plat = get_platform(args.platform)
    if surrogate_disabled():
        print(f"surrogate fast path disabled ({SURROGATE_ENV}=0); unset to enable")
        return 1
    with obs.span("cli.predict", benchmark=args.benchmark):
        surrogate = load_or_train(workers=args.workers)
        t0 = time.perf_counter()
        pred = surrogate.predict(
            workload, n_nodes=n_nodes, cap_w=args.cap, platform=plat.id
        )
        latency_us = (time.perf_counter() - t0) * 1.0e6
    cap_note = f"{args.cap:.0f} W cap" if args.cap is not None else "uncapped"
    print(f"{workload.name}: {n_nodes} node(s), {plat.id}, {cap_note}")
    print(
        f"  profile class    : {pred.class_index}"
        f" (distance {pred.class_distance:.2f},"
        f" uncertainty {pred.uncertainty:.3f})"
    )
    verdict = "in" if pred.in_envelope else "OUT -- engine recommended"
    print(f"  envelope         : {verdict}")
    print(f"  node HPM         : {pred.hpm_w:.0f} W")
    print(f"  mean node power  : {pred.mean_node_power_w:.0f} W")
    print(
        f"  GPU HPM          : {pred.tdp_fraction * plat.gpu.tdp_w:.0f} W"
        f" ({pred.tdp_fraction:.2f} x TDP)"
    )
    print(f"  runtime          : {pred.runtime_s:.0f} s (slowdown {pred.slowdown:.3f})")
    print(f"  energy/node      : {pred.energy_per_node_j / 1.0e6:.3f} MJ")
    print(f"  latency          : {latency_us:.0f} us/prediction")
    metrics: dict = {
        "in_envelope": pred.in_envelope,
        "hpm_w": round(pred.hpm_w, 1),
        "runtime_s": round(pred.runtime_s, 1),
        "energy_per_node_j": round(pred.energy_per_node_j, 1),
    }
    if args.exact:
        measured = run_workload(
            workload,
            n_nodes=n_nodes,
            gpu_cap_w=args.cap,
            seed=args.seed,
            platform=args.platform,
        )
        exact_hpm = high_power_mode_w(measured.telemetry[0].node_power)
        exact_energy_j = measured.result.total_energy_j() / n_nodes
        hpm_err = abs(pred.hpm_w - exact_hpm) / exact_hpm
        rt_err = abs(pred.runtime_s - measured.runtime_s) / measured.runtime_s
        en_err = abs(pred.energy_per_node_j - exact_energy_j) / exact_energy_j
        print("\nexact run (engine)")
        print(f"  node HPM         : {exact_hpm:.0f} W ({hpm_err:.1%} error)")
        print(f"  runtime          : {measured.runtime_s:.0f} s ({rt_err:.1%} error)")
        print(
            f"  energy/node      : {exact_energy_j / 1.0e6:.3f} MJ"
            f" ({en_err:.1%} error)"
        )
        metrics["exact_hpm_error"] = round(hpm_err, 4)
        metrics["exact_runtime_error"] = round(rt_err, 4)
        metrics["exact_energy_error"] = round(en_err, 4)
    run_ledger.annotate_run(
        fingerprint=fingerprint(
            "cli.predict", args.benchmark, n_nodes, args.cap, plat.id
        ),
        platforms=[plat.id],
        jobs=1,
        nodes=n_nodes,
        metrics=metrics,
    )
    _print_efficiency_summary()
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    run_fn, render_fn = ARTIFACTS[args.artifact]
    with obs.span("cli.reproduce", artifact=args.artifact):
        result = run_fn()
    print(render_fn(result))
    if args.json:
        result_to_json(result, args.json)
        print(f"\nresult data written to {args.json}")
    run_ledger.annotate_run(
        fingerprint=fingerprint("cli.reproduce", args.artifact),
        metrics={"artifact": args.artifact},
    )
    _print_efficiency_summary()
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    status = obs.status()
    if args.json_status:
        status = dict(status)
        status["monitor"] = monitor_state()
        status["ledger"] = run_ledger.ledger_state()
        print(json.dumps(status, indent=2))
        return 0
    print("observability status")
    tracing = status["tracing"]
    metrics = status["metrics"]
    print(f"  tracing  : {'on' if tracing['active'] else 'off'}", end="")
    if tracing["path"]:
        print(f" -> {tracing['path']} (chrome trace-event JSON)", end="")
    print()
    print(f"  metrics  : {'on' if metrics['active'] else 'off'}", end="")
    if metrics["path"]:
        print(f" -> {metrics['path']}", end="")
    print()
    if metrics["names"]:
        print(f"  registered metrics: {', '.join(metrics['names'])}")
    profile = status["profile"]
    print(f"  profile  : {'on' if profile['active'] else 'off'}", end="")
    if profile["active"]:
        print(f" ({profile['samples']} sample(s))", end="")
    if profile["path"]:
        print(f" -> {profile['path']}", end="")
    print()
    mon = monitor_state()
    print(
        f"  monitor  : {mon['active_collectors']} active collector(s), "
        f"{mon['collectors_started']} started, "
        f"{mon['signals_emitted']} health signal(s) emitted this process"
    )
    ledger_state = run_ledger.ledger_state()
    print(
        f"  ledger   : {'on' if ledger_state['enabled'] else 'off'} "
        f"-> {ledger_state['path']} ({ledger_state['records']} record(s))"
    )
    if ledger_state["last_run_id"]:
        age = ledger_state["last_age_s"]
        age_note = f", {_format_age(age)} ago" if age is not None else ""
        print(
            f"  last run : {ledger_state['last_run_id']} "
            f"({ledger_state['last_kind']}, {ledger_state['last_status']}"
            f"{age_note})"
        )
    checkpoint_base = checkpoint_path_from_env()
    if checkpoint_base is not None:
        candidates = [checkpoint_base] + [
            checkpoint_base.with_name(checkpoint_base.name + suffix)
            for suffix in (".capped", ".uncapped")
        ]
        ages = [
            f"{path.name} ({_format_age(time.time() - path.stat().st_mtime)} old)"
            for path in candidates
            if path.is_file()
        ]
        print(
            "  checkpoints: "
            + (", ".join(ages) if ages else f"none yet under {checkpoint_base}")
        )
    print("\nenvironment")
    for env in (
        obs.TRACE_ENV,
        obs.METRICS_ENV,
        obs.PROFILE_ENV,
        obs.PROFILE_INTERVAL_ENV,
        obs.LOG_ENV,
        MONITOR_ENV,
        MONITOR_WINDOW_ENV,
        MONITOR_LOG_ENV,
        CACHE_ENABLE_ENV,
        CACHE_DIR_ENV,
        WORKERS_ENV,
        SURROGATE_ENV,
        SURROGATE_DIR_ENV,
        CHECKPOINT_ENV,
        HEARTBEAT_ENV,
        RUNS_ENABLE_ENV,
        RUNS_DIR_ENV,
        RENDER_CHUNK_ENV,
        TRACE_DTYPE_ENV,
    ):
        value = os.environ.get(env)
        print(f"  {env:20s} = {value if value is not None else '(unset)'}")
    print("\ncaches")
    for cache in (run_cache(), estimate_cache()):
        print(f"  {cache.stats().summary_line()}")
    print(f"  {sweep_stats().summary_line()}")
    print(f"  {surrogate_stats().summary_line()}")
    print(
        "\nenable with `repro <cmd> --trace FILE --metrics FILE "
        "--profile FILE --log-level LEVEL` or the REPRO_* environment "
        "variables."
    )
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    scenario = None
    if args.scenario is not None:
        try:
            scenario = get_scenario(args.scenario)
        except KeyError as err:
            raise SystemExit(f"repro: {err.args[0]}") from None
        if args.jobs is not None:
            print(
                f"--scenario {scenario.id} fixes its own job count "
                f"({scenario.n_jobs}); ignoring --jobs {args.jobs}"
            )
    # A scenario carries pool defaults (size, platforms); explicit flags
    # still win so one scenario can be replayed on a different pool.
    n_jobs = args.jobs if args.jobs is not None else 24
    if scenario is not None:
        n_jobs = scenario.n_jobs
    n_nodes = args.nodes if args.nodes is not None else (
        scenario.n_nodes if scenario is not None else 16
    )
    platform_value = args.platform
    if platform_value is None and scenario is not None and scenario.platforms:
        platform_value = ",".join(scenario.platforms)
    budget = args.watts_per_node * n_nodes if args.watts_per_node else None
    platform, node_platforms = _split_platforms(platform_value)
    engine_config = (
        EngineConfig(base_interval_s=args.resolution) if args.resolution else None
    )
    monitors = None
    if args.monitor or monitoring_requested():
        if args.retain_traces:
            print("--monitor requires the streaming path; ignoring with --retain-traces")
        else:
            monitors = (
                FleetMonitor(
                    MonitorConfig(platform=platform), label="50% TDP policy"
                ),
                FleetMonitor(MonitorConfig(platform=platform), label="uncapped"),
            )
    with obs.span("cli.fleet", jobs=n_jobs, nodes=n_nodes):
        capped, uncapped = compare_fleet_policies_traced(
            n_jobs=n_jobs,
            n_nodes=n_nodes,
            power_budget_w=budget,
            seed=args.seed,
            bin_s=args.bin_s,
            chunk_samples=args.chunk,
            engine_config=engine_config,
            retain_traces=args.retain_traces,
            monitors=monitors,
            platform=platform,
            node_platforms=node_platforms,
            workers=args.workers,
            checkpoint=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            resume=args.resume,
            heartbeat=args.heartbeat,
            scenario=scenario,
        )
    run_ledger.annotate_run(
        # Execution mode (workers, live capture) is part of the
        # fingerprint: `repro runs check` compares wall time, and a
        # sharded or traced run is only comparable to its own kind.
        # Scenario runs are their own kind too; default runs keep the
        # historical fingerprint (no trailing None) so ledger history
        # stays comparable across this change.
        fingerprint=fingerprint(
            "cli.fleet", n_jobs, n_nodes, budget, args.seed, args.bin_s,
            args.chunk, args.resolution, args.platform, args.retain_traces,
            args.workers, args.trace is not None, args.metrics is not None,
            *((scenario.id,) if scenario is not None else ()),
        ),
        platforms=[get_platform(platform).id]
        if node_platforms is None
        else node_platforms,
        jobs=n_jobs,
        energy_j=capped.system.energy_j + uncapped.system.energy_j,
    )
    rows = [
        [
            report.policy_name,
            report.mean_power_w / 1e3,
            report.peak_power_w / 1e3,
            report.power_std_w / 1e3,
            f"{report.coefficient_of_variation:.1%}",
            report.makespan_s,
            report.jobs_completed,
        ]
        for report in (uncapped, capped)
    ]
    budget_note = (
        f", budget {budget / 1e3:.0f} kW" if budget is not None else ""
    )
    platform_note = f", {platform_value}" if platform_value else ""
    scenario_note = (
        f" [scenario {scenario.id}]" if scenario is not None else ""
    )
    print(
        format_table(
            headers=[
                "Policy",
                "Mean (kW)",
                "Peak (kW)",
                "Std (kW)",
                "CoV",
                "Makespan (s)",
                "Jobs",
            ],
            rows=rows,
            title=(
                f"trace-streamed fleet: {n_jobs} jobs on "
                f"{n_nodes} node(s){budget_note}{platform_note}{scenario_note}"
            ),
        )
    )
    reduction = (
        1.0 - capped.power_std_w / uncapped.power_std_w
        if uncapped.power_std_w > 0
        else 0.0
    )
    print(f"\n  system power variability reduced {reduction:.1%} by capping")
    streamed = capped.bytes_streamed + uncapped.bytes_streamed
    chunks = capped.chunks_streamed + uncapped.chunks_streamed
    samples = capped.samples_streamed + uncapped.samples_streamed
    print(
        f"  [streamed {streamed / 1e6:.1f} MB of node-power samples in "
        f"{chunks} chunks ({samples:,} samples); peak resident "
        f"memory stays O(chunk) + O(makespan)]"
    )
    if monitors is not None:
        for fleet_monitor in monitors:
            print()
            report = fleet_monitor.finalize()
            print(render_dashboard(report))
            run_ledger.annotate_run(alerts={report.label: report.ledger_summary()})
    _print_efficiency_summary()
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    """One monitored fleet run: health dashboard plus power report."""
    budget = args.watts_per_node * args.nodes if args.watts_per_node else None
    platform, node_platforms = _split_platforms(args.platform)
    capped = args.policy == "capped"
    policy = CapPolicy.half_tdp(platform) if capped else CapPolicy.uncapped(platform)
    policy_name = "50% TDP policy" if capped else "uncapped"
    config = MonitorConfig(
        platform=platform,
        window_samples=args.window,
        alert_log=args.alert_log,
    )
    monitor = FleetMonitor(config, label=policy_name)
    engine_config = (
        EngineConfig(base_interval_s=args.resolution) if args.resolution else None
    )
    jobs = job_stream(n_jobs=args.jobs, seed=args.seed)
    with obs.span("cli.monitor", jobs=args.jobs, nodes=args.nodes):
        simulate_fleet_traced(
            jobs,
            policy,
            policy_name,
            n_nodes=args.nodes,
            power_budget_w=budget,
            engine_config=engine_config,
            seed=args.seed,
            monitor=monitor,
            platform=platform,
            node_platforms=node_platforms,
        )
    report = monitor.finalize()
    totals = report.energy.get("totals", {}) if report.energy else {}
    run_ledger.annotate_run(
        fingerprint=fingerprint(
            "cli.monitor", args.jobs, args.nodes, budget, args.seed,
            args.policy, args.resolution, args.platform, args.window,
        ),
        platforms=[get_platform(platform).id]
        if node_platforms is None
        else node_platforms,
        jobs=args.jobs,
        energy_j=totals.get("energy_j"),
        alerts=report.ledger_summary(),
    )
    print(render_dashboard(report))
    print()
    print("per-job power report")
    print(monitor.ledger.render_text())
    if args.report_json:
        path = report.export_json(args.report_json)
        print(f"\nmonitor report written to {path}")
    if config.resolved_alert_log() is not None:
        print(f"alert log written to {config.resolved_alert_log()}")
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    result = scheduling.run(
        n_nodes=args.nodes, budget_w_per_node=args.watts_per_node, copies=args.copies
    )
    print(scheduling.render(result))
    run_ledger.annotate_run(
        fingerprint=fingerprint(
            "cli.schedule", args.nodes, args.watts_per_node, args.copies
        ),
        nodes=args.nodes,
    )
    return 0


def _cmd_runs(args: argparse.Namespace) -> int:
    """Query the durable run ledger: list / show / last / diff / check."""
    ledger = run_ledger.RunLedger()
    records = ledger.records()
    action = args.runs_command
    if action == "list":
        selected = [
            record
            for record in records
            if args.kind is None or record.kind == args.kind
        ]
        selected = selected[-args.limit :]
        if args.json_out:
            print(json.dumps([record.to_json() for record in selected], indent=2))
            return 0
        if not selected:
            print(f"run ledger is empty ({ledger.path})")
            return 0
        rows = []
        for record in reversed(selected):
            label = record.label
            if len(label) > 42:
                label = label[:41] + "…"
            rows.append(
                [
                    record.run_id,
                    record.kind,
                    record.status,
                    f"{record.wall_s:.2f}" if record.wall_s is not None else "-",
                    _format_age(record.age_s),
                    label,
                ]
            )
        print(
            format_table(
                headers=["Run", "Kind", "Status", "Wall (s)", "Age", "Command"],
                rows=rows,
                title=(
                    f"run ledger: {len(records)} record(s) in {ledger.path}"
                ),
            )
        )
        return 0
    if action in {"show", "last"}:
        ref = "last" if action == "last" else args.ref
        try:
            record = ledger.find(ref)
        except KeyError as exc:
            print(f"error: {exc.args[0]}")
            return 2
        print(json.dumps(record.to_json(), indent=2, sort_keys=True))
        return 0
    if action == "diff":
        try:
            record_a = ledger.find(args.ref_a)
            record_b = ledger.find(args.ref_b)
        except KeyError as exc:
            print(f"error: {exc.args[0]}")
            return 2
        changed = run_ledger.diff_records(record_a, record_b)
        print(f"diff {record_a.run_id} -> {record_b.run_id}")
        if not changed:
            print("  records are equivalent (identity fields excluded)")
            return 0
        for key, value_a, value_b in changed:
            print(f"  {key:36s} {value_a!r} -> {value_b!r}")
        return 0
    # action == "check"
    try:
        target = ledger.find(args.ref)
    except KeyError as exc:
        print(f"error: {exc.args[0]}")
        return 2
    if target.fingerprint is None:
        print(f"run {target.run_id} has no config fingerprint; nothing to check")
        return 0
    findings, history = run_ledger.check_regression(
        records, target, tolerance=args.tolerance, min_history=args.min_history
    )
    print(
        f"checked {target.run_id} ({target.kind}) against {history} "
        f"comparable run(s)"
    )
    if findings:
        for finding in findings:
            print(f"  REGRESSION: {finding}")
        return 1
    print("  no regressions found")
    return 0


def _cmd_sentinel(args: argparse.Namespace) -> int:
    """The regression sentinel: check / report / baseline over the ledger."""
    ledger = run_ledger.RunLedger()
    records = ledger.records()
    action = args.sentinel_command
    if action == "check":
        try:
            target = ledger.find(args.ref)
        except KeyError as exc:
            print(f"error: {exc.args[0]}")
            return 2
        if target.fingerprint is None:
            print(
                f"run {target.run_id} has no config fingerprint; nothing to check"
            )
            return 0
        findings, history = sentinel.check_target(
            records,
            target,
            tolerance=args.tolerance,
            min_history=args.min_history,
            drift_gate=args.drift_gate,
        )
        print(
            f"sentinel: {target.run_id} ({target.kind}) vs {history} "
            f"comparable run(s) — {'REGRESSED' if findings else 'ok'}"
        )
        if history < args.min_history:
            print(
                f"  (only {history} comparable run(s) on record; statistical "
                f"checks need {args.min_history})"
            )
        for finding in findings:
            print(f"  {finding.category.upper()}: {finding.message}")
        return 1 if findings else 0
    if action == "report":
        rows = sentinel.build_report(
            records,
            tolerance=args.tolerance,
            min_history=args.min_history,
            drift_gate=args.drift_gate,
            kind=args.kind,
        )
        if args.json_out:
            print(json.dumps([row.to_json() for row in rows], indent=2))
            return 0
        if not rows:
            print(f"run ledger has no checkable history ({ledger.path})")
            return 0
        table_rows = []
        for row in rows:
            base = row.baseline
            shift = (
                f"{row.change_point.shift:+.0%}@{row.change_point.index}"
                if row.change_point is not None
                else "-"
            )
            table_rows.append(
                [
                    base.fingerprint[:10],
                    base.kind,
                    str(base.runs),
                    (
                        f"{base.wall_median_s:.2f}±{base.wall_sigma_s:.2f}"
                        if base.wall_median_s is not None
                        else "-"
                    ),
                    (
                        f"{row.latest_wall_s:.2f}"
                        if row.latest_wall_s is not None
                        else "-"
                    ),
                    shift,
                    row.verdict,
                ]
            )
        print(
            format_table(
                headers=[
                    "Fingerprint",
                    "Kind",
                    "Runs",
                    "Wall med±σ (s)",
                    "Latest",
                    "Shift",
                    "Verdict",
                ],
                rows=table_rows,
                title=f"sentinel report: {len(rows)} fingerprint(s)",
            )
        )
        for row in rows:
            for finding in row.findings:
                print(f"  {row.baseline.fingerprint[:10]}: {finding.message}")
        return 1 if any(row.findings for row in rows) else 0
    # action == "baseline"
    baselines = [
        base
        for base in sentinel.compute_baselines(records)
        if args.kind is None or base.kind == args.kind
    ]
    if args.json_out:
        print(json.dumps([base.to_json() for base in baselines], indent=2))
        return 0
    if not baselines:
        print(f"run ledger has no baselines yet ({ledger.path})")
        return 0
    print(
        format_table(
            headers=["Fingerprint", "Kind", "Runs", "Wall med (s)", "σ (s)", "Command"],
            rows=[
                [
                    base.fingerprint[:10],
                    base.kind,
                    str(base.runs),
                    (
                        f"{base.wall_median_s:.2f}"
                        if base.wall_median_s is not None
                        else "-"
                    ),
                    (
                        f"{base.wall_sigma_s:.2f}"
                        if base.wall_sigma_s is not None
                        else "-"
                    ),
                    base.label[:42],
                ]
                for base in baselines
            ],
            title=f"sentinel baselines: {len(baselines)} fingerprint(s)",
        )
    )
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    """Live dashboard (``repro top``) over heartbeats, alerts and metrics."""
    return obs_dash.run_dashboard(
        args.heartbeat,
        alert_log=args.alert_log or os.environ.get(MONITOR_LOG_ENV) or None,
        metrics_path=args.metrics_file,
        interval_s=args.interval,
        once=args.once,
        json_out=args.json_out,
        duration_s=args.duration,
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction toolkit for 'Understanding VASP Power "
        "Profiles on NVIDIA A100 GPUs' (SC 2024).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Observability flags shared by the executing subcommands.
    obs_flags = argparse.ArgumentParser(add_help=False)
    obs_group = obs_flags.add_argument_group("observability")
    obs_group.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write a Chrome trace-event JSON (chrome://tracing / Perfetto)",
    )
    obs_group.add_argument(
        "--metrics",
        default=None,
        metavar="FILE",
        help="write collected metrics (Prometheus text; .json for a snapshot)",
    )
    obs_group.add_argument(
        "--profile",
        default=None,
        metavar="FILE",
        help=(
            "sample wall-clock stacks into FILE (.json/.speedscope for "
            "speedscope, .txt for a top-functions report, else collapsed "
            "stacks)"
        ),
    )
    obs_group.add_argument(
        "--log-level",
        default=None,
        metavar="LEVEL",
        help="configure stdlib logging (debug/info/warning/error)",
    )

    sub.add_parser("list", help="list benchmarks and artifacts").set_defaults(
        func=_cmd_list
    )

    sub.add_parser(
        "platforms", help="list registered hardware platforms"
    ).set_defaults(func=_cmd_platforms)

    sub.add_parser(
        "workloads", help="list registered workload models and fleet scenarios"
    ).set_defaults(func=_cmd_workloads)

    workload_help = (
        "Table I benchmark name (e.g. Si256_hse) or workload-model "
        f"reference model[:variant] (models: {', '.join(workload_model_ids())}; "
        "see `repro workloads`)"
    )

    def add_platform_flag(p: argparse.ArgumentParser, mixed: bool = False) -> None:
        extra = (
            "; comma-separate several for a mixed pool (round-robin)"
            if mixed
            else ""
        )
        p.add_argument(
            "--platform",
            default=None,
            metavar="ID",
            help=(
                f"hardware platform ({', '.join(platform_ids())}; "
                f"default {DEFAULT_PLATFORM_ID}){extra}"
            ),
        )

    p_run = sub.add_parser(
        "run", help="run one benchmark and print power stats", parents=[obs_flags]
    )
    p_run.add_argument("benchmark", metavar="workload", help=workload_help)
    p_run.add_argument("--nodes", type=int, default=1)
    p_run.add_argument("--cap", type=float, default=None, help="GPU power cap in W")
    p_run.add_argument("--seed", type=int, default=7)
    p_run.add_argument("--export-trace", default=None, help="write ground truth CSV")
    add_platform_flag(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_survey = sub.add_parser(
        "survey", help="profile all seven benchmarks", parents=[obs_flags]
    )
    p_survey.add_argument("--nodes", type=int, default=1)
    p_survey.add_argument("--seed", type=int, default=7)
    p_survey.set_defaults(func=_cmd_survey)

    p_sweep = sub.add_parser(
        "cap-sweep", help="power-cap response of a benchmark", parents=[obs_flags]
    )
    p_sweep.add_argument("benchmark", metavar="workload", help=workload_help)
    p_sweep.add_argument("--nodes", type=int, default=None)
    p_sweep.add_argument(
        "--caps",
        type=float,
        nargs="+",
        default=None,
        help="cap grid in W (default: platform TDP down to its cap floor)",
    )
    p_sweep.add_argument("--seed", type=int, default=7)
    p_sweep.add_argument(
        "--monitor",
        action="store_true",
        help="replay each sweep point through the fleet health monitor",
    )
    p_sweep.add_argument(
        "--surrogate",
        action="store_true",
        help=(
            "fast path: score the cap grid through the trained surrogate, "
            "re-simulate only the winner exactly"
        ),
    )
    p_sweep.add_argument(
        "--slowdown-limit",
        type=float,
        default=1.25,
        metavar="FACTOR",
        help="max acceptable slowdown when picking the winner (--surrogate)",
    )
    p_sweep.add_argument(
        "--workers",
        type=int,
        default=None,
        help="corpus-build workers if the surrogate must train first",
    )
    add_platform_flag(p_sweep)
    p_sweep.set_defaults(func=_cmd_cap_sweep)

    p_predict = sub.add_parser(
        "predict",
        help="surrogate prediction for a benchmark (no engine run)",
        parents=[obs_flags],
    )
    p_predict.add_argument("benchmark", metavar="workload", help=workload_help)
    p_predict.add_argument("--nodes", type=int, default=None)
    p_predict.add_argument(
        "--cap", type=float, default=None, help="GPU power cap in W"
    )
    p_predict.add_argument("--seed", type=int, default=7)
    p_predict.add_argument(
        "--workers",
        type=int,
        default=None,
        help="corpus-build workers if the surrogate must train first",
    )
    p_predict.add_argument(
        "--exact",
        action="store_true",
        help="also run the engine and report the surrogate's errors",
    )
    add_platform_flag(p_predict)
    p_predict.set_defaults(func=_cmd_predict)

    p_repro = sub.add_parser(
        "reproduce", help="regenerate a paper artifact", parents=[obs_flags]
    )
    p_repro.add_argument("artifact", choices=sorted(ARTIFACTS))
    p_repro.add_argument("--json", default=None, help="also export result data")
    p_repro.set_defaults(func=_cmd_reproduce)

    p_fleet = sub.add_parser(
        "fleet",
        help="trace-streamed fleet simulation (capped vs uncapped)",
        parents=[obs_flags],
    )
    p_fleet.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="jobs in the stream (default: 24, or the scenario's count)",
    )
    p_fleet.add_argument(
        "--nodes",
        type=int,
        default=None,
        help="node pool size (default: 16, or the scenario's pool)",
    )
    p_fleet.add_argument(
        "--scenario",
        default=None,
        metavar="NAME",
        help=(
            "replay a named fleet scenario (arrival process, workload mix, "
            f"pool, failures) instead of the default stream: "
            f"{', '.join(scenario_ids())} (see `repro workloads`)"
        ),
    )
    p_fleet.add_argument("--seed", type=int, default=0)
    p_fleet.add_argument(
        "--watts-per-node",
        type=float,
        default=None,
        help="facility power budget per node (default: unbounded)",
    )
    p_fleet.add_argument(
        "--bin-s", type=float, default=1.0, help="system power bin width in s"
    )
    p_fleet.add_argument(
        "--chunk",
        type=int,
        default=None,
        metavar="SAMPLES",
        help="streaming chunk size in samples (default: engine default)",
    )
    p_fleet.add_argument(
        "--resolution",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="trace sample interval (coarser = faster; 0.1 matches the paper)",
    )
    p_fleet.add_argument(
        "--retain-traces",
        action="store_true",
        help="dense reference path: retain all traces (O(fleet) memory)",
    )
    p_fleet.add_argument(
        "--monitor",
        action="store_true",
        help="attach a live health monitor per policy and print its dashboard",
    )
    p_fleet.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "shard job rendering across N worker processes "
            "(bit-identical to serial; default: REPRO_SWEEP_WORKERS or 1)"
        ),
    )
    p_fleet.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help=(
            "periodically snapshot the aggregation state to PATH(.capped/"
            ".uncapped); default: REPRO_FLEET_CHECKPOINT"
        ),
    )
    p_fleet.add_argument(
        "--checkpoint-every",
        type=int,
        default=64,
        metavar="JOBS",
        help="jobs between checkpoint snapshots (default: 64)",
    )
    p_fleet.add_argument(
        "--resume",
        action="store_true",
        help="resume from the checkpoint if present (bit-identical restart)",
    )
    p_fleet.add_argument(
        "--heartbeat",
        default=None,
        metavar="PATH",
        help=(
            "publish live progress (jobs folded, nodes/sec, ETA, checkpoint "
            "age) to PATH(.capped/.uncapped) as atomically-replaced JSON; "
            "default: REPRO_FLEET_HEARTBEAT"
        ),
    )
    add_platform_flag(p_fleet, mixed=True)
    p_fleet.set_defaults(func=_cmd_fleet)

    p_monitor = sub.add_parser(
        "monitor",
        help="monitored fleet run: health signals, alerts, energy report",
        parents=[obs_flags],
    )
    p_monitor.add_argument("--jobs", type=int, default=24, help="jobs in the stream")
    p_monitor.add_argument("--nodes", type=int, default=16, help="node pool size")
    p_monitor.add_argument("--seed", type=int, default=0)
    p_monitor.add_argument(
        "--policy",
        choices=("capped", "uncapped"),
        default="capped",
        help="cap policy for the run (default: the 50%%-of-TDP policy)",
    )
    p_monitor.add_argument(
        "--watts-per-node",
        type=float,
        default=None,
        help="facility power budget per node (default: unbounded)",
    )
    p_monitor.add_argument(
        "--resolution",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="trace sample interval (coarser = faster; 0.1 matches the paper)",
    )
    p_monitor.add_argument(
        "--window",
        type=int,
        default=None,
        metavar="SAMPLES",
        help=f"per-node ring-buffer window (default: ${MONITOR_WINDOW_ENV} or 512)",
    )
    p_monitor.add_argument(
        "--alert-log",
        default=None,
        metavar="FILE",
        help=f"write alert lifecycle events as JSON lines (or ${MONITOR_LOG_ENV})",
    )
    p_monitor.add_argument(
        "--report-json",
        default=None,
        metavar="FILE",
        help="write the full monitor report (signals, alerts, energy) as JSON",
    )
    add_platform_flag(p_monitor, mixed=True)
    p_monitor.set_defaults(func=_cmd_monitor)

    p_sched = sub.add_parser("schedule", help="run the power-aware scheduling study")
    p_sched.add_argument("--nodes", type=int, default=16)
    p_sched.add_argument("--watts-per-node", type=float, default=900.0)
    p_sched.add_argument("--copies", type=int, default=2)
    p_sched.set_defaults(func=_cmd_schedule)

    p_obs = sub.add_parser(
        "obs", help="show observability configuration and status"
    )
    p_obs.add_argument(
        "--json", dest="json_status", action="store_true", help="emit JSON status"
    )
    p_obs.set_defaults(func=_cmd_obs)

    p_runs = sub.add_parser(
        "runs", help="query the durable run ledger (.repro_runs/)"
    )
    runs_sub = p_runs.add_subparsers(dest="runs_command", required=True)
    r_list = runs_sub.add_parser("list", help="list recorded runs, newest first")
    r_list.add_argument("--kind", default=None, help="filter by command kind")
    r_list.add_argument(
        "--limit", type=int, default=20, help="show at most N records (default 20)"
    )
    r_list.add_argument(
        "--json", dest="json_out", action="store_true", help="emit JSON records"
    )
    r_list.set_defaults(func=_cmd_runs)
    r_show = runs_sub.add_parser("show", help="print one run's full JSON record")
    r_show.add_argument(
        "ref", nargs="?", default="last", help="run id prefix or 'last'"
    )
    r_show.set_defaults(func=_cmd_runs)
    r_last = runs_sub.add_parser("last", help="print the most recent record")
    r_last.set_defaults(func=_cmd_runs)
    r_diff = runs_sub.add_parser(
        "diff", help="changed configuration/outcome fields between two runs"
    )
    r_diff.add_argument("ref_a", help="run id prefix or 'last'")
    r_diff.add_argument("ref_b", nargs="?", default="last")
    r_diff.set_defaults(func=_cmd_runs)
    r_check = runs_sub.add_parser(
        "check", help="regression-check a run against its ledger history"
    )
    r_check.add_argument("ref", nargs="?", default="last")
    r_check.add_argument(
        "--tolerance",
        "--threshold",
        dest="tolerance",
        type=float,
        default=sentinel.DEFAULT_TOLERANCE,
        metavar="FRACTION",
        help=(
            "relative wall-time slowdown tolerated vs the robust baseline "
            f"median (default {sentinel.DEFAULT_TOLERANCE:+.0%})"
        ),
    )
    r_check.add_argument(
        "--min-history",
        type=int,
        default=sentinel.DEFAULT_MIN_HISTORY,
        metavar="N",
        help=(
            "comparable runs required before statistical checks judge "
            f"(default {sentinel.DEFAULT_MIN_HISTORY})"
        ),
    )
    r_check.set_defaults(func=_cmd_runs)

    p_sentinel = sub.add_parser(
        "sentinel",
        help="regression sentinel over the run ledger (baselines, drift)",
    )
    sentinel_sub = p_sentinel.add_subparsers(
        dest="sentinel_command", required=True
    )

    def add_sentinel_gates(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--tolerance",
            type=float,
            default=sentinel.DEFAULT_TOLERANCE,
            metavar="FRACTION",
            help=(
                "relative slowdown tolerated vs the baseline median "
                f"(default {sentinel.DEFAULT_TOLERANCE:+.0%})"
            ),
        )
        p.add_argument(
            "--min-history",
            type=int,
            default=sentinel.DEFAULT_MIN_HISTORY,
            metavar="N",
            help=(
                "comparable runs required before statistical checks judge "
                f"(default {sentinel.DEFAULT_MIN_HISTORY})"
            ),
        )
        p.add_argument(
            "--drift-gate",
            type=float,
            default=sentinel.DEFAULT_DRIFT_GATE,
            metavar="MAPE",
            help=(
                "surrogate verification-error ceiling "
                f"(default {sentinel.DEFAULT_DRIFT_GATE:.0%})"
            ),
        )

    s_check = sentinel_sub.add_parser(
        "check",
        help="judge one run against its robust baseline (CI-gateable exit)",
    )
    s_check.add_argument("ref", nargs="?", default="last")
    add_sentinel_gates(s_check)
    s_check.set_defaults(func=_cmd_sentinel)
    s_report = sentinel_sub.add_parser(
        "report", help="per-fingerprint health: baseline, change point, verdict"
    )
    s_report.add_argument("--kind", default=None, help="filter by command kind")
    s_report.add_argument(
        "--json", dest="json_out", action="store_true", help="emit JSON rows"
    )
    add_sentinel_gates(s_report)
    s_report.set_defaults(func=_cmd_sentinel)
    s_baseline = sentinel_sub.add_parser(
        "baseline", help="the mined per-fingerprint baselines"
    )
    s_baseline.add_argument("--kind", default=None, help="filter by command kind")
    s_baseline.add_argument(
        "--json", dest="json_out", action="store_true", help="emit JSON baselines"
    )
    s_baseline.set_defaults(func=_cmd_sentinel)

    p_top = sub.add_parser(
        "top",
        help="live dashboard over a running fleet (heartbeats, alerts, ETA)",
    )
    p_top.add_argument(
        "--heartbeat",
        default=None,
        metavar="FILE",
        help="heartbeat base path (default: REPRO_FLEET_HEARTBEAT)",
    )
    p_top.add_argument(
        "--alert-log",
        default=None,
        metavar="FILE",
        help="monitor alert JSON-lines log (default: REPRO_MONITOR_LOG)",
    )
    p_top.add_argument(
        "--metrics-file",
        default=None,
        metavar="FILE",
        help="exported metrics .json snapshot to display",
    )
    p_top.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="refresh period (default 1.0)",
    )
    p_top.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stop after this long even if the run is still going",
    )
    p_top.add_argument(
        "--once", action="store_true", help="render a single frame and exit"
    )
    p_top.add_argument(
        "--json",
        dest="json_out",
        action="store_true",
        help="emit the raw snapshot as JSON instead of rendering",
    )
    p_top.set_defaults(func=_cmd_top)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    # Activate observability: env vars first, explicit flags on top.
    obs.configure_from_env()
    obs.enable(
        trace=getattr(args, "trace", None) or False,
        metrics=getattr(args, "metrics", None) or False,
        profile=getattr(args, "profile", None) or False,
        log_level=getattr(args, "log_level", None),
    )
    # Label the viewer rows in exported Chrome traces.
    obs.name_process(f"repro {args.command}")
    obs.name_thread("main")
    # Executing commands leave one durable record in the run ledger.
    # Recording is silent (the record is queried via `repro runs`, not
    # printed) so command output stays byte-stable run to run.
    if args.command in _RECORDED_COMMANDS:
        run_ledger.begin_run(
            args.command,
            shlex.join(list(argv) if argv is not None else sys.argv[1:]),
        )
    try:
        code = args.func(args)
        for path, kind in obs.flush().items():
            print(f"{kind} written to {path}")
        _annotate_efficiency()
        run_ledger.finish_run("ok" if code == 0 else f"exit-{code}")
        return code
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — not an error.
        run_ledger.discard_run()
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0
    except Exception:
        run_ledger.finish_run("error")
        raise


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
