"""CSV/JSON serialization of traces, series and experiment results."""

from __future__ import annotations

import csv
import dataclasses
import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.runner.trace import COMPONENT_KEYS, PowerTrace
from repro.telemetry.sampler import SampledSeries


# ----------------------------------------------------------------------
# Power traces (ground truth, component-resolved)
# ----------------------------------------------------------------------


def save_trace_csv(trace: PowerTrace, path: str | Path) -> Path:
    """Write a node trace to CSV: time_s plus one column per component."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["node_name", trace.node_name])
        writer.writerow(["time_s", *COMPONENT_KEYS])
        for i, t in enumerate(trace.times):
            writer.writerow(
                [f"{t:.4f}"] + [f"{trace.components[k][i]:.3f}" for k in COMPONENT_KEYS]
            )
    return path


def load_trace_csv(path: str | Path) -> PowerTrace:
    """Read a node trace written by :func:`save_trace_csv`."""
    path = Path(path)
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader)
        if len(header) != 2 or header[0] != "node_name":
            raise ValueError(f"{path}: not a trace CSV (missing node_name row)")
        node_name = header[1]
        columns = next(reader)
        if columns[0] != "time_s" or tuple(columns[1:]) != COMPONENT_KEYS:
            raise ValueError(f"{path}: unexpected column layout {columns}")
        rows = [[float(cell) for cell in row] for row in reader if row]
    data = np.asarray(rows, dtype=float)
    if data.size == 0:
        raise ValueError(f"{path}: trace has no samples")
    return PowerTrace(
        node_name=node_name,
        times=data[:, 0],
        components={k: data[:, i + 1] for i, k in enumerate(COMPONENT_KEYS)},
    )


# ----------------------------------------------------------------------
# Sampled series (telemetry view)
# ----------------------------------------------------------------------


def save_series_csv(series: SampledSeries, path: str | Path) -> Path:
    """Write a sampled series to CSV."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["node_name", series.node_name, "component", series.component])
        writer.writerow(["time_s", "power_w"])
        for t, v in zip(series.times, series.values):
            writer.writerow([f"{t:.4f}", f"{v:.3f}"])
    return path


def load_series_csv(path: str | Path) -> SampledSeries:
    """Read a sampled series written by :func:`save_series_csv`."""
    path = Path(path)
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        meta = next(reader)
        if len(meta) != 4 or meta[0] != "node_name" or meta[2] != "component":
            raise ValueError(f"{path}: not a series CSV")
        node_name, component = meta[1], meta[3]
        header = next(reader)
        if header != ["time_s", "power_w"]:
            raise ValueError(f"{path}: unexpected columns {header}")
        rows = [(float(t), float(v)) for t, v in (row for row in reader if row)]
    times = np.array([r[0] for r in rows])
    values = np.array([r[1] for r in rows])
    return SampledSeries(
        node_name=node_name, component=component, times=times, values=values
    )


# ----------------------------------------------------------------------
# Experiment results (figure data)
# ----------------------------------------------------------------------


def _jsonable(value: Any) -> Any:
    """Convert experiment result objects to JSON-compatible structures."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    # Fall back to repr for exotic members (e.g. nested runs) so export
    # never crashes a pipeline; loaders treat these as opaque.
    return repr(value)


def result_to_json(result: Any, path: str | Path | None = None, indent: int = 2) -> str:
    """Serialize an experiment result (dataclass tree) to JSON.

    Writes to ``path`` when given; always returns the JSON text.
    """
    text = json.dumps(_jsonable(result), indent=indent)
    if path is not None:
        Path(path).write_text(text + "\n")
    return text
