"""Artifact I/O: export and reload power data and experiment results.

The paper's artifact description publishes "the data and scripts used to
generate the figures".  This package provides the equivalent for the
reproduction: CSV export of power traces and sampled series (the raw
data), and JSON export of experiment result objects (the figure data),
with loaders that round-trip.
"""

from repro.io.export import (
    load_series_csv,
    load_trace_csv,
    result_to_json,
    save_series_csv,
    save_trace_csv,
)

__all__ = [
    "load_series_csv",
    "load_trace_csv",
    "result_to_json",
    "save_series_csv",
    "save_trace_csv",
]
