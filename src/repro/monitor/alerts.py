"""Declarative alert rules over health signals.

A raw health signal is a single observation; an *alert* is a judgement
that the condition is real and persistent.  :class:`AlertRule` declares
the mapping (which signal kind, how many consecutive observations to
debounce, how long a quiet period resolves it — the hysteresis that
stops a flapping node from paging every sample), and
:class:`AlertManager` runs the firing/resolved lifecycle, keeps a
JSON-ready event log, and exports the state through ``repro.obs``.

Everything is driven by simulation time carried on the signals — never
the wall clock — so alert sequences are as deterministic as the runs
that produce them.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro import obs
from repro.monitor.health import SIGNAL_KINDS, HealthSignal

#: Severity ordering for report sorting (highest first).
SEVERITIES = ("critical", "warning", "info")


@dataclass(frozen=True)
class AlertRule:
    """One declarative rule: signal kind -> alerting behaviour.

    ``min_count`` consecutive signals (per node) are required to fire
    (debounce); after firing, ``clear_quiet_s`` of silence resolves the
    alert (hysteresis).  ``min_value`` optionally ignores signals whose
    measured value is below it — e.g. only alert on z-drift beyond 3.0
    even though the detector reports at 2.5.
    """

    name: str
    signal: str
    severity: str = "warning"
    min_count: int = 1
    clear_quiet_s: float = 60.0
    min_value: float | None = None

    def __post_init__(self) -> None:
        if self.signal not in SIGNAL_KINDS:
            raise ValueError(
                f"rule {self.name!r} watches unknown signal {self.signal!r}; "
                f"known: {', '.join(SIGNAL_KINDS)}"
            )
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"rule {self.name!r} has unknown severity {self.severity!r}"
            )
        if self.min_count < 1:
            raise ValueError(f"rule {self.name!r}: min_count must be >= 1")
        if self.clear_quiet_s <= 0:
            raise ValueError(f"rule {self.name!r}: clear_quiet_s must be positive")


def default_rules() -> list[AlertRule]:
    """The standing rule set a facility would run with."""
    return [
        AlertRule(
            name="idle-power-outlier",
            signal="idle_outlier",
            severity="warning",
            min_count=1,
            clear_quiet_s=300.0,
        ),
        AlertRule(
            name="power-cap-violation",
            signal="cap_violation",
            severity="critical",
            min_count=2,
            clear_quiet_s=60.0,
        ),
        AlertRule(
            name="heavy-throttling",
            signal="throttle_residency",
            severity="info",
            min_count=1,
            clear_quiet_s=600.0,
        ),
        AlertRule(
            name="sampler-stale",
            signal="sampler_staleness",
            severity="warning",
            min_count=1,
            clear_quiet_s=120.0,
        ),
        AlertRule(
            name="node-power-drift",
            signal="fleet_drift",
            severity="warning",
            min_count=1,
            clear_quiet_s=600.0,
        ),
    ]


@dataclass
class _AlertState:
    """Lifecycle state of one (rule, node) pair."""

    count: int = 0
    firing: bool = False
    last_signal_s: float = -float("inf")
    fired_s: float | None = None
    last_value: float = 0.0


@dataclass(frozen=True)
class AlertEvent:
    """One lifecycle transition (firing or resolved)."""

    event: str  # "firing" | "resolved"
    rule: str
    severity: str
    node_name: str
    time_s: float
    value: float
    detail: str = ""

    def to_json(self) -> dict[str, object]:
        """JSON-ready record for the alert log sink."""
        return {
            "event": self.event,
            "rule": self.rule,
            "severity": self.severity,
            "node": self.node_name,
            "time_s": round(self.time_s, 3),
            "value": round(self.value, 3),
            "detail": self.detail,
        }


class AlertManager:
    """Evaluates rules against a signal stream; owns the event log."""

    def __init__(self, rules: list[AlertRule] | None = None) -> None:
        self.rules = list(rules) if rules is not None else default_rules()
        names = [r.name for r in self.rules]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate rule names: {sorted(names)}")
        self._by_signal: dict[str, list[AlertRule]] = {}
        for rule in self.rules:
            self._by_signal.setdefault(rule.signal, []).append(rule)
        self._state: dict[tuple[str, str], _AlertState] = {}
        self.events: list[AlertEvent] = []
        self.signals_processed = 0
        self._stream_path: Path | None = None

    # ------------------------------------------------------------------
    def stream_to(self, path: "str | Path | None") -> None:
        """Append lifecycle events to ``path`` (JSON lines) as they happen.

        This is the live tap ``repro top`` tails mid-run: each firing or
        resolved event is appended with a single ``O_APPEND`` write the
        moment it happens, so an observer process sees alerts while the
        simulation is still going.  :meth:`write_log` at finalization
        rewrites the same file from the canonical in-memory log, so the
        final file is identical whether or not anything tailed it.  The
        file is truncated now so the stream starts clean.
        """
        self._stream_path = Path(path) if path is not None else None
        if self._stream_path is not None:
            try:
                self._stream_path.write_text("")
            except OSError:
                self._stream_path = None

    def _stream(self, events: list[AlertEvent]) -> None:
        if self._stream_path is None or not events:
            return
        payload = "".join(
            json.dumps(event.to_json()) + "\n" for event in events
        )
        try:
            fd = os.open(
                self._stream_path,
                os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                0o644,
            )
            try:
                os.write(fd, payload.encode("utf-8"))
            finally:
                os.close(fd)
        except OSError:
            # A broken live tap must never take down the run.
            pass

    # ------------------------------------------------------------------
    def process(self, signal: HealthSignal) -> list[AlertEvent]:
        """Fold one signal through every rule watching its kind."""
        self.signals_processed += 1
        fired: list[AlertEvent] = []
        for rule in self._by_signal.get(signal.kind, ()):
            if rule.min_value is not None and abs(signal.value) < rule.min_value:
                continue
            key = (rule.name, signal.node_name)
            state = self._state.setdefault(key, _AlertState())
            state.count += 1
            state.last_signal_s = signal.time_s
            state.last_value = signal.value
            if not state.firing and state.count >= rule.min_count:
                state.firing = True
                state.fired_s = signal.time_s
                event = AlertEvent(
                    event="firing",
                    rule=rule.name,
                    severity=rule.severity,
                    node_name=signal.node_name,
                    time_s=signal.time_s,
                    value=signal.value,
                    detail=signal.detail,
                )
                self.events.append(event)
                fired.append(event)
                obs.inc("repro_monitor_alerts_total", severity=rule.severity)
        if fired:
            obs.gauge_set("repro_monitor_alerts_firing", float(self.firing_count))
            self._stream(fired)
        return fired

    def process_all(self, signals: list[HealthSignal]) -> list[AlertEvent]:
        """Process a batch of signals; returns the newly fired events."""
        fired = []
        for signal in signals:
            fired.extend(self.process(signal))
        return fired

    def sweep(self, now_s: float) -> list[AlertEvent]:
        """Resolve alerts whose rule's quiet period has elapsed."""
        rules = {r.name: r for r in self.rules}
        resolved = []
        for (rule_name, node_name), state in sorted(self._state.items()):
            rule = rules[rule_name]
            if state.firing and now_s - state.last_signal_s >= rule.clear_quiet_s:
                state.firing = False
                state.count = 0
                event = AlertEvent(
                    event="resolved",
                    rule=rule_name,
                    severity=rule.severity,
                    node_name=node_name,
                    time_s=now_s,
                    value=state.last_value,
                    detail=f"quiet for {now_s - state.last_signal_s:.0f} s",
                )
                self.events.append(event)
                resolved.append(event)
            elif not state.firing and now_s - state.last_signal_s >= rule.clear_quiet_s:
                # Debounce window expired without firing: forget the streak.
                state.count = 0
        if resolved:
            obs.gauge_set("repro_monitor_alerts_firing", float(self.firing_count))
            self._stream(resolved)
        return resolved

    # ------------------------------------------------------------------
    @property
    def firing_count(self) -> int:
        """Alerts currently in the firing state."""
        return sum(1 for state in self._state.values() if state.firing)

    def firing(self) -> list[tuple[str, str, AlertRule]]:
        """(rule name, node, rule) for every currently-firing alert,
        ordered by severity then name."""
        rules = {r.name: r for r in self.rules}
        active = [
            (rule_name, node_name, rules[rule_name])
            for (rule_name, node_name), state in self._state.items()
            if state.firing
        ]
        return sorted(
            active, key=lambda item: (SEVERITIES.index(item[2].severity), item[0], item[1])
        )

    def write_log(self, path: str | Path) -> Path:
        """Write the event log as JSON lines; returns the path."""
        path = Path(path)
        lines = [json.dumps(event.to_json()) for event in self.events]
        path.write_text("\n".join(lines) + ("\n" if lines else ""))
        return path
