"""Per-job energy accounting from streamed telemetry.

The paper reports energy-to-solution per workload (Figs 7, 8) and the
scheduling study's payoff rests on knowing what each job *costs* the
facility.  This module is the accounting layer a production OMNI
deployment would run: every streamed node-power chunk deposits joules
and node-seconds against the owning job, GPU chunks accumulate
cap-limited residency, and the closed ledger renders as a text or JSON
"power report" plus ``repro.obs`` metrics.

Cap-induced slowdown is estimated by comparing the job's scheduled
runtime against the analytic uncapped estimate
(:func:`repro.capping.scheduler.estimate_run` at ``cap=None``) — the
same deterministic estimator the scheduler itself uses, so the
attribution is consistent with the admission decisions.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro import obs


@dataclass
class JobEnergyAccount:
    """Accumulating energy/throttle attribution for one job."""

    job_id: str
    n_nodes: int
    cap_w: float
    start_s: float
    end_s: float
    #: Analytic runtime the job would have had uncapped (None = unknown).
    nominal_runtime_s: float | None = None
    energy_j: float = 0.0
    samples: int = 0
    gpu_seconds: float = 0.0
    cap_limited_s: float = 0.0
    peak_node_w: float = 0.0
    closed: bool = False

    @property
    def runtime_s(self) -> float:
        """Scheduled wall time of the job."""
        return self.end_s - self.start_s

    @property
    def node_seconds(self) -> float:
        """Node-seconds the job occupied."""
        return self.runtime_s * self.n_nodes

    @property
    def mean_node_power_w(self) -> float:
        """Mean per-node power over the job, from deposited energy."""
        return self.energy_j / self.node_seconds if self.node_seconds > 0 else 0.0

    @property
    def cap_residency(self) -> float:
        """Fraction of GPU time spent pinned at the power cap."""
        return self.cap_limited_s / self.gpu_seconds if self.gpu_seconds > 0 else 0.0

    @property
    def cap_slowdown(self) -> float:
        """Estimated cap-induced slowdown (>= 1.0; 1.0 when unknown)."""
        if not self.nominal_runtime_s or self.nominal_runtime_s <= 0:
            return 1.0
        return max(self.runtime_s / self.nominal_runtime_s, 1.0)

    @property
    def cap_overhead_s(self) -> float:
        """Wall time attributed to running under the cap."""
        if not self.nominal_runtime_s:
            return 0.0
        return max(self.runtime_s - self.nominal_runtime_s, 0.0)

    def to_json(self) -> dict[str, object]:
        """JSON-ready row for the power report."""
        return {
            "job_id": self.job_id,
            "n_nodes": self.n_nodes,
            "cap_w": self.cap_w,
            "start_s": round(self.start_s, 3),
            "runtime_s": round(self.runtime_s, 3),
            "node_seconds": round(self.node_seconds, 3),
            "energy_j": round(self.energy_j, 3),
            "mean_node_power_w": round(self.mean_node_power_w, 3),
            "peak_node_power_w": round(self.peak_node_w, 3),
            "cap_residency": round(self.cap_residency, 6),
            "cap_slowdown": round(self.cap_slowdown, 6),
            "cap_overhead_s": round(self.cap_overhead_s, 3),
        }


class EnergyLedger:
    """Open/deposit/close accounting across a fleet's jobs."""

    def __init__(self) -> None:
        self._accounts: dict[str, JobEnergyAccount] = {}

    def __len__(self) -> int:
        return len(self._accounts)

    def open_job(
        self,
        job_id: str,
        n_nodes: int,
        cap_w: float,
        start_s: float,
        end_s: float,
        nominal_runtime_s: float | None = None,
    ) -> JobEnergyAccount:
        """Open an account for a scheduled job."""
        if job_id in self._accounts:
            raise ValueError(f"job {job_id!r} already has an account")
        account = JobEnergyAccount(
            job_id=job_id,
            n_nodes=n_nodes,
            cap_w=cap_w,
            start_s=start_s,
            end_s=end_s,
            nominal_runtime_s=nominal_runtime_s,
        )
        self._accounts[job_id] = account
        return account

    def account(self, job_id: str) -> JobEnergyAccount:
        """The account for a job (KeyError if never opened)."""
        return self._accounts[job_id]

    def add_node_samples(
        self, job_id: str, values: np.ndarray, interval_s: float
    ) -> None:
        """Deposit one node-power chunk's energy against a job."""
        if values.size == 0:
            return
        account = self._accounts[job_id]
        account.energy_j += float(np.sum(values, dtype=np.float64)) * interval_s
        account.samples += int(values.size)
        account.peak_node_w = max(account.peak_node_w, float(values.max()))

    def add_gpu_time(
        self, job_id: str, gpu_seconds: float, cap_limited_s: float
    ) -> None:
        """Deposit GPU time and cap-limited residency against a job."""
        account = self._accounts[job_id]
        account.gpu_seconds += gpu_seconds
        account.cap_limited_s += cap_limited_s

    def close_job(self, job_id: str) -> JobEnergyAccount:
        """Close a job's account and export its totals as obs metrics."""
        account = self._accounts[job_id]
        if not account.closed:
            account.closed = True
            obs.inc("repro_monitor_energy_joules_total", account.energy_j)
            obs.inc("repro_monitor_node_seconds_total", account.node_seconds)
            obs.inc("repro_monitor_cap_limited_seconds_total", account.cap_limited_s)
            obs.inc("repro_monitor_jobs_closed_total")
        return account

    def accounts(self) -> list[JobEnergyAccount]:
        """All accounts, ordered by start time then job id."""
        return sorted(
            self._accounts.values(), key=lambda a: (a.start_s, a.job_id)
        )

    # ------------------------------------------------------------------
    @property
    def total_energy_j(self) -> float:
        """Joules deposited across every account."""
        return sum(a.energy_j for a in self._accounts.values())

    @property
    def total_node_seconds(self) -> float:
        """Node-seconds across every account."""
        return sum(a.node_seconds for a in self._accounts.values())

    @property
    def total_cap_limited_s(self) -> float:
        """Cap-limited GPU-seconds across every account."""
        return sum(a.cap_limited_s for a in self._accounts.values())

    @property
    def total_cap_overhead_s(self) -> float:
        """Wall seconds attributed to cap-induced slowdown, summed."""
        return sum(a.cap_overhead_s for a in self._accounts.values())

    # ------------------------------------------------------------------
    def to_json(self) -> dict[str, object]:
        """The whole ledger as JSON-ready data."""
        return {
            "jobs": [a.to_json() for a in self.accounts()],
            "totals": {
                "jobs": len(self._accounts),
                "energy_j": round(self.total_energy_j, 3),
                "energy_mj": round(self.total_energy_j / 1e6, 6),
                "node_seconds": round(self.total_node_seconds, 3),
                "cap_limited_seconds": round(self.total_cap_limited_s, 3),
                "cap_overhead_seconds": round(self.total_cap_overhead_s, 3),
            },
        }

    def export_json(self, path: str | Path) -> Path:
        """Write the JSON power report; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.to_json(), indent=2) + "\n")
        return path

    def render_text(self, top: int | None = None) -> str:
        """The per-job power report as an aligned text table."""
        accounts = self.accounts()
        if top is not None:
            accounts = sorted(accounts, key=lambda a: -a.energy_j)[:top]
        header = (
            f"{'job':<22} {'nodes':>5} {'cap(W)':>7} {'runtime(s)':>11} "
            f"{'energy(MJ)':>11} {'mean(W)':>8} {'cap-res':>8} {'slowdown':>9}"
        )
        lines = [header, "-" * len(header)]
        for a in accounts:
            lines.append(
                f"{a.job_id:<22} {a.n_nodes:>5d} {a.cap_w:>7.0f} "
                f"{a.runtime_s:>11.0f} {a.energy_j / 1e6:>11.3f} "
                f"{a.mean_node_power_w:>8.0f} {a.cap_residency:>7.1%} "
                f"{a.cap_slowdown:>8.2f}x"
            )
        lines.append(
            f"total: {len(self._accounts)} jobs, "
            f"{self.total_energy_j / 1e6:.2f} MJ, "
            f"{self.total_node_seconds:,.0f} node-seconds, "
            f"{self.total_cap_limited_s:,.0f} cap-limited GPU-seconds, "
            f"{self.total_cap_overhead_s:,.0f} s cap overhead"
        )
        return "\n".join(lines)
