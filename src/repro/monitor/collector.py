"""The live telemetry collector: streams in, health signals out.

:class:`FleetMonitor` is the OMNI/LDMS-style standing pipeline the paper's
methodology presumes: it subscribes to chunk streams
(:meth:`repro.runner.engine.PowerEngine.stream` taps,
:func:`repro.capping.fleet.simulate_fleet_traced`, or
:class:`repro.telemetry.omni.OmniStore` ingest), maintains per-node ring
buffers plus incremental :class:`~repro.hardware.system.RunningMoments`,
and derives the health signals of :mod:`repro.monitor.health`.  On top
sit the declarative alert rules (:mod:`repro.monitor.alerts`) and the
per-job energy ledger (:mod:`repro.monitor.energy`).

The collector is strictly an observer: it reads sample values and never
writes back into the data path, so a monitored run is bit-identical to
an unmonitored one (test-enforced).  Simulation time drives everything —
staleness, debounce and hysteresis all use the sample clock, keeping
monitor output deterministic per seed.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro import obs
from repro.hardware.node import GpuNode
from repro.hardware.platform import Platform, get_platform
from repro.hardware.system import RunningMoments
from repro.monitor.alerts import AlertManager, AlertRule
from repro.monitor.buffers import RingBuffer
from repro.monitor.energy import EnergyLedger
from repro.monitor.health import (
    CapMonitor,
    CapUsage,
    DriftDetector,
    HealthSignal,
    IdleOutlierDetector,
    StalenessDetector,
)
from repro.monitor.report import MonitorReport, NodeSummary
from repro.runner.trace import GPU_KEYS, RunResult
from repro.telemetry.sampler import SampledSeries

#: Environment variable: ring-buffer window per node, in samples.
MONITOR_WINDOW_ENV = "REPRO_MONITOR_WINDOW"
#: Environment variable: path for the JSON-lines alert log sink.
MONITOR_LOG_ENV = "REPRO_MONITOR_LOG"
#: Environment variable: any non-empty value asks the CLI to attach a
#: monitor to fleet/cap-sweep runs even without ``--monitor``.
MONITOR_ENV = "REPRO_MONITOR"

_GPU_COMPONENTS = frozenset(GPU_KEYS)


def monitor_window_samples() -> int:
    """Ring-buffer capacity from ``REPRO_MONITOR_WINDOW`` (default 512)."""
    raw = os.environ.get(MONITOR_WINDOW_ENV, "").strip()
    if not raw:
        return 512
    try:
        value = int(raw)
    except ValueError:
        return 512
    return value if value >= 1 else 512


def monitoring_requested() -> bool:
    """True when ``REPRO_MONITOR`` asks for ambient monitoring."""
    value = os.environ.get(MONITOR_ENV, "").strip().lower()
    return value not in ("", "0", "false", "off")


@dataclass(frozen=True)
class MonitorConfig:
    """Collector tunables; defaults derive from the hardware platform."""

    #: Hardware platform whose spec supplies the idle band and cap
    #: tolerances; None means the registry default (a100-40g).
    platform: "str | Platform | None" = None
    #: Per-node ring-buffer capacity (samples); None reads the env var.
    window_samples: int | None = None
    #: Sample-gap bound (§II-B: LDMS gaps never exceeded 5 s).
    max_gap_s: float = 5.0
    #: Idle band overrides; None uses the platform node spec's band
    #: (410-510 W on the paper's a100-40g).
    idle_min_w: float | None = None
    idle_max_w: float | None = None
    #: Relative excess over the GPU cap that counts as a violation; None
    #: derives it per cap from the platform GPU's regulation-error model
    #: (floored at 2 %).
    violation_tolerance: float | None = None
    #: Relative distance below the cap still counted as throttled.
    throttle_band: float = 0.05
    #: Job-level throttle residency that warrants a signal at close.
    throttle_residency_threshold: float = 0.5
    #: |z| beyond which a node's mean power counts as fleet drift.
    drift_z_threshold: float = 2.5
    #: Minimum samples a node needs before drift is judged.
    drift_min_samples: int = 16
    #: Alert-rule overrides; None installs :func:`default_rules`.
    rules: tuple[AlertRule, ...] | None = None
    #: JSON-lines alert log path; None reads ``REPRO_MONITOR_LOG``.
    alert_log: str | Path | None = None

    def resolved_window(self) -> int:
        """The effective ring capacity."""
        if self.window_samples is not None:
            if self.window_samples < 1:
                raise ValueError(
                    f"window_samples must be >= 1, got {self.window_samples}"
                )
            return self.window_samples
        return monitor_window_samples()

    def resolved_alert_log(self) -> Path | None:
        """The effective alert-log sink path."""
        if self.alert_log is not None:
            return Path(self.alert_log)
        raw = os.environ.get(MONITOR_LOG_ENV, "").strip()
        return Path(raw) if raw else None


@dataclass
class _JobState:
    """Per-open-job monitor state (cap usage shared across its GPUs)."""

    cap_w: float
    start_s: float
    usage: CapUsage = field(default_factory=CapUsage)


@dataclass
class JobMonitorPartial:
    """One job's monitor observations, compact enough to cross IPC.

    Produced by :class:`JobProbe` inside a shard worker; replayed — in
    chronological job order — through
    :meth:`FleetMonitor.absorb_job_partial` at the coordinator.  Events
    preserve the exact signal sequence the live tap path would have
    emitted, so debounce/hysteresis state in the alert engine evolves
    identically; moments and gap decisions that need cross-job state
    (drift, staleness ``_last_seen``) ship as per-chunk summaries the
    coordinator's detectors fold with their own state.
    """

    job_id: str
    n_nodes: int
    cap_w: float
    start_s: float
    end_s: float
    nominal_runtime_s: float | None
    #: Ordered stream of ("sig", HealthSignal) and
    #: ("node", name, first_s, last_s, intra_gap_s, intra_gap_time_s,
    #: moment_row) entries, in observation order.
    events: list[tuple] = field(default_factory=list)
    usage: CapUsage = field(default_factory=CapUsage)
    energy_j: float = 0.0
    energy_samples: int = 0
    peak_node_w: float = 0.0
    chunks_observed: int = 0
    samples_observed: int = 0
    horizon_s: float = 0.0


class JobProbe:
    """Worker-side monitor observer for a single job.

    Mirrors :meth:`FleetMonitor.observe_chunk` float-for-float, but
    instead of mutating shared monitor state it records a
    :class:`JobMonitorPartial` for the coordinator to replay.  Detectors
    that are stateless within a job (cap, idle) run here; detectors
    whose state spans jobs (staleness, drift, alerts) are summarized per
    chunk and resolved at the coordinator.
    """

    def __init__(
        self,
        config: MonitorConfig,
        job_id: str,
        n_nodes: int,
        cap_w: float,
        start_s: float,
        end_s: float,
        nominal_runtime_s: float | None,
        node_specs: "dict[str, object]",
    ) -> None:
        platform = get_platform(config.platform)
        self._idle = IdleOutlierDetector(
            idle_min_w=config.idle_min_w,
            idle_max_w=config.idle_max_w,
            node_spec=platform.node,
        )
        self._caps = CapMonitor(
            violation_tolerance=config.violation_tolerance,
            throttle_band=config.throttle_band,
            gpu_spec=platform.gpu,
        )
        # Same rule as attach_pool: per-node bands only when the config
        # pins no explicit band.
        self._node_bands: dict[str, tuple[float, float]] = {}
        if config.idle_min_w is None and config.idle_max_w is None:
            for name, spec in node_specs.items():
                self._node_bands[name] = (spec.idle_min_w, spec.idle_max_w)
        self.partial = JobMonitorPartial(
            job_id=job_id,
            n_nodes=n_nodes,
            cap_w=cap_w,
            start_s=start_s,
            end_s=end_s,
            nominal_runtime_s=nominal_runtime_s,
        )

    def observe_chunk(
        self,
        node_name: str,
        component: str,
        times: np.ndarray,
        values: np.ndarray,
        interval_s: float,
    ) -> None:
        """Fold one streamed chunk into the job partial."""
        is_gpu = component in _GPU_COMPONENTS
        if component != "node" and not is_gpu:
            return
        if values.size == 0:
            return
        partial = self.partial
        absolute = partial.start_s + np.asarray(times, dtype=float)
        partial.chunks_observed += 1
        partial.samples_observed += int(values.size)
        horizon = float(absolute[-1]) + interval_s / 2.0
        if horizon > partial.horizon_s:
            partial.horizon_s = horizon
        if is_gpu:
            for signal in self._caps.check_chunk(
                node_name,
                partial.cap_w,
                absolute,
                np.asarray(values, dtype=float),
                interval_s,
                partial.usage,
            ):
                partial.events.append(("sig", signal))
            return
        values = np.asarray(values, dtype=float)
        partial.energy_j += float(np.sum(values, dtype=np.float64)) * interval_s
        partial.energy_samples += int(values.size)
        partial.peak_node_w = max(partial.peak_node_w, float(values.max()))
        if absolute.size > 1:
            gaps = np.diff(absolute)
            idx = int(np.argmax(gaps))
            intra_gap_s, intra_gap_time_s = float(gaps[idx]), float(absolute[idx + 1])
        else:
            intra_gap_s, intra_gap_time_s = -np.inf, float(absolute[0])
        partial.events.append(
            (
                "node",
                node_name,
                float(absolute[0]),
                float(absolute[-1]),
                intra_gap_s,
                intra_gap_time_s,
                RunningMoments.from_batch(values).state(),
            )
        )
        band = self._node_bands.get(node_name)
        for signal in self._idle.check_samples(
            node_name,
            absolute,
            values,
            idle_min_w=band[0] if band is not None else None,
            idle_max_w=band[1] if band is not None else None,
        ):
            partial.events.append(("sig", signal))

    def tap(self, interval_s: float):
        """A :meth:`PowerEngine.stream` ``on_chunk`` callback."""

        def _on_chunk(chunk) -> None:
            self.observe_chunk(
                chunk.node_name,
                chunk.component,
                chunk.times,
                chunk.values,
                interval_s,
            )

        return _on_chunk


class FleetMonitor:
    """Streaming health monitor over a fleet's power telemetry."""

    def __init__(self, config: MonitorConfig | None = None, label: str = "fleet") -> None:
        self.config = config if config is not None else MonitorConfig()
        self.label = label
        window = self.config.resolved_window()
        self._window = window
        self._buffers: dict[str, RingBuffer] = {}
        platform = get_platform(self.config.platform)
        self._idle = IdleOutlierDetector(
            idle_min_w=self.config.idle_min_w,
            idle_max_w=self.config.idle_max_w,
            node_spec=platform.node,
        )
        #: Per-node idle bands learned from the attached pool (mixed
        #: pools); empty when the config pins an explicit band.
        self._node_bands: dict[str, tuple[float, float]] = {}
        self._caps = CapMonitor(
            violation_tolerance=self.config.violation_tolerance,
            throttle_band=self.config.throttle_band,
            gpu_spec=platform.gpu,
        )
        self._staleness = StalenessDetector(max_gap_s=self.config.max_gap_s)
        self._drift = DriftDetector(
            z_threshold=self.config.drift_z_threshold,
            min_samples=self.config.drift_min_samples,
        )
        self.alerts = AlertManager(
            list(self.config.rules) if self.config.rules is not None else None
        )
        # Live-stream lifecycle events to the configured alert log so an
        # observer (`repro top`) can tail them mid-run; finalize() still
        # rewrites the canonical log at the end.
        stream_path = self.config.resolved_alert_log()
        if stream_path is not None:
            self.alerts.stream_to(stream_path)
        self.ledger = EnergyLedger()
        self._jobs: dict[str, _JobState] = {}
        #: Node -> time of its most recent sample; maintained by both the
        #: live tap path and partial replay (ring buffers exist only on
        #: the live path, so reports read this instead).
        self._last_times: dict[str, float] = {}
        self.signals: list[HealthSignal] = []
        self.signal_counts: dict[str, int] = {}
        self.chunks_observed = 0
        self.samples_observed = 0
        self._horizon_s = 0.0
        self._finalized: MonitorReport | None = None
        _register_collector(self)

    # ------------------------------------------------------------------
    # Signal routing
    # ------------------------------------------------------------------
    def _emit(self, signals: list[HealthSignal]) -> None:
        if not signals:  # the per-chunk common case — keep it free
            return
        for signal in signals:
            self.signals.append(signal)
            self.signal_counts[signal.kind] = (
                self.signal_counts.get(signal.kind, 0) + 1
            )
            obs.inc("repro_monitor_signals_total", kind=signal.kind)
            _count_signal()
        self.alerts.process_all(signals)

    def _buffer(self, node_name: str) -> RingBuffer:
        buffer = self._buffers.get(node_name)
        if buffer is None:
            buffer = self._buffers[node_name] = RingBuffer(self._window)
        return buffer

    # ------------------------------------------------------------------
    # Subscriptions
    # ------------------------------------------------------------------
    def attach_pool(self, nodes: list[GpuNode], time_s: float = 0.0) -> None:
        """Run the idle-band survey over a node pool (§III-B as a check).

        Also learns each node's own idle band from its platform spec, so
        later streaming idle checks in a mixed-platform pool judge every
        node against the right envelope (an explicit config band wins).
        """
        if self.config.idle_min_w is None and self.config.idle_max_w is None:
            for node in nodes:
                self._node_bands[node.name] = (
                    node.spec.idle_min_w,
                    node.spec.idle_max_w,
                )
        with obs.span("monitor.attach_pool", nodes=len(nodes)):
            self._emit(self._idle.scan_pool(nodes, time_s=time_s))

    def on_job_start(
        self,
        job_id: str,
        n_nodes: int,
        cap_w: float,
        start_s: float,
        end_s: float,
        nominal_runtime_s: float | None = None,
    ) -> None:
        """Open accounting and cap tracking for a scheduled job."""
        self.ledger.open_job(
            job_id,
            n_nodes=n_nodes,
            cap_w=cap_w,
            start_s=start_s,
            end_s=end_s,
            nominal_runtime_s=nominal_runtime_s,
        )
        self._jobs[job_id] = _JobState(cap_w=cap_w, start_s=start_s)

    def observe_chunk(
        self,
        job_id: str,
        node_name: str,
        component: str,
        times: np.ndarray,
        values: np.ndarray,
        interval_s: float,
    ) -> None:
        """Fold one streamed chunk of one component into the monitor.

        ``times`` are job-relative sample midpoints; the job's start
        offset (from :meth:`on_job_start`) places them on the system
        clock.  Only ``node`` and GPU components carry health semantics;
        other components return immediately.
        """
        is_gpu = component in _GPU_COMPONENTS
        if component != "node" and not is_gpu:
            return
        if values.size == 0:
            return
        state = self._jobs[job_id]
        absolute = state.start_s + np.asarray(times, dtype=float)
        self.chunks_observed += 1
        self.samples_observed += int(values.size)
        obs.inc("repro_monitor_chunks_total")
        horizon = float(absolute[-1]) + interval_s / 2.0
        if horizon > self._horizon_s:
            self._horizon_s = horizon
        if is_gpu:
            self._emit(
                self._caps.check_chunk(
                    node_name,
                    state.cap_w,
                    absolute,
                    np.asarray(values, dtype=float),
                    interval_s,
                    state.usage,
                )
            )
            return
        values = np.asarray(values, dtype=float)
        self.ledger.add_node_samples(job_id, values, interval_s)
        self._buffer(node_name).push_batch(absolute, values)
        self._last_times[node_name] = float(absolute[-1])
        self._drift.update(node_name, values)
        self._emit(self._staleness.observe(node_name, absolute))
        band = self._node_bands.get(node_name)
        self._emit(
            self._idle.check_samples(
                node_name,
                absolute,
                values,
                idle_min_w=band[0] if band is not None else None,
                idle_max_w=band[1] if band is not None else None,
            )
        )

    def on_job_end(self, job_id: str) -> None:
        """Close a job: settle its ledger and judge throttle residency."""
        state = self._jobs.pop(job_id)
        self.ledger.add_gpu_time(
            job_id, state.usage.gpu_seconds, state.usage.cap_limited_s
        )
        account = self.ledger.close_job(job_id)
        residency = state.usage.throttle_residency
        if residency >= self.config.throttle_residency_threshold:
            self._emit(
                [
                    HealthSignal(
                        kind="throttle_residency",
                        node_name=job_id,
                        time_s=account.end_s,
                        value=residency,
                        threshold=self.config.throttle_residency_threshold,
                        detail=(
                            f"{residency:.0%} of GPU time at cap "
                            f"{state.cap_w:.0f} W "
                            f"(est. slowdown {account.cap_slowdown:.2f}x)"
                        ),
                    )
                ]
            )

    def absorb_job_partial(self, partial: JobMonitorPartial) -> None:
        """Replay one worker-produced job partial into this monitor.

        Must be called in chronological job order — the same order the
        live tap path observes jobs — so detectors whose state spans
        jobs (staleness ``_last_seen``, alert debounce/hysteresis, the
        drift moments) evolve through the identical sequence.  A sharded
        monitored run finalizes to the same report as a serial one.
        """
        self.on_job_start(
            partial.job_id,
            n_nodes=partial.n_nodes,
            cap_w=partial.cap_w,
            start_s=partial.start_s,
            end_s=partial.end_s,
            nominal_runtime_s=partial.nominal_runtime_s,
        )
        state = self._jobs[partial.job_id]
        self.chunks_observed += partial.chunks_observed
        self.samples_observed += partial.samples_observed
        if partial.chunks_observed:
            obs.inc("repro_monitor_chunks_total", partial.chunks_observed)
        if partial.horizon_s > self._horizon_s:
            self._horizon_s = partial.horizon_s
        # Job-level ledger scalars accumulate from zero inside the
        # worker with the same operations the live path uses, so adding
        # the totals once is fold-exact.
        account = self.ledger.account(partial.job_id)
        account.energy_j += partial.energy_j
        account.samples += partial.energy_samples
        account.peak_node_w = max(account.peak_node_w, partial.peak_node_w)
        for event in partial.events:
            if event[0] == "sig":
                self._emit([event[1]])
            else:
                _, name, first_s, last_s, intra_gap_s, intra_gap_time_s, row = event
                self._drift.absorb(name, RunningMoments.from_state(row))
                self._emit(
                    self._staleness.observe_summary(
                        name, first_s, last_s, intra_gap_s, intra_gap_time_s
                    )
                )
                self._last_times[name] = last_s
        state.usage = partial.usage
        self.on_job_end(partial.job_id)

    def tap(self, job_id: str, interval_s: float):
        """A :meth:`PowerEngine.stream` ``on_chunk`` callback for a job."""

        def _on_chunk(chunk) -> None:
            self.observe_chunk(
                job_id,
                chunk.node_name,
                chunk.component,
                chunk.times,
                chunk.values,
                interval_s,
            )

        return _on_chunk

    def observe_run(
        self,
        result: RunResult,
        job_id: str | None = None,
        start_s: float = 0.0,
        nominal_runtime_s: float | None = None,
        chunk_samples: int = 4096,
    ) -> None:
        """Post-hoc monitoring of a completed run's retained traces.

        Replays the node and GPU rows of every trace through the same
        streaming path ``observe_chunk`` serves — what ``cap-sweep
        --monitor`` uses, since sweeps retain whole traces.
        """
        label = job_id if job_id is not None else result.label
        self.on_job_start(
            label,
            n_nodes=result.n_nodes,
            cap_w=result.gpu_power_cap_w,
            start_s=start_s,
            end_s=start_s + result.runtime_s,
            nominal_runtime_s=nominal_runtime_s,
        )
        with obs.span("monitor.observe_run", job=label, nodes=result.n_nodes):
            for trace in result.traces:
                dt = trace.sample_interval_s
                times = trace.times
                for component in ("node",) + GPU_KEYS:
                    series = trace.components[component]
                    for lo in range(0, len(times), chunk_samples):
                        hi = min(lo + chunk_samples, len(times))
                        self.observe_chunk(
                            label,
                            trace.node_name,
                            component,
                            times[lo:hi],
                            series[lo:hi],
                            dt,
                        )
        self.on_job_end(label)

    def ingest_series(self, series: SampledSeries) -> None:
        """OmniStore subscription hook: watch an ingested sampled series.

        Store streams carry no job attribution, so only stream-level
        health applies: staleness on every component stream, ring
        buffering plus idle checks on node power.
        """
        key = f"{series.node_name}:{series.component}"
        times = np.asarray(series.times, dtype=float)
        self._emit(self._staleness.observe(key, times, node_name=series.node_name))
        if series.component != "node" or times.size == 0:
            return
        values = np.asarray(series.values, dtype=float)
        self.chunks_observed += 1
        self.samples_observed += int(values.size)
        horizon = float(times[-1])
        if horizon > self._horizon_s:
            self._horizon_s = horizon
        self._buffer(series.node_name).push_batch(times, values)
        self._last_times[series.node_name] = float(times[-1])
        self._drift.update(series.node_name, values)
        band = self._node_bands.get(series.node_name)
        self._emit(
            self._idle.check_samples(
                series.node_name,
                times,
                values,
                idle_min_w=band[0] if band is not None else None,
                idle_max_w=band[1] if band is not None else None,
            )
        )

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def finalize(self, now_s: float | None = None) -> MonitorReport:
        """Run end-of-stream sweeps and freeze the report.

        Safe to call more than once; later calls return the first report.
        """
        if self._finalized is not None:
            return self._finalized
        now = now_s if now_s is not None else self._horizon_s
        with obs.span("monitor.finalize", label=self.label):
            for job_id in sorted(self._jobs):
                self.on_job_end(job_id)
            self._emit(self._staleness.sweep(now))
            self._emit(self._drift.finalize(now))
            self.alerts.sweep(now + max(
                (rule.clear_quiet_s for rule in self.alerts.rules), default=0.0
            ))
            log_path = self.config.resolved_alert_log()
            if log_path is not None:
                self.alerts.write_log(log_path)
            obs.gauge_set(
                "repro_monitor_nodes_watched", float(len(self._last_times))
            )
            self._finalized = self._build_report(now)
        _unregister_collector(self)
        return self._finalized

    def _build_report(self, now_s: float) -> MonitorReport:
        nodes = []
        for name in sorted(self._drift.per_node):
            moments = self._drift.per_node[name]
            nodes.append(
                NodeSummary(
                    node_name=name,
                    samples=moments.count,
                    mean_w=moments.mean,
                    peak_w=moments.peak,
                    last_seen_s=self._last_times.get(name, -float("inf")),
                )
            )
        return MonitorReport(
            label=self.label,
            horizon_s=now_s,
            nodes_watched=len(self._last_times),
            chunks_observed=self.chunks_observed,
            samples_observed=self.samples_observed,
            signal_counts=dict(sorted(self.signal_counts.items())),
            signals=tuple(self.signals),
            alert_events=tuple(self.alerts.events),
            energy=self.ledger.to_json(),
            nodes=tuple(nodes),
        )

    @property
    def resident_bytes(self) -> int:
        """Bytes held by the per-node ring buffers."""
        return sum(buffer.nbytes for buffer in self._buffers.values())


# ----------------------------------------------------------------------
# Module-level state (surfaced by `repro obs`)
# ----------------------------------------------------------------------
_ACTIVE: set[int] = set()
_TOTALS = {"collectors_started": 0, "signals_emitted": 0}


def _register_collector(monitor: FleetMonitor) -> None:
    _ACTIVE.add(id(monitor))
    _TOTALS["collectors_started"] += 1


def _unregister_collector(monitor: FleetMonitor) -> None:
    _ACTIVE.discard(id(monitor))


def _count_signal() -> None:
    _TOTALS["signals_emitted"] += 1


def monitor_state() -> dict[str, object]:
    """Process-wide monitor status for ``repro obs``."""
    return {
        "active_collectors": len(_ACTIVE),
        "collectors_started": _TOTALS["collectors_started"],
        "signals_emitted": _TOTALS["signals_emitted"],
        "env": {
            MONITOR_ENV: os.environ.get(MONITOR_ENV) or None,
            MONITOR_WINDOW_ENV: os.environ.get(MONITOR_WINDOW_ENV) or None,
            MONITOR_LOG_ENV: os.environ.get(MONITOR_LOG_ENV) or None,
        },
    }


def reset_monitor_state() -> None:
    """Forget process-wide totals (test isolation)."""
    _ACTIVE.clear()
    _TOTALS["collectors_started"] = 0
    _TOTALS["signals_emitted"] = 0
