"""Frozen monitor output: the health dashboard and power report.

:class:`MonitorReport` is the immutable snapshot a
:class:`~repro.monitor.collector.FleetMonitor` produces at finalize —
everything the operator-facing surfaces (``repro monitor``, ``repro
fleet --monitor``) need, with no live references back into the
collector.  :func:`render_dashboard` renders it as the text dashboard;
``to_json`` is the machine-readable form.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.monitor.alerts import SEVERITIES, AlertEvent
from repro.monitor.health import SIGNAL_KINDS, HealthSignal


@dataclass(frozen=True)
class NodeSummary:
    """Per-node rollup of observed node power."""

    node_name: str
    samples: int
    mean_w: float
    peak_w: float
    last_seen_s: float

    def to_json(self) -> dict[str, object]:
        """JSON-ready row."""
        return {
            "node": self.node_name,
            "samples": self.samples,
            "mean_w": round(self.mean_w, 3),
            "peak_w": round(self.peak_w, 3),
            "last_seen_s": (
                round(self.last_seen_s, 3)
                if self.last_seen_s != -float("inf")
                else None
            ),
        }


@dataclass(frozen=True)
class MonitorReport:
    """Everything a finished monitoring session observed."""

    label: str
    horizon_s: float
    nodes_watched: int
    chunks_observed: int
    samples_observed: int
    signal_counts: dict[str, int]
    signals: tuple[HealthSignal, ...]
    alert_events: tuple[AlertEvent, ...]
    #: The energy ledger's ``to_json()`` payload (jobs + totals).
    energy: dict[str, object]
    nodes: tuple[NodeSummary, ...]

    @property
    def total_signals(self) -> int:
        """Health signals emitted across all kinds."""
        return sum(self.signal_counts.values())

    @property
    def distinct_signal_kinds(self) -> int:
        """How many of the signal kinds actually fired."""
        return sum(1 for count in self.signal_counts.values() if count > 0)

    @property
    def alerts_fired(self) -> int:
        """Alert lifecycle transitions into the firing state."""
        return sum(1 for event in self.alert_events if event.event == "firing")

    @property
    def alerts_resolved(self) -> int:
        """Alert lifecycle transitions into the resolved state."""
        return sum(1 for event in self.alert_events if event.event == "resolved")

    def signals_of(self, kind: str) -> list[HealthSignal]:
        """All signals of one kind, in emission order."""
        return [signal for signal in self.signals if signal.kind == kind]

    def to_json(self) -> dict[str, object]:
        """The whole report as JSON-ready data."""
        return {
            "label": self.label,
            "horizon_s": round(self.horizon_s, 3),
            "nodes_watched": self.nodes_watched,
            "chunks_observed": self.chunks_observed,
            "samples_observed": self.samples_observed,
            "signal_counts": dict(self.signal_counts),
            "signals": [signal.to_json() for signal in self.signals],
            "alerts": [event.to_json() for event in self.alert_events],
            "energy": self.energy,
            "nodes": [node.to_json() for node in self.nodes],
        }

    def export_json(self, path: str | Path) -> Path:
        """Write the JSON report; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.to_json(), indent=2) + "\n")
        return path

    def ledger_summary(self) -> dict[str, object]:
        """Compact alert/signal counts for the run ledger's ``alerts`` field."""
        totals = self.energy.get("totals", {}) if self.energy else {}
        return {
            "signals": self.total_signals,
            "signal_kinds": self.distinct_signal_kinds,
            "fired": self.alerts_fired,
            "resolved": self.alerts_resolved,
            "nodes_watched": self.nodes_watched,
            "energy_j": totals.get("energy_j"),
        }


def render_dashboard(report: MonitorReport, max_rows: int = 10) -> str:
    """The operator-facing text dashboard for one monitoring session."""
    lines = [
        f"fleet monitor: {report.label}",
        f"  horizon           {report.horizon_s:,.0f} s",
        f"  nodes watched     {report.nodes_watched}",
        f"  chunks observed   {report.chunks_observed:,}",
        f"  samples observed  {report.samples_observed:,}",
        "",
        "health signals",
    ]
    for kind in SIGNAL_KINDS:
        count = report.signal_counts.get(kind, 0)
        marker = "!" if count else " "
        lines.append(f"  {marker} {kind:<18} {count:>6d}")

    lines.append("")
    lines.append(
        f"alerts ({report.alerts_fired} fired, {report.alerts_resolved} resolved)"
    )
    recent = sorted(
        report.alert_events,
        key=lambda e: (SEVERITIES.index(e.severity), -e.time_s),
    )[:max_rows]
    if recent:
        for event in recent:
            lines.append(
                f"  [{event.severity:>8}] {event.event:<8} {event.rule:<22} "
                f"{event.node_name:<16} t={event.time_s:,.0f}s"
            )
        if len(report.alert_events) > max_rows:
            lines.append(f"  ... {len(report.alert_events) - max_rows} more")
    else:
        lines.append("  (none)")

    lines.append("")
    totals = report.energy.get("totals", {})
    jobs = report.energy.get("jobs", [])
    lines.append(f"energy accounting ({totals.get('jobs', 0)} jobs)")
    if jobs:
        lines.append(
            f"  {'job':<22} {'nodes':>5} {'cap(W)':>7} {'energy(MJ)':>11} "
            f"{'cap-res':>8} {'slowdown':>9}"
        )
        ranked = sorted(jobs, key=lambda j: -float(j.get("energy_j", 0.0)))
        for job in ranked[:max_rows]:
            lines.append(
                f"  {str(job['job_id']):<22} {int(job['n_nodes']):>5d} "
                f"{float(job['cap_w']):>7.0f} "
                f"{float(job['energy_j']) / 1e6:>11.3f} "
                f"{float(job['cap_residency']):>7.1%} "
                f"{float(job['cap_slowdown']):>8.2f}x"
            )
        if len(jobs) > max_rows:
            lines.append(f"  ... {len(jobs) - max_rows} more")
        lines.append(
            f"  total {float(totals.get('energy_mj', 0.0)):.2f} MJ over "
            f"{float(totals.get('node_seconds', 0.0)):,.0f} node-seconds "
            f"({float(totals.get('cap_limited_seconds', 0.0)):,.0f} "
            f"cap-limited GPU-seconds)"
        )
    else:
        lines.append("  (no jobs accounted)")

    if report.nodes:
        lines.append("")
        lines.append("hottest nodes (by mean node power)")
        hottest = sorted(report.nodes, key=lambda n: -n.mean_w)[:max_rows]
        for node in hottest:
            lines.append(
                f"  {node.node_name:<16} mean {node.mean_w:>7.0f} W  "
                f"peak {node.peak_w:>7.0f} W  ({node.samples:,} samples)"
            )
    return "\n".join(lines)
