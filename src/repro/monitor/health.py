"""Derived health signals over streaming node-power telemetry.

The paper's telemetry sections are, implicitly, a catalogue of the
things a standing monitor should watch for on a GPU fleet:

* **Idle-power outliers** — §III-B observed idle node power spread
  across 410-510 W; a node idling *outside* that band has a stuck fan,
  a mis-seated board, or a sensor fault.
* **Cap violations / throttle residency** — §V applies ``nvidia-smi``
  power caps; sustained draw above the cap means the limiter is not
  honouring the setting, while high residency *at* the cap quantifies
  how throttled a job runs (the source of Fig 12's slowdowns).
* **Sampler staleness** — §II-B's LDMS pipeline drops samples (2 s
  effective cadence, gaps bounded at 5 s); a stream whose gap exceeds
  that bound, or that stops reporting entirely, is stale.
* **Fleet drift** — §III-B's node-to-node manufacturing spread; a node
  whose power distribution walks away from the fleet (z-score on the
  per-node means) is drifting.

Detectors are pure observers: they read sample values and emit
:class:`HealthSignal` records, never touching the data path — monitored
runs stay bit-identical to unmonitored ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hardware.node import GpuNode
from repro.hardware.platform import (
    GpuSpec,
    NodeSpec,
    default_gpu_spec,
    default_node_spec,
)
from repro.hardware.system import RunningMoments

#: The four signal kinds every collector derives (plus throttle
#: residency, reported per job at close).
SIGNAL_KINDS = (
    "idle_outlier",
    "cap_violation",
    "throttle_residency",
    "sampler_staleness",
    "fleet_drift",
)


@dataclass(frozen=True)
class HealthSignal:
    """One derived health observation about one node (or stream)."""

    kind: str
    node_name: str
    time_s: float
    #: The measured quantity (watts, seconds, z-score — kind-dependent).
    value: float
    #: The bound it was judged against.
    threshold: float
    detail: str = ""

    def to_json(self) -> dict[str, object]:
        """JSON-ready record (alert log sink, power reports)."""
        return {
            "kind": self.kind,
            "node": self.node_name,
            "time_s": round(self.time_s, 3),
            "value": round(self.value, 3),
            "threshold": round(self.threshold, 3),
            "detail": self.detail,
        }


class IdleOutlierDetector:
    """Flags nodes whose idle power falls outside the §III-B band.

    The default band comes from ``node_spec`` (or, when omitted, the
    registry's default platform — the paper's 410-510 W window).  An
    explicitly passed band always wins; otherwise :meth:`scan_pool`
    judges each node against *its own* spec, so a mixed-platform pool
    raises no spurious outliers.
    """

    def __init__(
        self,
        idle_min_w: float | None = None,
        idle_max_w: float | None = None,
        node_spec: NodeSpec | None = None,
    ) -> None:
        spec = node_spec if node_spec is not None else default_node_spec()
        self._explicit = idle_min_w is not None or idle_max_w is not None
        self.idle_min_w = idle_min_w if idle_min_w is not None else spec.idle_min_w
        self.idle_max_w = idle_max_w if idle_max_w is not None else spec.idle_max_w
        if self.idle_max_w <= self.idle_min_w:
            raise ValueError(
                f"idle band empty: [{self.idle_min_w}, {self.idle_max_w}] W"
            )

    def scan_pool(self, nodes: list[GpuNode], time_s: float = 0.0) -> list[HealthSignal]:
        """Check every node's deterministic idle draw against the band.

        This is the §III-B survey as a health check: instead of reporting
        the spread, flag the nodes outside the expected envelope.  Unless
        the detector was built with an explicit band, each node is judged
        against its own platform spec's band.
        """
        signals = []
        for node in nodes:
            if self._explicit:
                lo, hi = self.idle_min_w, self.idle_max_w
            else:
                lo, hi = node.spec.idle_min_w, node.spec.idle_max_w
            idle_w = node.idle_sample().node_w
            if not (lo <= idle_w <= hi):
                bound = lo if idle_w < lo else hi
                signals.append(
                    HealthSignal(
                        kind="idle_outlier",
                        node_name=node.name,
                        time_s=time_s,
                        value=idle_w,
                        threshold=bound,
                        detail=(
                            f"idle {idle_w:.0f} W outside "
                            f"[{lo:.0f}, {hi:.0f}] W"
                        ),
                    )
                )
        return signals

    def check_samples(
        self,
        node_name: str,
        times: np.ndarray,
        values: np.ndarray,
        idle_min_w: float | None = None,
        idle_max_w: float | None = None,
    ) -> list[HealthSignal]:
        """Flag idle-like samples that sit outside the band.

        A sample is *idle-like* when it is below the band ceiling plus a
        margin (a busy node legitimately draws far more); idle-like
        samples below the band floor indicate a dead component or sensor
        under-read.  At most one signal per batch (the worst offender) —
        the alert engine handles persistence.  ``idle_min_w`` /
        ``idle_max_w`` override the detector band per call (the collector
        passes the node's own band in mixed-platform pools).
        """
        if values.size == 0:
            return []
        lo = idle_min_w if idle_min_w is not None else self.idle_min_w
        hi = idle_max_w if idle_max_w is not None else self.idle_max_w
        # Batch min at or above the band floor: no sample can qualify
        # (low requires < the floor) — the busy-node common case.
        if float(values.min()) >= lo:
            return []
        idle_like = values <= hi
        low = idle_like & (values < lo)
        if not np.any(low):
            return []
        worst = int(np.argmin(np.where(low, values, np.inf)))
        return [
            HealthSignal(
                kind="idle_outlier",
                node_name=node_name,
                time_s=float(times[worst]),
                value=float(values[worst]),
                threshold=lo,
                detail=(
                    f"{int(low.sum())} idle-like sample(s) below "
                    f"{lo:.0f} W"
                ),
            )
        ]


@dataclass
class CapUsage:
    """Accumulated cap interaction of one (job, GPU-stream) pair."""

    gpu_seconds: float = 0.0
    cap_limited_s: float = 0.0
    violation_s: float = 0.0
    peak_w: float = 0.0

    @property
    def throttle_residency(self) -> float:
        """Fraction of GPU time spent pinned at (or above) the cap."""
        return self.cap_limited_s / self.gpu_seconds if self.gpu_seconds > 0 else 0.0


class CapMonitor:
    """Tracks GPU draw against the applied ``nvidia-smi`` cap.

    ``violation_tolerance`` is the relative excess over the cap that
    counts as a violation; ``throttle_band`` the relative distance below
    the cap still counted as "pinned at the cap".  When
    ``violation_tolerance`` is None the tolerance is derived per cap from
    the GPU spec's regulation-error model (floored at 2 %) — deep caps
    legitimately overshoot more (Fig 10: ~8 % at the A100's 100 W
    floor), and the floor varies by platform.
    """

    def __init__(
        self,
        violation_tolerance: float | None = None,
        throttle_band: float = 0.05,
        gpu_spec: GpuSpec | None = None,
    ) -> None:
        if violation_tolerance is not None and violation_tolerance < 0:
            raise ValueError("violation_tolerance must be >= 0")
        if not 0.0 <= throttle_band < 1.0:
            raise ValueError("throttle_band must be in [0, 1)")
        self.violation_tolerance = violation_tolerance
        self.throttle_band = throttle_band
        self.gpu_spec = gpu_spec if gpu_spec is not None else default_gpu_spec()

    def tolerance_for(self, cap_w: float) -> float:
        """Effective violation tolerance at a cap.

        A fixed ``violation_tolerance`` wins; otherwise the spec's
        regulation error at this cap depth, floored at 2 %.
        """
        if self.violation_tolerance is not None:
            return self.violation_tolerance
        spec = self.gpu_spec
        span = spec.cap_max_w - spec.cap_min_w
        depth = (spec.cap_max_w - cap_w) / span if span > 0 else 0.0
        depth = min(max(depth, 0.0), 1.0)
        regulation = spec.regulation_error_max * depth**spec.regulation_error_exponent
        return max(0.02, regulation)

    def check_chunk(
        self,
        node_name: str,
        cap_w: float,
        times: np.ndarray,
        values: np.ndarray,
        interval_s: float,
        usage: CapUsage,
    ) -> list[HealthSignal]:
        """Fold one GPU-power chunk into ``usage``; emit violations.

        Residency and violation time accumulate sample-by-sample
        (``interval_s`` per sample); at most one violation signal per
        chunk, carrying the worst excess.
        """
        if values.size == 0:
            return []
        usage.gpu_seconds += values.size * interval_s
        vmax = float(values.max())
        if vmax > usage.peak_w:
            usage.peak_w = vmax
        # Chunk max below the throttle band: nothing pinned, nothing
        # over — skip the mask work entirely (the streaming common case).
        if vmax < cap_w * (1.0 - self.throttle_band):
            return []
        pinned = values >= cap_w * (1.0 - self.throttle_band)
        usage.cap_limited_s += float(pinned.sum()) * interval_s
        tolerance = self.tolerance_for(cap_w)
        limit = cap_w * (1.0 + tolerance)
        if vmax <= limit:
            return []
        over = values > limit
        n_over = int(over.sum())
        usage.violation_s += n_over * interval_s
        worst = int(np.argmax(np.where(over, values, -np.inf)))
        return [
            HealthSignal(
                kind="cap_violation",
                node_name=node_name,
                time_s=float(times[worst]),
                value=float(values[worst]),
                threshold=limit,
                detail=(
                    f"{n_over} sample(s) above cap {cap_w:.0f} W "
                    f"(+{tolerance:.0%} tolerance)"
                ),
            )
        ]


class StalenessDetector:
    """Flags streams whose sample gaps exceed the LDMS bound.

    §II-B: nominal 1 s cadence degrades to ~2 s effective with gaps that
    "did not exceed five seconds".  A gap beyond ``max_gap_s`` within a
    stream — or silence longer than that at the end of the run — means
    the sampler (or the node) stopped reporting.
    """

    def __init__(self, max_gap_s: float = 5.0) -> None:
        if max_gap_s <= 0:
            raise ValueError(f"max_gap_s must be positive, got {max_gap_s}")
        self.max_gap_s = max_gap_s
        #: Stream key -> time of the last sample seen.
        self._last_seen: dict[str, float] = {}

    def observe(
        self, key: str, times: np.ndarray, node_name: str | None = None
    ) -> list[HealthSignal]:
        """Fold a batch of sample times for one stream; emit gap signals.

        Checks the boundary gap against the previous batch plus every
        intra-batch gap (vectorized); at most one signal per batch, for
        the largest offending gap.
        """
        if times.size == 0:
            return []
        if times.size > 1:
            gaps = np.diff(times)
            idx = int(np.argmax(gaps))
            intra_gap_s = float(gaps[idx])
            intra_gap_time_s = float(times[idx + 1])
        else:
            intra_gap_s = -np.inf
            intra_gap_time_s = float(times[0])
        return self.observe_summary(
            key,
            float(times[0]),
            float(times[-1]),
            intra_gap_s,
            intra_gap_time_s,
            node_name=node_name,
        )

    def observe_summary(
        self,
        key: str,
        first_s: float,
        last_s: float,
        intra_gap_s: float = -np.inf,
        intra_gap_time_s: float = 0.0,
        node_name: str | None = None,
    ) -> list[HealthSignal]:
        """:meth:`observe` from a batch summary instead of raw times.

        Shard workers cannot see the coordinator's ``_last_seen`` state
        (the boundary gap spans jobs), so they ship each batch's first /
        last time and worst intra-batch gap, and the coordinator replays
        the exact gap decision here.  ``observe`` itself delegates to
        this method — the two paths share every float operation.
        """
        name = node_name if node_name is not None else key
        last = self._last_seen.get(key)
        worst_gap = 0.0
        worst_time = first_s
        if last is not None:
            boundary = first_s - last
            if boundary > worst_gap:
                worst_gap, worst_time = boundary, first_s
        if intra_gap_s > worst_gap:
            worst_gap, worst_time = intra_gap_s, intra_gap_time_s
        self._last_seen[key] = last_s
        # Relative tolerance: timestamps are accumulated floats, so a
        # nominal exactly-at-bound gap can land epsilon above it.
        if worst_gap <= self.max_gap_s * (1.0 + 1e-9):
            return []
        return [
            HealthSignal(
                kind="sampler_staleness",
                node_name=name,
                time_s=worst_time,
                value=worst_gap,
                threshold=self.max_gap_s,
                detail=f"sample gap {worst_gap:.1f} s > {self.max_gap_s:.1f} s",
            )
        ]

    def sweep(self, now_s: float) -> list[HealthSignal]:
        """Flag every stream silent for longer than the gap bound."""
        signals = []
        for key, last in sorted(self._last_seen.items()):
            age = now_s - last
            if age > self.max_gap_s:
                signals.append(
                    HealthSignal(
                        kind="sampler_staleness",
                        node_name=key,
                        time_s=now_s,
                        value=age,
                        threshold=self.max_gap_s,
                        detail=f"no samples for {age:.1f} s",
                    )
                )
        return signals

    def last_seen(self, key: str) -> float | None:
        """Time of the last sample for a stream (None if never seen)."""
        return self._last_seen.get(key)


@dataclass
class DriftDetector:
    """Node-vs-fleet z-score drift on per-node mean power.

    Each node's busy-power samples stream into its own
    :class:`RunningMoments`; at finalize the fleet distribution is the
    set of per-node means, and any node whose mean sits more than
    ``z_threshold`` standard deviations from it is drifting.
    """

    z_threshold: float = 2.5
    min_samples: int = 16
    per_node: dict[str, RunningMoments] = field(default_factory=dict)

    def update(self, node_name: str, values: np.ndarray) -> None:
        """Fold one node's power samples into its moments."""
        moments = self.per_node.get(node_name)
        if moments is None:
            moments = self.per_node[node_name] = RunningMoments()
        moments.update(values)

    def absorb(self, node_name: str, moments: RunningMoments) -> None:
        """Chan-merge a worker-computed moment set into a node's moments.

        With one moment row per chunk, merging rows in chunk order
        reproduces :meth:`update` on the raw samples bit for bit (see
        :meth:`RunningMoments.from_batch`).
        """
        existing = self.per_node.get(node_name)
        if existing is None:
            existing = self.per_node[node_name] = RunningMoments()
        existing.merge(moments)

    def finalize(self, now_s: float) -> list[HealthSignal]:
        """Judge every qualifying node's mean against the fleet spread."""
        eligible = {
            name: moments
            for name, moments in self.per_node.items()
            if moments.count >= self.min_samples
        }
        if len(eligible) < 3:
            return []  # no meaningful fleet distribution
        fleet = RunningMoments()
        fleet.update(np.array([m.mean for m in eligible.values()]))
        signals = []
        for name in sorted(eligible):
            z = fleet.zscore(eligible[name].mean)
            if abs(z) > self.z_threshold:
                signals.append(
                    HealthSignal(
                        kind="fleet_drift",
                        node_name=name,
                        time_s=now_s,
                        value=z,
                        threshold=self.z_threshold,
                        detail=(
                            f"node mean {eligible[name].mean:.0f} W, fleet "
                            f"{fleet.mean:.0f} ± {fleet.std:.0f} W (z={z:+.2f})"
                        ),
                    )
                )
        return signals
