"""Per-node ring buffers for the live telemetry collector.

OMNI keeps the full history in its store; a *live* monitor only ever
needs the recent past — enough samples to judge whether a node's current
draw is an outlier, whether it sits pinned at its cap, or whether its
stream went stale.  :class:`RingBuffer` is that bounded window: a
numpy-backed circular buffer of (time, value) samples with O(1)
amortized batch pushes and zero growth after construction, so a monitor
watching thousands of nodes holds a fixed, predictable footprint.
"""

from __future__ import annotations

import numpy as np


class RingBuffer:
    """Fixed-capacity circular buffer of (time, value) samples.

    Batch pushes larger than the capacity keep only the trailing
    ``capacity`` samples — exactly what a sliding window would retain.
    ``view()`` returns the window in arrival order (oldest first) as
    copies, so readers never alias the mutating storage.
    """

    __slots__ = ("capacity", "_times", "_values", "_head", "_count", "pushed")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._times = np.zeros(capacity)
        self._values = np.zeros(capacity)
        #: Next write position.
        self._head = 0
        self._count = 0
        #: Total samples ever pushed (including overwritten ones).
        self.pushed = 0

    def __len__(self) -> int:
        return self._count

    @property
    def nbytes(self) -> int:
        """Resident bytes of the sample storage."""
        return int(self._times.nbytes + self._values.nbytes)

    def push_batch(self, times: np.ndarray, values: np.ndarray) -> None:
        """Append a batch of samples, evicting the oldest on overflow."""
        times = np.asarray(times, dtype=float)
        values = np.asarray(values, dtype=float)
        if times.shape != values.shape:
            raise ValueError(f"shape mismatch: {times.shape} vs {values.shape}")
        n = times.size
        if n == 0:
            return
        self.pushed += n
        if n >= self.capacity:
            # The batch alone fills the window: keep its tail.
            self._times[:] = times[n - self.capacity :]
            self._values[:] = values[n - self.capacity :]
            self._head = 0
            self._count = self.capacity
            return
        first = min(n, self.capacity - self._head)
        self._times[self._head : self._head + first] = times[:first]
        self._values[self._head : self._head + first] = values[:first]
        if n > first:
            self._times[: n - first] = times[first:]
            self._values[: n - first] = values[first:]
        self._head = (self._head + n) % self.capacity
        self._count = min(self._count + n, self.capacity)

    def view(self) -> tuple[np.ndarray, np.ndarray]:
        """(times, values) in arrival order — copies, never views."""
        if self._count < self.capacity:
            return self._times[: self._count].copy(), self._values[: self._count].copy()
        order = np.concatenate(
            [np.arange(self._head, self.capacity), np.arange(self._head)]
        )
        return self._times[order], self._values[order]

    @property
    def latest_time(self) -> float:
        """Time of the most recent sample (-inf when empty)."""
        if self._count == 0:
            return -np.inf
        return float(self._times[(self._head - 1) % self.capacity])

    @property
    def latest_value(self) -> float:
        """Most recent sample value (nan when empty)."""
        if self._count == 0:
            return float("nan")
        return float(self._values[(self._head - 1) % self.capacity])
