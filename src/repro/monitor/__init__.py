"""``repro.monitor`` — OMNI-style fleet telemetry pipeline.

A streaming health monitor over the simulated fleet's power telemetry:
per-node ring buffers plus incremental moments
(:mod:`~repro.monitor.buffers`), derived health signals — idle-power
outliers, cap violations, throttle residency, sampler staleness, fleet
drift (:mod:`~repro.monitor.health`) — a declarative alert-rules engine
with debounce/hysteresis and a JSON log sink
(:mod:`~repro.monitor.alerts`), and per-job energy accounting rendered
as text/JSON power reports (:mod:`~repro.monitor.energy`).

:class:`FleetMonitor` ties it together and subscribes to the engine's
chunk streams, ``simulate_fleet_traced(monitor=...)``, or OmniStore
ingest.  The collector is observation-only: monitored runs are
bit-identical to unmonitored ones.

Environment variables: ``REPRO_MONITOR`` (ambient CLI monitoring),
``REPRO_MONITOR_WINDOW`` (ring-buffer samples per node),
``REPRO_MONITOR_LOG`` (alert-log JSON-lines sink).
"""

from repro.monitor.alerts import (
    SEVERITIES,
    AlertEvent,
    AlertManager,
    AlertRule,
    default_rules,
)
from repro.monitor.buffers import RingBuffer
from repro.monitor.collector import (
    MONITOR_ENV,
    MONITOR_LOG_ENV,
    MONITOR_WINDOW_ENV,
    FleetMonitor,
    MonitorConfig,
    monitor_state,
    monitor_window_samples,
    monitoring_requested,
    reset_monitor_state,
)
from repro.monitor.energy import EnergyLedger, JobEnergyAccount
from repro.monitor.health import (
    SIGNAL_KINDS,
    CapMonitor,
    CapUsage,
    DriftDetector,
    HealthSignal,
    IdleOutlierDetector,
    StalenessDetector,
)
from repro.monitor.report import MonitorReport, NodeSummary, render_dashboard

__all__ = [
    "SEVERITIES",
    "SIGNAL_KINDS",
    "MONITOR_ENV",
    "MONITOR_LOG_ENV",
    "MONITOR_WINDOW_ENV",
    "AlertEvent",
    "AlertManager",
    "AlertRule",
    "CapMonitor",
    "CapUsage",
    "DriftDetector",
    "EnergyLedger",
    "FleetMonitor",
    "HealthSignal",
    "IdleOutlierDetector",
    "JobEnergyAccount",
    "MonitorConfig",
    "MonitorReport",
    "NodeSummary",
    "RingBuffer",
    "StalenessDetector",
    "default_rules",
    "monitor_state",
    "monitor_window_samples",
    "monitoring_requested",
    "render_dashboard",
    "reset_monitor_state",
]
