"""Additional applications through the same power-modelling pipeline.

Section VI-B's deployment strategy: "We plan to incrementally include
additional prominent applications running at NERSC... Our approach has
been recently applied to NERSC's second top application, MILC."  This
package hosts those applications — workload models that emit the same
macro-phases the engine consumes, so every analysis and capping tool in
the library applies unchanged.
"""

from repro.apps.milc import MilcParams, MilcWorkload

__all__ = ["MilcParams", "MilcWorkload"]
