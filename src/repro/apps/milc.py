"""A MILC (lattice-QCD) workload model — NERSC's second application.

MILC evolves an SU(3) gauge field with hybrid Monte Carlo: each
trajectory alternates molecular-dynamics steps — a conjugate-gradient
(CG) solve of the staggered Dirac operator (the dominant cost, a
memory-bandwidth-bound 4-D stencil with halo exchanges) and gauge-force
updates (link-matrix algebra, moderately compute-bound) — with occasional
measurement phases.

Power-wise, MILC is the opposite pole from HSE-VASP: the CG solver
saturates HBM bandwidth, not the tensor cores, so GPUs draw a moderate,
very steady power and tolerate deep power caps — the behaviour the
companion study (Acun et al., "Analysis of Power Consumption and GPU
Power Capping for MILC", SC24 workshops) reports.  Here that falls out of
the same kernel-physics used for VASP: low compute-bound fraction means
SM-clock throttling barely slows the stencil.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.perfmodel.dvfs import occupancy
from repro.perfmodel.kernels import GpuKernelProfile
from repro.perfmodel.roofline import RooflineModel
from repro.vasp.parallel import CommunicationModel, ParallelConfig
from repro.vasp.phases import MacroPhase

#: The CG stencil: streams the lattice, near-zero tensor-core use.
CG_SOLVER = GpuKernelProfile(
    name="milc_cg_solver",
    compute_utilization=0.22,
    memory_utilization=0.92,
    compute_fraction=0.10,
)

#: Gauge force: SU(3) link products, moderately compute-bound.
GAUGE_FORCE = GpuKernelProfile(
    name="milc_gauge_force",
    compute_utilization=0.55,
    memory_utilization=0.65,
    compute_fraction=0.40,
)

#: Measurement (plaquettes, correlators): light, host-assisted.
MEASUREMENT = GpuKernelProfile(
    name="milc_measurement",
    compute_utilization=0.15,
    memory_utilization=0.30,
    compute_fraction=0.15,
)


@dataclass(frozen=True)
class MilcParams:
    """Run parameters of a MILC HMC campaign.

    ``lattice`` is the global 4-D extent (x, y, z, t); ``trajectories``
    the number of HMC trajectories; ``md_steps`` molecular-dynamics steps
    per trajectory; ``cg_iterations`` average CG iterations per solve
    (set by the quark mass).
    """

    lattice: tuple[int, int, int, int] = (32, 32, 32, 64)
    trajectories: int = 10
    md_steps: int = 20
    cg_iterations: int = 500
    measure_every: int = 5

    def __post_init__(self) -> None:
        if any(dim < 4 for dim in self.lattice):
            raise ValueError(f"lattice extents must be >= 4, got {self.lattice}")
        if min(self.trajectories, self.md_steps, self.cg_iterations) < 1:
            raise ValueError("trajectories, md_steps and cg_iterations must be >= 1")
        if self.measure_every < 1:
            raise ValueError(f"measure_every must be >= 1, got {self.measure_every}")

    @property
    def sites(self) -> int:
        """Global lattice sites."""
        x, y, z, t = self.lattice
        return x * y * z * t


@dataclass
class MilcWorkload:
    """A MILC campaign expressed as engine-consumable macro-phases."""

    name: str = "milc_medium"
    params: MilcParams = MilcParams()
    #: Bytes the CG stencil streams per site per iteration (gauge links +
    #: vectors, single precision with reliable updates).
    cg_bytes_per_site: float = 1.5e3
    #: Flops of SU(3) algebra per site per force evaluation.
    force_flops_per_site: float = 5.0e4
    #: Achieved fraction of ideal bandwidth / throughput.
    cg_efficiency: float = 0.55
    force_efficiency: float = 0.25

    # ------------------------------------------------------------------
    def _occupancy(self, local_sites: float) -> float:
        """Occupancy saturates with resident lattice volume per GPU."""
        return float(occupancy(local_sites, w_half=2.0e5, hill=1.2))

    def phases(
        self,
        parallel: ParallelConfig | None = None,
        comm: CommunicationModel | None = None,
    ) -> list[MacroPhase]:
        """The macro-phase sequence of the campaign."""
        layout = parallel if parallel is not None else ParallelConfig()
        network = comm if comm is not None else CommunicationModel()
        p = self.params
        roofline = RooflineModel()
        local_sites = p.sites / layout.total_ranks
        occ = self._occupancy(local_sites)

        # CG: bandwidth roofline + halo exchange per iteration.
        cg_profile = replace(CG_SOLVER.scaled(occ), duty_cycle=min(0.97, 0.5 + occ / 2))
        cg_bytes = p.cg_iterations * local_sites * self.cg_bytes_per_site
        surface = 6.0 * local_sites ** (3.0 / 4.0)  # 4-D halo area scale
        halo_s = p.cg_iterations * network.allreduce_time_s(
            surface * 24.0, layout.total_ranks, layout.n_nodes
        )
        cg_time = (
            cg_bytes
            / (roofline.peak_bandwidth * cg_profile.memory_utilization)
            / self.cg_efficiency
            + halo_s
        )

        # Force: compute roofline.
        force_profile = replace(GAUGE_FORCE.scaled(occ), duty_cycle=min(0.95, 0.5 + occ / 2))
        force_flops = local_sites * self.force_flops_per_site
        force_time = force_flops / (
            roofline.peak_flops * max(force_profile.compute_utilization, 1e-3)
        ) / self.force_efficiency

        measurement_profile = replace(MEASUREMENT.scaled(occ), duty_cycle=0.6)
        measurement_time = 0.2 * cg_time + 2.0

        phases: list[MacroPhase] = [
            MacroPhase(
                name="startup",
                duration_s=15.0,
                gpu_profile=replace(MEASUREMENT.scaled(0.1), duty_cycle=0.0),
                cpu_utilization=0.30,
                mem_bw_utilization=0.20,
            )
        ]
        for trajectory in range(p.trajectories):
            for _ in range(p.md_steps):
                phases.append(
                    MacroPhase(
                        name="cg_solve",
                        duration_s=cg_time,
                        gpu_profile=cg_profile,
                        cpu_utilization=0.06,
                        mem_bw_utilization=0.08,
                        nic_utilization=0.5 if layout.n_nodes > 1 else 0.05,
                    )
                )
                phases.append(
                    MacroPhase(
                        name="gauge_force",
                        duration_s=force_time,
                        gpu_profile=force_profile,
                        cpu_utilization=0.06,
                        mem_bw_utilization=0.06,
                    )
                )
            if (trajectory + 1) % p.measure_every == 0:
                phases.append(
                    MacroPhase(
                        name="measurement",
                        duration_s=measurement_time,
                        gpu_profile=measurement_profile,
                        cpu_utilization=0.25,
                        mem_bw_utilization=0.15,
                    )
                )
        phases.append(
            MacroPhase(
                name="finalize",
                duration_s=8.0,
                gpu_profile=replace(MEASUREMENT.scaled(0.1), duty_cycle=0.0),
                cpu_utilization=0.25,
                mem_bw_utilization=0.25,
            )
        )
        return phases

    def uncapped_runtime_s(self, parallel: ParallelConfig | None = None) -> float:
        """Total runtime at default power limits."""
        return sum(p.duration_s for p in self.phases(parallel))


def milc_benchmark(size: str = "medium") -> MilcWorkload:
    """Preset MILC campaigns: 'small', 'medium', 'large'."""
    presets = {
        "small": MilcParams(lattice=(16, 16, 16, 32), trajectories=10, md_steps=15),
        "medium": MilcParams(lattice=(32, 32, 32, 64), trajectories=10, md_steps=20),
        "large": MilcParams(
            lattice=(48, 48, 48, 96), trajectories=8, md_steps=20, cg_iterations=800
        ),
    }
    try:
        params = presets[size]
    except KeyError:
        raise ValueError(
            f"unknown MILC size {size!r}; known: {', '.join(presets)}"
        ) from None
    return MilcWorkload(name=f"milc_{size}", params=params)


def expected_class() -> str:
    """MILC's power class under the paper's taxonomy.

    Bandwidth-bound: behaves like the basic-DFT class (cap-insensitive),
    per the companion MILC study.
    """
    return "basic_dft_like"


def milc_cap_slowdown(
    workload: MilcWorkload, cap_w: float, n_nodes: int = 1
) -> float:
    """Runtime multiplier under a GPU power cap (analytic, no traces)."""
    from repro.hardware.gpu import GpuModel
    from repro.hardware.variability import ManufacturingVariation
    from repro.perfmodel.power import demand_power_w

    gpu = GpuModel(serial="MILC", variation=ManufacturingVariation.nominal())
    gpu.set_power_limit(cap_w)
    base = 0.0
    capped = 0.0
    for phase in workload.phases(ParallelConfig(n_nodes=n_nodes)):
        profile = phase.gpu_profile
        base += phase.duration_s
        if profile.duty_cycle <= 0:
            capped += phase.duration_s
            continue
        demand = demand_power_w(profile, gpu.envelope)
        sample = gpu.resolve_phase(demand, profile.compute_fraction)
        capped += phase.duration_s * (
            profile.duty_cycle * sample.slowdown + (1.0 - profile.duty_cycle)
        )
    return capped / base if base > 0 else math.nan
