"""repro: a reproduction of "Understanding VASP Power Profiles on NVIDIA
A100 GPUs" (Zhao, Rrapaj, Austin, Wright — SC 2024).

The library simulates the paper's full measurement stack — a VASP-like
workload model, an A100/Perlmutter power substrate, LDMS/OMNI-style
telemetry, the KDE/high-power-mode analysis, ``nvidia-smi`` power capping,
and a power-aware batch scheduler — and regenerates every table and figure
of the paper's evaluation (see ``repro.experiments``).

Quickstart::

    from repro.vasp import benchmark
    from repro.hardware import GpuNode
    from repro.runner import PowerEngine
    from repro.analysis import summarize

    workload = benchmark("Si256_hse").build()
    engine = PowerEngine([GpuNode("nid001000")])
    result = engine.run(workload.phases(), seed=42)
    print(summarize(result.traces[0].node_power))
"""

__version__ = "1.0.0"

from repro import analysis, capping, hardware, perfmodel, runner, telemetry, units, vasp

__all__ = [
    "__version__",
    "analysis",
    "capping",
    "hardware",
    "perfmodel",
    "runner",
    "telemetry",
    "units",
    "vasp",
]
