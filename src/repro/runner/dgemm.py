"""The DGEMM acceptance segment, plus a real NumPy DGEMM micro-kernel.

The paper's job scripts ran DGEMM before VASP "to exclude the runs
manifesting relatively larger manufactural differences in hardware
devices" (Section III-B).  :func:`dgemm_phase` models that segment;
:func:`numpy_dgemm_gflops` is an actual BLAS DGEMM used by the benchmark
harness to keep one foot in measured reality.
"""

from __future__ import annotations

import time

import numpy as np

from repro.perfmodel.kernels import KernelCatalogue
from repro.vasp.phases import MacroPhase


def dgemm_phase(duration_s: float = 60.0) -> MacroPhase:
    """The modelled DGEMM segment: near-TDP compute-bound load."""
    if duration_s <= 0:
        raise ValueError(f"duration_s must be positive, got {duration_s}")
    return MacroPhase(
        name="dgemm_test",
        duration_s=duration_s,
        gpu_profile=KernelCatalogue.DGEMM_TEST,
        cpu_utilization=0.20,
        mem_bw_utilization=0.15,
    )


def numpy_dgemm_gflops(n: int = 1024, repeats: int = 3, seed: int = 0) -> float:
    """Measured DGEMM throughput of this host's BLAS, in Gflop/s.

    Runs ``repeats`` ``n x n`` matrix multiplies and reports the best rate
    (minimum time), the same selection rule the paper uses for runtimes.
    """
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    b = rng.standard_normal((n, n))
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        c = a @ b
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        # Keep the result alive so the multiply cannot be elided.
        a[0, 0] += c[0, 0] * 1e-300
    flops = 2.0 * n**3
    return flops / best / 1e9
