"""The STREAM acceptance segment, plus a real NumPy triad micro-kernel.

Companion of :mod:`repro.runner.dgemm`: the bandwidth-bound half of the
paper's node-acceptance prologue.
"""

from __future__ import annotations

import time

import numpy as np

from repro.perfmodel.kernels import KernelCatalogue
from repro.vasp.phases import MacroPhase


def stream_phase(duration_s: float = 60.0) -> MacroPhase:
    """The modelled STREAM segment: bandwidth-saturating load."""
    if duration_s <= 0:
        raise ValueError(f"duration_s must be positive, got {duration_s}")
    return MacroPhase(
        name="stream_test",
        duration_s=duration_s,
        gpu_profile=KernelCatalogue.STREAM_TEST,
        cpu_utilization=0.15,
        mem_bw_utilization=0.60,
    )


def numpy_stream_gbs(n: int = 4_000_000, repeats: int = 3) -> float:
    """Measured STREAM-triad bandwidth of this host, in GB/s.

    ``a = b + s * c`` over ``n`` doubles; reports the best of ``repeats``.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    b = np.ones(n)
    c = np.full(n, 2.0)
    a = np.empty(n)
    scalar = 3.0
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        np.multiply(c, scalar, out=a)
        a += b
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    # Triad moves 3 arrays of 8 bytes each (2 reads + 1 write).
    return 3.0 * 8.0 * n / best / 1e9
