"""Content-keyed memoization of pipeline runs.

Every paper artifact sweeps a (workload, node-count, cap) grid, and many
grid points repeat across figures — e.g. the uncapped baseline shared by
every cap-response curve.  The engine is deterministic given its inputs,
so a run is fully identified by the *content* of its specification:
workload fingerprint, node configuration, cap, seed and engine config.

:class:`RunCache` memoizes any computation keyed that way, with an
in-memory LRU layer and an optional on-disk layer (a directory of pickle
files, by default ``.repro_cache/`` when enabled).  The disk layer is what
lets separate sweep workers — and separate processes entirely — share
results.

``fingerprint()`` derives a stable digest from (nested) dataclasses,
containers, numpy arrays and scalars.  Floats hash by their exact bit
pattern, so any change to a workload parameter or an
:class:`~repro.runner.engine.EngineConfig` field invalidates the key.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import logging
import os
import pickle
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable, TypeVar

import numpy as np

from repro import obs

logger = logging.getLogger(__name__)

#: Environment variable: set to a directory path to enable the on-disk
#: cache layer (``1``/``true`` selects the default ``.repro_cache/``).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: Environment variable: set to ``0``/``off`` to disable caching entirely.
CACHE_ENABLE_ENV = "REPRO_CACHE"
#: Default on-disk location.
DEFAULT_CACHE_DIR = ".repro_cache"

T = TypeVar("T")


@dataclasses.dataclass(frozen=True)
class CacheStats:
    """Point-in-time effectiveness snapshot of one :class:`RunCache`."""

    name: str
    hits: int
    misses: int
    disk_hits: int
    evictions: int
    size: int
    maxsize: int
    disk_dir: str | None

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when nothing was looked up)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def summary_line(self) -> str:
        """One-line human summary (for CLI footers)."""
        line = (
            f"{self.name} cache: {self.hits} hits / {self.misses} misses"
            f" ({self.hit_rate:.0%} hit rate), {self.size}/{self.maxsize} entries"
        )
        if self.disk_dir is not None:
            line += f", {self.disk_hits} disk hits ({self.disk_dir})"
        if self.evictions:
            line += f", {self.evictions} evictions"
        return line


def _canonical(obj: Any) -> Any:
    """Reduce an object to a deterministic, hashable-by-repr structure."""
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        return obj
    if isinstance(obj, float):
        # Exact bit pattern: 0.1 + 0.2 != 0.3 must key differently from 0.3.
        return ("f", obj.hex())
    if isinstance(obj, enum.Enum):
        return ("enum", type(obj).__qualname__, obj.name)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return (
            type(obj).__module__,
            type(obj).__qualname__,
            tuple(
                (f.name, _canonical(getattr(obj, f.name)))
                for f in dataclasses.fields(obj)
            ),
        )
    if isinstance(obj, np.ndarray):
        return ("ndarray", obj.dtype.str, obj.shape, obj.tobytes())
    if isinstance(obj, np.generic):
        return ("npscalar", obj.dtype.str, obj.tobytes())
    if isinstance(obj, dict):
        return ("dict", tuple(sorted((repr(k), _canonical(v)) for k, v in obj.items())))
    if isinstance(obj, (list, tuple)):
        return (type(obj).__name__, tuple(_canonical(v) for v in obj))
    if isinstance(obj, (set, frozenset)):
        return ("set", tuple(sorted(repr(_canonical(v)) for v in obj)))
    raise TypeError(
        f"cannot fingerprint {type(obj).__name__!r}: add a dataclass or "
        f"container representation"
    )


def fingerprint(*parts: Any) -> str:
    """Stable hex digest of arbitrary (dataclass/container/array) content."""
    digest = hashlib.sha256()
    digest.update(repr(tuple(_canonical(p) for p in parts)).encode("utf-8"))
    return digest.hexdigest()


def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Write a file atomically: temp sibling + ``os.replace``.

    Readers never observe a torn file — they see either the previous
    content or the full new content.  The temp name carries the writer's
    pid, so concurrent shard workers targeting the same path cannot
    clobber each other's in-flight writes.  On any failure the temp file
    is removed; the destination is left untouched.
    """
    path = Path(path)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        with tmp.open("wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def atomic_write_pickle(path: str | Path, value: Any) -> None:
    """Atomically pickle a value to a path (see :func:`atomic_write_bytes`)."""
    atomic_write_bytes(path, pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))


def caching_disabled() -> bool:
    """True when the ``REPRO_CACHE`` environment variable turns caching off."""
    return os.environ.get(CACHE_ENABLE_ENV, "").strip().lower() in ("0", "off", "false", "no")


def disk_dir_from_env() -> Path | None:
    """On-disk layer location from ``REPRO_CACHE_DIR`` (None = memory only)."""
    raw = os.environ.get(CACHE_DIR_ENV, "").strip()
    if not raw:
        return None
    if raw.lower() in ("1", "true", "yes", "on"):
        return Path(DEFAULT_CACHE_DIR)
    return Path(raw)


class RunCache:
    """Two-layer (LRU memory + optional disk) content-keyed result cache.

    Parameters
    ----------
    maxsize:
        In-memory LRU capacity (entries).
    disk_dir:
        Directory for the pickle layer; None keeps the cache memory-only.
        The directory is created lazily on first write.
    name:
        Label for :meth:`stats` lines and the ``cache`` metric label
        (e.g. ``"run"`` vs ``"estimate"``).

    Notes
    -----
    Cached values are returned *by reference* — treat results as
    immutable (the experiment pipeline never mutates a
    :class:`~repro.runner.trace.RunResult` after the fact).
    """

    def __init__(
        self,
        maxsize: int = 256,
        disk_dir: str | Path | None = None,
        name: str = "run",
    ) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self.name = name
        self._memory: OrderedDict[str, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._memory)

    def _disk_path(self, key: str) -> Path:
        assert self.disk_dir is not None
        return self.disk_dir / f"{key}.pkl"

    def get(self, key: str) -> Any | None:
        """Look up a key in memory, then on disk.  None on miss."""
        if key in self._memory:
            self._memory.move_to_end(key)
            self.hits += 1
            obs.inc("repro_cache_hits_total", cache=self.name, layer="memory")
            return self._memory[key]
        if self.disk_dir is not None:
            path = self._disk_path(key)
            if path.is_file():
                try:
                    with path.open("rb") as fh:
                        value = pickle.load(fh)
                except (OSError, pickle.UnpicklingError, EOFError) as exc:
                    # A torn write (e.g. interrupted worker) is a miss.
                    logger.warning(
                        "%s cache: unreadable disk entry %s (%s: %s); treating as miss",
                        self.name,
                        path,
                        type(exc).__name__,
                        exc,
                    )
                    obs.inc("repro_cache_disk_errors_total", cache=self.name)
                    self.misses += 1
                    obs.inc("repro_cache_misses_total", cache=self.name)
                    return None
                self._remember(key, value)
                self.hits += 1
                self.disk_hits += 1
                obs.inc("repro_cache_hits_total", cache=self.name, layer="disk")
                return value
        self.misses += 1
        obs.inc("repro_cache_misses_total", cache=self.name)
        return None

    def put(self, key: str, value: Any) -> None:
        """Store a value under a key in both layers."""
        self._remember(key, value)
        if self.disk_dir is not None:
            self.disk_dir.mkdir(parents=True, exist_ok=True)
            atomic_write_pickle(self._disk_path(key), value)

    def _remember(self, key: str, value: Any) -> None:
        self._memory[key] = value
        self._memory.move_to_end(key)
        while len(self._memory) > self.maxsize:
            self._memory.popitem(last=False)
            self.evictions += 1
            obs.inc("repro_cache_evictions_total", cache=self.name)

    def stats(self) -> CacheStats:
        """Effectiveness snapshot: hits, misses, disk hits, evictions, size."""
        return CacheStats(
            name=self.name,
            hits=self.hits,
            misses=self.misses,
            disk_hits=self.disk_hits,
            evictions=self.evictions,
            size=len(self._memory),
            maxsize=self.maxsize,
            disk_dir=str(self.disk_dir) if self.disk_dir is not None else None,
        )

    def get_or_compute(self, key: str, compute: Callable[[], T]) -> T:
        """Return the cached value for a key, computing and storing on miss."""
        cached = self.get(key)
        if cached is not None:
            return cached
        value = compute()
        self.put(key, value)
        return value

    def clear(self, disk: bool = False) -> None:
        """Drop the memory layer (and, optionally, the disk layer)."""
        self._memory.clear()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.evictions = 0
        if disk and self.disk_dir is not None and self.disk_dir.is_dir():
            for path in self.disk_dir.glob("*.pkl"):
                try:
                    path.unlink()
                except OSError as exc:
                    logger.warning(
                        "%s cache: could not remove %s (%s)", self.name, path, exc
                    )
