"""The power engine: macro-phases x nodes x caps -> power traces.

For every phase the engine resolves, per GPU:

1. demand power from the phase's kernel profile (occupancy-scaled);
2. the cap response — clock fraction, sustained power, slowdown — via the
   GPU's DVFS model;
3. the duty-cycle average between active and idle power;

then assembles node-level component samples, stretches the phase by the
cap-imposed slowdown, and renders the whole schedule to a regular
0.1-second grid with AR(1) measurement/activity noise (what makes the
KDE analysis of Section III meaningful).
"""

from __future__ import annotations

import logging
import os
from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass

import numpy as np
from scipy.signal import lfilter

from repro import obs
from repro.hardware.gpu import resolve_phase_batch
from repro.hardware.node import GpuNode
from repro.hardware.variability import unit_rng
from repro.perfmodel.power import demand_power_batch, demand_power_w
from repro.vasp.phases import MacroPhase
from repro.runner.trace import (
    COMPONENT_KEYS,
    GPU_KEYS,
    PhaseRecord,
    PowerTrace,
    RunResult,
    TraceBlock,
    trace_dtype,
)

logger = logging.getLogger(__name__)

#: Environment variable selecting the render chunk size, in samples.
#: When set, ``run()`` renders through the chunked streaming path
#: (bit-identical to the whole-schedule render); streaming consumers
#: (:meth:`PowerEngine.stream`) use it as their default chunk size.
RENDER_CHUNK_ENV = "REPRO_RENDER_CHUNK"

#: Default chunk size for streaming consumers when the env is unset.
DEFAULT_STREAM_CHUNK = 16_384


def render_chunk_samples() -> int | None:
    """Chunk size from ``REPRO_RENDER_CHUNK`` (None = whole-schedule)."""
    raw = os.environ.get(RENDER_CHUNK_ENV)
    if raw is None or raw.strip() == "":
        return None
    try:
        value = int(raw)
    except ValueError:
        logger.warning("ignoring invalid %s=%r", RENDER_CHUNK_ENV, raw)
        return None
    if value < 1:
        logger.warning("ignoring non-positive %s=%r", RENDER_CHUNK_ENV, raw)
        return None
    return value


@dataclass(frozen=True)
class EngineConfig:
    """Engine tunables.

    ``base_interval_s`` is the ground-truth resolution (the paper measured
    at 0.1 s for the Fig 2 study); ``noise_rel_sigma`` the relative AR(1)
    noise on dynamic power; ``noise_ar_coeff`` its lag-1 correlation.
    """

    base_interval_s: float = 0.1
    noise_rel_sigma: float = 0.03
    noise_ar_coeff: float = 0.85
    noise_floor_w: float = 1.5
    #: Relative per-rank work skew.  The paper's benchmarks were
    #: "meticulously designed to ensure load balancing among MPI tasks"
    #: (Section III-A); setting this above zero models what they avoided:
    #: loaded ranks run longer while the rest idle-wait, stretching the
    #: phase and widening the node-power distribution.
    rank_imbalance: float = 0.0

    def __post_init__(self) -> None:
        if self.base_interval_s <= 0:
            raise ValueError(f"base_interval_s must be positive, got {self.base_interval_s}")
        if not 0.0 <= self.noise_ar_coeff < 1.0:
            raise ValueError(f"noise_ar_coeff must be in [0, 1), got {self.noise_ar_coeff}")
        if self.noise_rel_sigma < 0:
            raise ValueError(f"noise_rel_sigma must be >= 0, got {self.noise_rel_sigma}")
        if not 0.0 <= self.rank_imbalance < 1.0:
            raise ValueError(
                f"rank_imbalance must be in [0, 1), got {self.rank_imbalance}"
            )


@dataclass(frozen=True)
class TraceChunk:
    """One fixed-size slice of one node component's rendered series."""

    node_name: str
    node_index: int
    component: str
    #: Sample offset of this chunk within the schedule's regular grid.
    start_index: int
    times: np.ndarray
    values: np.ndarray

    @property
    def n_samples(self) -> int:
        """Samples in this chunk."""
        return len(self.values)


@dataclass
class StreamedRun:
    """A resolved schedule whose render arrives as a chunk stream.

    ``chunks`` is a single-pass iterator over :class:`TraceChunk` records
    in (node, component, time) order — every component of
    :data:`~repro.runner.trace.COMPONENT_KEYS` is rendered (the RNG
    stream must advance identically to the whole-schedule render), so
    consumers filter for the components they aggregate.
    """

    label: str
    phases: list[PhaseRecord]
    runtime_s: float
    gpu_power_cap_w: float
    n_nodes: int
    n_samples: int
    base_interval_s: float
    chunk_samples: int
    chunks: Iterator[TraceChunk]


@dataclass(frozen=True)
class _ResolvedPhase:
    """A phase with cap effects applied, ready for rendering."""

    record: PhaseRecord
    # per node: component -> mean power during the phase
    node_means: list[dict[str, float]]


class PowerEngine:
    """Runs phase sequences on a fixed set of nodes."""

    def __init__(self, nodes: list[GpuNode], config: EngineConfig | None = None) -> None:
        if not nodes:
            raise ValueError("engine needs at least one node")
        self.nodes = nodes
        self.config = config if config is not None else EngineConfig()

    # ------------------------------------------------------------------
    def _rank_skew(self, gpu_serial: str) -> float:
        """Deterministic per-rank work skew in [0, rank_imbalance]."""
        if self.config.rank_imbalance <= 0.0:
            return 0.0
        return float(
            unit_rng(gpu_serial, "imbalance").uniform(0.0, self.config.rank_imbalance)
        )

    def _gpu_skews(self) -> dict[str, float]:
        """Per-GPU rank skews for every GPU in the pool."""
        return {
            gpu.serial: self._rank_skew(gpu.serial)
            for node in self.nodes
            for gpu in node.gpus
        }

    def _resolve_phases(self, phases: list[MacroPhase]) -> list[_ResolvedPhase]:
        """Cap-resolve all phases on all nodes x GPUs with array ops.

        This is the vectorized equivalent of calling
        :meth:`_resolve_phase_reference` per phase: one batched pass over a
        ``[phases, nodes, gpus]`` grid instead of three nested Python
        loops.  Heterogeneous pools (nodes with differing GPU counts) fall
        back to the reference path.
        """
        gpu_counts = {len(node.gpus) for node in self.nodes}
        if len(gpu_counts) != 1:
            logger.debug(
                "heterogeneous pool (%s GPUs/node): using reference resolve path",
                sorted(gpu_counts),
            )
            obs.inc("repro_engine_resolve_total", len(phases), path="reference")
            resolved = []
            for p in phases:
                with obs.span("engine.resolve_phase", phase=p.name, path="reference"):
                    resolved.append(self._resolve_phase_reference(p))
            return resolved
        obs.inc("repro_engine_resolve_total", len(phases), path="vectorized")

        nodes = self.nodes
        n_nodes = len(nodes)

        # Per-phase inputs, shape [P] (broadcast against GPUs as [P, 1, 1]).
        duty = np.array([p.gpu_profile.duty_cycle for p in phases])
        uc = np.array([p.gpu_profile.compute_utilization for p in phases])
        um = np.array([p.gpu_profile.memory_utilization for p in phases])
        cf = np.array([p.gpu_profile.compute_fraction for p in phases])
        duty_b = duty[:, None, None]

        # Per-GPU model state, shape [N, G].
        per_node = [node.gpu_state_arrays() for node in nodes]
        state = {
            key: np.stack([arrays[key] for arrays in per_node])
            for key in per_node[0]
        }
        skews_by_serial = self._gpu_skews()
        skews = np.array(
            [[skews_by_serial[gpu.serial] for gpu in node.gpus] for node in nodes]
        )
        max_skew = float(skews.max()) if skews.size else 0.0

        demand = demand_power_batch(
            uc[:, None, None],
            um[:, None, None],
            state["tdp_w"][None],
            state["idle_env_w"][None],
        )
        biased, _frac, slow = resolve_phase_batch(
            demand,
            cf[:, None, None],
            state["cap_w"][None],
            static_w=state["static_w"][None],
            idle_env_w=state["idle_env_w"][None],
            cap_min_w=state["cap_min_w"][None],
            cap_max_w=state["cap_max_w"][None],
            power_factor=state["power_factor"][None],
            idle_offset_w=state["idle_offset_w"][None],
            min_clock_fraction=state["min_clock_fraction"][None],
            control_margin=state["control_margin"][None],
            regulation_error_max=state["regulation_error_max"][None],
            regulation_error_exponent=state["regulation_error_exponent"][None],
        )

        # Load imbalance: rank i holds (1 + skew_i) of the nominal work;
        # the phase runs at the most-loaded rank's pace while the others
        # idle-wait, diluting their duty cycle.
        idle_w = state["idle_w"][None]
        rank_duty = np.minimum(duty_b * (1.0 + skews[None]) / (1.0 + max_skew), 1.0)
        gpu_means = rank_duty * biased + (1.0 - rank_duty) * idle_w
        gpu_means = np.where(duty_b <= 0.0, idle_w, gpu_means)

        # Ranks synchronize: each phase runs at the slowest GPU's pace.
        slow_terms = (duty_b * slow + (1.0 - duty_b)) * (1.0 + max_skew)
        phase_slowdown = np.maximum(slow_terms.max(axis=(1, 2)), 1.0)
        phase_slowdown = np.where(duty <= 0.0, 1.0, phase_slowdown)

        # Host-side components per node, shape [P] each.
        cpu_u = np.array([p.cpu_utilization for p in phases])
        mem_u = np.array([p.mem_bw_utilization for p in phases])
        nic_u = np.array([p.nic_utilization for p in phases])
        node_components: list[dict[str, np.ndarray]] = []
        for node_index, node in enumerate(nodes):
            cpu_w, memory_w, nic_w = node.host_power_batch(cpu_u, mem_u, nic_u)
            gpu_total = 0.0
            for gpu_index in range(len(node.gpus)):
                gpu_total = gpu_total + gpu_means[:, node_index, gpu_index]
            node_w = cpu_w + gpu_total + memory_w + nic_w + node.baseboard_power_w
            node_components.append(
                {"cpu": cpu_w, "memory": memory_w, "node": node_w}
            )

        resolved = []
        for phase_index, phase in enumerate(phases):
            slowdown = float(phase_slowdown[phase_index])
            node_means: list[dict[str, float]] = []
            for node_index, node in enumerate(nodes):
                means = {
                    key: float(series[phase_index])
                    for key, series in node_components[node_index].items()
                }
                for gpu_index, key in zip(range(len(node.gpus)), GPU_KEYS):
                    means[key] = float(gpu_means[phase_index, node_index, gpu_index])
                node_means.append(means)
            record = PhaseRecord(
                name=phase.name,
                start_s=0.0,
                end_s=phase.duration_s * slowdown,
                nominal_duration_s=phase.duration_s,
                slowdown=slowdown,
            )
            resolved.append(_ResolvedPhase(record=record, node_means=node_means))
        return resolved

    def _resolve_phase_reference(self, phase: MacroPhase) -> _ResolvedPhase:
        """Cap-resolve one phase on every node (schedule set later).

        Scalar reference implementation: per-node / per-GPU Python loops.
        The production path is :meth:`_resolve_phases`; this is kept as the
        readable specification, the fallback for heterogeneous pools, and
        the oracle the vectorized-equivalence tests replay.
        """
        profile = phase.gpu_profile
        duty = profile.duty_cycle
        node_means: list[dict[str, float]] = []
        slowdown = 1.0
        skews = {
            gpu.serial: self._rank_skew(gpu.serial)
            for node in self.nodes
            for gpu in node.gpus
        }
        max_skew = max(skews.values()) if skews else 0.0
        for node in self.nodes:
            gpu_means: list[float] = []
            for gpu in node.gpus:
                if duty <= 0.0:
                    gpu_means.append(gpu.idle_power_w)
                    continue
                demand = demand_power_w(profile, gpu.envelope)
                sample = gpu.resolve_phase(demand, profile.compute_fraction)
                # Load imbalance: rank i holds (1 + skew_i) of the nominal
                # work; the phase runs at the most-loaded rank's pace while
                # the others idle-wait, diluting their duty cycle.
                rank_duty = min(
                    duty * (1.0 + skews[gpu.serial]) / (1.0 + max_skew), 1.0
                )
                gpu_means.append(
                    rank_duty * sample.power_w + (1.0 - rank_duty) * gpu.idle_power_w
                )
                # Ranks synchronize: the job runs at the slowest GPU's pace.
                slowdown = max(
                    slowdown,
                    (duty * sample.slowdown + (1.0 - duty)) * (1.0 + max_skew),
                )
            node_sample = node.sample(
                gpu_power_w=gpu_means,
                cpu_utilization=phase.cpu_utilization,
                memory_bandwidth_utilization=phase.mem_bw_utilization,
                nic_utilization=phase.nic_utilization,
            )
            means = {
                "cpu": node_sample.cpu_w,
                "memory": node_sample.memory_w,
                "node": node_sample.node_w,
            }
            for key, value in zip(GPU_KEYS, node_sample.gpu_w):
                means[key] = value
            node_means.append(means)
        record = PhaseRecord(
            name=phase.name,
            start_s=0.0,
            end_s=phase.duration_s * slowdown,
            nominal_duration_s=phase.duration_s,
            slowdown=slowdown,
        )
        return _ResolvedPhase(record=record, node_means=node_means)

    def _phase_sample_counts(
        self, resolved: list[_ResolvedPhase]
    ) -> tuple[int, list[int]]:
        """(total samples, per-phase sample counts) on the regular grid."""
        dt = self.config.base_interval_s
        total = sum(r.record.duration_s for r in resolved)
        n_samples = max(int(round(total / dt)), 1)
        counts = []
        acc = 0
        t_acc = 0.0
        for r in resolved:
            t_acc += r.record.duration_s
            upto = min(int(round(t_acc / dt)), n_samples)
            counts.append(max(upto - acc, 0))
            acc = upto
        if acc < n_samples:
            # Rounding drift: park the remainder on the final phase so the
            # per-phase counts always sum to n_samples.
            counts[-1] += n_samples - acc
        return n_samples, counts

    def _empty_traces(self) -> list[PowerTrace]:
        """Zero-sample traces (run() rejects empty phase lists, but
        callers may render filtered schedules)."""
        dtype = trace_dtype()
        return [
            PowerTrace.from_block(
                TraceBlock(
                    node_name=node.name,
                    times=np.empty(0),
                    data=np.empty((len(COMPONENT_KEYS), 0), dtype=dtype),
                    base_interval_s=self.config.base_interval_s,
                )
            )
            for node in self.nodes
        ]

    def _render_traces(
        self,
        resolved: list[_ResolvedPhase],
        rng: np.random.Generator,
        chunk_samples: int | None = None,
    ) -> list[PowerTrace]:
        """Render the resolved schedule onto the regular sample grid.

        The output is columnar: one ``(n_components, n_samples)`` block
        per node.  With ``chunk_samples`` set, rows are filled through the
        chunked path (bit-identical; see :meth:`_iter_component_chunks`).
        """
        if not resolved:
            return self._empty_traces()
        dt = self.config.base_interval_s
        dtype = trace_dtype()
        n_samples, counts = self._phase_sample_counts(resolved)
        times = (np.arange(n_samples) + 0.5) * dt

        blocks = [
            TraceBlock(
                node_name=node.name,
                times=times,
                data=np.empty((len(COMPONENT_KEYS), n_samples), dtype=dtype),
                base_interval_s=dt,
            )
            for node in self.nodes
        ]
        if chunk_samples is None:
            for node_index in range(len(self.nodes)):
                block = blocks[node_index]
                for row, key in enumerate(COMPONENT_KEYS):
                    means = np.repeat(
                        [r.node_means[node_index][key] for r in resolved], counts
                    )
                    block.data[row] = self._add_noise(means, rng)
        else:
            for node_index, key, start, values in self._iter_component_chunks(
                resolved, rng, n_samples, counts, chunk_samples
            ):
                blocks[node_index].data[
                    COMPONENT_KEYS.index(key), start : start + len(values)
                ] = values
        return [PowerTrace.from_block(block) for block in blocks]

    def _iter_component_chunks(
        self,
        resolved: list[_ResolvedPhase],
        rng: np.random.Generator,
        n_samples: int,
        counts: list[int],
        chunk_samples: int,
    ) -> Iterator[tuple[int, str, int, np.ndarray]]:
        """Yield ``(node_index, component, start, values)`` fixed-size chunks.

        Bit-identical to the whole-schedule render: chunks are emitted in
        the same (node, component, time) order the whole render consumes
        the RNG stream in, and the AR(1) filter state is carried across
        chunk boundaries via ``lfilter``'s ``zi``/``zf`` so a chunked
        series equals its unchunked counterpart sample for sample.  Peak
        working memory is O(chunk), not O(schedule).
        """
        if chunk_samples < 1:
            raise ValueError(f"chunk_samples must be >= 1, got {chunk_samples}")
        cfg = self.config
        edges = np.concatenate([[0], np.cumsum(counts)]).astype(np.intp)
        dt = cfg.base_interval_s
        for node_index in range(len(self.nodes)):
            for key in COMPONENT_KEYS:
                levels = np.array(
                    [r.node_means[node_index][key] for r in resolved], dtype=float
                )
                zi = np.zeros(1)
                for start in range(0, n_samples, chunk_samples):
                    stop = min(start + chunk_samples, n_samples)
                    # Phase segments overlapping [start, stop).
                    i0 = int(np.searchsorted(edges, start, side="right")) - 1
                    i1 = int(np.searchsorted(edges, stop, side="left"))
                    seg_counts = (
                        np.minimum(edges[i0 + 1 : i1 + 1], stop)
                        - np.maximum(edges[i0:i1], start)
                    )
                    means = np.repeat(levels[i0:i1], seg_counts)
                    values, zi = self._add_noise_chunk(means, rng, zi)
                    obs.inc("repro_engine_chunks_total")
                    yield node_index, key, start, values

    def _add_noise(self, means: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """AR(1) noise proportional to the signal's dynamic range."""
        values, _zi = self._add_noise_chunk(means, rng, np.zeros(1))
        return values

    def _add_noise_chunk(
        self, means: np.ndarray, rng: np.random.Generator, zi: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """One noise chunk plus the AR(1) filter state to carry forward.

        ``zi`` is the direct-form filter state from the previous chunk of
        the same series (zeros at series start); threading it through
        ``lfilter`` makes chunked rendering bit-identical to filtering the
        whole series at once.
        """
        cfg = self.config
        if cfg.noise_rel_sigma == 0.0 or len(means) == 0:
            return means.astype(float), zi
        sigma = cfg.noise_rel_sigma * means + cfg.noise_floor_w
        white = rng.standard_normal(len(means)) * sigma
        # AR(1) filter: y[t] = a*y[t-1] + e[t]; normalize stationary variance.
        ar, zf = lfilter([1.0], [1.0, -cfg.noise_ar_coeff], white, zi=zi)
        ar *= np.sqrt(1.0 - cfg.noise_ar_coeff**2)
        return np.maximum(means + ar, 0.0), zf

    # ------------------------------------------------------------------
    def run(
        self,
        phases: list[MacroPhase],
        label: str = "run",
        seed: int = 0,
    ) -> RunResult:
        """Execute a phase sequence and return traces plus the schedule.

        GPU power caps are whatever is currently set on the engine's nodes
        (``GpuNode.set_gpu_power_limit``), mirroring how the paper applied
        ``nvidia-smi -pl`` before launching jobs.
        """
        if not phases:
            raise ValueError("cannot run an empty phase list")
        obs.inc("repro_engine_runs_total")
        with obs.span(
            "engine.run", label=label, phases=len(phases), nodes=len(self.nodes)
        ):
            return self._run_instrumented(phases, label, seed)

    def _resolve_and_layout(
        self, phases: list[MacroPhase]
    ) -> tuple[list[_ResolvedPhase], list[PhaseRecord], float]:
        """Cap-resolve phases and lay them out on the wall clock."""
        with obs.span(
            "engine.resolve_phases", phases=len(phases), nodes=len(self.nodes)
        ):
            resolved = self._resolve_phases(phases)
        records = []
        clock = 0.0
        for r in resolved:
            duration = r.record.duration_s
            records.append(
                PhaseRecord(
                    name=r.record.name,
                    start_s=clock,
                    end_s=clock + duration,
                    nominal_duration_s=r.record.nominal_duration_s,
                    slowdown=r.record.slowdown,
                )
            )
            clock += duration
        resolved = [
            _ResolvedPhase(record=rec, node_means=r.node_means)
            for rec, r in zip(records, resolved)
        ]
        return resolved, records, clock

    def _run_instrumented(
        self, phases: list[MacroPhase], label: str, seed: int
    ) -> RunResult:
        rng = np.random.default_rng(seed)
        resolved, records, clock = self._resolve_and_layout(phases)
        with obs.span(
            "engine.render_traces", phases=len(resolved), nodes=len(self.nodes)
        ) as render_span:
            traces = self._render_traces(
                resolved, rng, chunk_samples=render_chunk_samples()
            )
            render_span.annotate(samples=int(traces[0].times.size) if traces else 0)
        return RunResult(
            label=label,
            traces=traces,
            phases=records,
            runtime_s=clock,
            gpu_power_cap_w=self.nodes[0].gpu_power_limit_w,
        )

    # ------------------------------------------------------------------
    def stream(
        self,
        phases: list[MacroPhase],
        label: str = "run",
        seed: int = 0,
        chunk_samples: int | None = None,
        on_chunk: (
            "Callable[[TraceChunk], None]"
            " | Sequence[Callable[[TraceChunk], None]] | None"
        ) = None,
    ) -> "StreamedRun":
        """Resolve a schedule and stream its render in fixed-size chunks.

        Returns a :class:`StreamedRun` whose ``chunks`` iterator yields
        :class:`TraceChunk` records in (node, component, time) order; the
        concatenation of one series' chunks is bit-identical to the trace
        :meth:`run` renders for the same seed.  Peak render memory is
        O(chunk) instead of O(schedule) — nothing is retained between
        chunks, which is what lets fleet-scale consumers aggregate
        thousands of node traces in bounded memory.

        ``on_chunk`` is an observer tap — one callable or a sequence of
        callables (shard workers stack a monitor probe on top of their
        partial builder): each sees every chunk (all components, not
        just the ones the consumer keeps) before the consumer does, in
        the given order.  Taps must not mutate chunk arrays — the render
        is oblivious to them, which is what keeps monitored runs
        bit-identical to unmonitored ones.
        """
        if not phases:
            raise ValueError("cannot run an empty phase list")
        if on_chunk is None:
            taps: tuple = ()
        elif callable(on_chunk):
            taps = (on_chunk,)
        else:
            taps = tuple(on_chunk)
        if chunk_samples is None:
            chunk_samples = render_chunk_samples() or DEFAULT_STREAM_CHUNK
        obs.inc("repro_engine_streams_total")
        rng = np.random.default_rng(seed)
        resolved, records, clock = self._resolve_and_layout(phases)
        if resolved:
            n_samples, counts = self._phase_sample_counts(resolved)
        else:  # pragma: no cover - guarded by the empty-phase check above
            n_samples, counts = 0, []
        dt = self.config.base_interval_s
        dtype = trace_dtype()

        def generate() -> Iterator[TraceChunk]:
            for node_index, key, start, values in self._iter_component_chunks(
                resolved, rng, n_samples, counts, chunk_samples
            ):
                stop = start + len(values)
                chunk = TraceChunk(
                    node_name=self.nodes[node_index].name,
                    node_index=node_index,
                    component=key,
                    start_index=start,
                    times=(np.arange(start, stop) + 0.5) * dt,
                    values=values.astype(dtype),
                )
                for tap in taps:
                    tap(chunk)
                yield chunk

        return StreamedRun(
            label=label,
            phases=records,
            runtime_s=clock,
            gpu_power_cap_w=self.nodes[0].gpu_power_limit_w,
            n_nodes=len(self.nodes),
            n_samples=n_samples,
            base_interval_s=dt,
            chunk_samples=chunk_samples,
            chunks=generate(),
        )
