"""Trace records produced by the execution engine.

A :class:`PowerTrace` holds the component-resolved power timeline of one
node at the engine's base resolution (0.1 s); :class:`RunResult` bundles
the traces of all nodes in a job with the resolved phase schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Component keys in a node trace, matching the Cray PM counters.
GPU_KEYS = ("gpu0", "gpu1", "gpu2", "gpu3")
COMPONENT_KEYS = ("cpu",) + GPU_KEYS + ("memory", "node")


@dataclass(frozen=True)
class PhaseRecord:
    """One resolved phase: schedule plus the slowdown the cap imposed."""

    name: str
    start_s: float
    end_s: float
    nominal_duration_s: float
    slowdown: float

    @property
    def duration_s(self) -> float:
        """Actual wall time of the phase."""
        return self.end_s - self.start_s


@dataclass
class PowerTrace:
    """Component power timeline of one node.

    ``times`` are sample midpoints at the base resolution; ``components``
    maps each key in :data:`COMPONENT_KEYS` to a same-length power array in
    watts.  ``node`` is the total-node sensor (components + peripherals).
    """

    node_name: str
    times: np.ndarray
    components: dict[str, np.ndarray]

    def __post_init__(self) -> None:
        n = len(self.times)
        for key in COMPONENT_KEYS:
            if key not in self.components:
                raise ValueError(f"trace for {self.node_name} missing component {key!r}")
            if len(self.components[key]) != n:
                raise ValueError(
                    f"component {key!r} has {len(self.components[key])} samples, "
                    f"expected {n}"
                )

    @property
    def sample_interval_s(self) -> float:
        """Spacing between samples (assumes a regular grid)."""
        if len(self.times) < 2:
            return 0.0
        return float(self.times[1] - self.times[0])

    @property
    def node_power(self) -> np.ndarray:
        """Total node power series."""
        return self.components["node"]

    def gpu_power(self, index: int) -> np.ndarray:
        """Power series of one GPU (0-3)."""
        return self.components[f"gpu{index}"]

    @property
    def gpu_total(self) -> np.ndarray:
        """Summed power of the four GPUs."""
        return sum(self.components[k] for k in GPU_KEYS)

    def energy_j(self) -> float:
        """Node energy over the trace (trapezoid-free: regular sampling)."""
        return float(np.sum(self.node_power) * self.sample_interval_s)

    def window(self, start_s: float, end_s: float) -> "PowerTrace":
        """Sub-trace restricted to a time window."""
        if end_s < start_s:
            raise ValueError(f"end {end_s} before start {start_s}")
        mask = (self.times >= start_s) & (self.times < end_s)
        return PowerTrace(
            node_name=self.node_name,
            times=self.times[mask],
            components={k: v[mask] for k, v in self.components.items()},
        )


@dataclass
class RunResult:
    """Outcome of one run: traces per node plus the resolved schedule."""

    label: str
    traces: list[PowerTrace]
    phases: list[PhaseRecord]
    runtime_s: float
    gpu_power_cap_w: float
    metadata: dict[str, object] = field(default_factory=dict)

    @property
    def n_nodes(self) -> int:
        """Number of nodes in the job."""
        return len(self.traces)

    def total_energy_j(self) -> float:
        """Energy-to-solution summed over all nodes (Figs 7, 8)."""
        return sum(trace.energy_j() for trace in self.traces)

    def phase_windows(self, name: str) -> list[tuple[float, float]]:
        """Start/end times of every phase with a given name."""
        return [(p.start_s, p.end_s) for p in self.phases if p.name == name]

    def phase_time_s(self, name: str) -> float:
        """Total wall time spent in phases with a given name."""
        return sum(p.duration_s for p in self.phases if p.name == name)
