"""Trace records produced by the execution engine.

Storage is columnar: a :class:`TraceBlock` holds one node's component
power timeline as a single ``(n_components, n_samples)`` matrix
(structure-of-arrays), so windowing, component access and aggregation
are views and strided reductions instead of per-key dict copies.
:class:`PowerTrace` is kept as a thin compatible view over a block —
existing callers keep the ``.times`` / ``.components[...]`` API —
and :class:`RunResult` bundles the traces of all nodes in a job with
the resolved phase schedule.
"""

from __future__ import annotations

import os
from collections.abc import Iterator, Mapping
from dataclasses import dataclass, field

import numpy as np

#: Component keys in a node trace, matching the Cray PM counters.
GPU_KEYS = ("gpu0", "gpu1", "gpu2", "gpu3")
COMPONENT_KEYS = ("cpu",) + GPU_KEYS + ("memory", "node")

#: Environment variable selecting the engine's trace storage dtype.
TRACE_DTYPE_ENV = "REPRO_TRACE_DTYPE"


def trace_dtype() -> np.dtype:
    """Storage dtype for engine-rendered trace blocks.

    ``float32`` halves resident trace memory at fleet scale;
    ``REPRO_TRACE_DTYPE=float64`` restores full-width storage.
    """
    return np.dtype(os.environ.get(TRACE_DTYPE_ENV, "float32"))


@dataclass(frozen=True)
class PhaseRecord:
    """One resolved phase: schedule plus the slowdown the cap imposed."""

    name: str
    start_s: float
    end_s: float
    nominal_duration_s: float
    slowdown: float

    @property
    def duration_s(self) -> float:
        """Actual wall time of the phase."""
        return self.end_s - self.start_s


class TraceBlock:
    """Columnar storage of one node's component power timeline.

    ``data`` is a ``(n_components, n_samples)`` matrix whose rows follow
    ``components`` (the component index); ``times`` are float64 sample
    midpoints shared by every row.  Windowing and component access return
    views into the same buffer — a block never copies on read.
    """

    __slots__ = ("node_name", "times", "data", "components", "_rows", "base_interval_s")

    def __init__(
        self,
        node_name: str,
        times: np.ndarray,
        data: np.ndarray,
        components: tuple[str, ...] = COMPONENT_KEYS,
        base_interval_s: float | None = None,
    ) -> None:
        data = np.asarray(data)
        times = np.asarray(times, dtype=float)
        if data.ndim != 2:
            raise ValueError(f"data must be 2-D, got shape {data.shape}")
        if data.shape[0] != len(components):
            raise ValueError(
                f"data has {data.shape[0]} rows for {len(components)} components"
            )
        if data.shape[1] != len(times):
            raise ValueError(
                f"data has {data.shape[1]} samples, times has {len(times)}"
            )
        if base_interval_s is not None and base_interval_s <= 0:
            raise ValueError(f"base_interval_s must be positive, got {base_interval_s}")
        self.node_name = node_name
        self.times = times
        self.data = data
        self.components = tuple(components)
        self._rows = {key: row for row, key in enumerate(self.components)}
        self.base_interval_s = base_interval_s

    # ------------------------------------------------------------------
    @classmethod
    def from_components(
        cls,
        node_name: str,
        times: np.ndarray,
        components: Mapping[str, np.ndarray],
        base_interval_s: float | None = None,
        dtype: np.dtype | None = None,
    ) -> "TraceBlock":
        """Stack a component dict into one columnar matrix.

        ``dtype=None`` keeps the common dtype of the inputs, so callers
        that build float64 dicts round-trip bit-identically.
        """
        keys = tuple(components)
        n = len(np.asarray(times))
        for key in keys:
            if len(components[key]) != n:
                raise ValueError(
                    f"component {key!r} has {len(components[key])} samples, "
                    f"expected {n}"
                )
        if keys:
            common = np.result_type(*(np.asarray(components[k]) for k in keys))
        else:
            common = np.dtype(float)
        data = np.empty((len(keys), n), dtype=dtype if dtype is not None else common)
        for row, key in enumerate(keys):
            data[row] = components[key]
        return cls(
            node_name=node_name,
            times=times,
            data=data,
            components=keys,
            base_interval_s=base_interval_s,
        )

    # ------------------------------------------------------------------
    @property
    def n_samples(self) -> int:
        """Samples per component row."""
        return self.data.shape[1]

    @property
    def nbytes(self) -> int:
        """Resident bytes of the sample storage (data + time axis)."""
        return int(self.data.nbytes + self.times.nbytes)

    def component(self, key: str) -> np.ndarray:
        """One component's power series — a row view, never a copy."""
        try:
            return self.data[self._rows[key]]
        except KeyError:
            raise KeyError(f"unknown component {key!r}") from None

    @property
    def sample_interval_s(self) -> float:
        """Spacing between samples (assumes a regular grid).

        Carried from the renderer when known, so single-sample (and
        empty-window) blocks still report the true grid spacing instead
        of a silent 0.0.
        """
        if self.base_interval_s is not None:
            return self.base_interval_s
        if len(self.times) < 2:
            raise ValueError(
                f"trace for {self.node_name} has {len(self.times)} sample(s) and "
                "no declared base interval; the sample spacing is indeterminate"
            )
        return float(self.times[1] - self.times[0])

    @property
    def gpu_total(self) -> np.ndarray:
        """Summed power of the four GPUs (row-sequential reduction)."""
        rows = [self._rows[k] for k in GPU_KEYS]
        lo, hi = min(rows), max(rows) + 1
        if rows == list(range(lo, hi)):
            return np.add.reduce(self.data[lo:hi], axis=0)
        total = self.component(GPU_KEYS[0]).copy()
        for key in GPU_KEYS[1:]:
            total += self.component(key)
        return total

    def energy_j(self) -> float:
        """Node energy over the block (trapezoid-free: regular sampling)."""
        if self.n_samples == 0:
            return 0.0
        return float(
            np.sum(self.component("node"), dtype=np.float64) * self.sample_interval_s
        )

    def window(self, start_s: float, end_s: float) -> "TraceBlock":
        """Sub-block restricted to ``[start_s, end_s)`` — zero-copy views."""
        if end_s < start_s:
            raise ValueError(f"end {end_s} before start {start_s}")
        lo, hi = np.searchsorted(self.times, (start_s, end_s), side="left")
        # Carry the grid spacing (declared or inferable here) so narrow
        # windows — even single-sample ones — keep a determinate interval.
        carried = self.base_interval_s
        if carried is None and len(self.times) >= 2:
            carried = float(self.times[1] - self.times[0])
        return TraceBlock(
            node_name=self.node_name,
            times=self.times[lo:hi],
            data=self.data[:, lo:hi],
            components=self.components,
            base_interval_s=carried,
        )


class _ComponentsView(Mapping):
    """Read-only dict-compatible view over a block's component rows."""

    __slots__ = ("_block",)

    def __init__(self, block: TraceBlock) -> None:
        self._block = block

    def __getitem__(self, key: str) -> np.ndarray:
        return self._block.component(key)

    def __iter__(self) -> Iterator[str]:
        return iter(self._block.components)

    def __len__(self) -> int:
        return len(self._block.components)

    def __contains__(self, key: object) -> bool:
        return key in self._block._rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_ComponentsView({self._block.components})"


class PowerTrace:
    """Component power timeline of one node — a thin view over a block.

    The constructor keeps the historical dict-of-arrays signature
    (``times`` are sample midpoints; ``components`` maps each key in
    :data:`COMPONENT_KEYS` to a same-length power array in watts; ``node``
    is the total-node sensor).  Storage is the columnar
    :class:`TraceBlock`; ``.components`` is a zero-copy mapping view.
    """

    __slots__ = ("block",)

    def __init__(
        self,
        node_name: str | None = None,
        times: np.ndarray | None = None,
        components: Mapping[str, np.ndarray] | None = None,
        base_interval_s: float | None = None,
        block: TraceBlock | None = None,
    ) -> None:
        if block is None:
            if node_name is None or times is None or components is None:
                raise TypeError(
                    "PowerTrace needs node_name, times and components (or block=)"
                )
            missing = [key for key in COMPONENT_KEYS if key not in components]
            if missing:
                raise ValueError(
                    f"trace for {node_name} missing component {missing[0]!r}"
                )
            block = TraceBlock.from_components(
                node_name, times, components, base_interval_s=base_interval_s
            )
        else:
            for key in COMPONENT_KEYS:
                if key not in block._rows:
                    raise ValueError(
                        f"trace for {block.node_name} missing component {key!r}"
                    )
        self.block = block

    @classmethod
    def from_block(cls, block: TraceBlock) -> "PowerTrace":
        """Wrap an existing block without copying."""
        return cls(block=block)

    # ------------------------------------------------------------------
    @property
    def node_name(self) -> str:
        """Name of the node this trace belongs to."""
        return self.block.node_name

    @property
    def times(self) -> np.ndarray:
        """Sample midpoints at the base resolution."""
        return self.block.times

    @property
    def components(self) -> Mapping[str, np.ndarray]:
        """Component key -> power series (zero-copy row views)."""
        return _ComponentsView(self.block)

    @property
    def base_interval_s(self) -> float | None:
        """Declared grid spacing, when the renderer carried it."""
        return self.block.base_interval_s

    @property
    def sample_interval_s(self) -> float:
        """Spacing between samples (assumes a regular grid).

        Raises
        ------
        ValueError
            For sub-two-sample traces with no declared base interval —
            previously this silently returned 0.0, making ``energy_j``
            report 0 J for single-sample traces.
        """
        return self.block.sample_interval_s

    @property
    def node_power(self) -> np.ndarray:
        """Total node power series."""
        return self.block.component("node")

    def gpu_power(self, index: int) -> np.ndarray:
        """Power series of one GPU (0-3)."""
        return self.block.component(f"gpu{index}")

    @property
    def gpu_total(self) -> np.ndarray:
        """Summed power of the four GPUs."""
        return self.block.gpu_total

    def energy_j(self) -> float:
        """Node energy over the trace (trapezoid-free: regular sampling)."""
        return self.block.energy_j()

    def window(self, start_s: float, end_s: float) -> "PowerTrace":
        """Sub-trace restricted to a time window (zero-copy views)."""
        return PowerTrace.from_block(self.block.window(start_s, end_s))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PowerTrace({self.node_name!r}, {self.block.n_samples} samples, "
            f"{len(self.block.components)} components)"
        )


@dataclass
class RunResult:
    """Outcome of one run: traces per node plus the resolved schedule."""

    label: str
    traces: list[PowerTrace]
    phases: list[PhaseRecord]
    runtime_s: float
    gpu_power_cap_w: float
    metadata: dict[str, object] = field(default_factory=dict)

    @property
    def n_nodes(self) -> int:
        """Number of nodes in the job."""
        return len(self.traces)

    def total_energy_j(self) -> float:
        """Energy-to-solution summed over all nodes (Figs 7, 8)."""
        return sum(trace.energy_j() for trace in self.traces)

    def phase_windows(self, name: str) -> list[tuple[float, float]]:
        """Start/end times of every phase with a given name."""
        return [(p.start_s, p.end_s) for p in self.phases if p.name == name]

    def phase_time_s(self, name: str) -> float:
        """Total wall time spent in phases with a given name."""
        return sum(p.duration_s for p in self.phases if p.name == name)

    def resident_bytes(self) -> int:
        """Total trace bytes resident across nodes."""
        return sum(t.block.nbytes for t in self.traces)
