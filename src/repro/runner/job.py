"""The paper's job protocol: prologue segments, five repeats, min pick.

Section III-B: *"Each benchmark was run five times to avoid outliers...
We ran DGEMM and Stream tests before running VASP in the same job script
... We selected the run with the minimum total runtime as a
representative."*

:class:`JobScript` reproduces that protocol on the simulated nodes.
Run-to-run variation enters as a non-negative runtime jitter (slow
system components only ever add time) and a fresh noise seed per repeat.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hardware.node import GpuNode
from repro.perfmodel.kernels import KernelCatalogue
from repro.vasp.parallel import layout_for
from repro.vasp.phases import MacroPhase
from repro.vasp.workload import VaspWorkload
from repro.runner.dgemm import dgemm_phase
from repro.runner.engine import EngineConfig, PowerEngine
from repro.runner.stream import stream_phase
from repro.runner.trace import RunResult


def idle_phase(duration_s: float = 30.0) -> MacroPhase:
    """An idle gap between job segments."""
    if duration_s <= 0:
        raise ValueError(f"duration_s must be positive, got {duration_s}")
    return MacroPhase(
        name="idle",
        duration_s=duration_s,
        gpu_profile=KernelCatalogue.HOST_SECTION,
        cpu_utilization=0.0,
        mem_bw_utilization=0.0,
    )


@dataclass
class JobResult:
    """All repeats of a job plus the representative (min-runtime) run."""

    repeats: list[RunResult]
    representative_index: int

    @property
    def representative(self) -> RunResult:
        """The repeat with the minimum VASP-segment runtime."""
        return self.repeats[self.representative_index]

    @property
    def runtimes_s(self) -> list[float]:
        """VASP-segment runtimes of every repeat."""
        return [float(r.metadata["vasp_runtime_s"]) for r in self.repeats]


@dataclass
class JobScript:
    """One batch job: prologue + VASP segment on a set of nodes.

    Parameters
    ----------
    workload:
        The VASP workload to run.
    nodes:
        Allocated nodes; their current GPU power limits apply.
    include_prologue:
        Run the STREAM / DGEMM / idle segments first (Fig 1's layout).
    n_repeats:
        Paper protocol: five.
    runtime_jitter_sigma:
        Scale of the half-normal run-to-run runtime inflation.
    """

    workload: VaspWorkload
    nodes: list[GpuNode]
    include_prologue: bool = True
    n_repeats: int = 5
    runtime_jitter_sigma: float = 0.015
    prologue_duration_s: float = 60.0
    idle_duration_s: float = 30.0
    engine_config: EngineConfig = field(default_factory=EngineConfig)

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("job needs at least one node")
        if self.n_repeats < 1:
            raise ValueError(f"n_repeats must be >= 1, got {self.n_repeats}")

    def _phases(self) -> tuple[list[MacroPhase], int]:
        """Full phase list and the index where the VASP segment starts."""
        prologue: list[MacroPhase] = []
        if self.include_prologue:
            prologue = [
                stream_phase(self.prologue_duration_s),
                dgemm_phase(self.prologue_duration_s),
                idle_phase(self.idle_duration_s),
            ]
        parallel = layout_for(self.workload, len(self.nodes))
        vasp = self.workload.phases(parallel)
        return prologue + vasp, len(prologue)

    def run(self, seed: int = 0) -> JobResult:
        """Execute all repeats and pick the representative run."""
        engine = PowerEngine(self.nodes, self.engine_config)
        phases, vasp_start = self._phases()
        rng = np.random.default_rng(seed)
        repeats: list[RunResult] = []
        for repeat in range(self.n_repeats):
            jitter = 1.0 + abs(rng.normal(0.0, self.runtime_jitter_sigma))
            jittered = phases[:vasp_start] + [
                p.stretched(jitter) for p in phases[vasp_start:]
            ]
            result = engine.run(
                jittered,
                label=f"{self.workload.name}/repeat{repeat}",
                seed=seed * 1000 + repeat,
            )
            prologue_s = sum(p.duration_s for p in result.phases[:vasp_start])
            result.metadata["vasp_runtime_s"] = result.runtime_s - prologue_s
            result.metadata["vasp_start_s"] = prologue_s
            result.metadata["jitter"] = jitter
            repeats.append(result)
        best = min(
            range(len(repeats)), key=lambda i: repeats[i].metadata["vasp_runtime_s"]
        )
        return JobResult(repeats=repeats, representative_index=best)
