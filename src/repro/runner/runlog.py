"""OUTCAR-flavoured run logs: human-readable records of simulated runs.

VASP users read timings from the OUTCAR's ``LOOP+`` lines and the final
``Total CPU time used``; power analysts join those against telemetry by
timestamp.  This module writes an equivalent log for a simulated run —
phase-level timings, cap state, per-node energy — and parses it back, so
runs can be archived next to the exported traces (see :mod:`repro.io`)
and re-analyzed without re-simulating.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path

from repro.runner.trace import RunResult

_HEADER = "repro run log (OUTCAR-flavoured)"


@dataclass(frozen=True)
class RunLogSummary:
    """The parseable facts a run log records."""

    label: str
    n_nodes: int
    gpu_power_cap_w: float
    runtime_s: float
    total_energy_j: float
    #: phase name -> (occurrences, total seconds)
    phase_times: dict[str, tuple[int, float]]

    @property
    def loop_time_s(self) -> float:
        """Total time across phases (the OUTCAR 'LOOP+' analogue)."""
        return sum(seconds for _, seconds in self.phase_times.values())

    def ledger_fields(self) -> dict[str, object]:
        """The summary as run-ledger ``metrics`` fields (``repro runs``)."""
        return {
            "runtime_s": round(self.runtime_s, 6),
            "energy_j": round(self.total_energy_j, 6),
            "cap_w": self.gpu_power_cap_w,
            "nodes": self.n_nodes,
            "phases": len(self.phase_times),
        }


def summarize_run(result: RunResult) -> RunLogSummary:
    """Build the summary a run log records."""
    phase_times: dict[str, tuple[int, float]] = {}
    for record in result.phases:
        count, seconds = phase_times.get(record.name, (0, 0.0))
        phase_times[record.name] = (count + 1, seconds + record.duration_s)
    return RunLogSummary(
        label=result.label,
        n_nodes=result.n_nodes,
        gpu_power_cap_w=result.gpu_power_cap_w,
        runtime_s=result.runtime_s,
        total_energy_j=result.total_energy_j(),
        phase_times=phase_times,
    )


def write_run_log(result: RunResult, path: str | Path) -> Path:
    """Write the OUTCAR-flavoured log for a run."""
    summary = summarize_run(result)
    lines = [
        _HEADER,
        f" executed on  {summary.n_nodes} node(s), 4 GPUs/node",
        f" run label    {summary.label}",
        f" GPU power limit  {summary.gpu_power_cap_w:10.1f} W",
        "",
        " phase timings ------------------------------------------------",
    ]
    for name, (count, seconds) in sorted(
        summary.phase_times.items(), key=lambda kv: -kv[1][1]
    ):
        lines.append(
            f"  PHASE {name:24s} calls = {count:6d}  time = {seconds:12.3f} s"
        )
    lines += [
        "",
        f"      LOOP+:  cpu time {summary.loop_time_s:14.3f}: real time {summary.loop_time_s:14.3f}",
        f" Total CPU time used (sec): {summary.runtime_s:14.3f}",
        f" Total energy used (J):     {summary.total_energy_j:14.1f}",
    ]
    path = Path(path)
    path.write_text("\n".join(lines) + "\n")
    return path


_PHASE_RE = re.compile(
    r"^\s*PHASE\s+(?P<name>\S+)\s+calls =\s*(?P<count>\d+)\s+time =\s*(?P<time>[\d.]+) s\s*$"
)


def parse_run_log(path: str | Path) -> RunLogSummary:
    """Parse a log written by :func:`write_run_log`.

    Raises
    ------
    ValueError
        If the file is not a repro run log or required lines are missing.
    """
    text = Path(path).read_text()
    lines = text.splitlines()
    if not lines or lines[0] != _HEADER:
        raise ValueError(f"{path}: not a repro run log")

    def grab(prefix: str) -> str:
        for line in lines:
            stripped = line.strip()
            if stripped.startswith(prefix):
                return stripped[len(prefix):].strip()
        raise ValueError(f"{path}: missing {prefix!r} line")

    n_nodes = int(grab("executed on").split()[0])
    label = grab("run label")
    cap = float(grab("GPU power limit").split()[0])
    runtime = float(grab("Total CPU time used (sec):"))
    energy = float(grab("Total energy used (J):"))
    phase_times: dict[str, tuple[int, float]] = {}
    for line in lines:
        match = _PHASE_RE.match(line)
        if match:
            phase_times[match.group("name")] = (
                int(match.group("count")),
                float(match.group("time")),
            )
    if not phase_times:
        raise ValueError(f"{path}: no PHASE lines found")
    return RunLogSummary(
        label=label,
        n_nodes=n_nodes,
        gpu_power_cap_w=cap,
        runtime_s=runtime,
        total_energy_j=energy,
        phase_times=phase_times,
    )
