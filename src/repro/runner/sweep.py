"""Parallel, cached execution of run-spec grids.

Every paper artifact is a sweep: Table I iterates the seven benchmarks,
Figs 4/5/8/13 sweep node counts, Figs 10/12 sweep power caps, and the
fleet studies sweep policies.  The seed repository executed every grid
point serially, one ``engine.run()`` at a time.  This module turns a grid
into a first-class object:

* :class:`RunSpec` / :class:`EstimateSpec` describe one grid point by
  *content* (workload, node count, cap, seed, engine config) — never by
  execution context — so a spec executes to the same bits no matter which
  worker runs it, and fingerprints as a cache key.
* :class:`SweepExecutor` executes a grid through
  :mod:`concurrent.futures` (process pool), deduplicating identical specs
  first and always returning results in the original grid order.  A
  serial fallback covers single-CPU hosts, pools that fail to start, and
  ``REPRO_SWEEP_WORKERS=1``.

Determinism contract: parallel execution is bit-identical to serial
execution.  Seeds are part of the spec, engine inputs are rebuilt from
the spec inside the worker, and nothing about worker identity enters the
computation.

Observability composes with the pool: when tracing/metrics are active,
each worker wraps its specs in a fresh per-process capture
(:mod:`repro.obs.merge`) and ships the recorded spans and metric state
back with the result — the coordinator's merged trace shows every
``sweep.spec`` span under its worker's pid row, and merged counters
equal a serial run's exactly.
"""

from __future__ import annotations

import logging
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Sequence, TypeVar

from repro import obs
from repro.obs import merge as obs_merge
from repro.runner.cache import fingerprint
from repro.runner.engine import EngineConfig
from repro.vasp.workload import VaspWorkload

logger = logging.getLogger(__name__)

#: Environment override for the worker count.  ``1`` (or ``0``) forces
#: serial execution; unset lets the executor size itself to the host.
WORKERS_ENV = "REPRO_SWEEP_WORKERS"

#: Grids smaller than this run serially unless workers are set
#: explicitly — pool startup would cost more than it saves.
MIN_PARALLEL_GRID = 4

SpecT = TypeVar("SpecT")
ResultT = TypeVar("ResultT")


@dataclass
class SweepStats:
    """Process-wide sweep effectiveness totals (cheap plain counters).

    Always maintained — unlike the :mod:`repro.obs` metrics these cost a
    few integer adds per *grid*, so they stay on even with observability
    disabled.  They feed the CLI's end-of-run dedupe summary and the
    bench trajectory fields in ``BENCH_BASELINE.json``.
    """

    grids: int = 0
    specs_submitted: int = 0
    specs_executed: int = 0

    @property
    def specs_deduped(self) -> int:
        """Grid points served by another point's execution."""
        return self.specs_submitted - self.specs_executed

    @property
    def dedupe_ratio(self) -> float:
        """Deduped fraction of submitted specs (0.0 when nothing ran)."""
        if self.specs_submitted == 0:
            return 0.0
        return self.specs_deduped / self.specs_submitted

    def summary_line(self) -> str:
        """One-line human summary (for CLI footers)."""
        return (
            f"sweeps: {self.specs_submitted} specs over {self.grids} grids, "
            f"{self.specs_executed} executed "
            f"({self.specs_deduped} deduped, {self.dedupe_ratio:.0%})"
        )


_STATS = SweepStats()


def sweep_stats() -> SweepStats:
    """The process-wide :class:`SweepStats` accumulator."""
    return _STATS


def reset_sweep_stats() -> None:
    """Zero the process-wide sweep totals (tests, CLI session scoping)."""
    _STATS.grids = 0
    _STATS.specs_submitted = 0
    _STATS.specs_executed = 0


@dataclass(frozen=True)
class RunSpec:
    """One full-pipeline grid point (engine + telemetry view).

    Executes to the :class:`~repro.experiments.common.MeasuredRun` that
    ``run_workload`` produces for the same arguments.  Nodes are derived
    from ``n_nodes`` inside the worker, so the result depends only on this
    spec's content.
    """

    workload: VaspWorkload
    n_nodes: int = 1
    gpu_cap_w: float | None = None
    seed: int = 7
    engine_config: EngineConfig | None = None
    #: Hardware platform id (None = registry default).  A string, not a
    #: ``Platform``, so the spec stays trivially picklable/fingerprintable.
    platform: str | None = None

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {self.n_nodes}")

    def execute(self) -> Any:
        """Run the spec through the full pipeline (cached)."""
        # Imported lazily: experiments.common sits above the runner layer.
        from repro.experiments.common import run_workload

        return run_workload(
            self.workload,
            n_nodes=self.n_nodes,
            gpu_cap_w=self.gpu_cap_w,
            seed=self.seed,
            engine_config=self.engine_config,
            platform=self.platform,
        )


@dataclass(frozen=True)
class EstimateSpec:
    """One analytic-estimator grid point (no trace rendering).

    Executes to the :class:`~repro.capping.scheduler.RunEstimate` for the
    workload at one node count and cap — what Figs 4/12/13 and the
    scheduler sweep over.
    """

    workload: VaspWorkload
    n_nodes: int = 1
    cap_w: float | None = None
    #: Hardware platform id (None = registry default).
    platform: str | None = None

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {self.n_nodes}")

    def execute(self) -> Any:
        """Estimate the spec analytically (cached)."""
        from repro.capping.scheduler import cached_estimate_run

        return cached_estimate_run(
            self.workload, self.n_nodes, self.cap_w, self.platform
        )


def execute_spec(spec: Any) -> Any:
    """Module-level task entry point (picklable for process pools)."""
    return spec.execute()


def _call_captured(payload: tuple) -> tuple:
    """Worker-side: run one spec under a fresh observability capture.

    Mirrors :meth:`SweepExecutor._run_serial` exactly — same
    ``sweep.spec`` span, same latency histogram — so the merged
    coordinator state is indistinguishable from an in-process run.
    Returns ``(result, ObsPartial | None)``.
    """
    fn, task, index, capture = payload
    trace_on, metrics_on, profile_on = (*capture, False)[:3]
    token = obs_merge.begin_worker_capture(
        trace_on,
        metrics_on,
        process_label=f"repro sweep worker {os.getpid()}",
        thread_label="sweep",
        profile=profile_on,
    )
    try:
        start = time.perf_counter()
        with obs.span("sweep.spec", index=index, spec=type(task).__name__):
            result = fn(task)
        obs.observe(
            "repro_sweep_spec_seconds",
            time.perf_counter() - start,
            help_text="Per-spec sweep execution latency",
        )
    finally:
        partial = obs_merge.finish_worker_capture(token)
    return result, partial


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware).

    ``os.cpu_count()`` reports the host's cores even when a cgroup or
    ``taskset`` pins the process to fewer — sizing a pool that way
    oversubscribes containerized CI.  ``sched_getaffinity`` reflects the
    real allowance where the platform supports it.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def workers_from_env(env_var: str = WORKERS_ENV) -> int | None:
    """Parse a worker-count override from the environment (None = unset)."""
    raw = os.environ.get(env_var, "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError as exc:
        raise ValueError(f"{env_var} must be an integer, got {raw!r}") from exc


def resolve_workers(n_tasks: int, workers: int | None = None) -> int:
    """Worker count for a grid: explicit arg > env override > host size."""
    if workers is None:
        workers = workers_from_env()
    if workers is not None:
        return max(min(workers, n_tasks), 1)
    if n_tasks < MIN_PARALLEL_GRID:
        return 1
    return max(min(available_cpus(), n_tasks), 1)


class SweepExecutor:
    """Executes grids of specs with dedupe, a process pool and grid order.

    Parameters
    ----------
    workers:
        Worker processes; None resolves via ``REPRO_SWEEP_WORKERS`` and the
        host CPU count, 1 (or any grid smaller than
        :data:`MIN_PARALLEL_GRID`) runs serially in-process.
    dedupe:
        Fingerprint specs and execute each distinct spec once, fanning the
        result back out to every duplicate grid point.  This is what makes
        a shared baseline (e.g. the uncapped run in every cap curve) a
        single execution.  Specs that cannot be fingerprinted are executed
        individually.

    ``run()`` executes spec objects (anything with ``execute()``);
    ``map()`` applies an arbitrary picklable module-level function, for
    sweeps whose tasks reduce results in the worker (keeping IPC small).
    """

    def __init__(self, workers: int | None = None, dedupe: bool = True) -> None:
        self.workers = workers
        self.dedupe = dedupe
        #: Executions actually performed by the last call (after dedupe).
        self.last_executed = 0

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[Any]) -> list[Any]:
        """Execute a grid of specs, returning results in grid order."""
        return self.map(execute_spec, specs)

    def map(
        self, fn: Callable[[SpecT], ResultT], specs: Sequence[SpecT]
    ) -> list[ResultT]:
        """Apply ``fn`` to every spec, deduplicated and in grid order."""
        specs = list(specs)
        if not specs:
            self.last_executed = 0
            return []

        # Dedupe by content: execute each distinct spec once.
        if self.dedupe:
            try:
                keys = [fingerprint(spec) for spec in specs]
            except TypeError:
                keys = [f"pos:{index}" for index in range(len(specs))]
        else:
            keys = [f"pos:{index}" for index in range(len(specs))]
        order: dict[str, int] = {}
        unique: list[SpecT] = []
        for key, spec in zip(keys, specs):
            if key not in order:
                order[key] = len(unique)
                unique.append(spec)

        workers = resolve_workers(len(unique), self.workers)
        _STATS.grids += 1
        _STATS.specs_submitted += len(specs)
        _STATS.specs_executed += len(unique)
        obs.inc("repro_sweep_specs_submitted_total", len(specs))
        obs.inc("repro_sweep_specs_deduped_total", len(specs) - len(unique))
        obs.inc("repro_sweep_specs_executed_total", len(unique))
        obs.gauge_set("repro_sweep_workers", workers)
        logger.debug(
            "sweep grid: %d specs, %d unique after dedupe, %d worker(s)",
            len(specs),
            len(unique),
            workers,
        )
        with obs.span(
            "sweep.map",
            specs=len(specs),
            unique=len(unique),
            deduped=len(specs) - len(unique),
            workers=workers,
        ):
            results = self._execute(fn, unique, workers)
        self.last_executed = len(unique)
        return [results[order[key]] for key in keys]

    def _run_serial(
        self, fn: Callable[[SpecT], ResultT], tasks: list[SpecT]
    ) -> list[ResultT]:
        """In-process execution with per-spec spans and latency metrics."""
        results: list[ResultT] = []
        for index, task in enumerate(tasks):
            start = time.perf_counter()
            with obs.span("sweep.spec", index=index, spec=type(task).__name__):
                results.append(fn(task))
            obs.observe(
                "repro_sweep_spec_seconds",
                time.perf_counter() - start,
                help_text="Per-spec sweep execution latency",
            )
        return results

    def _execute(
        self, fn: Callable[[SpecT], ResultT], tasks: list[SpecT], workers: int
    ) -> list[ResultT]:
        if workers <= 1 or len(tasks) <= 1:
            if obs.is_active():
                return self._run_serial(fn, tasks)
            return [fn(task) for task in tasks]
        capture = obs_merge.capture_flags()
        chunksize = max(len(tasks) // (workers * 4), 1)
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                if capture is None:
                    return list(pool.map(fn, tasks, chunksize=chunksize))
                # Observability on: wrap each spec in a worker-side
                # capture and fold the shipped spans/metrics into the
                # coordinator's live state as results stream back.
                payloads = [
                    (fn, task, index, capture)
                    for index, task in enumerate(tasks)
                ]
                results: list[ResultT] = []
                for result, partial in pool.map(
                    _call_captured, payloads, chunksize=chunksize
                ):
                    obs_merge.absorb_partial(partial)
                    results.append(result)
                return results
        except (OSError, PermissionError, ImportError) as exc:
            # Pools need fork/spawn and pipes; restricted hosts fall back
            # to serial execution (identical results, by construction).
            logger.warning(
                "process pool unavailable (%s: %s); falling back to serial "
                "execution of %d specs",
                type(exc).__name__,
                exc,
                len(tasks),
            )
            if obs.is_active():
                return self._run_serial(fn, tasks)
            return [fn(task) for task in tasks]


def run_sweep(
    specs: Sequence[Any], workers: int | None = None, dedupe: bool = True
) -> list[Any]:
    """One-call convenience: ``SweepExecutor(workers, dedupe).run(specs)``."""
    return SweepExecutor(workers=workers, dedupe=dedupe).run(specs)
