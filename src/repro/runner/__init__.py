"""Execution engine: runs a workload's phases on simulated nodes.

The engine advances through the macro-phase sequence, resolves each
phase's power on every component of every allocated node (honouring GPU
power caps and DVFS slowdowns), and emits a 0.1-second-resolution power
trace — the "ground truth" signal that the telemetry layer then samples
the way NERSC's LDMS pipeline does.

The job layer reproduces the paper's measurement protocol (Section III-B):
STREAM and DGEMM acceptance segments, an idle gap, then the VASP segment,
with five repeats and minimum-runtime selection.
"""

from repro.runner.trace import PhaseRecord, PowerTrace, RunResult
from repro.runner.engine import EngineConfig, PowerEngine
from repro.runner.cache import RunCache, fingerprint
from repro.runner.sweep import EstimateSpec, RunSpec, SweepExecutor, run_sweep
from repro.runner.dgemm import dgemm_phase, numpy_dgemm_gflops
from repro.runner.stream import numpy_stream_gbs, stream_phase
from repro.runner.job import JobResult, JobScript, idle_phase
from repro.runner.runlog import (
    RunLogSummary,
    parse_run_log,
    summarize_run,
    write_run_log,
)

__all__ = [
    "EngineConfig",
    "EstimateSpec",
    "JobResult",
    "JobScript",
    "PhaseRecord",
    "PowerEngine",
    "PowerTrace",
    "RunCache",
    "RunLogSummary",
    "RunResult",
    "RunSpec",
    "SweepExecutor",
    "dgemm_phase",
    "fingerprint",
    "idle_phase",
    "numpy_dgemm_gflops",
    "numpy_stream_gbs",
    "parse_run_log",
    "run_sweep",
    "stream_phase",
    "summarize_run",
    "write_run_log",
]
