"""Legacy setup shim: enables `pip install -e .` without the `wheel`
package (this environment is offline and PEP 660 editable installs need
to build a wheel).  All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
