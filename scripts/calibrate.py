"""Dev calibration harness: engine -> KDE -> high power mode vs paper targets."""
import time
import numpy as np
from repro.vasp.benchmarks import BENCHMARKS
from repro.vasp.parallel import ParallelConfig
from repro.hardware.node import GpuNode
from repro.runner.engine import PowerEngine
from repro.analysis.modes import high_power_mode_w
from repro.analysis.stats import summarize
from repro.telemetry.downsample import downsample_trace

TARGETS = {"Si256_hse":1810,"B.hR105_hse":1430,"PdO4":1100,"PdO2":950,"GaAsBi-64":766,"CuC_vdw":1000,"Si128_acfdtr":1814}

def run_one(name, n_nodes=1, cap=None, seed=3):
    wl = BENCHMARKS[name].build()
    nodes = [GpuNode(f"nid{1000+i:06d}") for i in range(n_nodes)]
    if cap:
        for nd in nodes: nd.set_gpu_power_limit(cap)
    eng = PowerEngine(nodes)
    phases = wl.phases(ParallelConfig(n_nodes, kpar=wl.incar.kpar))
    res = eng.run(phases, seed=seed)
    tr = downsample_trace(res.traces[0], 2.0)
    return wl, res, tr

if __name__ == "__main__":
    for name in BENCHMARKS:
        t0 = time.time()
        wl, res, tr = run_one(name)
        s = summarize(tr.node_power)
        gpu_frac = float(np.mean(tr.gpu_total / tr.node_power))
        print(f"{name:14s} rt={res.runtime_s:7.0f}s HPM={s.high_power_mode_w:6.0f}W "
              f"(target {TARGETS[name]:4d}) max={s.max_w:6.0f} med={s.median_w:6.0f} "
              f"gpu%={gpu_frac:.2f} wall={time.time()-t0:.1f}s")
