#!/usr/bin/env bash
# CI entry point: tier-1 tests, then the guarded benchmark comparison
# (timing drift on the sweep benches plus the fleet memory gate —
# streaming must beat the dense path's tracemalloc peak by >= 3x).
#
# Usage:
#   scripts/ci.sh                 # full gate: pytest + bench compare
#   scripts/ci.sh --skip-bench    # tests only (fast pre-push check)
#
# Extra arguments after the flags are forwarded to bench_compare.py
# (e.g. `scripts/ci.sh --threshold 0.3`).

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
# Keep the smoke runs' ledger out of the developer's real run history.
export REPRO_RUNS_DIR="$SMOKE_DIR/runs"

SKIP_BENCH=0
ARGS=()
for arg in "$@"; do
    if [[ "$arg" == "--skip-bench" ]]; then
        SKIP_BENCH=1
    else
        ARGS+=("$arg")
    fi
done

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== monitor smoke run (dashboard + energy report) =="
python -m repro monitor --jobs 6 --nodes 8 --seed 3 --resolution 1.0

echo "== cross-platform smoke (registry + h100 cap sweep) =="
python -m repro platforms
python -m repro cap-sweep PdO2 --platform h100-sxm --nodes 1

echo "== surrogate smoke (train -> predict -> verified cap search) =="
# First command trains and persists the store (retraining from scratch
# over the zoo-expanded corpus); the rest must hit it.  The zoo predict
# proves non-VASP registry workloads ride the same surrogate end-to-end.
export REPRO_SURROGATE_DIR="$SMOKE_DIR/surrogate"
python -m repro predict Si256_hse --nodes 1 --cap 300
python -m repro predict milc:small --nodes 1 --cap 300
python -m repro cap-sweep PdO4 --nodes 1 --surrogate
python - <<'PY'
from repro.capping.policy import search_cap_policy
from repro.prediction import load_or_train
from repro.vasp.benchmarks import benchmark

pairs = [
    (benchmark("PdO2").build(), 1),
    (benchmark("Si256_hse").build(), 1),
    (benchmark("GaAsBi-64").build(), 1),
]
caps = [125.0, 200.0, 300.0, 400.0]
surrogate = load_or_train()  # served from the store the smoke just wrote
fast = search_cap_policy(pairs, caps, slowdown_limit=1.5, surrogate=surrogate)
exact = search_cap_policy(pairs, caps, slowdown_limit=1.5)
assert fast.best_policy.caps_w == exact.best_policy.caps_w, (
    f"surrogate winner {fast.best_policy.caps_w} "
    f"!= exhaustive {exact.best_policy.caps_w}"
)
error = fast.verification_error
assert error is not None and error < 0.2, f"verification error {error}"
print(
    f"cap search ok: winner matches exhaustive search, "
    f"{fast.predictions} predictions / {fast.fallbacks} fallbacks, "
    f"winner verification error {error:.1%}"
)
PY

echo "== sharded fleet smoke (bit-identity vs serial) =="
FLEET_ARGS=(fleet --jobs 4 --nodes 6 --seed 3 --resolution 1.0)
# Cache/sweep summary lines vary with worker count (each worker process
# has its own cache); every simulation statistic above them must not.
filter_summaries() { grep -v '^\[' "$1" > "$2"; }
python -m repro "${FLEET_ARGS[@]}" > "$SMOKE_DIR/serial.out"
python -m repro "${FLEET_ARGS[@]}" --workers 2 > "$SMOKE_DIR/sharded.out"
filter_summaries "$SMOKE_DIR/serial.out" "$SMOKE_DIR/serial.txt"
filter_summaries "$SMOKE_DIR/sharded.out" "$SMOKE_DIR/sharded.txt"
diff "$SMOKE_DIR/serial.txt" "$SMOKE_DIR/sharded.txt" \
    || { echo "sharded fleet output diverged from serial"; exit 1; }

echo "== scenario smoke (workload registry + named scenario bit-identity) =="
python -m repro workloads
SCENARIO_ARGS=(fleet --scenario diurnal --seed 3 --resolution 1.0)
python -m repro "${SCENARIO_ARGS[@]}" > "$SMOKE_DIR/scenario-serial.out"
python -m repro "${SCENARIO_ARGS[@]}" --workers 2 > "$SMOKE_DIR/scenario-sharded.out"
filter_summaries "$SMOKE_DIR/scenario-serial.out" "$SMOKE_DIR/scenario-serial.txt"
filter_summaries "$SMOKE_DIR/scenario-sharded.out" "$SMOKE_DIR/scenario-sharded.txt"
diff "$SMOKE_DIR/scenario-serial.txt" "$SMOKE_DIR/scenario-sharded.txt" \
    || { echo "sharded scenario output diverged from serial"; exit 1; }

echo "== checkpoint/resume smoke (bit-identity vs uninterrupted) =="
python -m repro "${FLEET_ARGS[@]}" --checkpoint "$SMOKE_DIR/fleet.ckpt" \
    > "$SMOKE_DIR/ckpt.out"
python -m repro "${FLEET_ARGS[@]}" --checkpoint "$SMOKE_DIR/fleet.ckpt" \
    --resume > "$SMOKE_DIR/resume.out"
filter_summaries "$SMOKE_DIR/ckpt.out" "$SMOKE_DIR/ckpt.txt"
filter_summaries "$SMOKE_DIR/resume.out" "$SMOKE_DIR/resume.txt"
diff "$SMOKE_DIR/serial.txt" "$SMOKE_DIR/ckpt.txt" \
    || { echo "checkpointed fleet output diverged from serial"; exit 1; }
diff "$SMOKE_DIR/ckpt.txt" "$SMOKE_DIR/resume.txt" \
    || { echo "resumed fleet output diverged from checkpointed run"; exit 1; }

echo "== observability smoke (merged trace + run ledger round-trip) =="
python -m repro "${FLEET_ARGS[@]}" --workers 2 \
    --trace "$SMOKE_DIR/fleet-trace.json" --metrics "$SMOKE_DIR/fleet-metrics.prom" \
    > "$SMOKE_DIR/obs.out"
python - "$SMOKE_DIR/fleet-trace.json" <<'PY'
import json, sys

trace = json.load(open(sys.argv[1]))
events = trace["traceEvents"]
worker_pids = {e["pid"] for e in events if e["name"] == "shard.render_batch"}
labels = {
    e["pid"]
    for e in events
    if e.get("ph") == "M" and e["name"] == "process_name"
}
assert len(worker_pids) >= 2, f"expected spans from >=2 workers, got {worker_pids}"
assert worker_pids <= labels, "worker pids missing process_name metadata rows"
print(f"merged trace ok: {len(events)} events from {len(worker_pids)} workers")
PY
filter_summaries "$SMOKE_DIR/obs.out" "$SMOKE_DIR/obs.txt"
grep -v ' written to ' "$SMOKE_DIR/obs.txt" > "$SMOKE_DIR/obs-body.txt"
diff "$SMOKE_DIR/serial.txt" "$SMOKE_DIR/obs-body.txt" \
    || { echo "obs-instrumented fleet output diverged from serial"; exit 1; }
python -m repro runs list
python -m repro runs show last > "$SMOKE_DIR/last-run.json"
python - "$SMOKE_DIR/last-run.json" <<'PY'
import json, sys

record = json.load(open(sys.argv[1]))
assert record["kind"] == "fleet", record
assert record["status"] == "ok", record
assert record["wall_s"] > 0, record
assert record["workers"] == 2, record
print(f"ledger ok: run {record['run_id']} recorded {record['kind']}")
PY
python -m repro runs check

echo "== profiler smoke (sharded --profile merges to one speedscope) =="
# A tight sampling interval makes worker-batch samples a certainty even
# on the small smoke workload; the merged document must carry rows from
# the coordinator *and* the shard workers, attributed to obs spans.
REPRO_PROFILE_INTERVAL=0.0005 python -m repro fleet --jobs 8 --nodes 40 \
    --seed 3 --resolution 1.0 --workers 2 \
    --profile "$SMOKE_DIR/fleet.speedscope" > /dev/null
python - "$SMOKE_DIR/fleet.speedscope" <<'PY'
import json, sys

doc = json.load(open(sys.argv[1]))
rows = [p["name"] for p in doc["profiles"]]
frames = [f["name"] for f in doc["shared"]["frames"]]
workers = [name for name in rows if "worker" in name]
assert workers, f"no worker rows in merged profile: {rows}"
assert any(
    f.startswith("span:") and f != "span:(no span)" for f in frames
), "no span pseudo-frames in merged profile"
total = sum(len(p["samples"]) for p in doc["profiles"])
assert total > 0, "merged profile holds no samples"
print(
    f"profile ok: {total} stacks across {len(rows)} rows "
    f"({len(workers)} worker rows)"
)
PY

echo "== sentinel smoke (ledger-mined regression gate) =="
# The sentinel needs jitter-only history, so it gets its own ledger:
# the shared smoke ledger mixes runs from early (idle) and late (loaded)
# phases of this script, and that cross-phase drift is a real shift the
# dual gate would correctly flag. Three back-to-back runs build a
# temporally adjacent baseline; the green check loosens --tolerance to
# ride out the shared 1-CPU container's ~40% wall-time jitter, while
# the seeded 2x record must still trip the default gates.
export REPRO_RUNS_DIR="$SMOKE_DIR/sentinel-runs"
python -m repro "${FLEET_ARGS[@]}" > /dev/null
python -m repro "${FLEET_ARGS[@]}" > /dev/null
python -m repro "${FLEET_ARGS[@]}" > /dev/null
python -m repro sentinel check --tolerance 0.6
python -m repro sentinel report
python - <<'PY'
from repro.obs.ledger import RunLedger, RunRecord

book = RunLedger()
last = book.last()
book.append(
    RunRecord(
        run_id="00000000T000000-regress",
        kind=last.kind,
        fingerprint=last.fingerprint,
        wall_s=(last.wall_s or 1.0) * 2.0,
    )
)
print(f"seeded 2x wall-time record against fingerprint {last.fingerprint}")
PY
if python -m repro sentinel check; then
    echo "sentinel missed the seeded 2x wall-time regression"; exit 1
fi
echo "sentinel ok: seeded regression flagged, jitter history stayed green"
export REPRO_RUNS_DIR="$SMOKE_DIR/runs"

if [[ "$SKIP_BENCH" == "1" ]]; then
    echo "== benches skipped (--skip-bench) =="
    exit 0
fi

echo "== benchmark comparison (guarded sweep benches) =="
python scripts/bench_compare.py "${ARGS[@]+"${ARGS[@]}"}"
