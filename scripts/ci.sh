#!/usr/bin/env bash
# CI entry point: tier-1 tests, then the guarded benchmark comparison
# (timing drift on the sweep benches plus the fleet memory gate —
# streaming must beat the dense path's tracemalloc peak by >= 3x).
#
# Usage:
#   scripts/ci.sh                 # full gate: pytest + bench compare
#   scripts/ci.sh --skip-bench    # tests only (fast pre-push check)
#
# Extra arguments after the flags are forwarded to bench_compare.py
# (e.g. `scripts/ci.sh --threshold 0.3`).

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

SKIP_BENCH=0
ARGS=()
for arg in "$@"; do
    if [[ "$arg" == "--skip-bench" ]]; then
        SKIP_BENCH=1
    else
        ARGS+=("$arg")
    fi
done

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== monitor smoke run (dashboard + energy report) =="
python -m repro monitor --jobs 6 --nodes 8 --seed 3 --resolution 1.0

echo "== cross-platform smoke (registry + h100 cap sweep) =="
python -m repro platforms
python -m repro cap-sweep PdO2 --platform h100-sxm --nodes 1

if [[ "$SKIP_BENCH" == "1" ]]; then
    echo "== benches skipped (--skip-bench) =="
    exit 0
fi

echo "== benchmark comparison (guarded sweep benches) =="
python scripts/bench_compare.py "${ARGS[@]+"${ARGS[@]}"}"
